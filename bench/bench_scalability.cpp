// Benchmark: CCS round latency and message cost vs group size.
//
// The paper evaluates a 3-way replicated server; this sweep shows how the
// consistent time service behaves as the group grows, for both replication
// styles:
//   * ACTIVE — every replica competes to be the synchronizer.  The denser
//     the ring, the sooner SOME replica's token visit orders a proposal, so
//     round latency stays roughly flat as the group grows.
//   * SEMI-ACTIVE — only the primary proposes, so every round waits for the
//     primary's token visit: latency grows linearly with the ring size.
// Duplicate suppression keeps the wire cost near one CCS message per round
// in both cases.
#include <chrono>
#include <cstdio>
#include <vector>

#include "app/archipelago.hpp"
#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct Row {
  double mean_us;
  Micros p50, p99;
  double ccs_per_round;
};

Row run(std::size_t servers, replication::ReplicationStyle style) {
  constexpr int kRounds = 2'000;
  TestbedConfig cfg;
  cfg.servers = servers;
  cfg.style = style;
  cfg.seed = 1234;
  Testbed tb(cfg);

  Histogram lat(5, 10'000);
  tb.start();

  bool done = false;
  auto worker = [&](std::uint32_t s, bool measure) -> sim::Task {
    auto& svc = tb.server(s).time_service();
    for (int i = 0; i < kRounds; ++i) {
      co_await tb.sim().delay(100);
      const Micros t0 = tb.sim().now();
      (void)co_await svc.get_time(ThreadId{5});
      if (measure) lat.add(tb.sim().now() - t0);
    }
    if (measure) done = true;
  };
  for (std::uint32_t s = 0; s < servers; ++s) worker(s, s == 0);
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  std::uint64_t wire = 0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
  }
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_scalability.run" + std::to_string(obs_run++));
  return Row{lat.mean(), lat.percentile(0.5), lat.percentile(0.99), (double)wire / kRounds};
}

// --- Worker-count sweep over a multi-ring archipelago --------------------------
//
// The island-parallel coordinator (doc/PARALLEL.md) never changes the
// schedule, so the only thing this sweep can show is wall-clock: the same
// 4-ring workload, same seed, same simulated duration, executed by 1/2/4/8
// workers.  Speedup tops out at min(workers, islands, physical cores) —
// on a single-core host every row costs the same wall time (plus barrier
// overhead), which is itself worth recording.

struct ParRow {
  double wall_ms;
  std::uint64_t events;
  std::uint64_t epochs;
};

ParRow run_parallel(unsigned workers) {
  constexpr std::size_t kRings = 4;
  constexpr Micros kDuration = 2'000'000;
  app::ArchipelagoConfig cfg;
  cfg.rings = kRings;
  cfg.seed = 42;
  cfg.threads = workers;
  app::Archipelago ar(cfg);
  // Perpetual cross-ring relay: each delivery (at replica 0) re-stamps the
  // payload onward to the next ring, so inter-island traffic never drains.
  ar.on_stamped([&ar](std::size_t ring, std::uint32_t replica, Micros, const Bytes& body) {
    if (replica != 0) return;
    const std::size_t next = (ring + 1) % kRings;
    ar.stamped_broadcast_at(ar.ring(ring).sim().now() + 20'000, ring, next, body);
  });
  ar.start(400'000);
  for (std::size_t r = 0; r < kRings; ++r) {
    ar.stamped_broadcast_at(450'000 + 5'000 * r, r, (r + 1) % kRings, Bytes{0x55});
  }

  std::uint64_t ev0 = 0;
  for (std::size_t r = 0; r < kRings; ++r) ev0 += ar.ring(r).sim().events_executed();
  // detlint:allow(wall-clock): measures the harness's own real elapsed
  // time for the speedup table; no simulated state depends on it
  const auto t0 = std::chrono::steady_clock::now();
  ar.run_for(kDuration);
  // detlint:allow(wall-clock): same measurement, closing timestamp
  const auto t1 = std::chrono::steady_clock::now();

  ParRow row;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = 0;
  for (std::size_t r = 0; r < kRings; ++r) row.events += ar.ring(r).sim().events_executed();
  row.events -= ev0;
  row.epochs = ar.coordinator().stats().epochs;
  return row;
}

}  // namespace

int main() {
  std::printf("# Scalability: CCS round latency and wire cost vs group size\n");
  std::printf("# (2000 rounds per point; one client node + N server nodes on the ring)\n\n");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "", "-- active", "--", "",
              "-- semi-a", "ctive --", "");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "servers", "mean_us", "p99_us",
              "ccs/round", "mean_us", "p99_us", "ccs/round");
  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    const Row a = run(n, replication::ReplicationStyle::kActive);
    const Row s = run(n, replication::ReplicationStyle::kSemiActive);
    std::printf("%-8zu | %10.1f %8lld %14.3f | %10.1f %8lld %14.3f\n", n, a.mean_us,
                (long long)a.p99, a.ccs_per_round, s.mean_us, (long long)s.p99,
                s.ccs_per_round);
  }
  std::printf(
      "\nexpected shape: with active replication the proposal competition keeps round\n"
      "latency roughly flat (expected token wait ~ rotation/N); with a single proposer\n"
      "(semi-active primary) latency grows linearly with the ring size.  Duplicate\n"
      "suppression holds the wire cost near 1 CCS message/round in both styles.\n");

  std::printf("\n# Island-parallel sweep: 4 rings x 3 servers, 2s simulated, same seed\n");
  std::printf("# (identical schedule by construction; only wall-clock may differ)\n\n");
  std::printf("%-8s | %10s %12s %10s %9s\n", "workers", "wall_ms", "events", "events/ms",
              "speedup");
  double base_ms = 0;
  for (unsigned w : {1u, 2u, 4u, 8u}) {
    const ParRow p = run_parallel(w);
    if (w == 1) base_ms = p.wall_ms;
    std::printf("%-8u | %10.1f %12llu %10.1f %8.2fx\n", w, p.wall_ms,
                (unsigned long long)p.events, (double)p.events / p.wall_ms,
                base_ms / p.wall_ms);
  }
  std::printf(
      "\nexpected shape: speedup approaches min(workers, rings, physical cores); on a\n"
      "single-core host all rows cost the same wall time modulo barrier overhead.\n");
  return 0;
}
