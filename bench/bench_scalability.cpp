// Benchmark: CCS round latency and message cost vs group size.
//
// The paper evaluates a 3-way replicated server; this sweep shows how the
// consistent time service behaves as the group grows, for both replication
// styles:
//   * ACTIVE — every replica competes to be the synchronizer.  The denser
//     the ring, the sooner SOME replica's token visit orders a proposal, so
//     round latency stays roughly flat as the group grows.
//   * SEMI-ACTIVE — only the primary proposes, so every round waits for the
//     primary's token visit: latency grows linearly with the ring size.
// Duplicate suppression keeps the wire cost near one CCS message per round
// in both cases.
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct Row {
  double mean_us;
  Micros p50, p99;
  double ccs_per_round;
};

Row run(std::size_t servers, replication::ReplicationStyle style) {
  constexpr int kRounds = 2'000;
  TestbedConfig cfg;
  cfg.servers = servers;
  cfg.style = style;
  cfg.seed = 1234;
  Testbed tb(cfg);

  Histogram lat(5, 10'000);
  tb.start();

  bool done = false;
  auto worker = [&](std::uint32_t s, bool measure) -> sim::Task {
    auto& svc = tb.server(s).time_service();
    for (int i = 0; i < kRounds; ++i) {
      co_await tb.sim().delay(100);
      const Micros t0 = tb.sim().now();
      (void)co_await svc.get_time(ThreadId{5});
      if (measure) lat.add(tb.sim().now() - t0);
    }
    if (measure) done = true;
  };
  for (std::uint32_t s = 0; s < servers; ++s) worker(s, s == 0);
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  std::uint64_t wire = 0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
  }
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_scalability.run" + std::to_string(obs_run++));
  return Row{lat.mean(), lat.percentile(0.5), lat.percentile(0.99), (double)wire / kRounds};
}

}  // namespace

int main() {
  std::printf("# Scalability: CCS round latency and wire cost vs group size\n");
  std::printf("# (2000 rounds per point; one client node + N server nodes on the ring)\n\n");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "", "-- active", "--", "",
              "-- semi-a", "ctive --", "");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "servers", "mean_us", "p99_us",
              "ccs/round", "mean_us", "p99_us", "ccs/round");
  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    const Row a = run(n, replication::ReplicationStyle::kActive);
    const Row s = run(n, replication::ReplicationStyle::kSemiActive);
    std::printf("%-8zu | %10.1f %8lld %14.3f | %10.1f %8lld %14.3f\n", n, a.mean_us,
                (long long)a.p99, a.ccs_per_round, s.mean_us, (long long)s.p99,
                s.ccs_per_round);
  }
  std::printf(
      "\nexpected shape: with active replication the proposal competition keeps round\n"
      "latency roughly flat (expected token wait ~ rotation/N); with a single proposer\n"
      "(semi-active primary) latency grows linearly with the ring size.  Duplicate\n"
      "suppression holds the wire cost near 1 CCS message/round in both styles.\n");
  return 0;
}
