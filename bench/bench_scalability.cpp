// Benchmark: CCS round latency and message cost vs group size.
//
// The paper evaluates a 3-way replicated server; this sweep shows how the
// consistent time service behaves as the group grows, for both replication
// styles:
//   * ACTIVE — every replica competes to be the synchronizer.  The denser
//     the ring, the sooner SOME replica's token visit orders a proposal, so
//     round latency stays roughly flat as the group grows.
//   * SEMI-ACTIVE — only the primary proposes, so every round waits for the
//     primary's token visit: latency grows linearly with the ring size.
// Duplicate suppression keeps the wire cost near one CCS message per round
// in both cases.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "app/archipelago.hpp"
#include "app/session_manager.hpp"
#include "app/testbed.hpp"
#include "app/topology.hpp"
#include "obs/merge.hpp"
#include "obs/oracle.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct Row {
  double mean_us;
  Micros p50, p99;
  double ccs_per_round;
};

Row run(std::size_t servers, replication::ReplicationStyle style) {
  constexpr int kRounds = 2'000;
  TestbedConfig cfg;
  cfg.servers = servers;
  cfg.style = style;
  cfg.seed = 1234;
  Testbed tb(cfg);

  Histogram lat(5, 10'000);
  tb.start();

  bool done = false;
  auto worker = [&](std::uint32_t s, bool measure) -> sim::Task {
    auto& svc = tb.server(s).time_service();
    for (int i = 0; i < kRounds; ++i) {
      co_await tb.sim().delay(100);
      const Micros t0 = tb.sim().now();
      (void)co_await svc.get_time(ThreadId{5});
      if (measure) lat.add(tb.sim().now() - t0);
    }
    if (measure) done = true;
  };
  for (std::uint32_t s = 0; s < servers; ++s) worker(s, s == 0);
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  std::uint64_t wire = 0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
  }
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_scalability.run" + std::to_string(obs_run++));
  return Row{lat.mean(), lat.percentile(0.5), lat.percentile(0.99), (double)wire / kRounds};
}

// --- Worker-count sweep over a multi-ring archipelago --------------------------
//
// The island-parallel coordinator (doc/PARALLEL.md) never changes the
// schedule, so the only thing this sweep can show is wall-clock: the same
// 4-ring workload, same seed, same simulated duration, executed by 1/2/4/8
// workers.  Speedup tops out at min(workers, islands, physical cores) —
// on a single-core host every row costs the same wall time (plus barrier
// overhead), which is itself worth recording.

struct ParRow {
  double wall_ms;
  std::uint64_t events;
  std::uint64_t epochs;
};

ParRow run_parallel(unsigned workers) {
  constexpr std::size_t kRings = 4;
  constexpr Micros kDuration = 2'000'000;
  app::ArchipelagoConfig cfg;
  cfg.topo.rings = kRings;
  cfg.seed = 42;
  cfg.threads = workers;
  app::Archipelago ar(cfg);
  // Perpetual cross-ring relay: each delivery (at replica 0) re-stamps the
  // payload onward to the next ring, so inter-island traffic never drains.
  ar.on_stamped([&ar](std::size_t ring, std::uint32_t replica, Micros, const Bytes& body) {
    if (replica != 0) return;
    const std::size_t next = (ring + 1) % kRings;
    ar.stamped_broadcast_at(ar.ring(ring).sim().now() + 20'000, ring, next, body);
  });
  ar.start(400'000);
  for (std::size_t r = 0; r < kRings; ++r) {
    ar.stamped_broadcast_at(450'000 + 5'000 * r, r, (r + 1) % kRings, Bytes{0x55});
  }

  std::uint64_t ev0 = 0;
  for (std::size_t r = 0; r < kRings; ++r) ev0 += ar.ring(r).sim().events_executed();
  // detlint:allow(wall-clock): measures the harness's own real elapsed
  // time for the speedup table; no simulated state depends on it
  const auto t0 = std::chrono::steady_clock::now();
  ar.run_for(kDuration);
  // detlint:allow(wall-clock): same measurement, closing timestamp
  const auto t1 = std::chrono::steady_clock::now();

  ParRow row;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events = 0;
  for (std::size_t r = 0; r < kRings; ++r) row.events += ar.ring(r).sim().events_executed();
  row.events -= ev0;
  row.epochs = ar.coordinator().stats().epochs;
  return row;
}

// --- Shard-count sweep: N rings x 6 replicas under a bulk session load ---------
//
// The sharded backbone (doc/SHARDING.md): each ring runs a SessionManagerApp
// partitioned by the deployment's ShardMap.  Every ring bulk-ingests its
// slice of a 2-million-session synthetic population (OPEN_MANY batches: one
// id round + one clock round per 100k sessions), then runs an individual
// open/touch/query mix plus cross-shard migrations to the neighbor ring.
// Reported per shard count: aggregate ops per simulated second, total live
// sessions, cross-shard handoffs, and the oracle's cross-shard causality
// violation count — which must be zero.  Each row is run serially and with
// 4 island workers; the merged metrics+trace documents must be
// byte-identical (the parallel coordinator never changes the schedule).

struct ShardRow {
  std::uint64_t sessions = 0;
  std::uint64_t ops = 0;
  double sim_s = 0;
  double wall_ms = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t cross_shard = 0;
  std::string merged;  // metrics+trace fingerprint for the identity check
};

ShardRow run_shards(std::size_t rings, unsigned threads) {
  constexpr std::size_t kServers = 6;
  constexpr std::uint64_t kTotalSessions = 2'000'000;
  app::ArchipelagoConfig cfg;
  cfg.topo = app::TopologySpec{rings, kServers, /*with_client=*/true};
  cfg.seed = 77;
  cfg.threads = threads;
  cfg.app = [](const app::ShardMap& map, std::size_t ring) {
    app::SessionManagerApp::Options sopt;
    sopt.shard_map = &map;
    sopt.ring = ring;
    return app::session_manager_factory(sopt);
  };
  app::Archipelago ar(cfg);
  ar.start();

  const std::uint64_t per_ring = kTotalSessions / rings;
  std::vector<std::uint64_t> ops(rings, 0);
  std::vector<std::uint8_t> done(rings, 0);

  auto worker = [&ar, &ops, &done, per_ring, rings](std::size_t r) -> sim::Task {
    auto& tb = ar.ring(r);
    std::uint64_t left = per_ring;
    while (left > 0) {
      const auto n = static_cast<std::uint32_t>(std::min<std::uint64_t>(left, 100'000));
      (void)co_await tb.client().call(app::session_open_many(n, 3'600'000'000LL));
      left -= n;
      ++ops[r];
    }
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
      const Bytes rep = co_await tb.client().call(app::session_open(600'000'000));
      ids.push_back(app::SessionReply::parse(rep).session_id);
      ++ops[r];
    }
    for (int i = 0; i < 16; ++i) {
      (void)co_await tb.client().call(app::session_touch(ids[i % ids.size()]));
      (void)co_await tb.client().call(app::session_query(ids[(i + 3) % ids.size()]));
      ops[r] += 2;
    }
    if (rings > 1) {
      for (int i = 0; i < 2; ++i) {
        (void)co_await tb.client().call(
            app::session_migrate(ids[i], static_cast<std::uint32_t>((r + 1) % rings)));
        ++ops[r];
      }
    }
    (void)co_await tb.client().call(app::session_count());
    ++ops[r];
    done[r] = 1;
  };

  const Micros t0 = ar.now();
  for (std::size_t r = 0; r < rings; ++r) worker(r);
  // detlint:allow(wall-clock): harness-side elapsed time for the report
  const auto w0 = std::chrono::steady_clock::now();
  auto all_done = [&] {
    for (std::size_t r = 0; r < rings; ++r) {
      if (!done[r]) return false;
    }
    return true;
  };
  const Micros deadline = t0 + 600'000'000LL;
  while (!all_done() && ar.now() < deadline) ar.run_until(ar.now() + 1'000'000);
  ar.run_for(2'000'000);
  // detlint:allow(wall-clock): closing timestamp of the same measurement
  const auto w1 = std::chrono::steady_clock::now();

  ShardRow row;
  row.wall_ms = std::chrono::duration<double, std::milli>(w1 - w0).count();
  row.sim_s = static_cast<double>(ar.now() - t0 - 2'000'000) / 1e6;
  for (std::size_t r = 0; r < rings; ++r) {
    row.ops += ops[r];
    auto& tb = ar.ring(r);
    const auto& app0 = static_cast<app::SessionManagerApp&>(tb.server(0).app());
    row.sessions += app0.live_sessions();
    row.handoffs += app0.handoffs_out();
    if (const auto* orc = tb.recorder().oracle()) {
      row.cross_shard += orc->cross_shard_violations();
    }
  }
  auto recs = ar.recorders();
  row.merged = obs::merged_metrics_json(recs) + obs::merged_trace_jsonl(recs);
  return row;
}

}  // namespace

int main() {
  std::printf("# Scalability: CCS round latency and wire cost vs group size\n");
  std::printf("# (2000 rounds per point; one client node + N server nodes on the ring)\n\n");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "", "-- active", "--", "",
              "-- semi-a", "ctive --", "");
  std::printf("%-8s | %10s %8s %14s | %10s %8s %14s\n", "servers", "mean_us", "p99_us",
              "ccs/round", "mean_us", "p99_us", "ccs/round");
  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    const Row a = run(n, replication::ReplicationStyle::kActive);
    const Row s = run(n, replication::ReplicationStyle::kSemiActive);
    std::printf("%-8zu | %10.1f %8lld %14.3f | %10.1f %8lld %14.3f\n", n, a.mean_us,
                (long long)a.p99, a.ccs_per_round, s.mean_us, (long long)s.p99,
                s.ccs_per_round);
  }
  std::printf(
      "\nexpected shape: with active replication the proposal competition keeps round\n"
      "latency roughly flat (expected token wait ~ rotation/N); with a single proposer\n"
      "(semi-active primary) latency grows linearly with the ring size.  Duplicate\n"
      "suppression holds the wire cost near 1 CCS message/round in both styles.\n");

  std::printf("\n# Island-parallel sweep: 4 rings x 3 servers, 2s simulated, same seed\n");
  std::printf("# (identical schedule by construction; only wall-clock may differ)\n\n");
  std::printf("%-8s | %10s %12s %10s %9s\n", "workers", "wall_ms", "events", "events/ms",
              "speedup");
  double base_ms = 0;
  for (unsigned w : {1u, 2u, 4u, 8u}) {
    const ParRow p = run_parallel(w);
    if (w == 1) base_ms = p.wall_ms;
    std::printf("%-8u | %10.1f %12llu %10.1f %8.2fx\n", w, p.wall_ms,
                (unsigned long long)p.events, (double)p.events / p.wall_ms,
                base_ms / p.wall_ms);
  }
  std::printf(
      "\nexpected shape: speedup approaches min(workers, rings, physical cores); on a\n"
      "single-core host all rows cost the same wall time modulo barrier overhead.\n");

  std::printf("\n# Shard sweep: R rings x 6 replicas, 2M-session bulk load + migrations\n");
  std::printf("# (each row run serial and with 4 island workers; merged obs documents\n");
  std::printf("#  must match byte for byte, and oracle.cross_shard must be 0)\n\n");
  std::printf("%-8s | %10s %12s %10s %9s %12s %10s %10s\n", "rings", "sessions", "ops",
              "ops/sim_s", "handoffs", "cross_shard", "wall_ms", "identical");
  bool all_zero = true;
  bool all_identical = true;
  for (std::size_t rings : {1u, 4u, 16u, 32u}) {
    const ShardRow serial = run_shards(rings, 1);
    const ShardRow par = run_shards(rings, 4);
    const bool identical = serial.merged == par.merged;
    all_zero &= serial.cross_shard == 0 && par.cross_shard == 0;
    all_identical &= identical;
    std::printf("%-8zu | %10llu %12llu %10.1f %9llu %12llu %10.1f %10s\n", rings,
                (unsigned long long)serial.sessions, (unsigned long long)serial.ops,
                (double)serial.ops / serial.sim_s, (unsigned long long)serial.handoffs,
                (unsigned long long)serial.cross_shard, serial.wall_ms,
                identical ? "yes" : "NO");
  }
  std::printf("\ncross-shard causality violations: %s;  serial == 4-worker: %s\n",
              all_zero ? "0 (ok)" : "NONZERO", all_identical ? "yes" : "NO");
  return all_zero && all_identical ? 0 : 1;
}
