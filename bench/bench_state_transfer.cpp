// Benchmark: state-transfer cost vs replica state size (Section 3.2).
//
// Sweeps the size of the replica state and measures the full recovery
// cycle — GET_STATE ordering, the special CCS round, checkpoint
// serialization, fragmentation onto the wire (one MTU per fragment), and
// the drain of requests queued during the transfer.
//
// Expected shape: transfer time ≈ a fixed protocol cost (ring re-join +
// barrier + special round) plus a linear wire term (state bytes at
// 12.5 B/us on the 100 Mb/s LAN, serialized through the sender's NIC).
#include <cstdio>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct Row {
  std::size_t state_entries;
  std::size_t checkpoint_bytes;
  std::uint64_t fragments;
  Micros transfer_us;
  bool consistent;
};

Row run(std::uint32_t entries) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 17;
  Testbed tb(cfg);
  tb.start();

  // Build up `entries` history entries of replica state.
  bool filled = false;
  tb.client().invoke(make_burst_request(entries), [&](const Bytes&) { filled = true; });
  while (!filled) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(1'000'000);

  tb.crash_server(2);
  tb.sim().run_for(2'000'000);

  const auto frags_before = tb.gcs_of(tb.server_node(0)).stats().fragments_sent +
                            tb.gcs_of(tb.server_node(1)).stats().fragments_sent;

  bool recovered = false;
  const Micros t0 = tb.sim().now();
  tb.restart_server(2, [&] { recovered = true; });
  const Micros deadline = tb.sim().now() + 600'000'000;
  while (!recovered && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 1'000);
  const Micros transfer = tb.sim().now() - t0;
  tb.sim().run_for(2'000'000);

  const auto frags_after = tb.gcs_of(tb.server_node(0)).stats().fragments_sent +
                           tb.gcs_of(tb.server_node(1)).stats().fragments_sent;

  Row row;
  row.state_entries = entries;
  // The checkpoint is dominated by the history: 8 bytes per entry.
  row.checkpoint_bytes = static_cast<std::size_t>(entries) * 8 + 64;
  row.fragments = frags_after - frags_before;
  row.transfer_us = transfer;
  row.consistent = tb.server_app(2).time_history() == tb.server_app(0).time_history();
  obs::export_from_env(tb.recorder(), "bench_state_transfer.entries" + std::to_string(entries));
  return row;
}

}  // namespace

int main() {
  std::printf("# State transfer cost vs replica state size (Section 3.2 recovery)\n");
  std::printf("# 3-way active group; replica 3 crashes and rejoins via GET_STATE\n\n");
  std::printf("%-14s %16s %12s %14s %12s\n", "state_entries", "ckpt_bytes(~)", "fragments",
              "transfer_us", "consistent");
  for (std::uint32_t n : {100u, 500u, 2'000u, 8'000u, 20'000u}) {
    const Row r = run(n);
    std::printf("%-14zu %16zu %12llu %14lld %12s\n", r.state_entries, r.checkpoint_bytes,
                (unsigned long long)r.fragments, (long long)r.transfer_us,
                r.consistent ? "yes" : "NO");
  }
  std::printf("\nexpected shape: fixed protocol cost (~ms: ring re-join + quiescence barrier\n"
              "+ special CCS round) plus a linear wire term (~0.08 us/byte at 100 Mb/s,\n"
              "visible once the checkpoint spans many fragments).\n");
  return 0;
}
