// Ablation: drift-compensation strategies of paper Section 3.3.
//
// The group clock drifts from real time because each round's winner
// proposal excludes the previous round's communication/processing delay
// (and because the hardware crystals drift).  The paper sketches two
// remedies:
//   1. add a mean delay to the offset each time it is recalculated
//      ("can significantly reduce the drift but is necessarily only
//      approximate");
//   2. blend each proposal a small proportion toward an NTP/GPS reference
//      ("a small but repeated bias towards real time").
//
// This benchmark measures (group clock − real time) at round milestones
// for all three configurations.
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kRounds = 5'000;
const std::vector<int> kMilestones = {100, 500, 1000, 2000, 3000, 4000, 5000};

std::vector<Micros> run(ccs::DriftCompensation strategy, Micros mean_delay, double gain) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 77;
  cfg.drift = strategy;
  cfg.mean_delay_us = mean_delay;
  cfg.reference_gain = gain;
  cfg.max_drift_ppm = 30.0;  // realistic crystals, unlike the isolation tests
  Testbed tb(cfg);

  clock::ReferenceTimeSource ref(tb.sim(), Rng(5), 200);
  if (strategy == ccs::DriftCompensation::kReferenceBias) {
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      tb.server(s).time_service().set_reference(&ref);
    }
  }

  std::vector<Micros> drift_at;
  int round = 0;
  std::size_t next = 0;
  tb.server(0).time_service().set_round_observer([&](const ccs::RoundResult& rr) {
    ++round;
    if (next < kMilestones.size() && round == kMilestones[next]) {
      drift_at.push_back(rr.group_clock - (1056326400LL * 1000000LL + tb.sim().now()));
      ++next;
    }
  });
  tb.start();

  bool done = false;
  tb.client().invoke(make_burst_request(kRounds), [&](const Bytes&) { done = true; });
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_ablation_drift.run" + std::to_string(obs_run++));
  return drift_at;
}

}  // namespace

int main() {
  std::printf("# Ablation: group-clock drift vs compensation strategy (Section 3.3)\n");
  std::printf("# drift = group clock - real time, us; 3 replicas, crystals at +/-30ppm\n\n");

  const auto none = run(ccs::DriftCompensation::kNone, 0, 0.0);
  const auto mean = run(ccs::DriftCompensation::kMeanDelay, 45, 0.0);
  const auto adaptive = run(ccs::DriftCompensation::kAdaptiveMeanDelay, 0, 0.0);
  const auto bias = run(ccs::DriftCompensation::kReferenceBias, 0, 0.1);

  // The group clock starts at the first winner's arbitrary hardware offset;
  // what matters is how the error GROWS, so report drift relative to the
  // round-100 baseline (ref_bias, which actively seeks real time, is shown
  // raw as well).
  std::printf("%-8s %16s %18s %16s %18s %14s\n", "round", "none_us", "mean_delay(45us)",
              "adaptive", "ref_bias(g=0.1)", "ref_bias_raw");
  for (std::size_t i = 0; i < kMilestones.size(); ++i) {
    std::printf("%-8d %16lld %18lld %16lld %18lld %14lld\n", kMilestones[i],
                (long long)(none[i] - none[0]), (long long)(mean[i] - mean[0]),
                (long long)(adaptive[i] - adaptive[0]), (long long)(bias[i] - bias[0]),
                (long long)bias[i]);
  }
  std::printf("\nexpected shape: 'none' grows without bound (negative); 'mean_delay' shrinks it\n"
              "substantially but needs a tuned constant; 'adaptive' matches it with no\n"
              "tuning; 'ref_bias' stays bounded near zero.\n");
  return 0;
}
