// Benchmark: replica recovery and new-clock integration (paper Section 3.2).
//
// Repeatedly crashes and recovers a replica of a 3-way active group while a
// client keeps invoking the time server, and reports per recovery:
//   * the state-transfer duration (GET_STATE multicast -> fully recovered),
//   * the number of requests queued during the transfer and drained after,
//   * the recovered replica's first group-clock reading vs the last group
//     clock before the checkpoint (monotonicity across recovery),
//   * end-to-end monotonicity of the client-visible timestamps.
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"

using namespace cts;
using namespace cts::app;

namespace {
constexpr int kCycles = 10;
}

int main() {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 11;
  Testbed tb(cfg);
  tb.start();

  std::vector<Bytes> replies;
  bool stop = false;
  auto driver = [&]() -> sim::Task {
    while (!stop) {
      co_await tb.sim().delay(500);
      replies.push_back(co_await tb.client().call(make_get_time_request()));
    }
  };
  driver();

  std::printf("# Recovery benchmark: %d crash/recover cycles on a 3-way active group\n\n",
              kCycles);
  std::printf("%-7s %-8s %12s %14s %16s\n", "cycle", "victim", "transfer_us", "drained_reqs",
              "offset_after_us");

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const std::uint32_t victim = static_cast<std::uint32_t>(cycle % 3);
    // Let traffic flow, then crash.
    tb.sim().run_for(20'000);
    tb.crash_server(victim);
    tb.sim().run_for(30'000);  // group reconfigures, traffic continues

    bool recovered = false;
    const Micros t0 = tb.sim().now();
    tb.restart_server(victim, [&] { recovered = true; });
    while (!recovered && tb.sim().now() < t0 + 300'000'000) {
      tb.sim().run_until(tb.sim().now() + 500);
    }
    const Micros transfer = tb.sim().now() - t0;
    const Micros offset = tb.server(victim).time_service().clock_offset();
    const auto drained = tb.server(victim).stats().requests_processed;
    std::printf("%-7d r%-7u %12lld %14llu %16lld\n", cycle + 1, victim + 1, (long long)transfer,
                (unsigned long long)drained, (long long)offset);
  }

  stop = true;
  tb.sim().run_for(5'000'000);

  // Verify global monotonicity of everything the client saw.
  Micros prev = 0;
  std::size_t violations = 0;
  for (const auto& r : replies) {
    BytesReader rd(r);
    const Micros t = rd.i64() * 1'000'000 + rd.i64();
    if (t <= prev) ++violations;
    prev = t;
  }
  std::printf("\nclient received %zu replies across %d recoveries; monotonicity violations: %zu "
              "(expected 0)\n",
              replies.size(), kCycles, violations);

  // Replica state equality after the dust settles.
  const bool equal01 = tb.server_app(0).time_history() == tb.server_app(1).time_history();
  const bool equal12 = tb.server_app(1).time_history() == tb.server_app(2).time_history();
  std::printf("replica state identical after final recovery: %s\n",
              (equal01 && equal12) ? "yes" : "NO (bug)");
  obs::export_from_env(tb.recorder(), "bench_recovery");
  return 0;
}
