// Calibration benchmark: Totem token-passing time distribution.
//
// The paper relies on the measurement from [20]: "the peak probability
// density of the token passing time on our testbed is approximately 51us".
// Every inter-op delay in the evaluation is sized "comparable to the
// token-passing time", so the simulated Totem must land in the same
// regime.  This benchmark runs an idle 4-node ring and reports the per-hop
// token latency distribution.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

using namespace cts;

int main() {
  constexpr std::size_t kNodes = 4;
  constexpr int kHops = 100'000;

  sim::Simulator sim(7);
  net::Network net(sim, {});
  obs::Recorder rec(sim);
  net.set_recorder(&rec);
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < kNodes; ++i) tcfg.universe.push_back(NodeId{i});

  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  Histogram per_hop(1, 200);      // 1us bins
  Histogram rotation(5, 2'000);   // full circulations
  Micros last_receipt = kNoTime;
  std::vector<Micros> receipt_at_n0;

  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    nodes.back()->set_recorder(&rec);
    nodes.back()->set_token_observer([&, i] {
      const Micros now = sim.now();
      if (last_receipt != kNoTime) per_hop.add(now - last_receipt);
      last_receipt = now;
      if (i == 0) receipt_at_n0.push_back(now);
    });
  }
  for (auto& n : nodes) n->start();
  sim.run_for(100'000);  // ring formation
  last_receipt = kNoTime;
  receipt_at_n0.clear();

  while (per_hop.count() < kHops) sim.run_for(1'000'000);
  for (std::size_t i = 1; i < receipt_at_n0.size(); ++i) {
    rotation.add(receipt_at_n0[i] - receipt_at_n0[i - 1]);
  }

  std::printf("# Totem single-ring token latency, %zu idle nodes, %d hops\n\n", kNodes, kHops);
  std::printf("per-hop token passing time: mean=%.1f us, mode=%lld us, p50=%lld us, p99=%lld us\n",
              per_hop.mean(), (long long)per_hop.mode_bin(), (long long)per_hop.percentile(0.5),
              (long long)per_hop.percentile(0.99));
  std::printf("(paper [20]: peak probability density ~51 us per hop)\n\n");
  std::printf("full rotation (%zu hops): mean=%.1f us, mode=%lld us\n\n", kNodes,
              rotation.mean(), (long long)rotation.mode_bin());
  std::printf("%s\n", per_hop.table("per-hop token latency PDF").c_str());
  obs::export_from_env(rec, "bench_token_ring");
  return 0;
}
