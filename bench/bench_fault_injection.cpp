// Benchmark: graceful degradation under packet loss and membership churn.
//
// The paper's testbed is a quiet LAN with no faults during the
// measurement; this bench answers the production question it leaves open:
// what happens to the consistent time service when the network misbehaves?
//
// Sweeps packet-loss rates (Totem recovers via token-carried
// retransmission requests) and adds a churn scenario (a replica crashing
// and recovering every 150 ms).  Reported: client-visible latency,
// completed invocations, monotonicity violations (must be 0), and CCS wire
// cost per round.
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kInvocations = 600;

struct Row {
  double loss;
  bool churn;
  double mean_us;
  Micros p99;
  std::size_t completed;
  std::size_t violations;
  double ccs_per_round;
  bool consistent;
};

sim::Task churn_loop(Testbed& tb, bool& stop) {
  std::uint32_t victim = 2;
  while (!stop) {
    co_await tb.sim().delay(150'000);
    if (stop) co_return;
    tb.crash_server(victim);
    co_await tb.sim().delay(50'000);
    if (stop) co_return;
    bool recovered = false;
    tb.restart_server(victim, [&recovered] { recovered = true; });
    // Wait for recovery before the next cycle, but bound it.
    for (int i = 0; i < 2000 && !recovered && !stop; ++i) co_await tb.sim().delay(1'000);
  }
}

Row run(double loss, bool churn) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 31;
  cfg.net.loss_probability = loss;
  Testbed tb(cfg);
  tb.start();

  Histogram lat(20, 60'000);
  std::vector<Micros> stamps;
  bool done = false;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < kInvocations; ++i) {
      co_await tb.sim().delay(500);
      const Micros t0 = tb.sim().now();
      const Bytes r = co_await tb.client().call(make_get_time_request());
      lat.add(tb.sim().now() - t0);
      BytesReader rd(r);
      stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
    }
    done = true;
  };
  bool stop_churn = false;
  driver();
  if (churn) churn_loop(tb, stop_churn);
  const Micros deadline = tb.sim().now() + 600'000'000;
  while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 1'000'000);
  stop_churn = true;
  tb.sim().run_for(5'000'000);

  std::size_t violations = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) violations += (stamps[i] <= stamps[i - 1]);

  std::uint64_t wire = 0, rounds = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!tb.clock_of(tb.server_node(s)).alive()) continue;
    wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
    rounds = std::max(rounds, tb.server(s).time_service().stats().rounds_completed);
  }
  bool consistent = true;
  const TimeServerApp* first = nullptr;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
    auto& a = tb.server_app(s);
    if (!first) first = &a;
    else consistent &= (a.time_history() == first->time_history());
  }
  Row row;
  row.loss = loss;
  row.churn = churn;
  row.mean_us = lat.mean();
  row.p99 = lat.percentile(0.99);
  row.completed = stamps.size();
  row.violations = violations;
  row.ccs_per_round = rounds ? (double)wire / (double)rounds : 0.0;
  row.consistent = consistent;
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_fault_injection.run" + std::to_string(obs_run++));
  return row;
}

}  // namespace

int main() {
  std::printf("# Fault injection: the consistent time service under loss and churn\n");
  std::printf("# %d invocations per row; 3-way active group\n\n", kInvocations);
  std::printf("%-8s %-7s %10s %8s %10s %12s %12s %12s\n", "loss", "churn", "mean_us",
              "p99_us", "completed", "violations", "ccs/round", "consistent");
  for (double loss : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    const Row r = run(loss, false);
    std::printf("%-8.2f %-7s %10.1f %8lld %10zu %12zu %12.3f %12s\n", r.loss, "no", r.mean_us,
                (long long)r.p99, r.completed, r.violations, r.ccs_per_round,
                r.consistent ? "yes" : "NO");
  }
  const Row c = run(0.01, true);
  std::printf("%-8.2f %-7s %10.1f %8lld %10zu %12zu %12.3f %12s\n", c.loss, "yes", c.mean_us,
              (long long)c.p99, c.completed, c.violations, c.ccs_per_round,
              c.consistent ? "yes" : "NO");
  std::printf(
      "\nexpected shape: up to ~5%% loss the retransmission machinery absorbs everything —\n"
      "all invocations complete, zero monotonicity violations, ~1 CCS message/round, and\n"
      "replicas stay identical, at a smoothly growing latency.  10%% loss exceeds the\n"
      "reliable-channel envelope the paper assumes (Section 2): membership churn with\n"
      "bounded recovery retries can break virtual synchrony, and the harness REPORTS the\n"
      "resulting divergence instead of hiding it.\n");
  return 0;
}
