// Benchmark: application-level cost of the consistent time service.
//
// Two replicated applications on the same stack:
//   * KV store, clock-free ops (GET/PUT without leases) — requests need no
//     CCS round, only the ordered request + reply;
//   * KV store, lease ops (ACQUIRE) — each request runs one CCS round;
//   * time server (gettimeofday) — the paper's workload, one round each.
//
// Reported per replication style: mean end-to-end latency and the CCS
// rounds actually consumed, showing precisely what the group clock costs
// an application that uses it — and that clock-free operations pay
// nothing.
#include <cstdio>
#include <string>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kOps = 1'000;

struct Row {
  double mean_us;
  Micros p99;
  std::uint64_t ccs_rounds;
};

enum class Workload { kKvPlain, kKvLease, kTimeServer };

Row run(Workload wl, replication::ReplicationStyle style) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 99;
  cfg.style = style;
  if (style == replication::ReplicationStyle::kPassive) cfg.checkpoint_every = 50;
  if (wl != Workload::kTimeServer) cfg.factory = kv_store_factory();
  Testbed tb(cfg);
  tb.start();

  Histogram lat(10, 20'000);
  bool done = false;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < kOps; ++i) {
      co_await tb.sim().delay(200);
      const Micros t0 = tb.sim().now();
      Bytes req;
      switch (wl) {
        case Workload::kKvPlain:
          req = (i % 2) ? kv_get("key" + std::to_string(i % 16))
                        : kv_put("key" + std::to_string(i % 16), "value");
          break;
        case Workload::kKvLease:
          req = kv_acquire("lock" + std::to_string(i % 16), 1 + (i % 3), 5'000);
          break;
        case Workload::kTimeServer:
          req = make_get_time_request();
          break;
      }
      (void)co_await tb.client().call(std::move(req));
      lat.add(tb.sim().now() - t0);
    }
    done = true;
  };
  driver();
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  std::uint64_t rounds = 0;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    rounds = std::max(rounds, tb.server(s).time_service().stats().rounds_completed);
  }
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_app_throughput.run" + std::to_string(obs_run++));
  return Row{lat.mean(), lat.percentile(0.99), rounds};
}

const char* style_name(replication::ReplicationStyle s) {
  switch (s) {
    case replication::ReplicationStyle::kActive:
      return "active";
    case replication::ReplicationStyle::kSemiActive:
      return "semiactive";
    case replication::ReplicationStyle::kPassive:
      return "passive";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("# Application throughput: what the group clock costs, per workload\n");
  std::printf("# %d requests per cell, 3 replicas\n\n", kOps);
  std::printf("%-12s %-22s %10s %8s %12s\n", "style", "workload", "mean_us", "p99_us",
              "ccs_rounds");
  for (auto style : {replication::ReplicationStyle::kActive,
                     replication::ReplicationStyle::kSemiActive,
                     replication::ReplicationStyle::kPassive}) {
    const Row plain = run(Workload::kKvPlain, style);
    const Row lease = run(Workload::kKvLease, style);
    const Row time = run(Workload::kTimeServer, style);
    std::printf("%-12s %-22s %10.1f %8lld %12llu\n", style_name(style), "kv get/put (no clock)",
                plain.mean_us, (long long)plain.p99, (unsigned long long)plain.ccs_rounds);
    std::printf("%-12s %-22s %10.1f %8lld %12llu\n", style_name(style), "kv acquire (1 round)",
                lease.mean_us, (long long)lease.p99, (unsigned long long)lease.ccs_rounds);
    std::printf("%-12s %-22s %10.1f %8lld %12llu\n", style_name(style), "gettimeofday (1 round)",
                time.mean_us, (long long)time.p99, (unsigned long long)time.ccs_rounds);
  }
  std::printf(
      "\nexpected shape: clock-free operations consume zero CCS rounds and run at raw\n"
      "ordered-multicast latency in every style.  Clock-using operations add up to one\n"
      "token rotation — but under ACTIVE replication the proposal competition hides\n"
      "almost all of it (some replica's token visit is always imminent), while a single\n"
      "proposer (semi-active primary / passive primary) pays the full wait.  The time-\n"
      "server rows also include its simulated per-request ORB processing delay.  The\n"
      "extra ccs_rounds beyond 1/request are the lease-expiry timer polls.\n");
  return 0;
}
