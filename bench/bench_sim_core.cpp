// Microbenchmarks for the simulator engine hot path (event scheduling,
// cancellation, reschedule, broadcast fan-out) plus an end-to-end
// events/sec figure from a live 4-node Totem ring.
//
// Unlike the figure-oriented benches, this suite writes a machine-readable
// trajectory: every run appends {"label", "results": [...]} to a JSON file
// (default BENCH_sim_core.json, see --out/--label below), so the recorded
// history of engine rewrites stays in the repository next to the code.
// doc/PERFORMANCE.md describes the methodology and the committed numbers.
//
// Build-and-run via the `benchjson` target:
//   cmake --build build --target benchjson
//
// The measurement loops are kept byte-for-byte comparable with the
// pre-rewrite baseline (std::priority_queue + tombstones + Bytes copies):
// identical depths, identical capture sizes, identical fixed iteration
// counts.  BM_TimerReschedule measures "move a pending timer" — the
// cancel+insert pair before the rewrite, Simulator::reschedule() after —
// because that is the operation Totem's token timers perform per token.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/archipelago.hpp"
#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "app/topology.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "replication/checkpoint_chain.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "totem/totem.hpp"

namespace {

using namespace cts;

// Steady-state scheduling at depth: a standing heap of `range(0)` pending
// events; every iteration schedules one and fires one.
void BM_EventScheduleFire(benchmark::State& state) {
  sim::Simulator sim;
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < depth; ++i) sim.after(static_cast<Micros>(i + 1), [] {});
  std::uint64_t t = depth;
  for (auto _ : state) {
    sim.after(static_cast<Micros>(++t), [] {});
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventScheduleFire)->Arg(64)->Arg(4096);

// Same steady-state loop with a 40-byte capture — the size class of the
// real hot-path closures (network deliver: this + src + dst + payload
// handle; token forward: this + epoch + token).  std::function heap
// allocates anything past its ~16-byte SBO; InlineFn keeps 48 bytes
// inline.  This is the allocation path the rewrite removes.
void BM_EventScheduleFireCapture40(benchmark::State& state) {
  sim::Simulator sim;
  struct Payload {
    std::uint64_t a, b, c, d;
    std::uint32_t e, f;
  };
  Payload p{1, 2, 3, 4, 5, 6};
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    sim.after(static_cast<Micros>(i + 1), [p, &sink] { sink += p.a; });
  }
  std::uint64_t t = depth;
  for (auto _ : state) {
    sim.after(static_cast<Micros>(++t), [p, &sink] { sink += p.a; });
    benchmark::DoNotOptimize(sim.step());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventScheduleFireCapture40)->Arg(64)->Arg(4096);

// Burst scheduling: 64 events scheduled then drained, one long-lived sim.
void BM_EventScheduleBurst64(benchmark::State& state) {
  sim::Simulator sim;
  for (auto _ : state) {
    for (int i = 1; i <= 64; ++i) sim.after(static_cast<Micros>(i), [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventScheduleBurst64);

// Cancellation churn: schedule 64, cancel all, drain.  Before the rewrite
// each cancel left a tombstone the drain had to pop; now cancel removes
// the entry in place and the drain is a no-op.
void BM_EventCancel64(benchmark::State& state) {
  sim::Simulator sim;
  std::vector<sim::Simulator::EventId> ids;
  ids.reserve(64);
  for (auto _ : state) {
    ids.clear();
    for (int i = 1; i <= 64; ++i) ids.push_back(sim.after(static_cast<Micros>(i), [] {}));
    for (auto id : ids) sim.cancel(id);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventCancel64);

// Move a pending timer, as Totem does on every token receipt.  The
// pre-rewrite implementation of this operation was cancel + insert (and
// every cancel leaked a tombstone); now it is one in-place re-key.
void BM_TimerReschedule(benchmark::State& state) {
  sim::Simulator sim;
  Micros t = 0;
  auto id = sim.after(1'000, [] {});
  for (auto _ : state) {
    if (!sim.reschedule(id, sim.now() + 1'000 + (++t % 7))) {
      id = sim.at(sim.now() + 1'000 + (t % 7), [] {});
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count: on the tombstone implementation every cancel
// leaked a queue entry, so the baseline run had to be bounded to keep
// memory flat; the same count is kept so the numbers stay comparable.
BENCHMARK(BM_TimerReschedule)->Iterations(2'000'000);

// Broadcast payload fan-out: one 1400-byte payload to 8 receivers.  The
// payload is allocated once and shared; before the rewrite it was copied
// per receiver and again into each delivery closure.
void BM_NetBroadcast1400B(benchmark::State& state) {
  sim::Simulator sim(11);
  net::Network net(sim, {});
  std::uint64_t delivered = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    net.attach(NodeId{i}, [&delivered](NodeId, const SharedBytes& b) { delivered += b.size(); });
  }
  const Bytes payload(1400, 0x5A);
  for (auto _ : state) {
    net.broadcast(NodeId{0}, payload);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1400 * 8);
}
BENCHMARK(BM_NetBroadcast1400B);

// End-to-end: events/sec executing a live 4-node Totem ring (token
// circulation, timers, deliveries — the full protocol hot path).
void BM_TokenRingEventsPerSec(benchmark::State& state) {
  sim::Simulator sim(7);
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    nodes.back()->start();
  }
  sim.run_for(100'000);  // ring formation
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += sim.run(1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TokenRingEventsPerSec);

// Ordered-multicast message throughput on a loaded 4-node ring: node 0
// keeps its send queue topped up with 64-byte messages, node 3 counts
// deliveries.  items = messages delivered end to end.  This is the figure
// the batch-frame rework targets: per-message framing pays one sealed
// packet per message per token visit; batch framing pays one per visit.
void BM_RingBatchThroughput(benchmark::State& state) {
  sim::Simulator sim(13);
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    nodes.back()->start();
  }
  sim.run_for(100'000);  // ring formation
  std::uint64_t delivered = 0;
  nodes[3]->set_deliver_handler([&delivered](NodeId, const SharedBytes&) { ++delivered; });
  const Bytes payload(64, 0xAB);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    // Keep at least one full token-visit burst queued at the sender.
    while (sent < delivered + 64) {
      nodes[0]->multicast(payload);
      ++sent;
    }
    sim.run(1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_RingBatchThroughput);

// The runtime ordering oracle's per-delivery cost on a loaded 4-node GCS
// group: node 0 keeps the send queue topped up with 64-byte ordered
// multicasts, every node's GCS delivery path runs with a Recorder wired —
// Arg(0) with the oracle disabled (counters only), Arg(1) with every
// delivery verified against the canonical sequence.  items = messages
// delivered at node 3.  The token-ring benches above carry no Recorder at
// all, so their recorded trajectory is untouched by the oracle's existence.
void BM_OracleOverhead(benchmark::State& state) {
  sim::Simulator sim(17);
  net::Network net(sim, {});
  obs::Recorder rec(sim);
  if (state.range(0) == 1) rec.enable_oracle(/*abort_on_violation=*/true);
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
  constexpr GroupId kGrp{1};
  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *nodes.back()));
    eps.back()->set_recorder(&rec);
    nodes.back()->start();
    eps.back()->join_group(kGrp, ReplicaId{i});
  }
  sim.run_for(100'000);  // ring formation + view settle
  std::uint64_t delivered = 0;
  eps[3]->subscribe(kGrp, [&delivered](const gcs::Message&) { ++delivered; });
  const Bytes payload(64, 0xCD);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    while (sent < delivered + 64) {
      gcs::Message m;
      m.hdr.type = gcs::MsgType::kUserRequest;
      m.hdr.src_grp = kGrp;
      m.hdr.dst_grp = kGrp;
      m.hdr.conn = ConnectionId{7};
      m.hdr.tag = ThreadId{0};
      m.hdr.seq = ++sent;
      m.payload = payload;
      eps[0]->send(std::move(m));
    }
    sim.run(1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_OracleOverhead)->Arg(0)->Arg(1);

// Chain-verification cost on the recovering replica's hot path: decode and
// verify a chained checkpoint (16 KiB snapshot, 64-link header chain) as
// ReplicaManager::verify_state_payload does per kState payload.
void BM_StateTransferVerify(benchmark::State& state) {
  using replication::CheckpointHeader;
  Bytes snapshot(16 * 1024);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    snapshot[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  std::vector<CheckpointHeader> chain;
  for (std::uint64_t u = 1; u <= 64; ++u) replication::extend_chain(chain, u * 100, snapshot);
  const Bytes payload = replication::encode_chained_checkpoint(snapshot, chain);
  std::uint64_t ok_count = 0;
  for (auto _ : state) {
    auto d = replication::decode_chained_checkpoint(payload);
    ok_count += replication::verify_chained_checkpoint(*d) ? 1 : 0;
  }
  benchmark::DoNotOptimize(ok_count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StateTransferVerify);

// --- Island-parallel + sweep benches (PR 8) ------------------------------------
//
// Both read the worker count from CTS_SIM_THREADS (default 1), so the
// pr8-before / pr8-after trajectory pair is the same binary run twice: once
// serial, once with the worker pool on.  The schedule is identical by
// construction (doc/PARALLEL.md); only wall-clock may move, and it only
// moves when the host actually has spare cores.

// Events/sec across a 4-ring archipelago with a perpetual cross-ring
// stamped-message relay.  items = simulator events executed (all islands).
void BM_ArchipelagoEventsPerSec(benchmark::State& state) {
  constexpr std::size_t kRings = 4;
  app::ArchipelagoConfig cfg;
  cfg.topo.rings = kRings;
  cfg.seed = 99;
  cfg.threads = sim::threads_from_env(1);
  app::Archipelago ar(cfg);
  ar.on_stamped([&ar](std::size_t ring, std::uint32_t replica, Micros, const Bytes& body) {
    if (replica != 0) return;
    ar.stamped_broadcast_at(ar.ring(ring).sim().now() + 20'000, ring, (ring + 1) % kRings,
                            body);
  });
  ar.start(400'000);
  for (std::size_t r = 0; r < kRings; ++r) {
    ar.stamped_broadcast_at(450'000 + 5'000 * r, r, (r + 1) % kRings, Bytes{0x55});
  }
  std::uint64_t ev0 = 0;
  for (std::size_t r = 0; r < kRings; ++r) ev0 += ar.ring(r).sim().events_executed();
  for (auto _ : state) {
    ar.run_for(100'000);
  }
  std::uint64_t ev1 = 0;
  for (std::size_t r = 0; r < kRings; ++r) ev1 += ar.ring(r).sim().events_executed();
  state.SetItemsProcessed(static_cast<std::int64_t>(ev1 - ev0));
  state.counters["workers"] = static_cast<double>(cfg.threads);
}
// UseRealTime: with a worker pool the calling thread mostly waits at the
// barrier, so the CPU-time default would inflate items/sec by exactly the
// work it handed off.  Wall clock is the number the sweep claims to improve.
BENCHMARK(BM_ArchipelagoEventsPerSec)->Unit(benchmark::kMillisecond)->UseRealTime();

// The scenario-sweep harness on an independent-seed matrix: 8 self-contained
// testbeds, merged deterministically.  items = scenarios completed.
void BM_ScenarioSweep(benchmark::State& state) {
  const unsigned jobs = sim::threads_from_env(1);
  constexpr std::uint64_t kScenarios = 8;
  for (auto _ : state) {
    sim::ScenarioSweep sweep;
    for (std::uint64_t seed = 1; seed <= kScenarios; ++seed) {
      sweep.add("s" + std::to_string(seed), [seed] {
        app::TestbedConfig cfg;
        cfg.seed = seed;
        app::Testbed tb(cfg);
        tb.start();
        tb.sim().run_for(200'000);
        return std::to_string(tb.sim().events_executed());
      });
    }
    const auto results = sweep.run(jobs);
    benchmark::DoNotOptimize(sim::ScenarioSweep::merged_jsonl(results));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kScenarios));
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ScenarioSweep)->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Sharded-topology bench (PR 9) ----------------------------------------------

// Client ops/sec through the gateway router on a sharded KV deployment:
// 4 rings x 3 replicas, keys drawn so roughly half the requests miss the
// local ring and take the forward/reply link round-trip.  items = client
// requests completed (local hits and cross-ring forwards together).
void BM_ShardedGatewayOpsPerSec(benchmark::State& state) {
  constexpr std::size_t kRings = 4;
  app::ArchipelagoConfig cfg;
  cfg.topo = app::TopologySpec{kRings, 3, true};
  cfg.seed = 42;
  cfg.threads = sim::threads_from_env(1);
  cfg.app = [](const app::ShardMap& map, std::size_t ring) {
    app::KvStoreApp::Options o;
    o.shard_map = &map;
    o.ring = ring;
    return app::kv_store_factory(o);
  };
  app::Archipelago ar(cfg);
  std::uint64_t replies = 0;
  std::vector<std::uint8_t> again(kRings, 1);
  auto loop = [&ar, &replies, &again](std::size_t r) -> sim::Task {
    std::uint64_t i = 0;
    while (again[r] != 0) {
      co_await ar.ring(r).sim().delay(400);
      const std::string key = "k" + std::to_string((r * 31 + i++) % 64);
      (void)co_await ar.router(r).call(app::kv_put(key, "v"));
      ++replies;
    }
  };
  ar.start(400'000);
  for (std::size_t r = 0; r < kRings; ++r) loop(r);
  const std::uint64_t before = replies;
  for (auto _ : state) {
    ar.run_for(100'000);
  }
  for (std::size_t r = 0; r < kRings; ++r) again[r] = 0;
  ar.run_for(2'000'000);  // drain the in-flight requests before teardown
  state.SetItemsProcessed(static_cast<std::int64_t>(replies - before));
  std::uint64_t forwards = 0;
  for (std::size_t r = 0; r < kRings; ++r) {
    forwards += ar.ring(r).recorder().counter("gateway.forwards").value;
  }
  state.counters["forwards"] = static_cast<double>(forwards);
  state.counters["workers"] = static_cast<double>(cfg.threads);
}
BENCHMARK(BM_ShardedGatewayOpsPerSec)->Unit(benchmark::kMillisecond)->UseRealTime();

// --- JSON trajectory writer ----------------------------------------------------

struct CapturedRun {
  std::string name;
  std::int64_t iterations = 0;
  double real_ns = 0;
  double cpu_ns = 0;
  double items_per_second = 0;
  double bytes_per_second = 0;
};

class CaptureReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context&) override { return true; }
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      CapturedRun c;
      c.name = r.benchmark_name();
      c.iterations = static_cast<std::int64_t>(r.iterations);
      c.real_ns = r.GetAdjustedRealTime();
      c.cpu_ns = r.GetAdjustedCPUTime();
      if (auto it = r.counters.find("items_per_second"); it != r.counters.end()) {
        c.items_per_second = it->second;
      }
      if (auto it = r.counters.find("bytes_per_second"); it != r.counters.end()) {
        c.bytes_per_second = it->second;
      }
      runs.push_back(std::move(c));
    }
  }
  std::vector<CapturedRun> runs;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string render_entry(const std::string& label, const std::vector<CapturedRun>& runs) {
  std::ostringstream out;
  out << "    {\n      \"label\": \"" << json_escape(label) << "\",\n      \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CapturedRun& r = runs[i];
    out << "        {\"name\": \"" << json_escape(r.name) << "\", \"iterations\": "
        << r.iterations << ", \"real_ns_per_op\": " << r.real_ns
        << ", \"cpu_ns_per_op\": " << r.cpu_ns;
    if (r.items_per_second > 0) out << ", \"items_per_second\": " << r.items_per_second;
    if (r.bytes_per_second > 0) out << ", \"bytes_per_second\": " << r.bytes_per_second;
    out << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "      ]\n    }";
  return out.str();
}

// Append one run entry to the trajectory file, creating it if needed.  The
// file is a fixed shape this writer controls end to end, so "parsing" is a
// search for the closing "  ]\n}" of the runs array.
bool write_trajectory(const std::string& path, const std::string& entry) {
  static const std::string kTail = "\n  ]\n}\n";
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto tail_at = existing.rfind(kTail);
  if (!existing.empty() && tail_at != std::string::npos &&
      tail_at == existing.size() - kTail.size()) {
    out << existing.substr(0, tail_at) << ",\n" << entry << kTail;
  } else {
    out << "{\n  \"benchmark\": \"sim_core\",\n  \"schema\": 1,\n  \"runs\": [\n"
        << entry << kTail;
  }
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "local";
  std::string out_path;  // empty: print to stdout only, write nothing
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());

  CaptureReporter capture;
  benchmark::ConsoleReporter console;
  // Console output for the human, captured runs for the JSON trajectory.
  struct Tee : benchmark::BenchmarkReporter {
    CaptureReporter* a;
    benchmark::ConsoleReporter* b;
    bool ReportContext(const Context& ctx) override {
      a->ReportContext(ctx);
      return b->ReportContext(ctx);
    }
    void ReportRuns(const std::vector<Run>& report) override {
      a->ReportRuns(report);
      b->ReportRuns(report);
    }
    void Finalize() override { b->Finalize(); }
  } tee;
  tee.a = &capture;
  tee.b = &console;
  benchmark::RunSpecifiedBenchmarks(&tee);
  benchmark::Shutdown();

  if (!out_path.empty()) {
    if (!write_trajectory(out_path, render_entry(label, capture.runs))) {
      std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu results (label \"%s\") to %s\n", capture.runs.size(),
                 label.c_str(), out_path.c_str());
  }
  return 0;
}
