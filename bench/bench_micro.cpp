// Micro-benchmarks (google-benchmark) for the hot paths of the stack:
// message codecs, CCS payload encode/decode, simulator event scheduling,
// RNG draws, and histogram accumulation.  These bound the per-round CPU
// cost that the protocol adds on top of the network latency.
#include <benchmark/benchmark.h>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "cts/ccs_message.hpp"
#include "gcs/gcs.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cts;

void BM_BytesWriterSmallMessage(benchmark::State& state) {
  for (auto _ : state) {
    BytesWriter w;
    w.u8(3);
    w.u32(42);
    w.u64(123456789);
    w.i64(-5);
    w.str("payload");
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_BytesWriterSmallMessage);

void BM_BytesReaderSmallMessage(benchmark::State& state) {
  BytesWriter w;
  w.u8(3);
  w.u32(42);
  w.u64(123456789);
  w.i64(-5);
  w.str("payload");
  const Bytes data = std::move(w).take();
  for (auto _ : state) {
    BytesReader r(data);
    benchmark::DoNotOptimize(r.u8());
    benchmark::DoNotOptimize(r.u32());
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.i64());
    benchmark::DoNotOptimize(r.str());
  }
}
BENCHMARK(BM_BytesReaderSmallMessage);

void BM_CcsPayloadRoundTrip(benchmark::State& state) {
  ccs::CcsPayload p;
  p.thread = ThreadId{1};
  p.call_type = ccs::ClockCallType::kGettimeofday;
  p.proposed_clock = 1056326400LL * 1000000LL;
  for (auto _ : state) {
    const Bytes b = p.encode();
    benchmark::DoNotOptimize(ccs::CcsPayload::decode(b));
  }
}
BENCHMARK(BM_CcsPayloadRoundTrip);

void BM_GcsHeaderRoundTrip(benchmark::State& state) {
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kCcs;
  m.hdr.src_grp = GroupId{1};
  m.hdr.dst_grp = GroupId{1};
  m.hdr.conn = ConnectionId{1000};
  m.hdr.tag = ThreadId{0};
  m.hdr.seq = 12345;
  m.hdr.sender_replica = ReplicaId{2};
  m.hdr.sender_node = NodeId{3};
  m.payload = Bytes(14, 0xAB);
  for (auto _ : state) {
    const Bytes b = gcs::GcsEndpoint::encode(m);
    benchmark::DoNotOptimize(gcs::GcsEndpoint::decode(b));
  }
}
BENCHMARK(BM_GcsHeaderRoundTrip);

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 64; ++i) {
      sim.after(i, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatorScheduleAndRun);

void BM_SimulatorCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::Simulator::EventId> ids;
    ids.reserve(64);
    for (int i = 0; i < 64; ++i) ids.push_back(sim.after(i, [] {}));
    for (auto id : ids) sim.cancel(id);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatorCancel);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.gaussian(0.0, 1.0));
}
BENCHMARK(BM_RngGaussian);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(10, 10'000);
  Rng rng(2);
  for (auto _ : state) h.add(rng.range(0, 9'999));
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_FullStackSimulationSpeed(benchmark::State& state) {
  // Wall-clock cost of simulating the whole testbed: one client invocation
  // round-trip through Totem + GCS + replication + CTS per iteration.
  // Reported as simulated-requests per wall-second — the simulator's
  // throughput budget for large experiments.
  app::TestbedConfig cfg;
  cfg.seed = 42;
  app::Testbed tb(cfg);
  tb.start();
  std::uint64_t completed = 0;
  for (auto _ : state) {
    bool done = false;
    tb.client().invoke(app::make_get_time_request(), [&](const Bytes&) { done = true; });
    while (!done) tb.sim().run(256);
    ++completed;
  }
  obs::export_from_env(tb.recorder(), "bench_micro.fullstack");
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_FullStackSimulationSpeed)->Unit(benchmark::kMicrosecond);

void BM_TotemRingIdleRotation(benchmark::State& state) {
  // Wall-clock cost of one simulated token rotation on an idle 4-node ring.
  sim::Simulator sim(3);
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
  std::vector<std::unique_ptr<totem::TotemNode>> nodes;
  std::uint64_t tokens = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    if (i == 0) nodes.back()->set_token_observer([&tokens] { ++tokens; });
    nodes.back()->start();
  }
  sim.run_for(100'000);
  for (auto _ : state) {
    const auto target = tokens + 1;
    while (tokens < target) sim.run(64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tokens));
}
BENCHMARK(BM_TotemRingIdleRotation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
