// Reproduces paper Figure 5 and the Section 4.3 CCS-message counts.
//
// Setup (paper Section 4.2): a CORBA client on node n0 (the ring leader)
// makes 10,000 remote method invocations on a three-way actively replicated
// server (replicas on n1, n2, n3).  The remote method returns the current
// time; the server simply calls gettimeofday().  The probability density
// function of the end-to-end latency is measured at the client, with and
// without the consistent time service running.
//
// Expected shape (paper Section 4.3):
//   * the consistent time service adds ~300us to the end-to-end latency,
//     caused primarily by one additional token circulation;
//   * the total number of CCS messages on the wire equals the number of
//     rounds; the per-node split is extremely skewed (paper: 1 / 9,977 /
//     22) because duplicate suppression cancels the slower replicas'
//     copies.
#include <cstdio>
#include <string>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "common/histogram.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kInvocations = 10'000;

struct RunResult {
  Histogram latency{10, 3'000};
  std::vector<std::uint64_t> ccs_on_wire;  // per server node
};

sim::Task client_loop(Testbed& tb, int n, Histogram& hist, bool& done) {
  for (int i = 0; i < n; ++i) {
    const Micros t0 = tb.sim().now();
    (void)co_await tb.client().call(make_get_time_request());
    hist.add(tb.sim().now() - t0);
  }
  done = true;
}

RunResult run(bool with_cts) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 2003;
  if (!with_cts) cfg.factory = local_time_server_factory();
  Testbed tb(cfg);
  tb.start();

  RunResult res;
  bool done = false;
  client_loop(tb, kInvocations, res.latency, done);
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    res.ccs_on_wire.push_back(tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs));
  }
  obs::export_from_env(tb.recorder(), with_cts ? "bench_fig5_overhead.with_cts" : "bench_fig5_overhead.without_cts");
  return res;
}

}  // namespace

int main() {
  std::printf("# Figure 5: end-to-end latency PDF at the client, %d invocations\n", kInvocations);
  std::printf("# 3-way actively replicated time server; client on the ring leader n0\n\n");

  RunResult with = run(/*with_cts=*/true);
  RunResult without = run(/*with_cts=*/false);

  std::printf("## Summary\n");
  std::printf("%-28s %10s %10s %10s %10s\n", "configuration", "mean_us", "p50_us", "p99_us",
              "mode_us");
  std::printf("%-28s %10.1f %10lld %10lld %10lld\n", "without consistent time svc",
              without.latency.mean(), (long long)without.latency.percentile(0.5),
              (long long)without.latency.percentile(0.99), (long long)without.latency.mode_bin());
  std::printf("%-28s %10.1f %10lld %10lld %10lld\n", "with consistent time svc",
              with.latency.mean(), (long long)with.latency.percentile(0.5),
              (long long)with.latency.percentile(0.99), (long long)with.latency.mode_bin());
  std::printf("CTS overhead (mean): %.1f us   (paper: ~300 us, one extra token circulation)\n\n",
              with.latency.mean() - without.latency.mean());

  std::printf("## CCS messages on the wire per server node (paper: 1 / 9,977 / 22)\n");
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < with.ccs_on_wire.size(); ++s) {
    std::printf("  n%zu: %llu\n", s + 1, (unsigned long long)with.ccs_on_wire[s]);
    total += with.ccs_on_wire[s];
  }
  std::printf("  total: %llu (rounds: %d; without suppression it would be %d)\n\n",
              (unsigned long long)total, kInvocations, 3 * kInvocations);

  std::printf("## PDF rows (bin_us  density)\n");
  std::printf("%s\n", with.latency.table("with consistent time service").c_str());
  std::printf("%s\n", without.latency.table("without consistent time service").c_str());
  return 0;
}
