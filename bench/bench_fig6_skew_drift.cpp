// Reproduces paper Figure 6: skew and drift of the consistent time service.
//
// Setup (paper Section 4.2, experiment 2): one remote invocation triggers a
// sequence of 10,000 clock-related operations at each server replica, with
// a random busy-wait between consecutive operations (60-400us, comparable
// to the token-passing time) so the synchronizer rotates randomly.
//
// Output:
//   (a) the interval between two consecutive clock-related operations at
//       each replica, measured with the physical hardware clock and with
//       the group clock, for the first 20 rounds;
//   (b) the clock offset of the replica that wins the first round, over
//       the first 20 rounds (expected: occasionally increasing, overall
//       decreasing trend);
//   (c) normalized physical hardware clocks vs the group clock (expected:
//       the group clock runs slower than real time).
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kRounds = 10'000;
constexpr int kShow = 20;

struct PerRound {
  Micros group_clock = 0;
  Micros physical_clock = 0;
  Micros offset_after = 0;
  std::uint32_t winner = 0;
};

}  // namespace

int main() {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = 42;
  // The paper synchronizes replica 1's clock with real time; the others
  // are unsynchronized.  Random offsets model that; drift stays realistic.
  Testbed tb(cfg);

  std::vector<std::vector<PerRound>> rounds(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    tb.server(s).time_service().set_round_observer([&rounds, s](const ccs::RoundResult& rr) {
      rounds[s].push_back(
          PerRound{rr.group_clock, rr.physical_clock, rr.offset_after, rr.winner_replica.value});
    });
  }
  tb.start();

  bool done = false;
  tb.client().invoke(make_burst_request(kRounds), [&](const Bytes&) { done = true; });
  while (!done) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  std::printf("# Figure 6: first %d rounds of the consistent clock synchronization algorithm\n",
              kShow);
  std::printf("# (%d total rounds; inter-op busy-wait 60-400us as in the paper)\n\n", kRounds);

  // --- (a) clock-read intervals -------------------------------------------------
  std::printf("## (a) Interval between consecutive clock-related operations (us)\n");
  std::printf("%-6s %-8s", "round", "winner");
  for (int s = 1; s <= 3; ++s) std::printf("  r%d_phys r%d_group", s, s);
  std::printf("\n");
  for (int k = 1; k < kShow; ++k) {
    std::printf("%-6d r%-7u", k + 1, rounds[0][k].winner + 1);
    for (std::uint32_t s = 0; s < 3; ++s) {
      const Micros dp = rounds[s][k].physical_clock - rounds[s][k - 1].physical_clock;
      const Micros dg = rounds[s][k].group_clock - rounds[s][k - 1].group_clock;
      std::printf("  %7lld %8lld", (long long)dp, (long long)dg);
    }
    std::printf("\n");
  }

  // --- (b) offset of the first-round winner -------------------------------------
  const std::uint32_t w0 = rounds[0][0].winner;
  std::printf("\n## (b) Clock offset at the first-round winner (replica %u), per round\n",
              w0 + 1);
  std::printf("%-6s %12s %10s\n", "round", "offset_us", "delta");
  Micros prev_off = 0;
  int increases = 0;
  for (int k = 0; k < kShow; ++k) {
    const Micros off = rounds[w0][k].offset_after;
    std::printf("%-6d %12lld %10lld\n", k + 1, (long long)off, (long long)(k ? off - prev_off : 0));
    if (k > 0 && off > prev_off) ++increases;
    prev_off = off;
  }
  int increases_total = 0;
  for (int k = 1; k < kRounds; ++k) {
    if (rounds[w0][k].offset_after > rounds[w0][k - 1].offset_after) ++increases_total;
  }
  std::printf("offset increased in %d of the first %d rounds; %d of all %d rounds "
              "(paper: rare increases, overall decreasing)\n",
              increases, kShow, increases_total, kRounds);
  std::printf("offset after round 1: %lld us; after round %d: %lld us\n",
              (long long)rounds[w0][0].offset_after, kRounds,
              (long long)rounds[w0][kRounds - 1].offset_after);

  // --- (c) normalized clocks vs group clock --------------------------------------
  std::printf("\n## (c) Normalized clocks per round (us since each clock's initial round)\n");
  std::printf("%-6s %10s %10s %10s %10s\n", "round", "group", "r1_phys", "r2_phys", "r3_phys");
  for (int k = 0; k < kShow; ++k) {
    std::printf("%-6d %10lld", k + 1,
                (long long)(rounds[0][k].group_clock - rounds[0][0].group_clock));
    for (std::uint32_t s = 0; s < 3; ++s) {
      std::printf(" %10lld",
                  (long long)(rounds[s][k].physical_clock - rounds[s][0].physical_clock));
    }
    std::printf("\n");
  }

  // Long-horizon drift summary (the visible gap in the paper's plot).
  const Micros grp_span = rounds[0][kRounds - 1].group_clock - rounds[0][0].group_clock;
  const Micros phys_span =
      rounds[0][kRounds - 1].physical_clock - rounds[0][0].physical_clock;
  std::printf("\n## Drift summary over %d rounds\n", kRounds);
  std::printf("physical clock span: %lld us, group clock span: %lld us\n", (long long)phys_span,
              (long long)grp_span);
  std::printf("group clock ran %lld us slower than the physical clocks "
              "(paper: 'the group clock runs slower than real time')\n",
              (long long)(phys_span - grp_span));

  // Winner distribution (paper: 'the synchronizer ... is constantly
  // changing from one replica to another').
  std::uint64_t wins[3] = {0, 0, 0};
  for (int k = 0; k < kRounds; ++k) ++wins[rounds[0][k].winner];
  std::printf("\n## Synchronizer distribution over %d rounds\n", kRounds);
  for (int s = 0; s < 3; ++s) {
    std::printf("  replica %d: %llu wins\n", s + 1, (unsigned long long)wins[s]);
  }
  obs::export_from_env(tb.recorder(), "bench_fig6_skew_drift");
  return 0;
}
