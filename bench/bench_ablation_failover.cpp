// Ablation: clock continuity across primary failover (paper Section 1).
//
// Three ways to give a replica group a clock:
//   A. primary/backup distribution of the primary's RAW hardware clock
//      (prior art [9]/[3]) — roll-back / fast-forward on failover;
//   B. the same, but with NTP-disciplined hardware clocks — the anomaly
//      shrinks to the residual synchronization error, but does not vanish;
//   C. the Consistent Time Service — offsets absorb the clock gap, the
//      group clock is monotone by construction.
//
// For each scheme we run many failovers and report the discontinuity
// (first reading after failover − last reading before), minus the real
// elapsed time between the two readings, so 0 is perfect continuity.
#include <cstdio>
#include <memory>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "baseline/baseline_clocks.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr int kFailovers = 30;

struct Stats {
  std::vector<Micros> discontinuities;  // adjusted for elapsed real time
  int rollbacks = 0;

  void add(Micros d) {
    discontinuities.push_back(d);
    if (d < 0) ++rollbacks;
  }
  [[nodiscard]] Micros worst_back() const {
    Micros w = 0;
    for (auto d : discontinuities) w = std::min(w, d);
    return w;
  }
  [[nodiscard]] Micros worst_fwd() const {
    Micros w = 0;
    for (auto d : discontinuities) w = std::max(w, d);
    return w;
  }
  [[nodiscard]] double mean_abs() const {
    double acc = 0;
    for (auto d : discontinuities) acc += std::abs((double)d);
    return discontinuities.empty() ? 0 : acc / (double)discontinuities.size();
  }
};

/// One failover trial of the primary/backup baseline (raw or NTP clocks).
Micros pb_trial(bool ntp, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  tcfg.universe = {NodeId{0}, NodeId{1}, NodeId{2}};

  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<clock::ReferenceTimeSource>> refs;
  std::vector<std::unique_ptr<baseline::NtpDisciplinedClock>> ntps;
  std::vector<std::unique_ptr<baseline::PrimaryBackupClockService>> svcs;

  Rng crng(seed * 31 + 7);
  for (std::uint32_t i = 0; i < 3; ++i) {
    totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
    clocks.push_back(
        std::make_unique<clock::PhysicalClock>(sim, clock::random_clock_config(crng)));
    baseline::PrimaryBackupClockService::ClockFn fn;
    if (ntp) {
      refs.push_back(std::make_unique<clock::ReferenceTimeSource>(sim, crng.fork(), 500));
      ntps.push_back(
          std::make_unique<baseline::NtpDisciplinedClock>(sim, *clocks.back(), *refs.back()));
      fn = [c = ntps.back().get()] { return c->read(); };
    } else {
      fn = [c = clocks.back().get()] { return c->read(); };
    }
    svcs.push_back(std::make_unique<baseline::PrimaryBackupClockService>(
        sim, *eps.back(), std::move(fn), GroupId{1}, ConnectionId{50}, ReplicaId{i}));
  }
  svcs[0]->set_primary(true);
  for (auto& t : totems) t->start();
  // Let the ring form and (for NTP) the discipline converge.
  sim.run_for(ntp ? 20'000'000 : 200'000);

  // Both replicas perform the same sequence of reads; the primary's logical
  // thread dies with its host at the crash.
  std::vector<Micros> readings;
  std::vector<Micros> read_real_time;
  bool primary_dead = false;
  auto reader = [&](std::uint32_t r, bool record) -> sim::Task {
    for (int i = 0; i < 12; ++i) {
      co_await sim.delay(1'000);
      if (r == 0 && primary_dead) co_return;
      const Micros v = co_await svcs[r]->get_time(ThreadId{0});
      if (record) {
        readings.push_back(v);
        read_real_time.push_back(sim.now());
      }
    }
  };
  reader(0, false);
  reader(1, true);
  while (readings.size() < 10 && sim.now() < 120'000'000) sim.run_until(sim.now() + 1'000);

  // Crash the primary, promote the first backup, keep reading.
  primary_dead = true;
  totems[0]->crash();
  clocks[0]->fail();
  svcs[1]->set_primary(true);
  const Micros last_before = readings.empty() ? kNoTime : readings.back();
  const Micros last_before_real = readings.empty() ? 0 : read_real_time.back();

  // Wait out the ring reconfiguration so the comparison isolates the CLOCK
  // discontinuity (the Section 1 anomaly) from failover-detection latency.
  Micros first_after = kNoTime, first_after_real = 0;
  auto reader2 = [&]() -> sim::Task {
    co_await sim.delay(15'000);
    first_after = co_await svcs[1]->get_time(ThreadId{0});
    first_after_real = sim.now();
  };
  reader2();
  sim.run_for(10'000'000);
  if (first_after == kNoTime || last_before == kNoTime) return 0;
  return (first_after - last_before) - (first_after_real - last_before_real);
}

/// One failover trial of the Consistent Time Service (semi-active).
Micros cts_trial(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.style = replication::ReplicationStyle::kSemiActive;
  cfg.seed = seed;
  cfg.max_clock_offset_us = 500'000;
  Testbed tb(cfg);
  tb.start();

  std::vector<Micros> times, reals;
  bool crashed = false;
  auto driver = [&]() -> sim::Task {
    for (int i = 0; i < 16; ++i) {
      co_await tb.sim().delay(1'000);
      Bytes r = co_await tb.client().call(make_get_time_request());
      BytesReader rd(r);
      times.push_back(rd.i64() * 1'000'000 + rd.i64());
      reals.push_back(tb.sim().now());
      if (i == 9) {
        for (std::uint32_t s = 0; s < 3; ++s) {
          if (tb.server(s).is_primary()) tb.crash_server(s);
        }
        crashed = true;
      }
    }
  };
  driver();
  while (times.size() < 16 && tb.sim().now() < 240'000'000) {
    tb.sim().run_until(tb.sim().now() + 10'000);
  }
  if (!crashed || times.size() < 12) return 0;
  static int obs_run = 0;
  obs::export_from_env(tb.recorder(), "bench_ablation_failover.cts" + std::to_string(obs_run++));
  // Discontinuity across the failover boundary (readings 10 and 11).
  return (times[10] - times[9]) - (reals[10] - reals[9]);
}

}  // namespace

int main() {
  std::printf("# Ablation: clock continuity across primary failover, %d trials each\n", kFailovers);
  std::printf("# discontinuity = (reading_after - reading_before) - elapsed_real_time, us\n");
  std::printf("# negative = roll-back (the Section 1 anomaly), 0 = perfect continuity\n\n");

  Stats raw, ntp, cts;
  for (int t = 0; t < kFailovers; ++t) {
    raw.add(pb_trial(false, 1000 + t));
    ntp.add(pb_trial(true, 2000 + t));
    cts.add(cts_trial(3000 + t));
  }

  std::printf("%-34s %10s %12s %12s %12s\n", "scheme", "rollbacks", "worst_back", "worst_fwd",
              "mean_|d|");
  std::printf("%-34s %10d %12lld %12lld %12.1f\n", "primary/backup, raw clocks [9]",
              raw.rollbacks, (long long)raw.worst_back(), (long long)raw.worst_fwd(),
              raw.mean_abs());
  std::printf("%-34s %10d %12lld %12lld %12.1f\n", "primary/backup, NTP clocks",
              ntp.rollbacks, (long long)ntp.worst_back(), (long long)ntp.worst_fwd(),
              ntp.mean_abs());
  std::printf("%-34s %10d %12lld %12lld %12.1f\n", "consistent time service (ours)",
              cts.rollbacks, (long long)cts.worst_back(), (long long)cts.worst_fwd(),
              cts.mean_abs());
  std::printf("\nexpected shape: raw clocks roll back by up to the clock offset (~hundreds of\n"
              "ms); NTP shrinks the anomaly to the residual sync error; the consistent time\n"
              "service never rolls back (discontinuity >= 0, bounded by round latency).\n");
  return 0;
}
