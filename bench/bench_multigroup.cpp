// Benchmark: multi-group causality (paper Section 5, future work).
//
// Two replicated services share one ring; the sender group's clocks run
// AHEAD of the receiver group's by a configurable gap.  The sender reads
// its group clock and notifies the receiver, which logs the event with its
// own group clock.  A causality violation = the log entry is timestamped
// at or before the event that caused it.
//
// Sweep: the inter-group clock gap, with plain messages vs CausalMessenger
// stamping.  Expected shape: plain messages violate causality as soon as
// the gap exceeds the round latency (~100 per cent beyond a few hundred
// microseconds); stamped messages never violate it, at the cost of raising
// the receiver's clock.
#include <cstdio>
#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/multigroup.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

using namespace cts;
using namespace cts::ccs;

namespace {

constexpr GroupId kSender{10};
constexpr GroupId kReceiver{11};
constexpr ConnectionId kSenderCcs{100};
constexpr ConnectionId kReceiverCcs{101};
constexpr ConnectionId kEvents{200};
constexpr ThreadId kThread{0};
constexpr int kEvents_n = 50;

struct Result {
  int violations = 0;
  Micros mean_skew = 0;  // receiver reading − event timestamp (can be < 0)
};

sim::Task log_event(ConsistentTimeService& svc, Micros event_ts, std::vector<Micros>& skews,
                    int* violations) {
  const Micros entry = co_await svc.get_time(kThread);
  skews.push_back(entry - event_ts);
  if (entry <= event_ts) ++*violations;
}

Result run(Micros gap_us, bool stamped, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {});
  obs::Recorder rec(sim);
  net.set_recorder(&rec);
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});

  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;
  std::vector<std::unique_ptr<CausalMessenger>> msgrs;

  for (std::uint32_t i = 0; i < 4; ++i) {
    const bool sender = i < 2;
    totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
    eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
    clock::ClockConfig ccfg;
    ccfg.initial_offset_us = sender ? gap_us : 0;
    clocks.push_back(std::make_unique<clock::PhysicalClock>(sim, ccfg));
    CtsConfig cfg;
    cfg.group = sender ? kSender : kReceiver;
    cfg.ccs_conn = sender ? kSenderCcs : kReceiverCcs;
    cfg.replica = ReplicaId{i % 2};
    svcs.push_back(std::make_unique<ConsistentTimeService>(sim, *eps.back(), *clocks.back(), cfg));
    eps.back()->set_recorder(&rec);
    svcs.back()->set_recorder(&rec);
    msgrs.push_back(std::make_unique<CausalMessenger>(*eps.back(), *svcs.back(), cfg.group,
                                                      kThread));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    totems[i]->start();
    eps[i]->join_group(i < 2 ? kSender : kReceiver, ReplicaId{i % 2});
  }
  sim.run_for(100'000);

  Result res;
  std::vector<Micros> skews;

  // Receiver replica 2 logs each event (replica 3 mirrors the read so the
  // receiver group stays in agreement).
  auto attach_receiver = [&](std::uint32_t i, bool record) {
    if (stamped) {
      msgrs[i]->subscribe(kEvents, [&, i, record](const gcs::Message&, Micros ts, const Bytes&) {
        static std::vector<Micros> sink;
        static int sink_v = 0;
        log_event(*svcs[i], ts, record ? skews : sink, record ? &res.violations : &sink_v);
      });
    } else {
      eps[i]->subscribe(kReceiver, [&, i, record](const gcs::Message& m) {
        if (m.hdr.conn != kEvents || m.hdr.type != gcs::MsgType::kUserRequest) return;
        static std::vector<Micros> sink;
        static int sink_v = 0;
        BytesReader r(m.payload);
        log_event(*svcs[i], r.i64(), record ? skews : sink, record ? &res.violations : &sink_v);
      });
    }
  };
  attach_receiver(2, true);
  attach_receiver(3, false);

  // Sender replicas emit kEvents_n stamped (or plain) notifications.
  auto sender_loop = [&](std::uint32_t i) -> sim::Task {
    for (int k = 0; k < kEvents_n; ++k) {
      co_await sim.delay(2'000);
      if (stamped) {
        msgrs[i]->stamp_and_send(kReceiver, kEvents, static_cast<MsgSeqNum>(k + 1), Bytes{1});
      } else {
        // Plain: still read the clock (same logical op) but carry the
        // timestamp as opaque payload only.
        const Micros ts = co_await svcs[i]->get_time(kThread);
        BytesWriter w;
        w.i64(ts);
        gcs::Message m;
        m.hdr.type = gcs::MsgType::kUserRequest;
        m.hdr.src_grp = kSender;
        m.hdr.dst_grp = kReceiver;
        m.hdr.conn = kEvents;
        m.hdr.tag = kThread;
        m.hdr.seq = static_cast<MsgSeqNum>(k + 1);
        m.hdr.sender_replica = svcs[i]->config().replica;
        m.payload = std::move(w).take();
        eps[i]->send(std::move(m));
      }
    }
  };
  sender_loop(0);
  sender_loop(1);
  sim.run_for(60'000'000);

  if (!skews.empty()) {
    double acc = 0;
    for (auto s : skews) acc += static_cast<double>(s);
    res.mean_skew = static_cast<Micros>(acc / static_cast<double>(skews.size()));
  }
  static int obs_run = 0;
  obs::export_from_env(rec, "bench_multigroup.run" + std::to_string(obs_run++));
  return res;
}

}  // namespace

int main() {
  std::printf("# Multi-group causality: violation rate vs inter-group clock gap\n");
  std::printf("# %d events per cell; violation = receiver's reading <= sender's timestamp\n\n",
              kEvents_n);
  std::printf("%-12s | %14s %14s | %14s %14s\n", "gap_us", "plain_viol", "plain_skew_us",
              "stamped_viol", "stamped_skew_us");
  for (Micros gap : {0LL, 500LL, 5'000LL, 50'000LL, 500'000LL}) {
    const Result plain = run(gap, false, 1);
    const Result stamped = run(gap, true, 1);
    std::printf("%-12lld | %7d/%-6d %14lld | %7d/%-6d %14lld\n", (long long)gap,
                plain.violations, kEvents_n, (long long)plain.mean_skew, stamped.violations,
                kEvents_n, (long long)stamped.mean_skew);
  }
  std::printf("\nexpected shape: plain messages violate causality once the gap exceeds the\n"
              "round latency; stamped messages (CausalMessenger) never do — the receiver's\n"
              "clock is advanced past each observed timestamp.\n");
  return 0;
}
