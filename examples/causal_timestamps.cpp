// Example: causal group-clock timestamps across multiple replica groups —
// the paper's Section 5 future work, implemented.
//
// Two replicated services share one Totem ring: an "orders" group whose
// clocks run 300ms ahead, and an "audit" group at real time.  Orders sends
// audit a stamped event.  Without the timestamp propagation, audit's log
// entry would be timestamped BEFORE the order that caused it; with
// CausalMessenger, audit's group clock is advanced past the order's
// timestamp on delivery.
//
// Run: ./build/examples/causal_timestamps
#include <cstdio>
#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/multigroup.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

using namespace cts;
using namespace cts::ccs;

namespace {

constexpr GroupId kOrders{10};
constexpr GroupId kAudit{11};
constexpr ConnectionId kOrdersCcs{100};
constexpr ConnectionId kAuditCcs{101};
constexpr ConnectionId kEvents{200};
constexpr ThreadId kThread{0};

struct Node {
  std::unique_ptr<totem::TotemNode> totem;
  std::unique_ptr<gcs::GcsEndpoint> ep;
  std::unique_ptr<clock::PhysicalClock> clock;
  std::unique_ptr<ConsistentTimeService> svc;
  std::unique_ptr<CausalMessenger> messenger;
};

sim::Task audit_log(ConsistentTimeService& svc, Micros event_ts, std::vector<Micros>& log,
                    bool stamped) {
  const Micros entry_ts = co_await svc.get_time(kThread);
  log.push_back(entry_ts);
  std::printf("  audit: event stamped %lld, log entry stamped %lld -> %s\n",
              (long long)event_ts, (long long)entry_ts,
              entry_ts > event_ts ? "causal"
                                  : (stamped ? "VIOLATION (bug!)" : "VIOLATION (as expected)"));
}

void run(bool stamped) {
  std::printf("\n-- %s causal timestamps --\n", stamped ? "WITH" : "WITHOUT");
  sim::Simulator sim(1);
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});

  std::vector<Node> nodes(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const bool orders = i < 2;  // nodes 0,1: orders replicas; 2,3: audit
    auto& n = nodes[i];
    n.totem = std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg);
    n.ep = std::make_unique<gcs::GcsEndpoint>(sim, *n.totem);
    clock::ClockConfig ccfg;
    ccfg.initial_offset_us = orders ? 300'000 : 0;  // orders' clocks run ahead
    n.clock = std::make_unique<clock::PhysicalClock>(sim, ccfg);
    CtsConfig cfg;
    cfg.group = orders ? kOrders : kAudit;
    cfg.ccs_conn = orders ? kOrdersCcs : kAuditCcs;
    cfg.replica = ReplicaId{i % 2};
    n.svc = std::make_unique<ConsistentTimeService>(sim, *n.ep, *n.clock, cfg);
    n.messenger = std::make_unique<CausalMessenger>(*n.ep, *n.svc, cfg.group, kThread);
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    nodes[i].totem->start();
    nodes[i].ep->join_group(i < 2 ? kOrders : kAudit, ReplicaId{i % 2});
  }
  sim.run_for(100'000);

  std::vector<Micros> audit_entries;
  // Audit replicas log each received event with their own group clock.
  for (std::uint32_t i : {2u, 3u}) {
    if (stamped) {
      nodes[i].messenger->subscribe(kEvents, [&, i](const gcs::Message&, Micros ts,
                                                    const Bytes&) {
        audit_log(*nodes[i].svc, ts, audit_entries, true);
      });
    } else {
      nodes[i].ep->subscribe(kAudit, [&, i](const gcs::Message& m) {
        if (m.hdr.conn != kEvents || m.hdr.type != gcs::MsgType::kUserRequest) return;
        BytesReader r(m.payload);
        audit_log(*nodes[i].svc, r.i64(), audit_entries, false);
      });
    }
  }

  // Orders replicas timestamp an order and notify audit.
  for (std::uint32_t i : {0u, 1u}) {
    if (stamped) {
      nodes[i].messenger->stamp_and_send(kAudit, kEvents, 1, Bytes{0x01}, [i](Micros ts) {
        if (i == 0) std::printf("  orders: order placed at group time %lld\n", (long long)ts);
      });
    } else {
      // Plain path: read the clock, then send the timestamp as ordinary
      // payload that nobody interprets for causality.
      auto& n = nodes[i];
      n.svc->start_round(kThread, ClockCallType::kGettimeofday, [&n, i](Micros ts) {
        if (i == 0) std::printf("  orders: order placed at group time %lld\n", (long long)ts);
        BytesWriter w;
        w.i64(ts);
        gcs::Message m;
        m.hdr.type = gcs::MsgType::kUserRequest;
        m.hdr.src_grp = kOrders;
        m.hdr.dst_grp = kAudit;
        m.hdr.conn = kEvents;
        m.hdr.tag = kThread;
        m.hdr.seq = 1;
        m.hdr.sender_replica = n.svc->config().replica;
        m.payload = std::move(w).take();
        n.ep->send(std::move(m));
      });
    }
  }

  sim.run_for(10'000'000);
}

}  // namespace

int main() {
  std::printf("== Multi-group causal timestamps (Section 5) ==\n");
  run(/*stamped=*/false);
  run(/*stamped=*/true);
  std::printf("\nWith stamping, the audit group's clock is advanced past every received\n"
              "timestamp before the application sees the event, so effects are never\n"
              "timestamped before their causes.\n");
  return 0;
}
