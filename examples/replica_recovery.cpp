// Example: integrating a new clock — replica crash and recovery
// (paper Section 3.2).
//
// A replica of a 3-way active group crashes, reboots with a DIFFERENT
// hardware clock (a reboot does not preserve the system time), and rejoins
// through the state-transfer protocol: GET_STATE, a special CCS round that
// initializes its clock offset from the group clock, the checkpoint, and
// the drain of requests queued during the transfer.  The recovered replica
// is indistinguishable from the survivors afterwards.
//
// Run: ./build/examples/replica_recovery
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"

using namespace cts;
using namespace cts::app;

namespace {

sim::Task drive(Testbed& tb, int n, std::vector<Micros>& stamps, bool& done) {
  for (int i = 0; i < n; ++i) {
    co_await tb.sim().delay(2'000);
    const Bytes reply = co_await tb.client().call(make_get_time_request());
    BytesReader r(reply);
    stamps.push_back(r.i64() * 1'000'000 + r.i64());
  }
  done = true;
}

}  // namespace

int main() {
  std::printf("== Replica recovery with clock integration ==\n\n");

  Testbed tb({});
  tb.start();

  std::vector<Micros> stamps;
  bool done = false;
  drive(tb, 40, stamps, done);

  // Let some traffic flow, then kill replica 3.
  while (stamps.size() < 10) tb.sim().run_until(tb.sim().now() + 10'000);
  std::printf("crashing replica 3 after %zu requests\n", stamps.size());
  tb.crash_server(2);

  while (stamps.size() < 20) tb.sim().run_until(tb.sim().now() + 10'000);
  std::printf("restarting replica 3 (fresh hardware clock, empty state)...\n");
  const Micros t0 = tb.sim().now();
  bool recovered = false;
  tb.restart_server(2, [&] { recovered = true; });
  while (!recovered) tb.sim().run_until(tb.sim().now() + 1'000);
  std::printf("recovered in %lld us of simulated time\n", (long long)(tb.sim().now() - t0));
  std::printf("  special CCS rounds observed by the recovering replica: %llu\n",
              (unsigned long long)tb.server(2).time_service().stats().special_rounds);
  std::printf("  clock offset adopted from the group clock: %lld us\n",
              (long long)tb.server(2).time_service().clock_offset());

  while (!done) tb.sim().run_until(tb.sim().now() + 100'000);
  tb.sim().run_for(2'000'000);

  bool monotone = true;
  for (std::size_t i = 1; i < stamps.size(); ++i) monotone &= stamps[i] > stamps[i - 1];
  std::printf("\n%zu timestamps, monotone across crash AND recovery: %s\n", stamps.size(),
              monotone ? "YES" : "NO");

  const bool identical = tb.server_app(2).time_history() == tb.server_app(0).time_history() &&
                         tb.server_app(2).counter() == tb.server_app(0).counter();
  std::printf("recovered replica's state identical to the survivors': %s\n",
              identical ? "YES" : "NO");
  std::printf("  (history length %zu, counter %llu — includes pre-crash state it never saw,\n"
              "   transferred in the checkpoint)\n",
              tb.server_app(2).time_history().size(),
              (unsigned long long)tb.server_app(2).counter());
  return (monotone && identical) ? 0 : 1;
}
