// Example: surviving a TOTAL failure with stable storage.
//
// The paper's recovery protocol (Section 3.2) assumes at least one live
// replica can serve the state transfer.  This example exercises the
// extension beyond that assumption: every replica persists checkpoints to
// its local disk, ALL replicas crash, and the group cold-starts from disk.
// The persisted Consistent Time Service state carries the last group-clock
// value, so the first reading after the outage is still AHEAD of the last
// reading before it — the group clock never rolls back, even across the
// death of the whole group.
//
// Run: ./build/examples/total_failure
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"

using namespace cts;
using namespace cts::app;

namespace {

sim::Task drive(Testbed& tb, int n, std::vector<Micros>& stamps, bool& done) {
  for (int i = 0; i < n; ++i) {
    co_await tb.sim().delay(1'500);
    const Bytes r = co_await tb.client().call(make_get_time_request());
    BytesReader rd(r);
    stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
  }
  done = true;
}

void pump_until(Testbed& tb, bool& flag, Micros budget) {
  const Micros deadline = tb.sim().now() + budget;
  while (!flag && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
}

}  // namespace

int main() {
  std::printf("== Total failure and cold start from stable storage ==\n\n");

  TestbedConfig cfg;
  cfg.with_stable_storage = true;
  cfg.persist_every = 5;  // fsync a checkpoint every 5 requests
  Testbed tb(cfg);
  tb.start();

  std::vector<Micros> before;
  bool phase1 = false;
  drive(tb, 20, before, phase1);
  pump_until(tb, phase1, 120'000'000);
  tb.sim().run_for(5'000'000);
  std::printf("served 20 requests; last group-clock reading: %lld\n", (long long)before.back());
  for (std::uint32_t s = 0; s < 3; ++s) {
    std::printf("  replica %u persisted %llu checkpoints (%llu disk writes)\n", s + 1,
                (unsigned long long)tb.server(s).stats().checkpoints_persisted,
                (unsigned long long)tb.store_of(s).writes());
  }

  std::printf("\n!! TOTAL FAILURE: all three replicas crash\n");
  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(5'000'000);

  std::printf("cold-starting all replicas from their local disks...\n");
  for (std::uint32_t s = 0; s < 3; ++s) tb.cold_restart_server(s);
  tb.sim().run_for(2'000'000);
  std::printf("  replica state after cold start: %llu requests' worth (persisted prefix)\n",
              (unsigned long long)tb.server_app(0).counter());

  std::vector<Micros> after;
  bool phase2 = false;
  drive(tb, 10, after, phase2);
  pump_until(tb, phase2, 120'000'000);

  std::printf("\nfirst reading after the outage: %lld\n", (long long)after.front());
  const bool monotone = after.front() > before.back();
  std::printf("group clock monotone across the TOTAL failure: %s\n",
              monotone ? "YES (persisted CTS state floors the new readings)" : "NO (bug!)");

  bool state_ok = tb.server_app(0).time_history() == tb.server_app(1).time_history() &&
                  tb.server_app(1).time_history() == tb.server_app(2).time_history();
  std::printf("replica state identical after cold start: %s\n", state_ok ? "YES" : "NO");
  return (monotone && state_ok) ? 0 : 1;
}
