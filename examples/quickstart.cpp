// Quickstart: a replicated time server with a consistent group clock.
//
// Spins up the paper's testbed — a client on the ring leader and a 3-way
// actively replicated server — then invokes the remote "what time is it?"
// method a few times.  Watch three things:
//   1. every reply timestamp strictly increases (the group clock is
//      monotone), even though the three replicas' hardware clocks disagree
//      by hundreds of milliseconds;
//   2. all three replicas record IDENTICAL timestamp histories — the
//      consistent time service made gettimeofday() deterministic;
//   3. the hardware clocks themselves are wildly apart, so without the
//      service the histories could not possibly match.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "app/testbed.hpp"

using namespace cts;
using namespace cts::app;

namespace {

sim::Task drive(Testbed& tb, int n, bool& done) {
  for (int i = 0; i < n; ++i) {
    co_await tb.sim().delay(1'000);
    const Bytes reply = co_await tb.client().call(make_get_time_request());
    BytesReader r(reply);
    const auto sec = r.i64();
    const auto usec = r.i64();
    std::printf("  reply %2d: %lld.%06lld s (group clock)\n", i + 1, (long long)sec,
                (long long)usec);
  }
  done = true;
}

}  // namespace

int main() {
  std::printf("== Consistent Time Service quickstart ==\n\n");

  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.max_clock_offset_us = 400'000;  // hardware clocks up to +/-0.4s apart
  Testbed tb(cfg);
  tb.start();

  std::printf("hardware clocks at the three server hosts right now:\n");
  for (std::uint32_t s = 0; s < 3; ++s) {
    const Micros v = tb.clock_of(tb.server_node(s)).read();
    std::printf("  replica %u: %lld.%06lld s\n", s + 1, (long long)(v / 1'000'000),
                (long long)(v % 1'000'000));
  }

  std::printf("\ninvoking the replicated time server 10 times:\n");
  bool done = false;
  drive(tb, 10, done);
  while (!done) tb.sim().run_until(tb.sim().now() + 100'000);
  tb.sim().run_for(1'000'000);

  std::printf("\nper-replica gettimeofday() histories (must be identical):\n");
  for (std::uint32_t s = 0; s < 3; ++s) {
    const auto& h = tb.server_app(s).time_history();
    std::printf("  replica %u: %zu readings, first=%lld, last=%lld\n", s + 1, h.size(),
                (long long)h.front(), (long long)h.back());
  }
  const bool consistent = tb.server_app(0).time_history() == tb.server_app(1).time_history() &&
                          tb.server_app(1).time_history() == tb.server_app(2).time_history();
  std::printf("\nreplica histories identical: %s\n", consistent ? "YES" : "NO (bug!)");
  std::printf("CCS rounds run by replica 1: %llu, rounds it won: %llu\n",
              (unsigned long long)tb.server(0).time_service().stats().rounds_completed,
              (unsigned long long)tb.server(0).time_service().stats().rounds_won);
  return consistent ? 0 : 1;
}
