// Example: replica-deterministic transaction timeouts and transaction ids.
//
// The paper's introduction names the two killers of replica determinism
// that this example exercises:
//   * "the physical hardware clock value is used as the seed ... to
//     generate unique identifiers such as ... transaction identifiers";
//   * "the physical hardware clock value is used for timeouts ... by
//     transaction processing systems in two-phase commit and transaction
//     session management".
//
// A 2-way actively replicated transaction manager mints transaction ids
// with ConsistentIdGenerator and aborts idle transactions with
// GroupTimerService.  Both replicas mint the SAME ids and abort the SAME
// transactions at the SAME group time — with hardware clocks, both would
// diverge immediately.
//
// Run: ./build/examples/transaction_timeouts
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "app/testbed.hpp"
#include "cts/group_timers.hpp"
#include "cts/id_gen.hpp"

using namespace cts;
using namespace cts::app;

namespace {

constexpr Micros kTxTimeout = 20'000;  // 20 ms of group time

enum class TxOp : std::uint8_t { kBegin = 1, kCommit = 2 };

class TxManagerApp : public replication::Replica {
 public:
  explicit TxManagerApp(replication::ReplicaContext& ctx)
      : ctx_(ctx),
        sys_(ctx.time, ctx.processing_thread),
        timers_(ctx.time, ccs::GroupTimerService::Config{ThreadId{100}, 1'000}),
        ids_(ctx.time, ThreadId{50}, 1) {}

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override {
    serve(request, std::move(done));
  }

  Bytes checkpoint() const override {
    BytesWriter w;
    w.u64(committed_);
    w.u64(aborted_);
    return std::move(w).take();
  }
  void restore(const Bytes& state) override {
    BytesReader r(state);
    committed_ = r.u64();
    aborted_ = r.u64();
  }

  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done) {
    BytesReader r(request);
    const auto op = static_cast<TxOp>(r.u8());
    BytesWriter reply;
    switch (op) {
      case TxOp::kBegin: {
        const std::uint64_t tx = co_await ids_.make_id();
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        open_[tx] = timers_.schedule_after(now.total_us(), kTxTimeout, [this, tx](Micros t) {
          open_.erase(tx);
          ++aborted_;
          log_.push_back("abort  tx=" + std::to_string(tx % 100000) +
                         " at group time +" + std::to_string(t % 1'000'000) + "us");
        });
        log_.push_back("begin  tx=" + std::to_string(tx % 100000));
        reply.u64(tx);
        break;
      }
      case TxOp::kCommit: {
        const std::uint64_t tx = r.u64();
        auto it = open_.find(tx);
        if (it == open_.end()) {
          log_.push_back("late   tx=" + std::to_string(tx % 100000) + " (already aborted)");
          reply.u8(0);
        } else {
          timers_.cancel(it->second);
          open_.erase(it);
          ++committed_;
          log_.push_back("commit tx=" + std::to_string(tx % 100000));
          reply.u8(1);
        }
        break;
      }
    }
    done(std::move(reply).take());
  }

  replication::ReplicaContext& ctx_;
  ccs::TimeSyscalls sys_;
  ccs::GroupTimerService timers_;
  ccs::ConsistentIdGenerator ids_;
  std::map<std::uint64_t, ccs::GroupTimerService::TimerId> open_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::vector<std::string> log_;
};

Bytes begin_req() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(TxOp::kBegin));
  return std::move(w).take();
}
Bytes commit_req(std::uint64_t tx) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(TxOp::kCommit));
  w.u64(tx);
  return std::move(w).take();
}

sim::Task drive(Testbed& tb, bool& done) {
  // Transaction 1: committed promptly.
  Bytes r = co_await tb.client().call(begin_req());
  const std::uint64_t tx1 = BytesReader(r).u64();
  std::printf("client: began tx %llu\n", (unsigned long long)(tx1 % 100000));
  co_await tb.sim().delay(2'000);
  r = co_await tb.client().call(commit_req(tx1));
  std::printf("client: commit tx %llu -> %s\n", (unsigned long long)(tx1 % 100000),
              BytesReader(r).u8() ? "ok" : "TOO LATE");

  // Transaction 2: the client dawdles past the 20ms timeout.
  r = co_await tb.client().call(begin_req());
  const std::uint64_t tx2 = BytesReader(r).u64();
  std::printf("client: began tx %llu, then stalls 60ms...\n",
              (unsigned long long)(tx2 % 100000));
  co_await tb.sim().delay(60'000);
  r = co_await tb.client().call(commit_req(tx2));
  std::printf("client: commit tx %llu -> %s\n", (unsigned long long)(tx2 % 100000),
              BytesReader(r).u8() ? "ok" : "TOO LATE");
  done = true;
}

}  // namespace

int main() {
  std::printf("== Replica-deterministic transaction timeouts ==\n\n");

  TestbedConfig cfg;
  cfg.servers = 2;
  cfg.max_clock_offset_us = 400'000;
  cfg.factory = [](replication::ReplicaContext& ctx) {
    return std::make_unique<TxManagerApp>(ctx);
  };
  Testbed tb(cfg);
  tb.start();

  bool done = false;
  drive(tb, done);
  while (!done) tb.sim().run_until(tb.sim().now() + 100'000);
  tb.sim().run_for(5'000'000);

  std::printf("\nper-replica transaction-manager event logs:\n");
  for (std::uint32_t s = 0; s < 2; ++s) {
    auto& app = static_cast<TxManagerApp&>(tb.server(s).app());
    std::printf("  replica %u:\n", s + 1);
    for (const auto& line : app.log()) std::printf("    %s\n", line.c_str());
  }
  auto& a0 = static_cast<TxManagerApp&>(tb.server(0).app());
  auto& a1 = static_cast<TxManagerApp&>(tb.server(1).app());
  const bool identical = a0.log() == a1.log();
  std::printf("\nreplica logs identical (same ids, same timeout decisions, same group "
              "times): %s\n",
              identical ? "YES" : "NO (bug!)");
  return identical ? 0 : 1;
}
