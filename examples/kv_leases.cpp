// Example: a replicated key-value store whose leases live on the group
// clock.
//
// Two services compete for ownership of a configuration key.  Lease grant,
// refusal, hand-off after expiry, and write fencing are all decided with
// group-clock readings, so the three replicas of the store agree on every
// decision — including the exact group time at which the lease expires —
// even though their hardware clocks disagree by hundreds of milliseconds.
//
// Run: ./build/examples/kv_leases
#include <cstdio>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"

using namespace cts;
using namespace cts::app;

namespace {

KvReply call(Testbed& tb, Bytes req) {
  KvReply out;
  bool done = false;
  tb.client().invoke(std::move(req), [&](const Bytes& r) {
    out = KvReply::parse(r);
    done = true;
  });
  while (!done) tb.sim().run_until(tb.sim().now() + 10'000);
  return out;
}

}  // namespace

int main() {
  std::printf("== Replicated KV store with group-clock leases ==\n\n");

  TestbedConfig cfg;
  cfg.factory = kv_store_factory();
  cfg.max_clock_offset_us = 400'000;
  Testbed tb(cfg);
  tb.start();

  constexpr std::uint64_t kServiceA = 0xA;
  constexpr std::uint64_t kServiceB = 0xB;

  std::printf("service A acquires 'config' for 30ms of group time...\n");
  KvReply r = call(tb, kv_acquire("config", kServiceA, 30'000));
  std::printf("  -> %s (expires at group time ...%lld)\n", to_string(r.status),
              (long long)(r.lease_expiry % 1'000'000));

  std::printf("service A writes under its lease...\n");
  r = call(tb, kv_put("config", "A-settings", kServiceA));
  std::printf("  -> %s (version %llu)\n", to_string(r.status), (unsigned long long)r.version);

  std::printf("service B tries to write -> fenced:\n");
  r = call(tb, kv_put("config", "B-settings", kServiceB));
  std::printf("  -> %s\n", to_string(r.status));

  std::printf("service B tries to acquire -> refused:\n");
  r = call(tb, kv_acquire("config", kServiceB, 30'000));
  std::printf("  -> %s\n", to_string(r.status));

  std::printf("\n...40ms of simulated time passes; the lease expires at the SAME group\n"
              "time at every replica (deterministic timers)...\n\n");
  tb.sim().run_for(40'000);

  std::printf("service B acquires again -> granted:\n");
  r = call(tb, kv_acquire("config", kServiceB, 30'000));
  std::printf("  -> %s\n", to_string(r.status));

  r = call(tb, kv_put("config", "B-settings", kServiceB));
  std::printf("service B writes -> %s (version %llu)\n", to_string(r.status),
              (unsigned long long)r.version);

  // Final consistency check across replicas.
  tb.sim().run_for(2'000'000);
  auto& a0 = static_cast<KvStoreApp&>(tb.server(0).app());
  bool identical = true;
  for (std::uint32_t s = 1; s < 3; ++s) {
    identical &= static_cast<KvStoreApp&>(tb.server(s).app()).state_digest() == a0.state_digest();
  }
  std::printf("\nexpired leases observed per replica: %llu / %llu / %llu (must match)\n",
              (unsigned long long)static_cast<KvStoreApp&>(tb.server(0).app()).leases_expired(),
              (unsigned long long)static_cast<KvStoreApp&>(tb.server(1).app()).leases_expired(),
              (unsigned long long)static_cast<KvStoreApp&>(tb.server(2).app()).leases_expired());
  std::printf("replica state digests identical: %s\n", identical ? "YES" : "NO (bug!)");
  return identical ? 0 : 1;
}
