// Example: passive replication, primary crash, and why the group clock
// matters (paper Sections 1 and 3.3).
//
// A passively replicated order-processing service assigns each order a
// timestamp from gettimeofday().  Mid-run the primary crashes and a backup
// takes over: with raw clocks this is exactly the scenario where order
// timestamps can ROLL BACK (breaking "order 7 was placed after order 6");
// with the consistent time service the group clock continues seamlessly —
// the new primary replays the logged requests, consuming the CCS values
// the old primary already distributed.
//
// Run: ./build/examples/passive_failover
#include <cstdio>
#include <vector>

#include "app/testbed.hpp"

using namespace cts;
using namespace cts::app;

namespace {

sim::Task drive(Testbed& tb, int n, std::vector<std::pair<int, Micros>>& orders, bool& done,
                std::function<void(int)> after_each) {
  for (int i = 0; i < n; ++i) {
    co_await tb.sim().delay(2'000);
    const Bytes reply = co_await tb.client().call(make_get_time_request());
    BytesReader r(reply);
    orders.emplace_back(i + 1, r.i64() * 1'000'000 + r.i64());
    after_each(i + 1);
  }
  done = true;
}

}  // namespace

int main() {
  std::printf("== Passive replication failover ==\n\n");

  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.style = replication::ReplicationStyle::kPassive;
  cfg.checkpoint_every = 4;          // primary checkpoints every 4 orders
  cfg.max_clock_offset_us = 500'000;  // clocks up to 0.5s apart
  Testbed tb(cfg);
  tb.start();

  std::vector<std::pair<int, Micros>> orders;
  bool done = false;
  bool crashed = false;
  drive(tb, 20, orders, done, [&](int order) {
    if (order == 10 && !crashed) {
      crashed = true;
      for (std::uint32_t s = 0; s < 3; ++s) {
        if (tb.server(s).is_primary()) {
          std::printf("  !! crashing primary (replica %u) after order 10\n", s + 1);
          tb.crash_server(s);
        }
      }
    }
  });
  while (!done) tb.sim().run_until(tb.sim().now() + 100'000);

  std::printf("\norder  timestamp_us        delta_us\n");
  Micros prev = 0;
  bool monotone = true;
  for (auto [id, ts] : orders) {
    std::printf("%5d  %18lld %9lld%s\n", id, (long long)ts, (long long)(prev ? ts - prev : 0),
                (prev && ts <= prev) ? "  <-- ROLL-BACK" : "");
    monotone &= (prev == 0 || ts > prev);
    prev = ts;
  }

  std::uint64_t replayed = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.clock_of(tb.server_node(s)).alive()) {
      replayed += tb.server(s).stats().requests_replayed;
    }
  }
  std::printf("\nrequests replayed by the promoted backup: %llu\n",
              (unsigned long long)replayed);
  std::printf("order timestamps monotone across the failover: %s\n",
              monotone ? "YES" : "NO (this is what raw clocks would do)");
  return monotone ? 0 : 1;
}
