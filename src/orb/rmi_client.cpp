#include "orb/rmi_client.hpp"

namespace cts::orb {

RmiClient::RmiClient(sim::Simulator& sim, gcs::GcsEndpoint& gcs, GroupId client_group,
                     GroupId server_group, ConnectionId conn)
    : sim_(sim), gcs_(gcs), client_group_(client_group), server_group_(server_group),
      conn_(conn) {
  gcs_.join_group(client_group_, ReplicaId{0});
  gcs_.subscribe(client_group_, [this](const gcs::Message& m) { on_message(m); });
}

RmiClient::~RmiClient() {
  // Timed invocations may still have their timeout timers armed; cancel
  // them through the node's scope (which outlives the client) so they do
  // not fire into freed memory.  Destroying `outstanding_` drops the
  // completions, destroying any coroutine frames parked inside.
  for (auto& [seq, out] : outstanding_) {
    if (out.timed) gcs_.scope().cancel(out.timer);
  }
}

MsgSeqNum RmiClient::invoke(Bytes request, ReplyFn on_reply, Micros timeout_us,
                            TimeoutFn on_timeout) {
  return invoke_complete(
      std::move(request),
      [on_reply = std::move(on_reply), on_timeout = std::move(on_timeout)](const Bytes* r) mutable {
        if (r != nullptr) {
          if (on_reply) on_reply(*r);
        } else if (on_timeout) {
          on_timeout();
        }
      },
      timeout_us);
}

MsgSeqNum RmiClient::invoke_complete(Bytes request, CompleteFn complete, Micros timeout_us) {
  const MsgSeqNum seq = next_seq_++;
  Outstanding out;
  out.complete = std::move(complete);

  if (timeout_us > 0) {
    // The timer captures no frame — the completion in `outstanding_` is the
    // single owner; the timer merely extracts it on expiry.  Scope-owned:
    // a node crash cancels it.
    out.timed = true;
    out.timer = gcs_.scope().after(timeout_us, [this, seq] {
      auto it = outstanding_.find(seq);
      if (it == outstanding_.end()) return;  // reply arrived in time
      auto fn = std::move(it->second.complete);
      outstanding_.erase(it);
      ++timeouts_;
      if (fn) fn(nullptr);
    });
  }
  outstanding_.emplace(seq, std::move(out));

  gcs::Message m;
  m.hdr.type = gcs::MsgType::kUserRequest;
  m.hdr.src_grp = client_group_;
  m.hdr.dst_grp = server_group_;
  m.hdr.conn = conn_;
  m.hdr.tag = ThreadId{0};
  m.hdr.seq = seq;
  m.hdr.sender_replica = ReplicaId{0};
  m.payload = std::move(request);
  gcs_.send(std::move(m));
  return seq;
}

void RmiClient::on_message(const gcs::Message& m) {
  if (m.hdr.type != gcs::MsgType::kUserReply || m.hdr.conn != conn_) return;
  auto it = outstanding_.find(m.hdr.seq);
  if (it == outstanding_.end()) return;  // late duplicate after completion
  // The reply won the race: disarm the timeout (cancellation consumes no
  // sequence numbers, so the rest of the schedule is untouched).
  if (it->second.timed) gcs_.scope().cancel(it->second.timer);
  auto fn = std::move(it->second.complete);
  outstanding_.erase(it);
  ++replies_;
  // The client API hands out plain Bytes (its callers own their reply);
  // materialize the shared view once, at this boundary.
  const Bytes reply = m.payload.to_bytes();
  fn(&reply);
}

}  // namespace cts::orb
