#include "orb/rmi_client.hpp"

namespace cts::orb {

RmiClient::RmiClient(sim::Simulator& sim, gcs::GcsEndpoint& gcs, GroupId client_group,
                     GroupId server_group, ConnectionId conn)
    : sim_(sim), gcs_(gcs), client_group_(client_group), server_group_(server_group),
      conn_(conn) {
  gcs_.join_group(client_group_, ReplicaId{0});
  gcs_.subscribe(client_group_, [this](const gcs::Message& m) { on_message(m); });
}

MsgSeqNum RmiClient::invoke(Bytes request, ReplyFn on_reply, Micros timeout_us,
                            std::function<void()> on_timeout) {
  const MsgSeqNum seq = next_seq_++;
  outstanding_[seq] = std::move(on_reply);

  if (timeout_us > 0) {
    sim_.after(timeout_us, [this, seq, on_timeout = std::move(on_timeout)] {
      auto it = outstanding_.find(seq);
      if (it == outstanding_.end()) return;  // reply arrived in time
      outstanding_.erase(it);
      ++timeouts_;
      if (on_timeout) on_timeout();
    });
  }

  gcs::Message m;
  m.hdr.type = gcs::MsgType::kUserRequest;
  m.hdr.src_grp = client_group_;
  m.hdr.dst_grp = server_group_;
  m.hdr.conn = conn_;
  m.hdr.tag = ThreadId{0};
  m.hdr.seq = seq;
  m.hdr.sender_replica = ReplicaId{0};
  m.payload = std::move(request);
  gcs_.send(std::move(m));
  return seq;
}

void RmiClient::on_message(const gcs::Message& m) {
  if (m.hdr.type != gcs::MsgType::kUserReply || m.hdr.conn != conn_) return;
  auto it = outstanding_.find(m.hdr.seq);
  if (it == outstanding_.end()) return;  // late duplicate after completion
  auto fn = std::move(it->second);
  outstanding_.erase(it);
  ++replies_;
  fn(m.payload);
}

}  // namespace cts::orb
