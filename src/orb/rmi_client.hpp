// Minimal RMI layer — the e*ORB/CORBA stand-in.
//
// A client (possibly unreplicated, like the paper's measurement client)
// invokes remote methods on a replicated server object.  The invocation is
// a kUserRequest multicast on the connection (client group → server group);
// the reply is the first kUserReply with the matching sequence number —
// duplicate replies from active replicas are suppressed by the GCS layer.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "gcs/gcs.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::orb {

/// Client-side stub for a replicated server group.
class RmiClient {
 public:
  /// Completion callbacks are move-only (UniqueFn) so the coroutine
  /// awaiters below can park their frame inside with destroy-on-drop
  /// semantics: a client torn down with invocations in flight destroys the
  /// suspended callers instead of leaking them.
  using ReplyFn = UniqueFn<void(const Bytes&)>;
  using TimeoutFn = UniqueFn<void()>;
  /// Single-owner completion for timed invocations: called with the reply,
  /// or with nullptr on timeout.  One callable owns the parked frame, so
  /// there is exactly one owner no matter which way the race resolves.
  using CompleteFn = UniqueFn<void(const Bytes*)>;

  /// `client_group` is this client's own (usually singleton) group; replies
  /// are addressed to it.  `conn` identifies the client→server connection.
  RmiClient(sim::Simulator& sim, gcs::GcsEndpoint& gcs, GroupId client_group,
            GroupId server_group, ConnectionId conn);

  RmiClient(const RmiClient&) = delete;
  RmiClient& operator=(const RmiClient&) = delete;

  ~RmiClient();

  /// Fire an invocation; `on_reply` runs when the (first) reply arrives.
  /// Returns the invocation's sequence number.
  ///
  /// With `timeout_us` > 0 this is a *timed* remote method invocation (one
  /// of the paper's motivating clock uses): if no reply arrives in time,
  /// `on_timeout` fires instead and a late reply is discarded.  The timer
  /// here is the CLIENT's — the client is unreplicated, so its local clock
  /// is safe to use; replicated SERVERS must use GroupTimerService.
  MsgSeqNum invoke(Bytes request, ReplyFn on_reply, Micros timeout_us = 0,
                   TimeoutFn on_timeout = nullptr);

  /// Single-callback form: `complete` receives &reply, or nullptr on
  /// timeout.  The awaiters use this so exactly one callable ever owns the
  /// parked coroutine frame.
  MsgSeqNum invoke_complete(Bytes request, CompleteFn complete, Micros timeout_us = 0);

  /// Awaitable form: `Bytes reply = co_await client.call(request);`
  /// The completion callback owns the parked frame (CoroResume guard), and
  /// the resume trampoline is owned by the client node's lifecycle scope.
  struct CallAwaiter {
    RmiClient& client;
    Bytes request;
    Bytes reply;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      client.invoke_complete(std::move(request),
                             [this, guard = sim::Simulator::CoroResume{h}](const Bytes* r) mutable {
                               reply = *r;  // never null without a timeout
                               client.gcs_.scope().after(0, std::move(guard));
                             });
    }
    Bytes await_resume() { return std::move(reply); }
  };
  [[nodiscard]] CallAwaiter call(Bytes request) {
    return CallAwaiter{*this, std::move(request), {}};
  }

  /// Awaitable timed invocation; resumes with nullopt on timeout.
  struct TimedCallAwaiter {
    RmiClient& client;
    Bytes request;
    Micros timeout_us;
    std::optional<Bytes> reply;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      client.invoke_complete(
          std::move(request),
          [this, guard = sim::Simulator::CoroResume{h}](const Bytes* r) mutable {
            if (r != nullptr) {
              reply = *r;
            } else {
              reply = std::nullopt;
            }
            client.gcs_.scope().after(0, std::move(guard));
          },
          timeout_us);
    }
    std::optional<Bytes> await_resume() { return std::move(reply); }
  };
  [[nodiscard]] TimedCallAwaiter call_with_timeout(Bytes request, Micros timeout_us) {
    return TimedCallAwaiter{*this, std::move(request), timeout_us, std::nullopt};
  }

  [[nodiscard]] std::uint64_t invocations() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t replies() const { return replies_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  /// One in-flight invocation: the (single-owner) completion plus its
  /// timeout timer, if timed.  The timer is scope-owned and cancelled when
  /// the reply wins the race or the client is destroyed.
  struct Outstanding {
    CompleteFn complete;
    sim::Simulator::EventId timer{};
    bool timed = false;
  };

  void on_message(const gcs::Message& m);

  sim::Simulator& sim_;
  gcs::GcsEndpoint& gcs_;
  GroupId client_group_;
  GroupId server_group_;
  ConnectionId conn_;
  MsgSeqNum next_seq_ = 1;
  std::map<MsgSeqNum, Outstanding> outstanding_;
  std::uint64_t replies_ = 0;
  std::uint64_t timeouts_ = 0;

  friend struct CallAwaiter;
  friend struct TimedCallAwaiter;
};

}  // namespace cts::orb
