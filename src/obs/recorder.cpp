#include "obs/recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace cts::obs {

std::string Recorder::summary() {
  sync_sim_stats();
  std::ostringstream out;
  out << metrics_.summary();
  // detlint:allow(hot-path-map): export-time tally over the finished trace,
  // not a per-event path; sorted-by-name output is the point.
  std::map<std::string, std::size_t> tallies;
  for (const auto& e : trace_.events()) ++tallies[to_string(e.kind)];
  for (const auto& [name, n] : tallies) out << "trace." << name << " " << n << "\n";
  if (trace_.dropped() > 0) out << "trace.dropped " << trace_.dropped() << "\n";
  return out.str();
}

bool Recorder::export_files(const std::string& metrics_path,
                            const std::string& trace_path) {
  sync_sim_stats();
  bool ok = true;
  if (!metrics_path.empty()) ok = metrics_.write_json(metrics_path) && ok;
  if (!trace_path.empty()) ok = trace_.write_jsonl(trace_path) && ok;
  return ok;
}

int export_from_env(Recorder& rec, const std::string& label) {
  rec.sync_sim_stats();
  int written = 0;
  auto emit = [&](const std::string& metrics_path, const std::string& trace_path) {
    // The variables are an explicit request to export, so a failed write
    // (typically a missing directory) warns instead of silently skipping.
    if (!metrics_path.empty()) {
      if (rec.metrics().write_json(metrics_path)) ++written;
      else std::fprintf(stderr, "warning: could not write metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      if (rec.trace().write_jsonl(trace_path)) ++written;
      else std::fprintf(stderr, "warning: could not write trace to %s\n", trace_path.c_str());
    }
  };
  if (const char* dir = std::getenv("CTS_OBS_DIR"); dir && *dir) {
    const std::string base = std::string(dir) + "/" + label;
    emit(base + ".metrics.json", base + ".trace.jsonl");
  }
  const char* mj = std::getenv("CTS_METRICS_JSON");
  const char* tj = std::getenv("CTS_TRACE_JSONL");
  emit(mj ? mj : "", tj ? tj : "");
  return written;
}

}  // namespace cts::obs
