// OrderingOracle: a runtime checker for the paper's ordering guarantees.
//
// The test suite's assertions are mostly end-state equality and
// byte-identical traces; both can stay green while an ordering invariant is
// violated for a window and repaired before the final check.  The oracle
// closes that gap: hooks threaded through GCS delivery, the CTS round
// engine, the CausalMessenger and the ReplicaManager report every ordering
// decision, and the oracle verifies the properties the paper promises *as
// they happen*:
//
//   1. Total order (Totem/GCS): every node delivers each group's messages
//      as a subsequence of one canonical sequence (the order of first
//      delivery anywhere), and each (conn, type, tag, seq) key carries the
//      same payload bytes at every node.
//   2. Membership (virtual synchrony): a delivery's sender is a member of
//      the receiving node's currently installed ring view.  Sound because
//      Totem installs a new view only after the transitional flush of
//      old-ring messages, and recovery rebroadcast accepts only messages
//      from the receiver's own old ring (totem.cpp).
//   3. Group-clock monotonicity (paper Section 3): the values returned by
//      completed CCS rounds are strictly increasing per (group, replica,
//      thread), and round numbers never repeat.
//   4. Round agreement: every replica that completes round (group, thread,
//      seq) observes the same group-clock value and the same synchronizer.
//   5. Causal floor (paper Section 5): no proposal is sent at or below the
//      sender's floor, where the oracle tracks the floor itself from the
//      timestamps the CausalMessenger observed — a CTS that forgets to
//      raise its floor is caught, not trusted.  At completion, a value the
//      fast-forward guard clamped below the winner's floor-at-send is a
//      violation; a clamp that stays above it is only counted.
//   6. Checkpoint coverage (state transfer): every adopted checkpoint
//      chain is link-consistent (parent[i] == link[i-1], non-decreasing
//      `upto`), verified by the adopter, and never rolls an earlier
//      adoption back; recovery epochs are strictly increasing.
//
// The oracle lives in the Recorder (one per Testbed) and is reached through
// the same nullable pointers the metrics wiring uses, so the stack runs
// unchanged — and the hooks compile to nothing on the hot token-ring path —
// when it is off.  Checks never feed back into the simulation: no RNG, no
// scheduled events, no mutation of protocol state.
//
// Violations increment `oracle.*` counters, append a kOracleViolation trace
// event and (by default under the Testbed) abort the process so a test run
// cannot quietly pass across one.  Injection tests construct the oracle
// directly with abort disabled and assert that each check fires.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace cts::obs {

/// One header of a checkpoint hash chain, mirrored into plain integers so
/// the oracle does not depend on the replication layer's types.
struct CheckpointLink {
  std::uint64_t upto = 0;
  std::uint64_t digest = 0;
  std::uint64_t parent = 0;
  std::uint64_t link = 0;
};

class OrderingOracle {
 public:
  enum class Check : std::uint8_t {
    kTotalOrder = 0,
    kMembership,
    kClockMonotonicity,
    kAgreement,
    kCausalFloor,
    kCheckpoint,
  };
  static constexpr std::size_t kCheckCount = 6;

  struct Violation {
    Check check{};
    Micros at = 0;
    std::uint32_t node = NodeId::kInvalid;
    std::uint32_t replica = ReplicaId::kInvalid;
    std::string detail;
  };

  OrderingOracle(sim::Simulator& sim, MetricsRegistry& metrics, TraceLog& trace,
                 bool abort_on_violation);

  // --- Delivery / membership hooks (GCS) -------------------------------------

  /// A ring view was installed at `node`.  `members` is sorted.
  void on_view_installed(NodeId node, std::uint64_t ring_id, std::span<const NodeId> members);

  /// A message passed the GCS duplicate filter at `node` and is about to be
  /// handed to subscribers.  Join/leave control traffic never reaches here.
  void on_gcs_deliver(NodeId node, GroupId dst_grp, ConnectionId conn, std::uint8_t type,
                      ThreadId tag, MsgSeqNum seq, NodeId sender,
                      std::span<const std::uint8_t> payload);

  // --- CTS hooks -------------------------------------------------------------

  /// The CausalMessenger observed a stamped inter-group message at
  /// (grp, replica); the receiver's causal floor must now exceed `ts`.
  /// `src_grp` (when valid) is the stamping group: causal-floor violations
  /// whose floor was raised by another group's stamp are additionally
  /// counted as CROSS-SHARD violations, aggregated per (src, dst) ring
  /// pair so the scalability bench can report the worst edge
  /// gradient-style (oracle.cross_shard).
  void on_stamp_observed(GroupId grp, ReplicaId replica, Micros ts, GroupId src_grp = GroupId{});

  /// Replica (grp, replica) multicast a CCS proposal.
  void on_ccs_send(GroupId grp, ReplicaId replica, ThreadId thread, MsgSeqNum round,
                   Micros proposed, bool special);

  /// A CCS round completed (or a special-round value was adopted) at
  /// (grp, replica) with the group-clock `value` and synchronizer `winner`.
  /// `round` is the wire sequence number of the winning message.
  void on_round_complete(GroupId grp, ReplicaId replica, ThreadId thread, MsgSeqNum round,
                         Micros value, ReplicaId winner, bool special);

  // --- Replication hooks -----------------------------------------------------

  /// Replica (grp, replica) adopted (or extended to) the given checkpoint
  /// chain; `verified` is the adopter's own hash-chain verification result.
  void on_checkpoint_chain(GroupId grp, ReplicaId replica, std::span<const CheckpointLink> chain,
                           bool verified);

  /// Replica (grp, replica) issued GET_STATE for recovery epoch `epoch`.
  void on_recovery_epoch(GroupId grp, ReplicaId replica, MsgSeqNum epoch);

  // --- Lifecycle hooks -------------------------------------------------------

  /// Node `node` restarted: its GCS delivery cursor resynchronizes at its
  /// next delivery (old-ring recovery may legitimately redeliver).
  void on_node_reset(NodeId node);

  /// Replica (grp, replica) was rebuilt (warm restart): round numbers may
  /// rewind to the adopted checkpoint, but clock values must stay monotone.
  void on_replica_reset(GroupId grp, ReplicaId replica);

  /// Group `grp` suffered a total failure and is cold-starting from disk:
  /// the suffix of rounds after the newest persisted checkpoint is lost and
  /// will be re-executed with fresh values, so round agreement history is
  /// cleared.  Clock values must STILL be monotone (the restored state
  /// forces the group clock above every reading handed out before).
  void on_group_reset(GroupId grp);

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_total_; }
  [[nodiscard]] std::uint64_t violations(Check c) const {
    return violations_by_check_[static_cast<std::size_t>(c)];
  }
  /// The first violations (capped), for test diagnostics.
  [[nodiscard]] const std::vector<Violation>& violation_log() const { return log_; }

  /// Causal-floor violations whose floor was raised by a DIFFERENT group's
  /// stamp — the cross-shard causality metric ROADMAP item 1 gates on
  /// (must be zero).  The per-pair view gives the worst (src, dst) edge.
  [[nodiscard]] std::uint64_t cross_shard_violations() const { return cross_shard_total_; }
  struct CrossShardEdge {
    std::uint32_t src_group = GroupId::kInvalid;
    std::uint32_t dst_group = GroupId::kInvalid;
    std::uint64_t violations = 0;
  };
  [[nodiscard]] CrossShardEdge worst_cross_shard_edge() const;

  static const char* check_name(Check c);

 private:
  // All indexes are flat containers (common/flat_map.hpp) with tuple keys
  // packed into machine words whose field-wise comparison reproduces the
  // old std::map tuple order.  The per-event checks additionally keep
  // one-entry lookup caches: delivery traffic hits the same (group, stream,
  // node) keys millions of times in a row, so the amortized cost of a check
  // is a handful of compares instead of a red-black tree walk per index.
  //
  // Cache discipline: a cached pointer targets a FlatMap's heap buffer, so
  // it survives relocation of the OWNING map's elements (moving a FlatMap
  // object moves the vector object, not its buffer) but dies when the
  // TARGET map itself inserts or erases.  Every structural mutation happens
  // inside the accessor that owns the cache (which refreshes it) or in the
  // reset hooks (which null it).

  // (conn, type, tag) with conn/type packed into disjoint bit ranges of one
  // word — numeric order on `hi` is lexicographic (conn, type) order.
  struct StreamKey {
    std::uint64_t hi;  // (conn << 8) | type
    std::uint64_t lo;  // tag
    friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
  };
  // (round, replica): rounds dominate the ordering, so inserts append.
  struct RoundReplicaKey {
    MsgSeqNum round;
    std::uint32_t replica;
    friend auto operator<=>(const RoundReplicaKey&, const RoundReplicaKey&) = default;
  };

  struct CanonEntry {
    std::size_t index = 0;       // position in the canonical sequence
    std::uint64_t payload_hash = 0;
  };
  // Canonical delivery store, two-level: stream -> (seq -> entry).  Seqs
  // within a stream are delivered in near-monotone order, so the inner map
  // grows by appends; a single flat (stream, seq) index would take an O(n)
  // mid-vector insert per message once streams interleave.
  struct StreamCanon {
    FlatMap<MsgSeqNum, CanonEntry> by_seq;
    // Position of the last-touched entry.  Each node re-delivers a stream's
    // seqs in increasing order, so the next delivery is almost always at
    // `hint` or `hint + 1`; the hint turns the per-delivery lookup into a
    // couple of adjacent compares instead of a binary search across every
    // seq the stream has ever carried.  Positions of existing entries are
    // stable under the tail-append inserts this map sees (and a stale hint
    // only costs the fallback search).
    std::size_t hint = 0;
  };
  struct GroupCanon {
    FlatMap<StreamKey, StreamCanon> streams;
    std::size_t next_index = 0;
  };
  struct NodeCursor {
    std::size_t last_index = 0;
    bool synced = false;  // false until the first delivery after (re)start
  };
  struct ViewInfo {
    std::uint64_t ring_id = 0;
    std::vector<NodeId> members;
  };
  struct SendInfo {
    Micros proposed = kNoTime;
    Micros floor_at_send = kNoTime;  // oracle-tracked floor of the sender
    std::uint32_t floor_src_group = GroupId::kInvalid;  // group whose stamp set it
  };
  struct RoundRecord {
    Micros value = kNoTime;
    std::uint32_t winner = ReplicaId::kInvalid;
  };
  struct ThreadState {
    Micros last_value = kNoTime;
    MsgSeqNum last_round = 0;
    bool round_synced = false;  // round numbers resync after replica reset
  };
  struct ReplicaState {
    Micros tracked_floor = kNoTime;
    std::uint32_t floor_src_group = GroupId::kInvalid;  // stamping group of the floor
    std::uint64_t chain_tail_upto = 0;
    bool has_chain = false;
    MsgSeqNum last_epoch = 0;
    bool has_epoch = false;
    FlatMap<std::uint32_t, ThreadState> threads;  // by thread id
  };

  void violate(Check c, NodeId node, ReplicaId replica, std::string detail);
  void note_cross_shard(std::uint32_t src_group, std::uint32_t dst_group);

  /// Cached get-or-create accessors for the per-event indexes.
  GroupCanon& group_canon(std::uint32_t grp);
  StreamCanon& stream_canon(std::uint32_t grp, GroupCanon& canon, StreamKey key);
  NodeCursor& cursor(std::uint64_t node_group_key);
  ReplicaState& replica_state(GroupId grp, ReplicaId r);

  sim::Simulator& sim_;
  MetricsRegistry& metrics_;
  TraceLog& trace_;
  bool abort_on_violation_;

  Counter* c_checks_;
  Counter* c_violations_;
  Counter* c_clamped_;
  Counter* c_cross_shard_;
  Counter* violation_counters_[kCheckCount];

  std::uint64_t checks_run_ = 0;
  std::uint64_t violations_total_ = 0;
  std::uint64_t cross_shard_total_ = 0;
  // (src << 32 | dst group) -> cross-shard causal-floor violations; the
  // packed key iterates in the same lexicographic (src, dst) order as the
  // pair-keyed map it replaces, preserving worst_cross_shard_edge's
  // first-wins tie-break.
  FlatMap<std::uint64_t, std::uint64_t> cross_pairs_;
  std::uint64_t violations_by_check_[kCheckCount] = {};
  std::vector<Violation> log_;

  FlatMap<std::uint32_t, GroupCanon> canon_;  // by group id
  FlatMap<std::uint64_t, NodeCursor> cursors_;  // (node << 32) | group
  DenseNodeIndex<ViewInfo> views_;            // by node id: one array load
  // (group << 32 | thread) -> (round, sender replica) -> proposal snapshot
  FlatMap<std::uint64_t, FlatMap<RoundReplicaKey, SendInfo>> sends_;
  // (group << 32 | thread) -> round -> agreed result
  FlatMap<std::uint64_t, FlatMap<MsgSeqNum, RoundRecord>> rounds_;
  FlatMap<std::uint64_t, ReplicaState> replicas_;  // (group << 32) | replica

  // One-entry lookup caches for the hot hooks (see discipline note above).
  std::uint32_t cached_canon_grp_ = GroupId::kInvalid;
  GroupCanon* cached_canon_ = nullptr;
  std::uint32_t cached_stream_grp_ = GroupId::kInvalid;
  StreamKey cached_stream_key_{};
  StreamCanon* cached_stream_ = nullptr;
  std::uint64_t cached_cursor_key_ = 0;
  NodeCursor* cached_cursor_ = nullptr;
  std::uint64_t cached_replica_key_ = 0;
  ReplicaState* cached_replica_ = nullptr;
  // Membership fast path: the last (node, sender) pair verified against the
  // node's installed view, valid only for the epoch it was checked in (any
  // view install anywhere bumps the epoch — installs are rare, deliveries
  // are not).  Only successful checks are cached; violations re-verify.
  std::uint64_t view_epoch_ = 0;
  std::uint64_t cached_member_key_ = ~0ull;  // (node << 32) | sender
  std::uint64_t cached_member_epoch_ = 0;
};

}  // namespace cts::obs
