#include "obs/merge.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace cts::obs {

namespace {

struct Tagged {
  const TraceEvent* e;
  std::size_t island;
  std::size_t pos;  // record order within the island
};

}  // namespace

std::string merged_trace_jsonl(const std::vector<Recorder*>& islands) {
  std::vector<Tagged> all;
  std::size_t total = 0;
  for (const Recorder* rec : islands) total += rec->trace().events().size();
  all.reserve(total);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    const auto& evs = islands[i]->trace().events();
    for (std::size_t p = 0; p < evs.size(); ++p) all.push_back(Tagged{&evs[p], i, p});
  }
  // Each island's log is already non-decreasing in `at`; the canonical
  // total order is (at, island, within-island position).
  std::sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    if (x.e->at != y.e->at) return x.e->at < y.e->at;
    if (x.island != y.island) return x.island < y.island;
    return x.pos < y.pos;
  });

  std::ostringstream out;
  for (const Tagged& t : all) {
    const TraceEvent& e = *t.e;
    out << "{\"at\": " << e.at << ", \"island\": " << t.island << ", \"kind\": \""
        << to_string(e.kind) << "\", \"node\": ";
    if (e.node == NodeId::kInvalid) {
      out << "null";
    } else {
      out << e.node;
    }
    out << ", \"replica\": ";
    if (e.replica == ReplicaId::kInvalid) {
      out << "null";
    } else {
      out << e.replica;
    }
    out << ", \"a\": " << e.a << ", \"b\": " << e.b << ", \"c\": " << e.c << "}\n";
  }
  return out.str();
}

std::string merged_metrics_json(const std::vector<Recorder*>& islands) {
  std::ostringstream out;
  out << "{\"islands\": [";
  for (std::size_t i = 0; i < islands.size(); ++i) {
    islands[i]->sync_sim_stats();
    if (i != 0) out << ", ";
    out << "{\"island\": " << i << ", \"metrics\": " << islands[i]->metrics().to_json() << "}";
  }
  out << "]}\n";
  return out.str();
}

bool export_merged_files(const std::vector<Recorder*>& islands,
                         const std::string& metrics_path, const std::string& trace_path) {
  bool ok = true;
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (f) f << merged_metrics_json(islands);
    ok = ok && static_cast<bool>(f);
  }
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (f) f << merged_trace_jsonl(islands);
    ok = ok && static_cast<bool>(f);
  }
  return ok;
}

int export_merged_from_env(const std::vector<Recorder*>& islands, const std::string& label) {
  int written = 0;
  auto emit = [&](const std::string& metrics_path, const std::string& trace_path) {
    // The variables are an explicit request to export, so a failed write
    // (typically a missing directory) warns instead of silently skipping.
    if (!metrics_path.empty()) {
      if (export_merged_files(islands, metrics_path, "")) ++written;
      else std::fprintf(stderr, "warning: could not write metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      if (export_merged_files(islands, "", trace_path)) ++written;
      else std::fprintf(stderr, "warning: could not write trace to %s\n", trace_path.c_str());
    }
  };
  if (const char* dir = std::getenv("CTS_OBS_DIR"); dir && *dir) {
    const std::string base = std::string(dir) + "/" + label;
    emit(base + ".metrics.json", base + ".trace.jsonl");
  }
  const char* mj = std::getenv("CTS_METRICS_JSON");
  const char* tj = std::getenv("CTS_TRACE_JSONL");
  emit(mj ? mj : "", tj ? tj : "");
  return written;
}

}  // namespace cts::obs
