// Recorder: the per-testbed bundle of MetricsRegistry + TraceLog, stamped
// with deterministic simulated time.
//
// One Recorder per Testbed (benches build several testbeds in one process;
// a global would mix their runs).  Layers receive a nullable Recorder* via
// set_recorder() and guard every touch with `if (rec_)`, so the stack runs
// unchanged when observability is off.  Recording never feeds back into the
// simulation — no RNG draws, no scheduled events — so enabling it cannot
// perturb determinism.
#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/oracle.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace cts::obs {

class Recorder {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}

  MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  TraceLog& trace() { return trace_; }
  [[nodiscard]] const TraceLog& trace() const { return trace_; }

  /// Shortcut for metrics().counter() — the common wiring call.
  Counter& counter(std::string_view name) { return metrics_.counter(name); }

  /// Create the runtime ordering oracle (doc/STATIC_ANALYSIS.md).  Must be
  /// called BEFORE the layers' set_recorder() wiring — they cache the
  /// oracle pointer alongside their hot-path counters.  Idempotent.
  OrderingOracle& enable_oracle(bool abort_on_violation = true) {
    if (!oracle_) {
      oracle_ = std::make_unique<OrderingOracle>(sim_, metrics_, trace_, abort_on_violation);
    }
    return *oracle_;
  }

  /// The oracle, or nullptr when disabled (the default outside the Testbed).
  [[nodiscard]] OrderingOracle* oracle() { return oracle_.get(); }

  /// Record a trace event stamped with the current simulated time.
  void event(EventKind kind, NodeId node = NodeId{}, ReplicaId replica = ReplicaId{},
             std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0) {
    trace_.record(sim_.now(), kind, node.value, replica.value, a, b, c);
  }

  /// Text summary of metrics plus per-kind trace tallies.
  [[nodiscard]] std::string summary();

  /// Write metrics.json / trace.jsonl.  Empty path skips that file.
  /// Returns true if every requested write succeeded.
  bool export_files(const std::string& metrics_path, const std::string& trace_path);

  /// Pull the simulator's own statistics into the registry, so exports and
  /// summaries carry the engine's view of the run:
  ///   sim.events_executed (counter) — events fired since construction;
  ///   sim.queue_depth (gauge)       — live pending events at export time.
  /// Called by summary()/export_files(); cheap and idempotent.  The counter
  /// and gauge slots are resolved once (stable node references) so repeated
  /// syncs skip the by-name map walk entirely.
  void sync_sim_stats() {
    if (sim_events_ == nullptr) {
      sim_events_ = &metrics_.counter("sim.events_executed");
      sim_queue_depth_ = &metrics_.gauge_slot("sim.queue_depth");
    }
    sim_events_->value = sim_.events_executed();
    *sim_queue_depth_ = static_cast<std::int64_t>(sim_.pending());
  }

 private:
  sim::Simulator& sim_;
  MetricsRegistry metrics_;
  TraceLog trace_;
  std::unique_ptr<OrderingOracle> oracle_;
  Counter* sim_events_ = nullptr;
  std::int64_t* sim_queue_depth_ = nullptr;
};

/// Honor the observability environment variables:
///   CTS_OBS_DIR=<dir>        — write <dir>/<label>.metrics.json and
///                              <dir>/<label>.trace.jsonl
///   CTS_METRICS_JSON=<path>  — write the metrics registry to <path>
///   CTS_TRACE_JSONL=<path>   — write the trace to <path>
/// Exact-path variables are meant for single-run tools; multi-run benches
/// pass a distinct label per run and set CTS_OBS_DIR.  Returns the number
/// of files written (0 when no variable is set).  Non-const: syncs the
/// simulator's own stats into the registry before writing.
int export_from_env(Recorder& rec, const std::string& label);

}  // namespace cts::obs
