// MetricsRegistry: named counters, gauges and Histogram-backed timers.
//
// The paper's evaluation (Figures 5-6, the 1/9,977/22 CCS message split,
// the ~51us token-passing density) is assembled from per-layer counts and
// latency densities.  This registry gives every layer one place to put
// them, cheap enough to leave enabled in benches: hot paths hold a
// Counter* obtained once via counter() — incrementing is a single add on a
// stable heap slot — and only export walks the name maps.
//
// Lookup-by-name takes std::string_view throughout: a probe with a string
// literal or a composed name does not materialize a temporary std::string
// (the maps use transparent less<> comparison); only get-or-create inserts
// allocate, and only on first use of a name.
//
// Zero dependencies beyond the standard library; JSON is emitted by hand.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.hpp"
#include "common/types.hpp"

namespace cts::obs {

/// A monotonically increasing count.  References returned by
/// MetricsRegistry::counter() are stable for the registry's lifetime, so
/// instrumented layers cache the pointer and skip the map lookup.
struct Counter {
  std::uint64_t value = 0;

  Counter& operator++() {
    ++value;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    value += n;
    return *this;
  }
};

class MetricsRegistry {
 public:
  /// Get-or-create a counter.  The returned reference is stable: counters
  /// live in a node-based map and are never removed.
  Counter& counter(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) it = counters_.try_emplace(std::string(name)).first;
    return it->second;
  }

  /// Current value, or 0 if the counter was never created.  Lookup does not
  /// create the counter, so probing for absent names is side-effect free.
  [[nodiscard]] std::uint64_t value(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value;
  }

  /// Set a point-in-time gauge (last observed value wins).
  void set_gauge(std::string_view name, std::int64_t v) { gauge_slot(name) = v; }

  /// Get-or-create a gauge's storage slot.  Stable reference (node-based
  /// map): export/sync paths resolve the slot once and assign through it.
  std::int64_t& gauge_slot(std::string_view name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name), 0).first;
    return it->second;
  }

  [[nodiscard]] std::int64_t gauge(std::string_view name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }

  /// Get-or-create a histogram timer.  bin_width/max_value apply only on
  /// creation; later calls with the same name return the existing instance.
  Histogram& histogram(std::string_view name, Micros bin_width, Micros max_value) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.try_emplace(std::string(name), bin_width, max_value).first;
    }
    return it->second;
  }

  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Whole registry as a JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  ///    mean, p50, p99, min, max, mode_bin, underflow, overflow, bin_width,
  ///    density: [[bin_start_us, count_fraction], ...]}}}
  [[nodiscard]] std::string to_json() const;

  /// Human-readable dump: one "name value" line per counter/gauge plus one
  /// summary line per histogram.
  [[nodiscard]] std::string summary() const;

  /// Write to_json() to `path`.  Returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  // Deliberately std::map, not cts::FlatMap: counter()/gauge_slot()
  // references must stay stable for the registry's lifetime (hot paths
  // cache Counter*), which requires node-based storage.  These maps are
  // only walked at export time.  std::less<> enables string_view probes
  // without a temporary std::string.
  // detlint:allow(hot-path-map): node-based storage is the point — stable
  // Counter&/gauge references; lookups are amortized away by handle caching.
  std::map<std::string, Counter, std::less<>> counters_;
  // detlint:allow(hot-path-map): same stable-reference requirement as
  // counters_ (gauge_slot hands out long-lived slot references).
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  // detlint:allow(hot-path-map): histograms are created once and looked up
  // at export; Histogram& references must survive later creations.
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace cts::obs
