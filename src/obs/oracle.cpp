#include "obs/oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>


#include "common/bytes.hpp"
#include "common/logging.hpp"

namespace cts::obs {

namespace {

// Payload fingerprint for the canonical-sequence divergence check.  Purely
// oracle-internal (never exported, traced, or compared across builds), so it
// does not need to be FNV-1a like the wire envelopes — and must not be:
// FNV's byte-serial dependent multiply chain costs more per delivery than
// the rest of the check combined.  This mixes 8 bytes per step instead.
std::uint64_t payload_fingerprint(std::span<const std::uint8_t> p) {
  // Two independent accumulator lanes: the multiplies of consecutive steps
  // overlap in the pipeline instead of forming one serial dependency chain.
  std::uint64_t h0 = 0x9e3779b97f4a7c15ull ^ (p.size() * 0xff51afd7ed558ccdull);
  std::uint64_t h1 = 0xc4ceb9fe1a85ec53ull;
  std::size_t i = 0;
  for (; i + 16 <= p.size(); i += 16) {
    const std::uint64_t w0 = load_u64le(p.data() + i);
    const std::uint64_t w1 = load_u64le(p.data() + i + 8);
    h0 = (h0 ^ (w0 * 0xff51afd7ed558ccdull)) * 0xc4ceb9fe1a85ec53ull;
    h1 = (h1 ^ (w1 * 0x9e3779b97f4a7c15ull)) * 0xff51afd7ed558ccdull;
  }
  for (; i + 8 <= p.size(); i += 8) {
    const std::uint64_t w = load_u64le(p.data() + i);
    h0 = (h0 ^ (w * 0xff51afd7ed558ccdull)) * 0xc4ceb9fe1a85ec53ull;
  }
  std::uint64_t tail = 0;
  for (std::size_t shift = 0; i < p.size(); ++i, shift += 8) {
    tail |= static_cast<std::uint64_t>(p[i]) << shift;
  }
  std::uint64_t h = (h0 ^ (h1 >> 31) ^ tail) * 0xc4ceb9fe1a85ec53ull;
  return h ^ (h >> 29);
}

}  // namespace

const char* OrderingOracle::check_name(Check c) {
  switch (c) {
    case Check::kTotalOrder:
      return "total_order";
    case Check::kMembership:
      return "membership";
    case Check::kClockMonotonicity:
      return "clock_monotonicity";
    case Check::kAgreement:
      return "agreement";
    case Check::kCausalFloor:
      return "causal_floor";
    case Check::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

OrderingOracle::OrderingOracle(sim::Simulator& sim, MetricsRegistry& metrics, TraceLog& trace,
                               bool abort_on_violation)
    : sim_(sim), metrics_(metrics), trace_(trace), abort_on_violation_(abort_on_violation) {
  c_checks_ = &metrics_.counter("oracle.checks_run");
  c_violations_ = &metrics_.counter("oracle.violations");
  c_clamped_ = &metrics_.counter("oracle.floor_checks_clamped");
  // Created eagerly so exports always carry the column, zero included —
  // the scalability bench gates on oracle.cross_shard == 0.
  c_cross_shard_ = &metrics_.counter("oracle.cross_shard");
  for (std::size_t i = 0; i < kCheckCount; ++i) {
    violation_counters_[i] =
        &metrics_.counter(std::string("oracle.violations.") + check_name(static_cast<Check>(i)));
  }
}

void OrderingOracle::violate(Check c, NodeId node, ReplicaId replica, std::string detail) {
  ++violations_total_;
  ++violations_by_check_[static_cast<std::size_t>(c)];
  ++*c_violations_;
  ++*violation_counters_[static_cast<std::size_t>(c)];
  trace_.record(sim_.now(), EventKind::kOracleViolation, node.value, replica.value,
                static_cast<std::int64_t>(c));
  CTS_ERROR() << "ORACLE VIOLATION [" << check_name(c) << "] node=" << node.value
              << " replica=" << replica.value << ": " << detail;
  if (log_.size() < 64) {
    log_.push_back(Violation{c, sim_.now(), node.value, replica.value, std::move(detail)});
  }
  if (abort_on_violation_) {
    // Tests run with abort enabled (Testbed default): an ordering violation
    // must never survive to a green exit, whatever the test asserts.
    std::abort();
  }
}

// --- Cached index accessors --------------------------------------------------

OrderingOracle::GroupCanon& OrderingOracle::group_canon(std::uint32_t grp) {
  if (cached_canon_ != nullptr && cached_canon_grp_ == grp) return *cached_canon_;
  auto [it, fresh] = canon_.try_emplace(grp);
  if (fresh) {
    // canon_ grew: GroupCanon objects moved, so any cached stream pointer
    // (whose OWNING map object lives inside a GroupCanon) must be re-found.
    // The stream heap buffers themselves survive, but re-finding is the
    // simple rule that is always right.
    cached_stream_ = nullptr;
  }
  cached_canon_grp_ = grp;
  cached_canon_ = &it->second;
  return *cached_canon_;
}

OrderingOracle::StreamCanon& OrderingOracle::stream_canon(std::uint32_t grp, GroupCanon& canon,
                                                          StreamKey key) {
  if (cached_stream_ != nullptr && cached_stream_grp_ == grp && cached_stream_key_ == key) {
    return *cached_stream_;
  }
  auto [it, fresh] = canon.streams.try_emplace(key);
  cached_stream_grp_ = grp;
  cached_stream_key_ = key;
  cached_stream_ = &it->second;
  return *cached_stream_;
}

OrderingOracle::NodeCursor& OrderingOracle::cursor(std::uint64_t node_group_key) {
  if (cached_cursor_ != nullptr && cached_cursor_key_ == node_group_key) return *cached_cursor_;
  auto [it, fresh] = cursors_.try_emplace(node_group_key);
  cached_cursor_key_ = node_group_key;
  cached_cursor_ = &it->second;
  return *cached_cursor_;
}

OrderingOracle::ReplicaState& OrderingOracle::replica_state(GroupId grp, ReplicaId r) {
  const std::uint64_t key = pack_u32_pair(grp.value, r.value);
  if (cached_replica_ != nullptr && cached_replica_key_ == key) return *cached_replica_;
  auto [it, fresh] = replicas_.try_emplace(key);
  cached_replica_key_ = key;
  cached_replica_ = &it->second;
  return *cached_replica_;
}

// --- Delivery / membership ---------------------------------------------------

void OrderingOracle::on_view_installed(NodeId node, std::uint64_t ring_id,
                                       std::span<const NodeId> members) {
  auto& v = views_.ensure(node.value);
  v.ring_id = ring_id;
  v.members.assign(members.begin(), members.end());
  ++view_epoch_;  // invalidate every cached membership verdict
}

void OrderingOracle::on_gcs_deliver(NodeId node, GroupId dst_grp, ConnectionId conn,
                                    std::uint8_t type, ThreadId tag, MsgSeqNum seq, NodeId sender,
                                    std::span<const std::uint8_t> payload) {
  ++checks_run_;
  ++*c_checks_;

  // Virtual synchrony: the sender must be a member of the receiver's
  // currently installed ring view.  Skipped until the node's first view is
  // observed (formation traffic cannot reach delivery before installation).
  if (const ViewInfo* vi = views_.find(node.value)) {
    const std::uint64_t member_key = pack_u32_pair(node.value, sender.value);
    if (member_key != cached_member_key_ || view_epoch_ != cached_member_epoch_) {
      const auto& m = vi->members;
      if (!std::binary_search(m.begin(), m.end(), sender)) {
        std::ostringstream os;
        os << "delivery from node " << sender.value << " outside installed view (ring "
           << vi->ring_id << ", " << m.size() << " members)";
        violate(Check::kMembership, node, ReplicaId{}, os.str());
      } else {
        cached_member_key_ = member_key;
        cached_member_epoch_ = view_epoch_;
      }
    }
  }

  // Total order: each node's delivery sequence for a group must be a
  // subsequence of the canonical sequence (order of first delivery
  // anywhere), with identical payload bytes per key.
  const std::uint64_t hash = payload_fingerprint(payload);
  GroupCanon& canon = group_canon(dst_grp.value);
  StreamCanon& stream = stream_canon(
      dst_grp.value, canon,
      StreamKey{(static_cast<std::uint64_t>(conn.value) << 8) | type, tag.value});
  auto [it, fresh] = [&] {
    // Hinted lookup (see StreamCanon::hint): check the last-touched entry
    // and its successor before falling back to the full search.
    const std::size_t n = stream.by_seq.size();
    if (stream.hint < n) {
      const auto h = stream.by_seq.begin() + static_cast<std::ptrdiff_t>(stream.hint);
      if (h->first == seq) return std::pair{h, false};
      if (stream.hint + 1 < n && (h + 1)->first == seq) {
        ++stream.hint;
        return std::pair{h + 1, false};
      }
    }
    auto r = stream.by_seq.try_emplace(seq);
    stream.hint = static_cast<std::size_t>(r.first - stream.by_seq.begin());
    return r;
  }();
  if (fresh) {
    it->second.index = canon.next_index++;
    it->second.payload_hash = hash;
  } else if (it->second.payload_hash != hash) {
    std::ostringstream os;
    os << "payload divergence on grp " << dst_grp.value << " conn " << conn.value << " type "
       << static_cast<int>(type) << " tag " << tag.value << " seq " << seq;
    violate(Check::kTotalOrder, node, ReplicaId{}, os.str());
  }

  NodeCursor& cur = cursor(pack_u32_pair(node.value, dst_grp.value));
  if (cur.synced && it->second.index <= cur.last_index && !fresh) {
    std::ostringstream os;
    os << "grp " << dst_grp.value << " delivery (conn " << conn.value << " tag " << tag.value
       << " seq " << seq << ") at canonical index " << it->second.index
       << " after index " << cur.last_index << " — order disagrees across nodes";
    violate(Check::kTotalOrder, node, ReplicaId{}, os.str());
  }
  cur.last_index = it->second.index;
  cur.synced = true;
}

// --- CTS ---------------------------------------------------------------------

void OrderingOracle::on_stamp_observed(GroupId grp, ReplicaId replica, Micros ts,
                                       GroupId src_grp) {
  auto& rs = replica_state(grp, replica);
  if (rs.tracked_floor == kNoTime || ts > rs.tracked_floor) {
    rs.tracked_floor = ts;
    rs.floor_src_group = src_grp.value;
  }
}

void OrderingOracle::note_cross_shard(std::uint32_t src_group, std::uint32_t dst_group) {
  // Only floors minted by a DIFFERENT group count as cross-shard: a stamp
  // looped back within one ring is an intra-shard ordering bug, already
  // covered by the plain causal-floor column.
  if (src_group == GroupId::kInvalid || src_group == dst_group) return;
  ++cross_shard_total_;
  ++*c_cross_shard_;
  ++cross_pairs_[pack_u32_pair(src_group, dst_group)];
}

OrderingOracle::CrossShardEdge OrderingOracle::worst_cross_shard_edge() const {
  CrossShardEdge worst;
  for (const auto& [key, count] : cross_pairs_) {
    if (count > worst.violations) {
      worst = CrossShardEdge{static_cast<std::uint32_t>(key >> 32),
                             static_cast<std::uint32_t>(key & 0xffffffffu), count};
    }
  }
  return worst;
}

void OrderingOracle::on_ccs_send(GroupId grp, ReplicaId replica, ThreadId thread, MsgSeqNum round,
                                 Micros proposed, bool /*special*/) {
  ++checks_run_;
  ++*c_checks_;
  auto& rs = replica_state(grp, replica);
  if (rs.tracked_floor != kNoTime && proposed <= rs.tracked_floor) {
    std::ostringstream os;
    os << "proposal " << proposed << " for round " << round << " (thread " << thread.value
       << ") at or below causal floor " << rs.tracked_floor;
    note_cross_shard(rs.floor_src_group, grp.value);
    violate(Check::kCausalFloor, NodeId{}, replica, os.str());
  }
  sends_[pack_u32_pair(grp.value, thread.value)][RoundReplicaKey{round, replica.value}] =
      SendInfo{proposed, rs.tracked_floor, rs.floor_src_group};
}

void OrderingOracle::on_round_complete(GroupId grp, ReplicaId replica, ThreadId thread,
                                       MsgSeqNum round, Micros value, ReplicaId winner,
                                       bool /*special*/) {
  ++checks_run_;
  ++*c_checks_;

  // Agreement: every replica completing (grp, thread, round) must observe
  // the same group-clock value and the same synchronizer.
  auto [rit, fresh] = rounds_[pack_u32_pair(grp.value, thread.value)].try_emplace(round);
  if (fresh) {
    rit->second = RoundRecord{value, winner.value};
  } else if (rit->second.value != value || rit->second.winner != winner.value) {
    std::ostringstream os;
    os << "round (thread " << thread.value << ", seq " << round << ") completed with value "
       << value << " winner " << winner.value << " but was first recorded as value "
       << rit->second.value << " winner " << rit->second.winner;
    violate(Check::kAgreement, NodeId{}, replica, os.str());
  }

  // Causal floor at completion: a value the fast-forward guard clamped
  // below the winner's floor-at-send breaks causality; a clamp that stays
  // above the floor is only counted.  Values at or above the proposal are
  // covered by the send-time check plus the monotone-raise of delivery.
  if (auto group_sends = sends_.find(pack_u32_pair(grp.value, thread.value));
      group_sends != sends_.end()) {
    if (auto sit = group_sends->second.find(RoundReplicaKey{round, winner.value});
        sit != group_sends->second.end()) {
      if (value < sit->second.proposed) {
        if (sit->second.floor_at_send != kNoTime && value <= sit->second.floor_at_send) {
          std::ostringstream os;
          os << "round (thread " << thread.value << ", seq " << round << ") value " << value
             << " clamped below the winner's causal floor at send " << sit->second.floor_at_send;
          note_cross_shard(sit->second.floor_src_group, grp.value);
          violate(Check::kCausalFloor, NodeId{}, replica, os.str());
        } else {
          ++*c_clamped_;
        }
      }
    }
  }

  // Group-clock monotonicity per (grp, replica, thread): values strictly
  // increase and wire round numbers never repeat within one incarnation.
  auto& ts = replica_state(grp, replica).threads[thread.value];
  if (ts.last_value != kNoTime && value <= ts.last_value) {
    std::ostringstream os;
    os << "group clock moved backwards on thread " << thread.value << ": round " << round
       << " returned " << value << " after " << ts.last_value;
    violate(Check::kClockMonotonicity, NodeId{}, replica, os.str());
  }
  ts.last_value = value;
  if (ts.round_synced && round <= ts.last_round) {
    std::ostringstream os;
    os << "round number " << round << " on thread " << thread.value
       << " did not advance past " << ts.last_round;
    violate(Check::kClockMonotonicity, NodeId{}, replica, os.str());
  }
  ts.last_round = round;
  ts.round_synced = true;
}

// --- Replication -------------------------------------------------------------

void OrderingOracle::on_checkpoint_chain(GroupId grp, ReplicaId replica,
                                         std::span<const CheckpointLink> chain, bool verified) {
  ++checks_run_;
  ++*c_checks_;
  if (!verified) {
    violate(Check::kCheckpoint, NodeId{}, replica, "unverified checkpoint chain adopted");
  }
  if (chain.empty()) {
    violate(Check::kCheckpoint, NodeId{}, replica, "empty checkpoint chain adopted");
    return;
  }
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i].parent != chain[i - 1].link) {
      std::ostringstream os;
      os << "checkpoint chain link " << i << " parent " << chain[i].parent
         << " does not match previous link " << chain[i - 1].link;
      violate(Check::kCheckpoint, NodeId{}, replica, os.str());
    }
    if (chain[i].upto < chain[i - 1].upto) {
      std::ostringstream os;
      os << "checkpoint chain coverage decreasing: upto " << chain[i].upto << " after "
         << chain[i - 1].upto;
      violate(Check::kCheckpoint, NodeId{}, replica, os.str());
    }
  }
  auto& rs = replica_state(grp, replica);
  if (rs.has_chain && chain.back().upto < rs.chain_tail_upto) {
    std::ostringstream os;
    os << "adopted checkpoint covers " << chain.back().upto
       << " requests, rolling back earlier coverage " << rs.chain_tail_upto;
    violate(Check::kCheckpoint, NodeId{}, replica, os.str());
  }
  rs.chain_tail_upto = chain.back().upto;
  rs.has_chain = true;
}

void OrderingOracle::on_recovery_epoch(GroupId grp, ReplicaId replica, MsgSeqNum epoch) {
  ++checks_run_;
  ++*c_checks_;
  auto& rs = replica_state(grp, replica);
  if (rs.has_epoch && epoch <= rs.last_epoch) {
    std::ostringstream os;
    os << "recovery epoch " << epoch << " did not supersede " << rs.last_epoch;
    violate(Check::kCheckpoint, NodeId{}, replica, os.str());
  }
  rs.last_epoch = epoch;
  rs.has_epoch = true;
}

// --- Lifecycle ---------------------------------------------------------------

void OrderingOracle::on_node_reset(NodeId node) {
  // Value-only mutation: cached pointers stay valid.
  for (auto& [key, cur] : cursors_) {
    if ((key >> 32) == node.value) cur.synced = false;
  }
}

void OrderingOracle::on_replica_reset(GroupId grp, ReplicaId replica) {
  // A rebuilt replica restores round numbers from a checkpoint that may be
  // behind its dead predecessor's counters; re-sync them at the next
  // completion.  Values stay monotone across warm restarts (the adopted
  // checkpoint's group clock covers every completed round).  Chain coverage
  // and recovery epochs are per-incarnation: a restart from a stale disk
  // legitimately adopts an older chain before catching up via state
  // transfer, and GET_STATE wire sequences restart with the connection.
  auto& rs = replica_state(grp, replica);
  for (auto& [t, ts] : rs.threads) ts.round_synced = false;
  rs.has_chain = false;
  rs.chain_tail_upto = 0;
  rs.has_epoch = false;
}

void OrderingOracle::on_group_reset(GroupId grp) {
  // Total failure: the suffix of rounds after the newest persisted
  // checkpoint was lost and will be re-executed with fresh (higher) values,
  // so per-round agreement history no longer applies.  Value monotonicity
  // is deliberately NOT reset: the restored state must force the group
  // clock above every reading handed out before the outage.
  cts::erase_if(rounds_, [&](const auto& kv) { return (kv.first >> 32) == grp.value; });
  cts::erase_if(sends_, [&](const auto& kv) { return (kv.first >> 32) == grp.value; });
  // Connection sequence numbers restart with the group, so (conn, type,
  // tag, seq) keys are legitimately reused: the canonical delivery
  // sequence rebuilds from the post-restart traffic.
  canon_.erase(grp.value);
  cts::erase_if(cursors_, [&](const auto& kv) {
    return (kv.first & 0xffffffffu) == grp.value;
  });
  // Structural mutation of cached-pointer targets: drop every cache.
  cached_canon_ = nullptr;
  cached_stream_ = nullptr;
  cached_cursor_ = nullptr;
  for (auto& [key, rs] : replicas_) {
    if ((key >> 32) == grp.value) {
      for (auto& [t, ts] : rs.threads) ts.round_synced = false;
    }
  }
}

}  // namespace cts::obs
