#include "obs/oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/bytes.hpp"
#include "common/logging.hpp"

namespace cts::obs {

const char* OrderingOracle::check_name(Check c) {
  switch (c) {
    case Check::kTotalOrder:
      return "total_order";
    case Check::kMembership:
      return "membership";
    case Check::kClockMonotonicity:
      return "clock_monotonicity";
    case Check::kAgreement:
      return "agreement";
    case Check::kCausalFloor:
      return "causal_floor";
    case Check::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

OrderingOracle::OrderingOracle(sim::Simulator& sim, MetricsRegistry& metrics, TraceLog& trace,
                               bool abort_on_violation)
    : sim_(sim), metrics_(metrics), trace_(trace), abort_on_violation_(abort_on_violation) {
  c_checks_ = &metrics_.counter("oracle.checks_run");
  c_violations_ = &metrics_.counter("oracle.violations");
  c_clamped_ = &metrics_.counter("oracle.floor_checks_clamped");
  // Created eagerly so exports always carry the column, zero included —
  // the scalability bench gates on oracle.cross_shard == 0.
  c_cross_shard_ = &metrics_.counter("oracle.cross_shard");
  for (std::size_t i = 0; i < kCheckCount; ++i) {
    violation_counters_[i] =
        &metrics_.counter(std::string("oracle.violations.") + check_name(static_cast<Check>(i)));
  }
}

void OrderingOracle::violate(Check c, NodeId node, ReplicaId replica, std::string detail) {
  ++violations_total_;
  ++violations_by_check_[static_cast<std::size_t>(c)];
  ++*c_violations_;
  ++*violation_counters_[static_cast<std::size_t>(c)];
  trace_.record(sim_.now(), EventKind::kOracleViolation, node.value, replica.value,
                static_cast<std::int64_t>(c));
  CTS_ERROR() << "ORACLE VIOLATION [" << check_name(c) << "] node=" << node.value
              << " replica=" << replica.value << ": " << detail;
  if (log_.size() < 64) {
    log_.push_back(Violation{c, sim_.now(), node.value, replica.value, std::move(detail)});
  }
  if (abort_on_violation_) {
    // Tests run with abort enabled (Testbed default): an ordering violation
    // must never survive to a green exit, whatever the test asserts.
    std::abort();
  }
}

// --- Delivery / membership ---------------------------------------------------

void OrderingOracle::on_view_installed(NodeId node, std::uint64_t ring_id,
                                       std::span<const NodeId> members) {
  auto& v = views_[node.value];
  v.ring_id = ring_id;
  v.members.assign(members.begin(), members.end());
}

void OrderingOracle::on_gcs_deliver(NodeId node, GroupId dst_grp, ConnectionId conn,
                                    std::uint8_t type, ThreadId tag, MsgSeqNum seq, NodeId sender,
                                    std::span<const std::uint8_t> payload) {
  ++checks_run_;
  ++*c_checks_;

  // Virtual synchrony: the sender must be a member of the receiver's
  // currently installed ring view.  Skipped until the node's first view is
  // observed (formation traffic cannot reach delivery before installation).
  if (auto vit = views_.find(node.value); vit != views_.end()) {
    const auto& m = vit->second.members;
    if (!std::binary_search(m.begin(), m.end(), sender)) {
      std::ostringstream os;
      os << "delivery from node " << sender.value << " outside installed view (ring "
         << vit->second.ring_id << ", " << m.size() << " members)";
      violate(Check::kMembership, node, ReplicaId{}, os.str());
    }
  }

  // Total order: each node's delivery sequence for a group must be a
  // subsequence of the canonical sequence (order of first delivery
  // anywhere), with identical payload bytes per key.
  const MsgKey key{conn.value, type, tag.value, seq};
  const std::uint64_t hash = fnv1a64(payload);
  auto& canon = canon_[dst_grp.value];
  auto [it, fresh] = canon.by_key.try_emplace(key);
  if (fresh) {
    it->second.index = canon.next_index++;
    it->second.payload_hash = hash;
  } else if (it->second.payload_hash != hash) {
    std::ostringstream os;
    os << "payload divergence on grp " << dst_grp.value << " conn " << conn.value << " type "
       << static_cast<int>(type) << " tag " << tag.value << " seq " << seq;
    violate(Check::kTotalOrder, node, ReplicaId{}, os.str());
  }

  auto& cur = cursors_[{node.value, dst_grp.value}];
  if (cur.synced && it->second.index <= cur.last_index && !fresh) {
    std::ostringstream os;
    os << "grp " << dst_grp.value << " delivery (conn " << conn.value << " tag " << tag.value
       << " seq " << seq << ") at canonical index " << it->second.index
       << " after index " << cur.last_index << " — order disagrees across nodes";
    violate(Check::kTotalOrder, node, ReplicaId{}, os.str());
  }
  cur.last_index = it->second.index;
  cur.synced = true;
}

// --- CTS ---------------------------------------------------------------------

void OrderingOracle::on_stamp_observed(GroupId grp, ReplicaId replica, Micros ts,
                                       GroupId src_grp) {
  auto& rs = replica_state(grp, replica);
  if (rs.tracked_floor == kNoTime || ts > rs.tracked_floor) {
    rs.tracked_floor = ts;
    rs.floor_src_group = src_grp.value;
  }
}

void OrderingOracle::note_cross_shard(std::uint32_t src_group, std::uint32_t dst_group) {
  // Only floors minted by a DIFFERENT group count as cross-shard: a stamp
  // looped back within one ring is an intra-shard ordering bug, already
  // covered by the plain causal-floor column.
  if (src_group == GroupId::kInvalid || src_group == dst_group) return;
  ++cross_shard_total_;
  ++*c_cross_shard_;
  ++cross_pairs_[{src_group, dst_group}];
}

OrderingOracle::CrossShardEdge OrderingOracle::worst_cross_shard_edge() const {
  CrossShardEdge worst;
  for (const auto& [pair, count] : cross_pairs_) {
    if (count > worst.violations) {
      worst = CrossShardEdge{pair.first, pair.second, count};
    }
  }
  return worst;
}

void OrderingOracle::on_ccs_send(GroupId grp, ReplicaId replica, ThreadId thread, MsgSeqNum round,
                                 Micros proposed, bool /*special*/) {
  ++checks_run_;
  ++*c_checks_;
  auto& rs = replica_state(grp, replica);
  if (rs.tracked_floor != kNoTime && proposed <= rs.tracked_floor) {
    std::ostringstream os;
    os << "proposal " << proposed << " for round " << round << " (thread " << thread.value
       << ") at or below causal floor " << rs.tracked_floor;
    note_cross_shard(rs.floor_src_group, grp.value);
    violate(Check::kCausalFloor, NodeId{}, replica, os.str());
  }
  sends_[{grp.value, thread.value, round, replica.value}] =
      SendInfo{proposed, rs.tracked_floor, rs.floor_src_group};
}

void OrderingOracle::on_round_complete(GroupId grp, ReplicaId replica, ThreadId thread,
                                       MsgSeqNum round, Micros value, ReplicaId winner,
                                       bool /*special*/) {
  ++checks_run_;
  ++*c_checks_;

  // Agreement: every replica completing (grp, thread, round) must observe
  // the same group-clock value and the same synchronizer.
  auto [rit, fresh] = rounds_.try_emplace({grp.value, thread.value, round});
  if (fresh) {
    rit->second = RoundRecord{value, winner.value};
  } else if (rit->second.value != value || rit->second.winner != winner.value) {
    std::ostringstream os;
    os << "round (thread " << thread.value << ", seq " << round << ") completed with value "
       << value << " winner " << winner.value << " but was first recorded as value "
       << rit->second.value << " winner " << rit->second.winner;
    violate(Check::kAgreement, NodeId{}, replica, os.str());
  }

  // Causal floor at completion: a value the fast-forward guard clamped
  // below the winner's floor-at-send breaks causality; a clamp that stays
  // above the floor is only counted.  Values at or above the proposal are
  // covered by the send-time check plus the monotone-raise of delivery.
  if (auto sit = sends_.find({grp.value, thread.value, round, winner.value});
      sit != sends_.end()) {
    if (value < sit->second.proposed) {
      if (sit->second.floor_at_send != kNoTime && value <= sit->second.floor_at_send) {
        std::ostringstream os;
        os << "round (thread " << thread.value << ", seq " << round << ") value " << value
           << " clamped below the winner's causal floor at send " << sit->second.floor_at_send;
        note_cross_shard(sit->second.floor_src_group, grp.value);
        violate(Check::kCausalFloor, NodeId{}, replica, os.str());
      } else {
        ++*c_clamped_;
      }
    }
  }

  // Group-clock monotonicity per (grp, replica, thread): values strictly
  // increase and wire round numbers never repeat within one incarnation.
  auto& ts = replica_state(grp, replica).threads[thread.value];
  if (ts.last_value != kNoTime && value <= ts.last_value) {
    std::ostringstream os;
    os << "group clock moved backwards on thread " << thread.value << ": round " << round
       << " returned " << value << " after " << ts.last_value;
    violate(Check::kClockMonotonicity, NodeId{}, replica, os.str());
  }
  ts.last_value = value;
  if (ts.round_synced && round <= ts.last_round) {
    std::ostringstream os;
    os << "round number " << round << " on thread " << thread.value
       << " did not advance past " << ts.last_round;
    violate(Check::kClockMonotonicity, NodeId{}, replica, os.str());
  }
  ts.last_round = round;
  ts.round_synced = true;
}

// --- Replication -------------------------------------------------------------

void OrderingOracle::on_checkpoint_chain(GroupId grp, ReplicaId replica,
                                         std::span<const CheckpointLink> chain, bool verified) {
  ++checks_run_;
  ++*c_checks_;
  if (!verified) {
    violate(Check::kCheckpoint, NodeId{}, replica, "unverified checkpoint chain adopted");
  }
  if (chain.empty()) {
    violate(Check::kCheckpoint, NodeId{}, replica, "empty checkpoint chain adopted");
    return;
  }
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i].parent != chain[i - 1].link) {
      std::ostringstream os;
      os << "checkpoint chain link " << i << " parent " << chain[i].parent
         << " does not match previous link " << chain[i - 1].link;
      violate(Check::kCheckpoint, NodeId{}, replica, os.str());
    }
    if (chain[i].upto < chain[i - 1].upto) {
      std::ostringstream os;
      os << "checkpoint chain coverage decreasing: upto " << chain[i].upto << " after "
         << chain[i - 1].upto;
      violate(Check::kCheckpoint, NodeId{}, replica, os.str());
    }
  }
  auto& rs = replica_state(grp, replica);
  if (rs.has_chain && chain.back().upto < rs.chain_tail_upto) {
    std::ostringstream os;
    os << "adopted checkpoint covers " << chain.back().upto
       << " requests, rolling back earlier coverage " << rs.chain_tail_upto;
    violate(Check::kCheckpoint, NodeId{}, replica, os.str());
  }
  rs.chain_tail_upto = chain.back().upto;
  rs.has_chain = true;
}

void OrderingOracle::on_recovery_epoch(GroupId grp, ReplicaId replica, MsgSeqNum epoch) {
  ++checks_run_;
  ++*c_checks_;
  auto& rs = replica_state(grp, replica);
  if (rs.has_epoch && epoch <= rs.last_epoch) {
    std::ostringstream os;
    os << "recovery epoch " << epoch << " did not supersede " << rs.last_epoch;
    violate(Check::kCheckpoint, NodeId{}, replica, os.str());
  }
  rs.last_epoch = epoch;
  rs.has_epoch = true;
}

// --- Lifecycle ---------------------------------------------------------------

void OrderingOracle::on_node_reset(NodeId node) {
  for (auto& [key, cur] : cursors_) {
    if (key.first == node.value) cur.synced = false;
  }
}

void OrderingOracle::on_replica_reset(GroupId grp, ReplicaId replica) {
  // A rebuilt replica restores round numbers from a checkpoint that may be
  // behind its dead predecessor's counters; re-sync them at the next
  // completion.  Values stay monotone across warm restarts (the adopted
  // checkpoint's group clock covers every completed round).  Chain coverage
  // and recovery epochs are per-incarnation: a restart from a stale disk
  // legitimately adopts an older chain before catching up via state
  // transfer, and GET_STATE wire sequences restart with the connection.
  auto& rs = replica_state(grp, replica);
  for (auto& [t, ts] : rs.threads) ts.round_synced = false;
  rs.has_chain = false;
  rs.chain_tail_upto = 0;
  rs.has_epoch = false;
}

void OrderingOracle::on_group_reset(GroupId grp) {
  // Total failure: the suffix of rounds after the newest persisted
  // checkpoint was lost and will be re-executed with fresh (higher) values,
  // so per-round agreement history no longer applies.  Value monotonicity
  // is deliberately NOT reset: the restored state must force the group
  // clock above every reading handed out before the outage.
  std::erase_if(rounds_, [&](const auto& kv) { return std::get<0>(kv.first) == grp.value; });
  std::erase_if(sends_, [&](const auto& kv) { return std::get<0>(kv.first) == grp.value; });
  // Connection sequence numbers restart with the group, so (conn, type,
  // tag, seq) keys are legitimately reused: the canonical delivery
  // sequence rebuilds from the post-restart traffic.
  canon_.erase(grp.value);
  std::erase_if(cursors_, [&](const auto& kv) { return kv.first.second == grp.value; });
  for (auto& [key, rs] : replicas_) {
    if (key.first == grp.value) {
      for (auto& [t, ts] : rs.threads) ts.round_synced = false;
    }
  }
}

}  // namespace cts::obs
