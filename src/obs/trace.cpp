#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace cts::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kNetDrop: return "net_drop";
    case EventKind::kNetCorrupt: return "net_corrupt";
    case EventKind::kNetPartition: return "net_partition";
    case EventKind::kNetHeal: return "net_heal";
    case EventKind::kTokenPass: return "token_pass";
    case EventKind::kTokenRetransmit: return "token_retransmit";
    case EventKind::kMsgRetransmit: return "msg_retransmit";
    case EventKind::kRingChange: return "ring_change";
    case EventKind::kWindowStall: return "window_stall";
    case EventKind::kGcsDeliver: return "gcs_deliver";
    case EventKind::kGcsViewChange: return "gcs_view_change";
    case EventKind::kGcsSendCancelled: return "gcs_send_cancelled";
    case EventKind::kCcsRoundStart: return "ccs_round_start";
    case EventKind::kCcsRoundComplete: return "ccs_round_complete";
    case EventKind::kSynchronizerWin: return "synchronizer_win";
    case EventKind::kCcsSendAvoided: return "ccs_send_avoided";
    case EventKind::kProposalResent: return "proposal_resent";
    case EventKind::kSkewSample: return "skew_sample";
    case EventKind::kCcsReentrantCall: return "ccs_reentrant_call";
    case EventKind::kCheckpointTaken: return "checkpoint_taken";
    case EventKind::kCheckpointApplied: return "checkpoint_applied";
    case EventKind::kStateTransfer: return "state_transfer";
    case EventKind::kFailover: return "failover";
    case EventKind::kRecoveryStart: return "recovery_start";
    case EventKind::kRecoveryComplete: return "recovery_complete";
    case EventKind::kOracleViolation: return "oracle_violation";
    case EventKind::kStampRejected: return "stamp_rejected";
    case EventKind::kGatewayForward: return "gateway_forward";
    case EventKind::kHandoffExport: return "handoff_export";
    case EventKind::kHandoffAdopt: return "handoff_adopt";
  }
  return "unknown";
}

std::size_t TraceLog::count(EventKind kind) const {
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(), [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::vector<TraceEvent> TraceLog::select(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string TraceLog::to_jsonl() const {
  std::ostringstream out;
  for (const auto& e : events_) {
    out << "{\"at\": " << e.at << ", \"kind\": \"" << to_string(e.kind) << "\", \"node\": ";
    if (e.node == NodeId::kInvalid) {
      out << "null";
    } else {
      out << e.node;
    }
    out << ", \"replica\": ";
    if (e.replica == ReplicaId::kInvalid) {
      out << "null";
    } else {
      out << e.replica;
    }
    out << ", \"a\": " << e.a << ", \"b\": " << e.b << ", \"c\": " << e.c << "}\n";
  }
  return out.str();
}

bool TraceLog::write_jsonl(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_jsonl();
  return static_cast<bool>(f);
}

}  // namespace cts::obs
