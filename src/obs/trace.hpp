// TraceLog: a bounded, deterministic log of typed protocol events.
//
// Every event is stamped with simulated time, so two runs with the same
// seed produce byte-identical traces — tests can assert on *behavior*
// ("no token retransmission happened in the loss-free run", "exactly one
// synchronizer won round k") instead of only on final state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cts::obs {

/// Typed protocol events, one per instrumented decision point.  The a/b/c
/// payload slots are event-specific; the meaning of each is documented at
/// the recording site and in EXPERIMENTS.md.
enum class EventKind : std::uint8_t {
  // net
  kNetDrop,            // a=src node, b=payload bytes
  kNetCorrupt,         // a=src node, b=payload bytes
  kNetPartition,       // a=group A size, b=group B size
  kNetHeal,
  // totem
  kTokenPass,          // a=token seq (all-received-up-to), b=ring id
  kTokenRetransmit,    // a=retransmission attempt count
  kMsgRetransmit,      // a=totem seq retransmitted
  kRingChange,         // a=ring id, b=member count, c=1 if primary component
  kWindowStall,        // a=queued messages, b=window budget
  // gcs
  kGcsDeliver,         // a=msg type, b=seq, c=connection id
  kGcsViewChange,      // a=group id, b=member count
  kGcsSendCancelled,   // a=msg type, b=seq (duplicate suppression)
  // cts / ccs
  kCcsRoundStart,      // a=thread id, b=round number
  kCcsRoundComplete,   // a=round number, b=winner replica, c=group clock us
  kSynchronizerWin,    // a=round number, b=thread id
  kCcsSendAvoided,     // a=thread id, b=round number (suppressed duplicate)
  kProposalResent,     // a=thread id, b=round number (new-primary re-issue)
  kSkewSample,         // a=signed skew vs reference us, b=round number
  kCcsReentrantCall,   // a=thread id (always-on invariant violation)
  // replication
  kCheckpointTaken,    // a=checkpoint payload bytes
  kCheckpointApplied,  // a=requests covered by the checkpoint
  kStateTransfer,      // a=log entries shipped
  kFailover,           // a=promotion count at this replica
  kRecoveryStart,
  kRecoveryComplete,   // a=requests replayed or queued
  // oracle
  kOracleViolation,    // a=OrderingOracle::Check that fired
  // multi-group / sharding
  kStampRejected,      // a=connection id, b=payload bytes (malformed stamp)
  kGatewayForward,     // a=origin ring, b=owning ring
  kHandoffExport,      // a=stamp stream tag, b=handoff seq (source release)
  kHandoffAdopt,       // a=stamp stream tag, b=handoff seq (dest adoption)
};

[[nodiscard]] const char* to_string(EventKind k);

struct TraceEvent {
  Micros at = 0;
  EventKind kind{};
  std::uint32_t node = NodeId::kInvalid;
  std::uint32_t replica = ReplicaId::kInvalid;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

/// Append-only event log with a hard cap: once `max_events` are held, new
/// events are counted in dropped() but not stored, so a long bench cannot
/// grow without bound.  Tests that assert on the trace should also assert
/// dropped() == 0.
class TraceLog {
 public:
  explicit TraceLog(std::size_t max_events = 1u << 19) : max_events_(max_events) {}

  void record(Micros at, EventKind kind, std::uint32_t node, std::uint32_t replica,
              std::int64_t a = 0, std::int64_t b = 0, std::int64_t c = 0) {
    ++recorded_;
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(TraceEvent{at, kind, node, replica, a, b, c});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Total record() calls, including dropped ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

  /// Events lost to the cap.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Number of stored events of the given kind.
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// All stored events of the given kind, in record order.
  [[nodiscard]] std::vector<TraceEvent> select(EventKind kind) const;

  void clear() {
    events_.clear();
    recorded_ = 0;
    dropped_ = 0;
  }

  /// One JSON object per line:
  ///   {"at": 1234, "kind": "token_pass", "node": 0, "replica": null,
  ///    "a": 7, "b": 1, "c": 0}
  [[nodiscard]] std::string to_jsonl() const;

  /// Write to_jsonl() to `path`.  Returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cts::obs
