// Deterministic merge of per-island Recorder streams.
//
// A parallel (archipelago) run produces one Recorder per island; exporting
// them as one document must not depend on worker count or thread timing.
// Both merges below are pure functions of the recorders' contents and the
// island order the caller passes (island ids ascending, by convention):
//
//   * merged_trace_jsonl — one JSONL stream ordered by (time, island,
//     within-island record order).  Rows are the standard TraceLog format
//     with an "island" field appended;
//   * merged_metrics_json — {"islands": [{"island": i, "metrics": ...}]}
//     with each island's registry rendered by its own to_json().
//
// The double-run determinism test diffs these byte-for-byte between serial
// and parallel executions of the same archipelago.
#pragma once

#include <string>
#include <vector>

namespace cts::obs {

class Recorder;

/// Merge the islands' trace logs into one JSONL document, ordered by
/// (at, island index, record order).  Each row is TraceLog::to_jsonl()'s
/// format plus `"island": <i>` after the "at" field.
[[nodiscard]] std::string merged_trace_jsonl(const std::vector<Recorder*>& islands);

/// All islands' metrics as one JSON object.  Syncs each island's simulator
/// stats into its registry first (same rule as single-island export).
[[nodiscard]] std::string merged_metrics_json(const std::vector<Recorder*>& islands);

/// Write both documents.  Empty path skips that file; returns true if every
/// requested write succeeded.
bool export_merged_files(const std::vector<Recorder*>& islands,
                         const std::string& metrics_path, const std::string& trace_path);

/// The multi-island analogue of export_from_env (recorder.hpp): honors
/// CTS_OBS_DIR / CTS_METRICS_JSON / CTS_TRACE_JSONL, writing the *merged*
/// documents.  Returns the number of files written; failed writes warn.
int export_merged_from_env(const std::vector<Recorder*>& islands, const std::string& label);

}  // namespace cts::obs
