#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cts::obs {

namespace {

// Minimal JSON string escaping; metric names are plain identifiers but a
// stray quote or backslash must not produce invalid output.
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": " << c.value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": " << v;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
        << ", \"p50\": " << h.percentile(0.5) << ", \"p99\": " << h.percentile(0.99)
        << ", \"min\": " << h.min() << ", \"max\": " << h.max()
        << ", \"mode_bin\": " << h.mode_bin() << ", \"underflow\": " << h.underflow()
        << ", \"overflow\": " << h.overflow() << ", \"bin_width\": " << h.bin_width()
        << ", \"density\": [";
    bool fd = true;
    for (auto [bin, d] : h.density()) {
      if (!fd) out << ", ";
      fd = false;
      out << "[" << bin << ", " << d << "]";
    }
    out << "]}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsRegistry::summary() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) out << name << " " << c.value << "\n";
  for (const auto& [name, v] : gauges_) out << name << " " << v << "\n";
  for (const auto& [name, h] : histograms_) {
    out << name << " n=" << h.count() << " mean=" << h.mean() << "us p50=" << h.percentile(0.5)
        << "us p99=" << h.percentile(0.99) << "us mode=" << h.mode_bin() << "us";
    if (h.underflow() > 0) out << " underflow=" << h.underflow();
    if (h.overflow() > 0) out << " overflow=" << h.overflow();
    out << "\n";
  }
  return out.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

}  // namespace cts::obs
