#include "totem/totem.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace cts::totem {

namespace {
constexpr int kMaxTokenRetransAttempts = 5;
constexpr std::uint32_t kPacketMagic = 0x544f544d;  // "TOTM"
constexpr std::size_t kEnvelopeSize = 8;            // [magic u32][checksum u32]
constexpr std::size_t kEnvelopeChecksumOffset = 4;

// Scatter-gather sealing: the envelope and the body share one buffer.  An
// encoder reserves the final packet size, writes the [magic][checksum=0]
// envelope, appends its body fields directly behind it, and finish_sealed
// patches the checksum in place — no separately-allocated body buffer and
// no envelope-prepend copy.
BytesWriter begin_sealed(std::size_t body_size) {
  BytesWriter w;
  w.reserve(kEnvelopeSize + body_size);
  w.u32(kPacketMagic);
  w.u32(0);  // checksum placeholder, patched once the body is in place
  return w;
}

Bytes finish_sealed(BytesWriter&& w) {
  w.patch_u32(kEnvelopeChecksumOffset, fnv1a32(w.data(), kEnvelopeSize));
  return std::move(w).take();
}
}

TotemNode::TotemNode(sim::Simulator& sim, net::Network& net, NodeId id, TotemConfig cfg)
    : sim_(sim), net_(net), id_(id), cfg_(std::move(cfg)), scope_(sim) {
  assert(std::is_sorted(cfg_.universe.begin(), cfg_.universe.end()));
  // In-flight packets to this host belong to its lifecycle scope, so a
  // fail-stop shutdown cancels them mid-flight.
  net_.bind_scope(id_, &scope_);
  // Fail-stop: shutting the scope down crashes the daemon first (hooks run
  // before the timer sweep), then cancels everything the host scheduled.
  scope_.on_shutdown([this] { crash(); });
}

TotemNode::~TotemNode() { net_.bind_scope(id_, nullptr); }

// --- Wire formats ----------------------------------------------------------

bool TotemNode::unseal(const SharedBytes& packet, BytesReader& out_reader) {
  // A datagram shorter than the envelope cannot be a Totem packet; reject
  // it before touching any field so truncated junk is dropped, not parsed.
  if (packet.size() < kEnvelopeSize) return false;
  if (load_u32le(packet.data()) != kPacketMagic) return false;
  if (load_u32le(packet.data() + kEnvelopeChecksumOffset) !=
      fnv1a32(packet.span(), kEnvelopeSize)) {
    return false;
  }
  out_reader = BytesReader(
      std::span<const std::uint8_t>(packet.data() + kEnvelopeSize, packet.size() - kEnvelopeSize));
  return true;
}

Bytes TotemNode::encode_token(const Token& t) {
  BytesWriter w = begin_sealed(45 + t.rtr.size() * 8);
  w.u8(static_cast<std::uint8_t>(MsgType::kToken));
  w.u64(t.ring_id);
  w.u64(t.token_seq);
  w.u64(t.seq);
  w.u64(t.aru);
  w.u32(t.aru_setter.value);
  w.u32(t.fcc);
  w.u32(static_cast<std::uint32_t>(t.rtr.size()));
  for (auto s : t.rtr) w.u64(s);
  return finish_sealed(std::move(w));
}

Bytes TotemNode::encode_mcast(const Mcast& m) {
  BytesWriter w = begin_sealed(27 + m.payload.size());
  w.u8(static_cast<std::uint8_t>(MsgType::kMcast));
  w.u64(m.ring_id);
  w.u64(m.seq);
  w.u32(m.sender.value);
  w.boolean(m.recovery);
  w.u8(static_cast<std::uint8_t>(m.delivery));
  w.bytes(m.payload.span());
  return finish_sealed(std::move(w));
}

Bytes TotemNode::encode_batch(std::span<const Mcast> msgs, RingId ring_id, bool recovery) {
  // One envelope seals the whole visit's worth of messages; payload bytes
  // are gathered straight from each queued buffer into the frame.
  std::size_t body = 14;  // type u8 + ring u64 + recovery u8 + count u32
  for (const auto& m : msgs) body += 17 + m.payload.size();
  BytesWriter w = begin_sealed(body);
  w.u8(static_cast<std::uint8_t>(MsgType::kBatch));
  w.u64(ring_id);
  w.boolean(recovery);
  w.u32(static_cast<std::uint32_t>(msgs.size()));
  for (const auto& m : msgs) {
    w.u64(m.seq);
    w.u32(m.sender.value);
    w.u8(static_cast<std::uint8_t>(m.delivery));
    w.bytes(m.payload.span());
  }
  return finish_sealed(std::move(w));
}

Bytes TotemNode::encode_join(const Join& j) {
  BytesWriter w = begin_sealed(29 + j.perceived.size() * 4);
  w.u8(static_cast<std::uint8_t>(MsgType::kJoin));
  w.u32(j.sender.value);
  w.u32(static_cast<std::uint32_t>(j.perceived.size()));
  for (auto n : j.perceived) w.u32(n.value);
  w.u64(j.old_ring_id);
  w.u64(j.my_aru);
  w.u64(j.high_seq);
  return finish_sealed(std::move(w));
}

Bytes TotemNode::encode_commit(const Commit& c) {
  BytesWriter w = begin_sealed(13 + c.members.size() * 28);
  w.u8(static_cast<std::uint8_t>(MsgType::kCommit));
  w.u64(c.new_ring_id);
  w.u32(static_cast<std::uint32_t>(c.members.size()));
  for (const auto& m : c.members) {
    w.u32(m.node.value);
    w.u64(m.old_ring_id);
    w.u64(m.aru);
    w.u64(m.high_seq);
  }
  return finish_sealed(std::move(w));
}

// --- Lifecycle ---------------------------------------------------------------

void TotemNode::start() {
  assert(state_ == State::kDown);
  net_.attach(id_, [this](NodeId src, const SharedBytes& data) { on_packet(src, data); });
  state_ = State::kGather;
  enter_gather("boot");
}

void TotemNode::crash() {
  ++epoch_;  // invalidate every outstanding timer closure
  cancel_timers();
  state_ = State::kDown;
  net_.set_down(id_, true);
  store_.clear();
  recovered_.clear();
  joins_.clear();
  perceived_.clear();
  send_queue_.clear();
  last_sent_token_.reset();
  view_ = View{};
  my_aru_ = 0;
  delivered_up_to_ = 0;
  last_token_seq_ = 0;
  token_aru_prev_ = 0;
  token_aru_last_ = 0;
}

void TotemNode::restart() {
  assert(state_ == State::kDown);
  net_.set_down(id_, false);
  state_ = State::kGather;
  enter_gather("restart");
}

std::uint64_t TotemNode::multicast(Bytes payload, DeliveryClass dc) {
  const std::uint64_t h = next_handle_++;
  send_queue_.push_back(Queued{h, dc, std::move(payload)});
  return h;
}

bool TotemNode::cancel(std::uint64_t handle) {
  for (auto it = send_queue_.begin(); it != send_queue_.end(); ++it) {
    if (it->handle == handle) {
      send_queue_.erase(it);
      ++stats_.msgs_cancelled;
      return true;
    }
  }
  return false;
}

// --- Timer plumbing -----------------------------------------------------------

void TotemNode::cancel_timers() {
  if (seek_armed_) scope_.cancel(seek_timer_), seek_armed_ = false;
  if (token_loss_armed_) scope_.cancel(token_loss_timer_), token_loss_armed_ = false;
  if (token_retrans_armed_) scope_.cancel(token_retrans_timer_), token_retrans_armed_ = false;
  if (gather_armed_) scope_.cancel(gather_timer_), gather_armed_ = false;
  if (commit_armed_) scope_.cancel(commit_timer_), commit_armed_ = false;
  if (recovery_armed_) scope_.cancel(recovery_timer_), recovery_armed_ = false;
}

void TotemNode::reset_token_loss_timer() {
  // Fires on every token receipt: re-key the live timer in place instead
  // of a cancel+insert pair.  The reused closure's captured epoch is still
  // current — epoch only changes on crash(), which cancels all timers.
  if (token_loss_armed_ &&
      scope_.reschedule(token_loss_timer_, sim_.now() + cfg_.token_loss_timeout_us)) {
    return;
  }
  token_loss_armed_ = true;
  token_loss_timer_ = scope_.after(cfg_.token_loss_timeout_us, [this, e = epoch_] {
    if (e != epoch_ || state_ != State::kOperational) return;
    token_loss_armed_ = false;
    enter_gather("token loss");
  });
}

// --- Packet dispatch -----------------------------------------------------------

void TotemNode::on_packet(NodeId src, const SharedBytes& data) {
  if (state_ == State::kDown) return;
  BytesReader r(std::span<const std::uint8_t>{});
  if (!unseal(data, r)) {
    CTS_DEBUG() << to_string(id_) << " dropped non-Totem/corrupt packet from "
                << to_string(src);
    return;
  }
  try {
    // Length validation is exact: after the last field of a message the
    // reader must sit on the end of the body.  A well-formed prefix with
    // trailing garbage is rejected BEFORE its handler runs, the same as a
    // truncated packet — otherwise padding survives the checksum (which
    // covers the whole body) and two nodes could disagree about what a
    // packet "is".
    const auto expect_end = [&r](const char* what) {
      if (!r.done()) throw CodecError(std::string("trailing garbage after ") + what);
    };
    const auto delivery_class = [](std::uint8_t v) {
      if (v > static_cast<std::uint8_t>(DeliveryClass::kSafe)) {
        throw CodecError("bad delivery class");
      }
      return static_cast<DeliveryClass>(v);
    };
    switch (r.u8()) {
      case static_cast<std::uint8_t>(MsgType::kToken): {
        Token t;
        t.ring_id = r.u64();
        t.token_seq = r.u64();
        t.seq = r.u64();
        t.aru = r.u64();
        t.aru_setter = NodeId{r.u32()};
        t.fcc = r.u32();
        const auto n = r.u32();
        // Cap the reserve by the bytes actually present: a forged count must
        // not trigger a huge allocation before the first read throws.
        t.rtr.reserve(std::min<std::size_t>(n, r.remaining() / sizeof(std::uint64_t)));
        for (std::uint32_t i = 0; i < n; ++i) t.rtr.push_back(r.u64());
        expect_end("token");
        handle_token(std::move(t));
        break;
      }
      case static_cast<std::uint8_t>(MsgType::kMcast): {
        Mcast m;
        m.ring_id = r.u64();
        m.seq = r.u64();
        m.sender = NodeId{r.u32()};
        m.recovery = r.boolean();
        m.delivery = delivery_class(r.u8());
        // Zero copy: the payload is an aliasing slice of the sealed packet
        // (reader offsets are relative to the body, hence + kEnvelopeSize).
        // skip() enforces the same truncation check r.bytes() would.
        const std::uint32_t len = r.u32();
        const std::size_t off = r.pos();
        r.skip(len);
        m.payload = data.slice(kEnvelopeSize + off, len);
        expect_end("mcast");
        handle_mcast(std::move(m));
        break;
      }
      case static_cast<std::uint8_t>(MsgType::kBatch): {
        const RingId ring_id = r.u64();
        const bool recovery = r.boolean();
        const auto n = r.u32();
        std::vector<Mcast> msgs;
        // 17 = fixed per-entry size (seq u64 + sender u32 + class u8 + len u32).
        msgs.reserve(std::min<std::size_t>(n, r.remaining() / 17));
        for (std::uint32_t i = 0; i < n; ++i) {
          Mcast m;
          m.ring_id = ring_id;
          m.recovery = recovery;
          m.seq = r.u64();
          m.sender = NodeId{r.u32()};
          m.delivery = delivery_class(r.u8());
          const std::uint32_t len = r.u32();
          const std::size_t off = r.pos();
          r.skip(len);
          m.payload = data.slice(kEnvelopeSize + off, len);
          msgs.push_back(std::move(m));
        }
        expect_end("batch");
        handle_batch(ring_id, std::move(msgs));
        break;
      }
      case static_cast<std::uint8_t>(MsgType::kJoin): {
        Join j;
        j.sender = NodeId{r.u32()};
        const auto n = r.u32();
        j.perceived.reserve(std::min<std::size_t>(n, r.remaining() / sizeof(std::uint32_t)));
        for (std::uint32_t i = 0; i < n; ++i) j.perceived.push_back(NodeId{r.u32()});
        j.old_ring_id = r.u64();
        j.my_aru = r.u64();
        j.high_seq = r.u64();
        expect_end("join");
        handle_join(j);
        break;
      }
      case static_cast<std::uint8_t>(MsgType::kCommit): {
        Commit c;
        c.new_ring_id = r.u64();
        const auto n = r.u32();
        // 28 = serialized CommitMember size (u32 + 3×u64).
        c.members.reserve(std::min<std::size_t>(n, r.remaining() / 28));
        for (std::uint32_t i = 0; i < n; ++i) {
          CommitMember m;
          m.node = NodeId{r.u32()};
          m.old_ring_id = r.u64();
          m.aru = r.u64();
          m.high_seq = r.u64();
          c.members.push_back(m);
        }
        expect_end("commit");
        handle_commit(c);
        break;
      }
      default:
        throw CodecError("unknown message type");
    }
  } catch (const CodecError& e) {
    CTS_WARN() << to_string(id_) << " dropped malformed packet from " << to_string(src) << ": "
               << e.what();
  }
}

// --- Operational: token -----------------------------------------------------------

NodeId TotemNode::successor() const {
  const auto& m = view_.members;
  auto it = std::find(m.begin(), m.end(), id_);
  assert(it != m.end());
  ++it;
  return it == m.end() ? m.front() : *it;
}

bool TotemNode::in_members(NodeId n, const std::vector<NodeId>& members) const {
  return std::find(members.begin(), members.end(), n) != members.end();
}

void TotemNode::handle_token(Token tok) {
  if (state_ != State::kOperational) return;
  if (tok.ring_id != view_.ring_id) return;
  if (tok.token_seq <= last_token_seq_) return;  // duplicate/stale token
  last_token_seq_ = tok.token_seq;
  ++stats_.tokens_received;
  if (c_token_pass_) ++*c_token_pass_;
  // A full rotation completes each time the ring leader sees the token.
  if (c_rotations_ && !view_.members.empty() && view_.members.front() == id_) ++*c_rotations_;
  if (rec_) {
    rec_->event(obs::EventKind::kTokenPass, id_, ReplicaId{},
                static_cast<std::int64_t>(tok.aru), static_cast<std::int64_t>(tok.ring_id));
  }
  if (token_obs_) token_obs_();

  // Progress: the ring is alive.
  if (token_retrans_armed_) scope_.cancel(token_retrans_timer_), token_retrans_armed_ = false;
  reset_token_loss_timer();

  // 1. Service retransmission requests for messages we hold.
  std::vector<TotemSeq> still_missing;
  for (TotemSeq s : tok.rtr) {
    auto it = store_.find(s);
    if (it != store_.end()) {
      net_.broadcast(id_, encode_mcast(it->second));
      ++stats_.msgs_retransmitted;
      if (c_msg_retrans_) ++*c_msg_retrans_;
      if (rec_) {
        rec_->event(obs::EventKind::kMsgRetransmit, id_, ReplicaId{},
                    static_cast<std::int64_t>(s));
      }
    } else {
      still_missing.push_back(s);
    }
  }
  tok.rtr = std::move(still_missing);

  // 2. Broadcast new messages (primary component only), respecting both
  // the per-visit cap and the rotation window carried on the token: our
  // previous visit's contribution ages out first.
  tok.fcc -= std::min(tok.fcc, last_sent_on_token_);
  if (view_.primary) {
    // Fair share: no node may claim more than window/members in one visit,
    // so a flooding sender cannot capture the whole rotation window and
    // starve its successors on the ring.
    const int members = static_cast<int>(view_.members.size());
    const int fair_share = std::max(1, cfg_.window_per_rotation / members);
    const int budget =
        std::min({cfg_.max_messages_per_token,
                  cfg_.window_per_rotation - static_cast<int>(tok.fcc), fair_share});
    // Drain up to `budget` queued messages into one batch frame.  The queue
    // entries are popped BEFORE anything is encoded or delivered: once a
    // message is in the batch it is committed to the wire, so a cancel()
    // issued from a reentrant self-delivery callback correctly reports
    // false for batch-mates (already sent) while messages still queued
    // behind the batch stay cancellable.  Flow control counts MESSAGES,
    // not frames — fcc and the per-visit window are unchanged by batching.
    std::vector<Mcast> batch;
    batch.reserve(std::min<std::size_t>(send_queue_.size(),
                                        static_cast<std::size_t>(std::max(0, budget))));
    while (!send_queue_.empty() && static_cast<int>(batch.size()) < budget) {
      Mcast m;
      m.ring_id = view_.ring_id;
      m.seq = ++tok.seq;
      m.sender = id_;
      m.delivery = send_queue_.front().delivery;
      m.payload = std::move(send_queue_.front().payload);
      send_queue_.pop_front();
      batch.push_back(std::move(m));
    }
    const auto sent = static_cast<std::uint32_t>(batch.size());
    if (sent > 0) {
      net_.broadcast(id_, encode_batch(batch, view_.ring_id, /*recovery=*/false));
      stats_.msgs_multicast += sent;
      ++stats_.batch_frames_sent;
      if (c_batch_frames_) ++*c_batch_frames_;
      for (auto& m : batch) {
        // A self-delivery callback may crash this node (fail-stop tests);
        // stop touching protocol state the moment that happens.
        if (state_ == State::kDown) break;
        store_and_deliver(std::move(m));  // self-delivery
      }
    }
    tok.fcc += sent;
    last_sent_on_token_ = sent;
    if (!send_queue_.empty()) {
      // The rotation window (or fair share) closed before the queue
      // drained — backpressure a perf PR would want to see.
      ++stats_.window_stalls;
      if (c_window_stalls_) ++*c_window_stalls_;
      if (rec_) {
        rec_->event(obs::EventKind::kWindowStall, id_, ReplicaId{},
                    static_cast<std::int64_t>(send_queue_.size()), budget);
      }
    }
  } else {
    last_sent_on_token_ = 0;
  }

  // 3. Request retransmission of our own gaps.
  for (TotemSeq s = my_aru_ + 1; s <= tok.seq; ++s) {
    if (!store_.contains(s) &&
        std::find(tok.rtr.begin(), tok.rtr.end(), s) == tok.rtr.end()) {
      tok.rtr.push_back(s);
    }
  }

  // 4. Update all-received-up-to.
  if (tok.aru > my_aru_) {
    tok.aru = my_aru_;
    tok.aru_setter = id_;
  } else if (tok.aru_setter == id_ || !tok.aru_setter.valid()) {
    tok.aru = my_aru_;
    if (tok.aru == tok.seq) tok.aru_setter = NodeId{};
  }

  // Safe-delivery horizon: aru held across two successive token visits
  // means every member holds those messages.
  token_aru_prev_ = token_aru_last_;
  token_aru_last_ = tok.aru;
  deliver_contiguous();

  // 5. Forward the token after the hold time.
  scope_.after(cfg_.token_hold_us, [this, e = epoch_, tok = std::move(tok)]() mutable {
    if (e != epoch_ || state_ != State::kOperational || tok.ring_id != view_.ring_id) return;
    send_token_to_successor(std::move(tok));
  });
}

void TotemNode::send_token_to_successor(Token tok) {
  tok.token_seq += 1;
  last_sent_token_ = tok;
  ++stats_.tokens_sent;

  const NodeId next = successor();
  if (next == id_) {
    // Singleton ring: loop the token back to ourselves through the event
    // queue so time still advances.
    scope_.after(cfg_.token_hold_us + 1, [this, e = epoch_, tok] {
      if (e != epoch_) return;
      handle_token(tok);
    });
    return;
  }
  net_.send(id_, next, encode_token(tok));
  token_retrans_attempts_ = 0;
  arm_token_retrans();
}

void TotemNode::arm_token_retrans() {
  // Re-armed on every token we forward; re-key the live timer when possible
  // (see reset_token_loss_timer for the epoch argument).
  if (token_retrans_armed_ &&
      scope_.reschedule(token_retrans_timer_, sim_.now() + cfg_.token_retrans_timeout_us)) {
    return;
  }
  token_retrans_armed_ = true;
  token_retrans_timer_ = scope_.after(cfg_.token_retrans_timeout_us, [this, e = epoch_] {
    if (e != epoch_ || state_ != State::kOperational || !last_sent_token_) return;
    token_retrans_armed_ = false;
    // Give up after a few attempts: the token-loss timeout will rebuild the
    // ring if the successor really is gone.
    if (token_retrans_attempts_ >= kMaxTokenRetransAttempts) return;
    ++token_retrans_attempts_;
    ++stats_.token_retransmissions;
    if (c_token_retrans_) ++*c_token_retrans_;
    if (rec_) {
      rec_->event(obs::EventKind::kTokenRetransmit, id_, ReplicaId{}, token_retrans_attempts_);
    }
    net_.send(id_, successor(), encode_token(*last_sent_token_));
    arm_token_retrans();
  });
}

// --- Operational: messages ------------------------------------------------------

void TotemNode::handle_mcast(Mcast m) {
  if (state_ == State::kOperational) {
    if (m.ring_id == view_.ring_id) {
      store_and_deliver(std::move(m));
      // Seeing traffic means the token moved on: stop retransmitting it.
      if (token_retrans_armed_) scope_.cancel(token_retrans_timer_), token_retrans_armed_ = false;
      return;
    }
    if (!known_rings_.contains(m.ring_id)) {
      // Foreign message: another component exists (e.g. after a partition
      // heals).  Trigger the membership protocol to merge.
      enter_gather("foreign message");
    }
    return;
  }
  if (state_ == State::kRecover || state_ == State::kGather) {
    // Old-ring traffic (including recovery rebroadcasts) for our own old
    // ring still counts: it fills gaps so the survivor set converges.
    if (m.ring_id == view_.ring_id) store_and_deliver(std::move(m));
  }
}

void TotemNode::handle_batch(RingId ring_id, std::vector<Mcast> msgs) {
  // Same state machine as handle_mcast, but the ring checks run once per
  // frame: a foreign batch triggers ONE gather, not one per entry.
  if (state_ == State::kOperational) {
    if (ring_id == view_.ring_id) {
      for (auto& m : msgs) {
        if (state_ == State::kDown) return;  // delivery callback crashed us
        store_and_deliver(std::move(m));
      }
      // Seeing traffic means the token moved on: stop retransmitting it.
      if (token_retrans_armed_) scope_.cancel(token_retrans_timer_), token_retrans_armed_ = false;
      return;
    }
    if (!known_rings_.contains(ring_id)) enter_gather("foreign message");
    return;
  }
  if (state_ == State::kRecover || state_ == State::kGather) {
    if (ring_id != view_.ring_id) return;
    for (auto& m : msgs) {
      if (state_ == State::kDown) return;
      store_and_deliver(std::move(m));
    }
  }
}

void TotemNode::store_and_deliver(Mcast m) {
  const TotemSeq seq = m.seq;
  if (seq <= delivered_up_to_ || store_.contains(seq)) return;  // duplicate
  store_.emplace(seq, std::move(m));
  while (store_.contains(my_aru_ + 1)) ++my_aru_;
  deliver_contiguous();
}

void TotemNode::deliver_contiguous() {
  const TotemSeq safe_horizon = std::min(token_aru_prev_, token_aru_last_);
  while (delivered_up_to_ < my_aru_) {
    auto it = store_.find(delivered_up_to_ + 1);
    assert(it != store_.end());
    // A safe-class message (and therefore everything ordered after it)
    // waits until the token's aru has confirmed group-wide reception over
    // two rotations.  During a configuration change the survivors flush
    // pending messages transitionally instead.
    if (it->second.delivery == DeliveryClass::kSafe && !transitional_flush_ &&
        it->second.seq > safe_horizon) {
      break;
    }
    ++delivered_up_to_;
    ++stats_.msgs_delivered;
    if (c_delivered_) ++*c_delivered_;
    // Copy sender + payload (a refcount bump, not a buffer copy) out of the
    // store before invoking the callback: a fail-stop crash() from inside
    // the delivery chain clears store_, destroying the entry `it` points at.
    if (deliver_) {
      const NodeId sender = it->second.sender;
      const SharedBytes payload = it->second.payload;
      deliver_(sender, payload);
    }
  }
}

// --- Membership: gather ------------------------------------------------------------

void TotemNode::enter_gather(const char* reason) {
  if (state_ == State::kDown) return;
  CTS_DEBUG() << to_string(id_) << " entering gather (" << reason << ")";
  // Leaving operational: stop the ring timers; keep store_ (old-ring
  // messages are recovered after the next commit).
  if (token_loss_armed_) scope_.cancel(token_loss_timer_), token_loss_armed_ = false;
  if (token_retrans_armed_) scope_.cancel(token_retrans_timer_), token_retrans_armed_ = false;
  if (commit_armed_) scope_.cancel(commit_timer_), commit_armed_ = false;
  if (recovery_armed_) scope_.cancel(recovery_timer_), recovery_armed_ = false;
  state_ = State::kGather;
  joins_.clear();
  perceived_.clear();
  perceived_.insert(id_);
  broadcast_join();

  if (gather_armed_) scope_.cancel(gather_timer_);
  gather_armed_ = true;
  gather_timer_ = scope_.after(cfg_.gather_timeout_us, [this, e = epoch_] {
    if (e != epoch_ || state_ != State::kGather) return;
    gather_armed_ = false;
    on_gather_deadline();
  });
}

void TotemNode::broadcast_join() {
  Join j;
  j.sender = id_;
  j.perceived.assign(perceived_.begin(), perceived_.end());
  j.old_ring_id = view_.ring_id;
  j.my_aru = my_aru_;
  j.high_seq = store_.empty() ? my_aru_ : store_.rbegin()->first;
  joins_[id_] = j;
  net_.broadcast(id_, encode_join(j));
}

void TotemNode::handle_join(const Join& j) {
  if (state_ == State::kDown) return;
  if (state_ == State::kOperational) {
    if (in_members(j.sender, view_.members)) {
      // A current member lost the token or crashed+restarted: the ring is
      // broken, re-form it.
      enter_gather("member join");
    } else {
      // A new or recovered node wants in.
      enter_gather("new node join");
    }
    // enter_gather broadcast our join; fall through to record theirs.
  } else if (state_ == State::kRecover) {
    // Someone is re-gathering while we recover: abandon and regather so the
    // membership converges on one commit.
    enter_gather("join during recovery");
  }

  joins_[j.sender] = j;
  bool grew = perceived_.insert(j.sender).second;
  for (NodeId n : j.perceived) grew |= perceived_.insert(n).second;
  if (grew) {
    // Our view of the candidate set changed: re-announce and give everyone
    // time to converge on the same set.
    broadcast_join();
    if (gather_armed_) scope_.cancel(gather_timer_);
    gather_armed_ = true;
    gather_timer_ = scope_.after(cfg_.gather_timeout_us, [this, e = epoch_] {
      if (e != epoch_ || state_ != State::kGather) return;
      gather_armed_ = false;
      on_gather_deadline();
    });
  }
}

void TotemNode::on_gather_deadline() {
  // Candidates are the nodes actually heard from (plus ourselves); nodes we
  // merely perceived but never heard are treated as dead.
  std::vector<NodeId> candidates;
  candidates.reserve(joins_.size());
  for (const auto& [n, _] : joins_) candidates.push_back(n);
  std::sort(candidates.begin(), candidates.end());

  if (candidates.front() == id_) {
    // We are the representative: commit a new ring.
    Commit c;
    RingId max_old = max_ring_seen_;
    for (const auto& [_, j] : joins_) max_old = std::max(max_old, j.old_ring_id);
    // Ring ids embed the representative id so two components that commit
    // concurrently can never mint the same ring id.
    c.new_ring_id = (((max_old >> 8) + 1) << 8) | (id_.value & 0xff);
    for (NodeId n : candidates) {
      const Join& j = joins_.at(n);
      c.members.push_back(CommitMember{n, j.old_ring_id, j.my_aru, j.high_seq});
    }
    net_.broadcast(id_, encode_commit(c));
    // The commit is the one unacknowledged step of the membership
    // handshake: a member that loses this datagram stays deaf in Gather
    // until its commit timeout while the new ring delivers traffic without
    // it — and a message delivered only on that ring is unrecoverable for
    // the orphan once the NEXT ring's recovery runs (recovery converges
    // each member's own old ring only).  Rebroadcast the commit; receivers
    // treat duplicates as stale, and a member that catches up late repairs
    // any missed messages through the token's rtr machinery.
    for (int k = 1; k <= 2; ++k) {
      scope_.after(cfg_.commit_timeout_us * k / 3, [this, e = epoch_, c] {
        if (e != epoch_ || state_ == State::kDown || max_ring_seen_ > c.new_ring_id) return;
        net_.broadcast(id_, encode_commit(c));
      });
    }
    handle_commit(c);  // local delivery
  } else {
    // Wait for the representative's commit; regather if it never comes
    // (e.g. the representative crashed right after the gather phase).
    if (commit_armed_) scope_.cancel(commit_timer_);
    commit_armed_ = true;
    commit_timer_ = scope_.after(cfg_.commit_timeout_us, [this, e = epoch_] {
      if (e != epoch_ || state_ != State::kGather) return;
      commit_armed_ = false;
      enter_gather("commit timeout");
    });
  }
}

void TotemNode::handle_commit(const Commit& c) {
  if (state_ != State::kGather) return;
  bool me_in = false;
  for (const auto& m : c.members) me_in |= (m.node == id_);
  if (!me_in) return;
  if (c.new_ring_id <= max_ring_seen_) return;  // stale commit
  if (gather_armed_) scope_.cancel(gather_timer_), gather_armed_ = false;
  if (commit_armed_) scope_.cancel(commit_timer_), commit_armed_ = false;
  begin_recovery(c);
}

// --- Membership: recovery -----------------------------------------------------------

void TotemNode::begin_recovery(const Commit& c) {
  state_ = State::kRecover;
  pending_commit_ = c;

  // Rebroadcast every old-ring message we hold beyond the group's minimum
  // aru, so all survivors of our old ring converge on the same set; record
  // the highest seq anyone reported so finish_recovery can verify we
  // actually converged.
  recovery_target_ = 0;
  if (view_.ring_id != 0) {
    TotemSeq low = my_aru_;
    for (const auto& m : c.members) {
      if (m.old_ring_id == view_.ring_id) {
        low = std::min(low, m.aru);
        recovery_target_ = std::max(recovery_target_, m.high_seq);
      }
    }
    recovery_target_ = std::max(recovery_target_,
                                store_.empty() ? my_aru_ : store_.rbegin()->first);
    // Rebroadcasts ride batch frames too, chunked at the per-visit cap so
    // one lost datagram costs at most a visit's worth of rebroadcasts (the
    // bounded recovery retries re-send the rest).
    const auto chunk = static_cast<std::size_t>(std::max(1, cfg_.max_messages_per_token));
    std::vector<Mcast> frame;
    const auto flush = [&] {
      if (frame.empty()) return;
      net_.broadcast(id_, encode_batch(frame, view_.ring_id, /*recovery=*/true));
      ++stats_.batch_frames_sent;
      if (c_batch_frames_) ++*c_batch_frames_;
      frame.clear();
    };
    for (auto it = store_.upper_bound(low); it != store_.end(); ++it) {
      frame.push_back(it->second);
      ++stats_.msgs_retransmitted;
      if (c_msg_retrans_) ++*c_msg_retrans_;
      if (frame.size() >= chunk) flush();
    }
    flush();
  }

  if (recovery_armed_) scope_.cancel(recovery_timer_);
  recovery_armed_ = true;
  recovery_timer_ = scope_.after(cfg_.recovery_timeout_us, [this, e = epoch_] {
    if (e != epoch_ || state_ != State::kRecover) return;
    recovery_armed_ = false;
    finish_recovery();
  });
}

void TotemNode::finish_recovery() {
  // If loss during the recovery window left a hole below the group's high
  // mark, retry the membership protocol (every survivor rebroadcasts
  // again) instead of installing with a gap that would silently diverge
  // the delivered sequences.  Bounded: a message no survivor holds cannot
  // be recovered (it was never delivered as agreed anywhere), so after a
  // few attempts we proceed with what the survivor set has.
  if (view_.ring_id != 0 && my_aru_ < recovery_target_ && recovery_attempts_ < 3) {
    ++recovery_attempts_;
    CTS_DEBUG() << to_string(id_) << " recovery incomplete (aru " << my_aru_ << " < target "
                << recovery_target_ << "), retrying membership";
    enter_gather("recovery incomplete");
    return;
  }

  // Deliver everything contiguous from the old ring, including safe-class
  // messages whose group-wide reception can no longer be confirmed on the
  // dead ring (transitional delivery to the survivor set).
  transitional_flush_ = true;
  deliver_contiguous();
  transitional_flush_ = false;
  const Commit& c = pending_commit_;
  View v;
  v.ring_id = c.new_ring_id;
  for (const auto& m : c.members) v.members.push_back(m.node);
  std::sort(v.members.begin(), v.members.end());
  v.primary = is_primary(v.members);
  install(v);
}

bool TotemNode::is_primary(const std::vector<NodeId>& members) const {
  if (cfg_.universe.empty()) return true;  // no universe configured: always primary
  std::size_t present = 0;
  for (NodeId n : cfg_.universe) {
    if (in_members(n, members)) ++present;
  }
  return present * 2 > cfg_.universe.size();
}

void TotemNode::install(const View& v) {
  if (view_.ring_id != 0) known_rings_.insert(view_.ring_id);
  known_rings_.insert(v.ring_id);
  max_ring_seen_ = std::max(max_ring_seen_, v.ring_id);
  view_ = v;
  store_.clear();
  recovered_.clear();
  my_aru_ = 0;
  delivered_up_to_ = 0;
  last_token_seq_ = 0;
  token_aru_prev_ = 0;
  token_aru_last_ = 0;
  last_sent_on_token_ = 0;
  last_sent_token_.reset();
  state_ = State::kOperational;
  recovery_attempts_ = 0;
  ++stats_.membership_changes;
  if (c_ring_changes_) ++*c_ring_changes_;
  if (rec_) {
    rec_->event(obs::EventKind::kRingChange, id_, ReplicaId{},
                static_cast<std::int64_t>(v.ring_id),
                static_cast<std::int64_t>(v.members.size()), v.primary ? 1 : 0);
  }
  CTS_INFO() << to_string(id_) << " installed ring " << v.ring_id << " with " << v.members.size()
             << " members" << (v.primary ? " (primary)" : " (non-primary)");
  if (view_cb_) view_cb_(view_);

  reset_token_loss_timer();
  if (seek_armed_) scope_.cancel(seek_timer_), seek_armed_ = false;
  if (!view_.primary) {
    // Keep looking for the rest of the universe: once the partition heals,
    // the periodic Join reaches the primary component and triggers a merge
    // even if nobody is multicasting.
    seek_armed_ = true;
    seek_timer_ = scope_.after(cfg_.seek_interval_us, [this, e = epoch_] {
      if (e != epoch_ || state_ != State::kOperational || view_.primary) return;
      seek_armed_ = false;
      enter_gather("seeking primary component");
    });
  }
  if (view_.members.front() == id_) {
    // Ring leader creates the first token of the configuration.
    Token tok;
    tok.ring_id = view_.ring_id;
    tok.token_seq = 1;
    tok.seq = 0;
    tok.aru = 0;
    scope_.after(cfg_.token_hold_us, [this, e = epoch_, tok] {
      if (e != epoch_) return;
      handle_token(tok);
    });
  }
}

void TotemNode::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec) {
    c_token_pass_ = &rec->counter("totem.token_passes");
    c_rotations_ = &rec->counter("totem.token_rotations");
    c_token_retrans_ = &rec->counter("totem.token_retransmissions");
    c_msg_retrans_ = &rec->counter("totem.msgs_retransmitted");
    c_delivered_ = &rec->counter("totem.msgs_delivered");
    c_ring_changes_ = &rec->counter("totem.ring_changes");
    c_window_stalls_ = &rec->counter("totem.window_stalls");
    c_batch_frames_ = &rec->counter("totem.batch_frames_sent");
  } else {
    c_token_pass_ = c_rotations_ = c_token_retrans_ = c_msg_retrans_ = nullptr;
    c_delivered_ = c_ring_changes_ = c_window_stalls_ = c_batch_frames_ = nullptr;
  }
}

}  // namespace cts::totem
