// Totem single-ring reliable totally-ordered multicast protocol.
//
// This is the group communication substrate the paper builds on (reference
// [1], Amir et al., "The Totem single-ring ordering and membership
// protocol", ACM TOCS 1995).  One TotemNode runs per simulated host, as in
// the paper's testbed ("four copies of Totem run on the four PCs, one for
// each PC").
//
// Implemented protocol features:
//   * token-passing logical ring ordered by node id; lowest id = ring leader;
//   * agreed delivery: every member delivers the same messages in the same
//     total order (token sequence numbers, gap-free);
//   * retransmission requests carried on the token (recovers lost packets);
//   * token retransmission by the previous holder (recovers lost tokens
//     without tearing the ring down);
//   * membership: token-loss timeout or a foreign/join message moves a node
//     to the Gather state; members exchange Join messages, the lowest-id
//     candidate commits a new ring, old-ring messages are recovered before
//     the new configuration is installed (virtual synchrony among
//     survivors);
//   * primary-component model: a configuration is primary iff it contains a
//     strict majority of the configured universe of nodes — only the
//     primary component may continue multicasting (Section 2 of the paper);
//   * sender-side cancellation of queued messages (used by the replication
//     layer's duplicate suppression, the mechanism behind the paper's
//     1 / 9,977 / 22 CCS-message counts).
//
//   * agreed AND safe delivery classes (safe = held until the token's aru
//     confirms group-wide reception over two rotations);
//   * packet envelope with magic + checksum (corrupt datagrams dropped);
//   * batched message path: every message a node originates during one
//     token visit rides ONE batch frame (kBatch), sealed by a single
//     envelope — one checksum, one datagram, per-message zero-copy slices
//     on the receive side.  Retransmissions (token rtr service) stay
//     per-message kMcast frames so one lost original doesn't couple the
//     recovery of its batch-mates.
//
// Simplifications relative to full Totem (documented in DESIGN.md): no
// multiple-ring gateways; flow control is a fixed per-token window.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::totem {

/// Identifies a ring configuration; strictly increasing across changes.
using RingId = std::uint64_t;

/// Protocol timing and policy knobs.
struct TotemConfig {
  /// All nodes that could ever join; a configuration is "primary" iff it
  /// holds a strict majority of this universe.
  std::vector<NodeId> universe;

  /// Token-loss timeout: entering Gather when no token arrives (us).
  Micros token_loss_timeout_us = 5'000;
  /// Previous holder retransmits the token if it sees no progress (us).
  Micros token_retrans_timeout_us = 1'200;
  /// Time a node waits collecting Join messages before forming a ring (us).
  Micros gather_timeout_us = 1'500;
  /// Non-representative waits this long for a Commit before regathering.
  Micros commit_timeout_us = 3'000;
  /// Window for old-ring message recovery after Commit (us).
  Micros recovery_timeout_us = 800;
  /// Max new messages broadcast per token visit (flow control).
  int max_messages_per_token = 8;
  /// Global cap on messages broadcast per full token rotation (Totem's
  /// fcc-based flow control): the token carries the number of messages
  /// broadcast in the current rotation, and a node may only add up to the
  /// remaining budget.  Bounds ring congestion under a flooding sender.
  int window_per_rotation = 64;
  /// Processing time before forwarding the token (us).  Together with the
  /// per-packet network latency this puts the per-hop token-passing time
  /// near the ~51us the paper's testbed measured ([20]).
  Micros token_hold_us = 10;
  /// A node stuck in a NON-primary component periodically re-runs the
  /// membership protocol, broadcasting a Join that the rest of the
  /// universe will hear once a partition heals — so partitions merge even
  /// when no application traffic flows (us).
  Micros seek_interval_us = 50'000;
};

/// Delivery guarantee requested for a multicast message (Totem [1]).
///
///   * kAgreed — delivered once all messages with lower sequence numbers
///     have been delivered: total order, the guarantee the CCS algorithm
///     requires.
///   * kSafe — additionally held until the token's all-received-up-to
///     field confirms, over two successive rotations, that EVERY member of
///     the configuration holds the message.  Slower (≈ two extra token
///     rotations) but a crash can no longer erase a delivered message from
///     history.  Because delivery respects the total order, a safe message
///     also delays the agreed messages sequenced after it.
enum class DeliveryClass : std::uint8_t { kAgreed = 0, kSafe = 1 };

/// A configuration (view) installed by the membership protocol.
struct View {
  RingId ring_id = 0;
  std::vector<NodeId> members;  // sorted ascending; members[0] is the leader
  bool primary = false;         // strict majority of the universe
};

/// Per-node protocol statistics.
struct TotemStats {
  std::uint64_t tokens_sent = 0;
  std::uint64_t tokens_received = 0;
  std::uint64_t token_retransmissions = 0;
  std::uint64_t msgs_multicast = 0;      // user messages this node put on the wire
  std::uint64_t msgs_retransmitted = 0;  // in response to token rtr requests
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_cancelled = 0;  // cancelled while still queued
  std::uint64_t membership_changes = 0;
  std::uint64_t window_stalls = 0;      // token visits that left the send queue non-empty
  std::uint64_t batch_frames_sent = 0;  // kBatch frames put on the wire

  friend bool operator==(const TotemStats&, const TotemStats&) = default;
};

/// One Totem protocol instance (one per simulated host).
class TotemNode {
 public:
  /// Delivery callback: (sender node, payload).  Called in agreed total
  /// order, identical at every member of the configuration.  The payload
  /// is a zero-copy slice of the packet it arrived in.
  using DeliverFn = std::function<void(NodeId, const SharedBytes&)>;
  /// View-change callback, called when a new configuration is installed.
  using ViewFn = std::function<void(const View&)>;

  enum class State { kDown, kGather, kRecover, kOperational };

  TotemNode(sim::Simulator& sim, net::Network& net, NodeId id, TotemConfig cfg);
  ~TotemNode();

  TotemNode(const TotemNode&) = delete;
  TotemNode& operator=(const TotemNode&) = delete;

  /// The node's lifecycle scope.  The Totem daemon is the per-host root of
  /// the protocol stack (one per PC in the paper's testbed), so it owns the
  /// host's scope; every higher layer (GCS, replication, CTS, ORB) reaches
  /// it through accessor chains and schedules its node-owned work here.
  /// `scope().shutdown()` is the fail-stop crash switch: it runs the
  /// layers' shutdown hooks (this daemon's hook calls crash()) and cancels
  /// every timer, in-flight delivery, and parked resume the node owns.
  [[nodiscard]] sim::TaskScope& scope() { return scope_; }

  /// Boot the node: attaches to the network and starts forming a ring.
  void start();

  /// Fail-stop crash: stops all timers and detaches from the network.
  void crash();

  /// Restart after a crash; rejoins whatever ring it discovers.
  void restart();

  /// Queue a message for totally-ordered multicast with the requested
  /// delivery guarantee.  Returns a local handle that can cancel the
  /// message while it is still queued.  If this node is not in a primary
  /// component, the message stays queued until the node rejoins one
  /// (primary-component model).
  std::uint64_t multicast(Bytes payload, DeliveryClass dc = DeliveryClass::kAgreed);

  /// Cancel a queued message.  Returns true if the message had not yet been
  /// put on the wire (and therefore will never be delivered).
  bool cancel(std::uint64_t handle);

  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_view_handler(ViewFn fn) { view_cb_ = std::move(fn); }
  /// Instrumentation hook: invoked on every (non-duplicate) token receipt.
  /// Used by the token-latency benchmark.
  void set_token_observer(std::function<void()> fn) { token_obs_ = std::move(fn); }

  /// Attach (or detach, with nullptr) an observability recorder.
  void set_recorder(obs::Recorder* rec);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const View& view() const { return view_; }
  [[nodiscard]] const TotemStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return send_queue_.size(); }

 private:
  // --- Wire formats -------------------------------------------------------
  enum class MsgType : std::uint8_t {
    kToken = 1,
    kMcast = 2,  // single message: retransmissions and recovery gap-fill
    kJoin = 3,
    kCommit = 4,
    kBatch = 5,  // all messages one node originated during one token visit
  };

  /// Every Totem packet is wrapped in a magic + FNV-1a checksum envelope so
  /// corrupted or foreign datagrams are dropped instead of being
  /// misinterpreted as protocol messages.  Encoders build the envelope and
  /// body scatter-gather in one buffer (begin/finish helpers in totem.cpp)
  /// rather than sealing a separately-allocated body.
  static bool unseal(const SharedBytes& packet, BytesReader& out_reader);

  struct Token {
    RingId ring_id = 0;
    std::uint64_t token_seq = 0;  // circulation counter: dedups old tokens
    TotemSeq seq = 0;             // highest message seq assigned on this ring
    TotemSeq aru = 0;             // all-received-up-to
    NodeId aru_setter;            // who last lowered aru
    std::uint32_t fcc = 0;        // messages broadcast in the current rotation
    std::vector<TotemSeq> rtr;    // retransmission requests
  };

  struct Mcast {
    RingId ring_id = 0;
    TotemSeq seq = 0;
    NodeId sender;
    bool recovery = false;  // rebroadcast of an old-ring message
    DeliveryClass delivery = DeliveryClass::kAgreed;
    // Received messages hold an aliasing slice of the sealed packet they
    // arrived in (zero copy); locally originated ones own their buffer.
    SharedBytes payload;
  };

  struct Join {
    NodeId sender;
    std::vector<NodeId> perceived;  // who the sender believes is alive
    RingId old_ring_id = 0;
    TotemSeq my_aru = 0;
    TotemSeq high_seq = 0;
  };

  struct CommitMember {
    NodeId node;
    RingId old_ring_id = 0;
    TotemSeq aru = 0;
    TotemSeq high_seq = 0;
  };

  struct Commit {
    RingId new_ring_id = 0;
    std::vector<CommitMember> members;
  };

  static Bytes encode_token(const Token& t);
  static Bytes encode_mcast(const Mcast& m);
  static Bytes encode_join(const Join& j);
  static Bytes encode_commit(const Commit& c);
  /// One frame carrying `msgs` in sequence order.  The frame-level
  /// `recovery` flag applies to every entry (a node only ever batches
  /// all-new or all-recovery messages).
  static Bytes encode_batch(std::span<const Mcast> msgs, RingId ring_id, bool recovery);

  // --- Packet handling -----------------------------------------------------
  void on_packet(NodeId src, const SharedBytes& data);
  void handle_token(Token tok);
  void handle_mcast(Mcast m);
  void handle_batch(RingId ring_id, std::vector<Mcast> msgs);
  void handle_join(const Join& j);
  void handle_commit(const Commit& c);

  // --- Operational state ----------------------------------------------------
  void send_token_to_successor(Token tok);
  void store_and_deliver(Mcast m);
  void deliver_contiguous();
  void reset_token_loss_timer();
  void cancel_timers();
  [[nodiscard]] NodeId successor() const;
  [[nodiscard]] bool in_members(NodeId n, const std::vector<NodeId>& members) const;

  // --- Membership ------------------------------------------------------------
  void enter_gather(const char* reason);
  void broadcast_join();
  void on_gather_deadline();
  void begin_recovery(const Commit& c);
  void finish_recovery();
  void install(const View& v);

  [[nodiscard]] bool is_primary(const std::vector<NodeId>& members) const;

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId id_;
  TotemConfig cfg_;
  // The host's lifecycle scope (see scope()).  Declared after the refs it
  // captures; owns no protocol state of its own.
  sim::TaskScope scope_;

  State state_ = State::kDown;
  View view_;

  // Current-ring message store: seq -> message; my_aru = contiguous prefix.
  // FlatMap fits this workload exactly: seqs arrive near-monotonically (an
  // insert is almost always an append at the back), the delivered prefix is
  // never erased one-by-one — the whole store is cleared on ring install or
  // crash — and the hot operations (contains of aru+1, find of the next
  // undelivered seq) are binary searches over a contiguous vector.
  FlatMap<TotemSeq, Mcast> store_;
  TotemSeq my_aru_ = 0;
  TotemSeq delivered_up_to_ = 0;
  std::uint64_t last_token_seq_ = 0;

  // Safe-delivery horizon: min of the token aru over the last two visits —
  // once aru has held at s across a full rotation, every member holds all
  // messages up to s.
  TotemSeq token_aru_prev_ = 0;
  TotemSeq token_aru_last_ = 0;
  // Flow control: how many messages we broadcast at our previous token
  // visit (aged out of the token's fcc when it returns).
  std::uint32_t last_sent_on_token_ = 0;
  bool transitional_flush_ = false;  // recovery: deliver pending safe msgs

  // Outgoing queue with cancellation handles.
  struct Queued {
    std::uint64_t handle;
    DeliveryClass delivery;
    Bytes payload;
  };
  std::deque<Queued> send_queue_;
  std::uint64_t next_handle_ = 1;

  void arm_token_retrans();

  // Token retransmission: last token I forwarded.
  std::optional<Token> last_sent_token_;
  int token_retrans_attempts_ = 0;
  sim::Simulator::EventId token_retrans_timer_{};
  sim::Simulator::EventId token_loss_timer_{};
  bool token_loss_armed_ = false;
  bool token_retrans_armed_ = false;

  // Gather state.
  FlatMap<NodeId, Join> joins_;
  FlatSet<NodeId> perceived_;
  sim::Simulator::EventId gather_timer_{};
  bool gather_armed_ = false;
  sim::Simulator::EventId commit_timer_{};
  bool commit_armed_ = false;

  // Recovery state.
  Commit pending_commit_;
  FlatMap<TotemSeq, Mcast> recovered_;  // old-ring messages gathered in recovery
  sim::Simulator::EventId recovery_timer_{};
  bool recovery_armed_ = false;
  // Highest old-ring seq any surviving member reported; install is delayed
  // (bounded retries) until our contiguous store reaches it, so a lost
  // recovery rebroadcast cannot silently punch a hole in the delivered
  // sequence.
  TotemSeq recovery_target_ = 0;
  int recovery_attempts_ = 0;

  sim::Simulator::EventId seek_timer_{};
  bool seek_armed_ = false;

  // Ring ids this node has been part of or seen; foreign-mcast detection
  // ignores these so stray recovery rebroadcasts don't re-trigger gather.
  FlatSet<RingId> known_rings_;
  RingId max_ring_seen_ = 0;

  DeliverFn deliver_;
  ViewFn view_cb_;
  std::function<void()> token_obs_;
  TotemStats stats_;
  obs::Recorder* rec_ = nullptr;
  // Hot-path counters, resolved once in set_recorder().
  obs::Counter* c_token_pass_ = nullptr;
  obs::Counter* c_rotations_ = nullptr;
  obs::Counter* c_token_retrans_ = nullptr;
  obs::Counter* c_msg_retrans_ = nullptr;
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_ring_changes_ = nullptr;
  obs::Counter* c_window_stalls_ = nullptr;
  obs::Counter* c_batch_frames_ = nullptr;

  // Epoch guard: bumped on crash/restart so stale timer closures become
  // no-ops instead of resurrecting a dead node.
  std::uint64_t epoch_ = 0;
};

}  // namespace cts::totem
