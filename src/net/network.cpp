#include "net/network.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace cts::net {

void Network::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
  down_[node] = false;
}

void Network::detach(NodeId node) {
  handlers_.erase(node);
  scopes_.erase(node);
  down_.erase(node);
  component_of_.erase(node);
}

void Network::bind_scope(NodeId node, sim::TaskScope* scope) {
  if (scope == nullptr) {
    scopes_.erase(node);
  } else {
    scopes_[node] = scope;
  }
}

void Network::set_down(NodeId node, bool down) {
  if (auto it = down_.find(node); it != down_.end()) it->second = down;
}

bool Network::is_down(NodeId node) const {
  auto it = down_.find(node);
  return it == down_.end() || it->second;
}

bool Network::reachable(NodeId src, NodeId dst) const {
  if (is_down(dst)) return false;
  if (component_of_.empty()) return true;
  auto cs = component_of_.find(src);
  auto cd = component_of_.find(dst);
  const int s = cs == component_of_.end() ? -1 : cs->second;
  const int d = cd == component_of_.end() ? -1 : cd->second;
  return s == d;
}

Micros Network::tx_departure(NodeId src, std::size_t payload_size) {
  // The sending NIC serializes packets: this packet leaves the host once
  // the previous one has fully left, plus its own wire time.
  const auto serialization = static_cast<Micros>(
      std::llround(static_cast<double>(payload_size) / cfg_.bytes_per_us));
  Micros& free_at = tx_free_at_[src];
  const Micros depart = std::max(sim_.now(), free_at) + serialization;
  free_at = depart;
  return depart;
}

Micros Network::draw_hop_latency() {
  double jitter = rng_.gaussian(0.0, cfg_.jitter_stddev_us);
  if (jitter < 0) jitter = -jitter;  // jitter only ever adds delay
  return cfg_.base_latency_us + static_cast<Micros>(std::llround(jitter));
}

void Network::deliver(NodeId src, NodeId dst, SharedBytes payload, Micros depart) {
  // In-flight bit corruption: one random bit flips.  The RNG is only
  // touched when the knob is on, so default runs draw the same sequence
  // as before the knob existed.  Corruption is copy-on-write: the shared
  // buffer stays pristine for the other receivers of a broadcast, and the
  // RNG draw order (chance, byte, bit) matches the in-place implementation
  // this replaces.
  if (cfg_.corrupt_probability > 0 && !payload.empty() && rng_.chance(cfg_.corrupt_probability)) {
    const auto byte = static_cast<std::size_t>(rng_.below(payload.size()));
    Bytes mutated = payload.to_bytes();
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    payload = SharedBytes(std::move(mutated));
    ++stats_.packets_corrupted;
    if (c_corrupted_) ++*c_corrupted_;
    if (rec_) {
      rec_->event(obs::EventKind::kNetCorrupt, dst, ReplicaId{}, src.value,
                  static_cast<std::int64_t>(payload.size()));
    }
  }
  const Micros arrive = depart + draw_hop_latency();
  auto on_arrive = [this, src, dst, p = std::move(payload)] {
    // Re-check liveness at delivery time: the destination may have crashed
    // while the packet was in flight without a scope to cancel the packet.
    auto it = handlers_.find(dst);
    if (is_down(dst) || it == handlers_.end()) {
      drop(src, dst, p.size());
      return;
    }
    ++stats_.packets_delivered;
    if (c_delivered_) ++*c_delivered_;
    it->second(src, p);
  };
  // The in-flight packet belongs to the destination's lifecycle scope: a
  // fail-stop shutdown cancels it mid-flight (the wire forgets packets to a
  // dead NIC) instead of delivering-then-dropping after the crash.
  auto sc = scopes_.find(dst);
  if (sc != scopes_.end()) {
    sc->second->after(arrive - sim_.now(), std::move(on_arrive));
  } else {
    sim_.after(arrive - sim_.now(), std::move(on_arrive));
  }
}

void Network::drop(NodeId src, NodeId dst, std::size_t payload_size) {
  ++stats_.packets_dropped;
  if (c_dropped_) ++*c_dropped_;
  if (rec_) {
    rec_->event(obs::EventKind::kNetDrop, dst, ReplicaId{}, src.value,
                static_cast<std::int64_t>(payload_size));
  }
}

void Network::send(NodeId src, NodeId dst, SharedBytes payload) {
  ++stats_.packets_sent;
  stats_.bytes_sent += payload.size();
  if (c_sent_) ++*c_sent_;
  const Micros depart = tx_departure(src, payload.size());
  if (!reachable(src, dst) || rng_.chance(cfg_.loss_probability)) {
    drop(src, dst, payload.size());
    return;
  }
  deliver(src, dst, std::move(payload), depart);
}

void Network::broadcast(NodeId src, SharedBytes payload) {
  ++stats_.packets_sent;
  stats_.bytes_sent += payload.size();
  if (c_sent_) ++*c_sent_;
  // One transmission serves every receiver (Ethernet broadcast); loss and
  // jitter are drawn per receiver (independent NIC/interrupt behavior).
  const Micros depart = tx_departure(src, payload.size());
  for (const auto& [node, handler] : handlers_) {
    if (node == src) continue;
    if (!reachable(src, node) || rng_.chance(cfg_.loss_probability)) {
      drop(src, node, payload.size());
      continue;
    }
    deliver(src, node, payload, depart);
  }
}

void Network::partition(const std::vector<std::vector<NodeId>>& components) {
  component_of_.clear();
  int idx = 0;
  for (const auto& comp : components) {
    for (NodeId n : comp) component_of_[n] = idx;
    ++idx;
  }
  CTS_INFO() << "network partitioned into " << components.size() << "+ components";
  if (rec_) {
    ++rec_->counter("net.partitions");
    rec_->event(obs::EventKind::kNetPartition, NodeId{}, ReplicaId{},
                components.empty() ? 0 : static_cast<std::int64_t>(components[0].size()),
                components.size() > 1 ? static_cast<std::int64_t>(components[1].size()) : 0);
  }
}

void Network::heal() {
  component_of_.clear();
  CTS_INFO() << "network partition healed";
  if (rec_) {
    ++rec_->counter("net.heals");
    rec_->event(obs::EventKind::kNetHeal);
  }
}

void Network::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec) {
    c_sent_ = &rec->counter("net.packets_sent");
    c_delivered_ = &rec->counter("net.packets_delivered");
    c_dropped_ = &rec->counter("net.packets_dropped");
    c_corrupted_ = &rec->counter("net.packets_corrupted");
  } else {
    c_sent_ = c_delivered_ = c_dropped_ = c_corrupted_ = nullptr;
  }
}

}  // namespace cts::net
