#include "net/network.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace cts::net {

void Network::attach(NodeId node, Handler handler) {
  NodeSlot& s = nodes_.ensure(node.value);
  s.handler = std::move(handler);
  s.attached = true;
  s.down = false;
}

void Network::detach(NodeId node) {
  // Matches the old five-map behavior: handler/scope/down/component state is
  // dropped, but the NIC's tx_free_at survives (a re-attached host still
  // queues behind its own historical transmissions).
  if (NodeSlot* s = nodes_.find(node.value)) {
    s->handler = nullptr;
    s->scope = nullptr;
    s->attached = false;
    s->down = false;
    if (s->component != -1) {
      s->component = -1;
      --components_assigned_;
    }
  }
}

void Network::bind_scope(NodeId node, sim::TaskScope* scope) {
  nodes_.ensure(node.value).scope = scope;
}

void Network::set_down(NodeId node, bool down) {
  // Only attached hosts track liveness, as with the old down_ map whose
  // entries existed exactly for attached nodes.
  if (NodeSlot* s = nodes_.find(node.value); s != nullptr && s->attached) s->down = down;
}

bool Network::is_down(NodeId node) const {
  const NodeSlot* s = nodes_.find(node.value);
  return s == nullptr || !s->attached || s->down;
}

bool Network::reachable(NodeId src, NodeId dst) const {
  if (is_down(dst)) return false;
  if (components_assigned_ == 0) return true;
  return component_of(src) == component_of(dst);
}

int Network::component_of(NodeId node) const {
  if (const NodeSlot* s = nodes_.find(node.value)) return s->component;
  if (auto it = sparse_components_.find(node.value); it != sparse_components_.end()) {
    return it->second;
  }
  return -1;
}

Micros Network::tx_departure(NodeId src, std::size_t payload_size) {
  // The sending NIC serializes packets: this packet leaves the host once
  // the previous one has fully left, plus its own wire time.
  const auto serialization = static_cast<Micros>(
      std::llround(static_cast<double>(payload_size) / cfg_.bytes_per_us));
  Micros& free_at = nodes_.ensure(src.value).tx_free_at;
  const Micros depart = std::max(sim_.now(), free_at) + serialization;
  free_at = depart;
  return depart;
}

Micros Network::draw_hop_latency() {
  double jitter = rng_.gaussian(0.0, cfg_.jitter_stddev_us);
  if (jitter < 0) jitter = -jitter;  // jitter only ever adds delay
  return cfg_.base_latency_us + static_cast<Micros>(std::llround(jitter));
}

void Network::deliver(NodeId src, NodeId dst, SharedBytes payload, Micros depart) {
  // In-flight bit corruption: one random bit flips.  The RNG is only
  // touched when the knob is on, so default runs draw the same sequence
  // as before the knob existed.  Corruption is copy-on-write: the shared
  // buffer stays pristine for the other receivers of a broadcast, and the
  // RNG draw order (chance, byte, bit) matches the in-place implementation
  // this replaces.
  if (cfg_.corrupt_probability > 0 && !payload.empty() && rng_.chance(cfg_.corrupt_probability)) {
    const auto byte = static_cast<std::size_t>(rng_.below(payload.size()));
    Bytes mutated = payload.to_bytes();
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    payload = SharedBytes(std::move(mutated));
    ++stats_.packets_corrupted;
    if (c_corrupted_) ++*c_corrupted_;
    if (rec_) {
      rec_->event(obs::EventKind::kNetCorrupt, dst, ReplicaId{}, src.value,
                  static_cast<std::int64_t>(payload.size()));
    }
  }
  const Micros arrive = depart + draw_hop_latency();
  auto on_arrive = [this, src, dst, p = std::move(payload)] {
    // Re-check liveness at delivery time: the destination may have crashed
    // while the packet was in flight without a scope to cancel the packet.
    NodeSlot* s = nodes_.find(dst.value);
    if (s == nullptr || !s->attached || s->down) {
      drop(src, dst, p.size());
      return;
    }
    ++stats_.packets_delivered;
    if (c_delivered_) ++*c_delivered_;
    s->handler(src, p);
  };
  // The in-flight packet belongs to the destination's lifecycle scope: a
  // fail-stop shutdown cancels it mid-flight (the wire forgets packets to a
  // dead NIC) instead of delivering-then-dropping after the crash.
  NodeSlot* sd = nodes_.find(dst.value);
  if (sd != nullptr && sd->scope != nullptr) {
    sd->scope->after(arrive - sim_.now(), std::move(on_arrive));
  } else {
    sim_.after(arrive - sim_.now(), std::move(on_arrive));
  }
}

void Network::drop(NodeId src, NodeId dst, std::size_t payload_size) {
  ++stats_.packets_dropped;
  if (c_dropped_) ++*c_dropped_;
  if (rec_) {
    rec_->event(obs::EventKind::kNetDrop, dst, ReplicaId{}, src.value,
                static_cast<std::int64_t>(payload_size));
  }
}

void Network::send(NodeId src, NodeId dst, SharedBytes payload) {
  ++stats_.packets_sent;
  stats_.bytes_sent += payload.size();
  if (c_sent_) ++*c_sent_;
  const Micros depart = tx_departure(src, payload.size());
  if (!reachable(src, dst) || rng_.chance(cfg_.loss_probability)) {
    drop(src, dst, payload.size());
    return;
  }
  deliver(src, dst, std::move(payload), depart);
}

void Network::broadcast(NodeId src, SharedBytes payload) {
  ++stats_.packets_sent;
  stats_.bytes_sent += payload.size();
  if (c_sent_) ++*c_sent_;
  // One transmission serves every receiver (Ethernet broadcast); loss and
  // jitter are drawn per receiver (independent NIC/interrupt behavior).
  // Ascending node-id walk — the same receiver order (and therefore the
  // same per-receiver RNG draw order) as the ordered map this replaces.
  const Micros depart = tx_departure(src, payload.size());
  nodes_.for_each([&](std::uint32_t id, NodeSlot& slot) {
    if (!slot.attached || id == src.value) return;
    const NodeId node{id};
    if (!reachable(src, node) || rng_.chance(cfg_.loss_probability)) {
      drop(src, node, payload.size());
      return;
    }
    deliver(src, node, payload, depart);
  });
}

void Network::partition(const std::vector<std::vector<NodeId>>& components) {
  nodes_.for_each([](std::uint32_t, NodeSlot& s) { s.component = -1; });
  sparse_components_.clear();
  components_assigned_ = 0;
  int idx = 0;
  for (const auto& comp : components) {
    for (NodeId n : comp) {
      if (n.value > decltype(nodes_)::kMaxDenseId) {
        // Sentinel/invalid ids: the old std::map stored them as inert
        // entries, so they still count as "assigned" (partitioned() is
        // true) without ever growing the dense slot array.
        auto [it, fresh] = sparse_components_.try_emplace(n.value, idx);
        if (fresh) ++components_assigned_;
        it->second = idx;
        continue;
      }
      NodeSlot& s = nodes_.ensure(n.value);
      if (s.component == -1) ++components_assigned_;
      s.component = idx;
    }
    ++idx;
  }
  CTS_INFO() << "network partitioned into " << components.size() << "+ components";
  if (rec_) {
    // By-name lookup is fine here: partition()/heal() run per injected
    // fault, not per packet (the packet counters below are cached).
    ++rec_->counter("net.partitions");
    rec_->event(obs::EventKind::kNetPartition, NodeId{}, ReplicaId{},
                components.empty() ? 0 : static_cast<std::int64_t>(components[0].size()),
                components.size() > 1 ? static_cast<std::int64_t>(components[1].size()) : 0);
  }
}

void Network::heal() {
  nodes_.for_each([](std::uint32_t, NodeSlot& s) { s.component = -1; });
  sparse_components_.clear();
  components_assigned_ = 0;
  CTS_INFO() << "network partition healed";
  if (rec_) {
    ++rec_->counter("net.heals");
    rec_->event(obs::EventKind::kNetHeal);
  }
}

void Network::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  if (rec) {
    c_sent_ = &rec->counter("net.packets_sent");
    c_delivered_ = &rec->counter("net.packets_delivered");
    c_dropped_ = &rec->counter("net.packets_dropped");
    c_corrupted_ = &rec->counter("net.packets_corrupted");
  } else {
    c_sent_ = c_delivered_ = c_dropped_ = c_corrupted_ = nullptr;
  }
}

}  // namespace cts::net
