// InterIslandLink: the wide-area hop between simulation islands.
//
// Each island models one LAN (one Totem ring) on its own Simulator; this
// link models the slower network between them.  Its single load-bearing
// property is the latency floor: every frame takes at least `latency_us`
// of virtual time, and `latency_us` must be at least the coordinator's
// conservative window floor — that inequality is what lets islands run a
// whole barrier window in parallel without ever missing an incoming frame
// (doc/PARALLEL.md).  The floor is checked against the coordinator at
// construction and again on every send.
//
// Thread discipline (enforced by construction, verified by the TSan CI
// leg): send() runs on the source island's worker and touches only that
// island's state — its simulator clock, its per-island stats slot, and its
// private mailbox cell inside the coordinator.  Delivery callbacks run on
// the destination island's worker.  The endpoint table is written only
// during single-threaded setup (attach before the first run) and is
// read-only afterwards.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace cts::net {

struct IslandLinkConfig {
  /// One-way latency of every inter-island frame.  Must be >= the
  /// coordinator's window floor (asserted) — the conservative barrier is
  /// only sound if no frame can undercut it.
  Micros latency_us = 500;
};

class InterIslandLink {
 public:
  /// Called on the destination island's worker with the source island and
  /// the frame bytes.
  // detlint:allow(heap-callback): constructed once per island at attach()
  // during setup, never on the per-frame path
  using DeliverFn = std::function<void(sim::IslandId src, Bytes frame)>;

  struct LinkStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
  };

  InterIslandLink(sim::IslandCoordinator& coord, IslandLinkConfig cfg)
      : coord_(coord), cfg_(cfg) {
    assert(cfg_.latency_us >= coord_.window_floor());
  }

  InterIslandLink(const InterIslandLink&) = delete;
  InterIslandLink& operator=(const InterIslandLink&) = delete;

  /// Register island `island`'s endpoint.  Setup-phase only: every attach
  /// must happen before the coordinator's first run (the endpoint table is
  /// immutable while workers exist).
  void attach(sim::IslandId island, sim::Simulator& sim, DeliverFn on_deliver) {
    if (eps_.size() <= island) {
      eps_.resize(island + 1);
      stats_.resize(island + 1);
    }
    eps_[island].sim = &sim;
    eps_[island].fn = std::move(on_deliver);
  }

  /// Send `frame` from island `src` to island `dst`; it is delivered
  /// `latency_us` later (destination time) on the destination's worker.
  /// Must be called from `src`'s execution context.
  void send(sim::IslandId src, sim::IslandId dst, Bytes frame) {
    assert(src < eps_.size() && eps_[src].sim != nullptr && "source island not attached");
    assert(dst < eps_.size() && eps_[dst].fn && "destination island not attached");
    auto& st = stats_[src];  // src's own slot: only src's worker writes it
    ++st.frames_sent;
    st.bytes_sent += frame.size();
    const Micros deliver_at = eps_[src].sim->now() + cfg_.latency_us;
    coord_.post(src, dst, deliver_at,
                [ep = &eps_[dst], src, frame = std::move(frame)]() mutable {
                  ep->fn(src, std::move(frame));
                });
  }

  [[nodiscard]] Micros latency() const { return cfg_.latency_us; }

  /// Per-source-island counters.  Read between runs (not during an epoch).
  [[nodiscard]] const LinkStats& stats_of(sim::IslandId island) const {
    return stats_[island];
  }

  /// Sum over all islands.  Read between runs.
  [[nodiscard]] LinkStats total_stats() const {
    LinkStats t;
    for (const LinkStats& s : stats_) {
      t.frames_sent += s.frames_sent;
      t.bytes_sent += s.bytes_sent;
    }
    return t;
  }

 private:
  struct Endpoint {
    sim::Simulator* sim = nullptr;
    DeliverFn fn;
  };

  sim::IslandCoordinator& coord_;
  IslandLinkConfig cfg_;
  std::vector<Endpoint> eps_;
  std::vector<LinkStats> stats_;
};

}  // namespace cts::net
