// Simulated local-area network.
//
// Models the paper's testbed network: a single 100 Mbit/s Ethernet segment
// with no competing traffic.  Packets experience a per-hop latency (base +
// jitter + serialization time proportional to size), may be dropped with a
// configurable probability, and are not delivered across a partition or to
// a crashed host.  Totem's reliability machinery (retransmission requests
// carried on the token) recovers dropped packets, exactly as on real
// hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::net {

/// Tuning knobs for the LAN model.  Defaults are calibrated so that the
/// Totem token-passing time peaks near 51 us, matching the measurement the
/// paper cites from [20] for its 4-node 100 Mb/s testbed.
struct NetworkConfig {
  /// Fixed one-hop propagation + interrupt + kernel cost, microseconds.
  /// (Serialization time, bytes/bytes_per_us, is charged separately and
  /// serializes per sending NIC.)
  Micros base_latency_us = 40;
  /// Std-dev of gaussian jitter added to each packet, microseconds.
  double jitter_stddev_us = 4.0;
  /// Wire rate in bytes per microsecond (100 Mb/s = 12.5 B/us).
  double bytes_per_us = 12.5;
  /// Independent per-packet drop probability (0 on the paper's quiet LAN;
  /// raised by the fault-injection tests).
  double loss_probability = 0.0;
  /// Independent per-packet in-flight corruption probability: one random
  /// bit of the payload is flipped.  Totem's FNV-1a sealed envelope detects
  /// and discards such packets, so corruption manifests upstream as loss.
  /// When 0 (the default) no RNG draw is made, so existing calibrated runs
  /// see an unchanged random sequence.
  double corrupt_probability = 0.0;
};

/// Counters for wire-level traffic, per node and total.
struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t bytes_sent = 0;
};

/// The broadcast domain connecting all simulated hosts.
class Network {
 public:
  /// Receive callback: (source node, payload bytes).  The payload is a
  /// refcounted view shared with every other receiver of the same
  /// broadcast; handlers that keep it keep only the refcount.
  // detlint:allow(heap-callback): bound once at attach(), never constructed
  // on the per-packet path — only invoked there.
  using Handler = std::function<void(NodeId, const SharedBytes&)>;

  Network(sim::Simulator& sim, NetworkConfig cfg)
      : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {}

  /// Register a host's packet-receive handler.  A host must be attached
  /// before anyone can send to it.
  void attach(NodeId node, Handler handler);

  /// Detach a host entirely (used when simulating permanent removal).
  void detach(NodeId node);

  /// Bind (or unbind, with nullptr) a host's lifecycle scope.  In-flight
  /// packets to the host are scheduled through its scope, so a fail-stop
  /// shutdown cancels them alongside the host's own timers.  Bound by the
  /// host's TotemNode; unbound when it is destroyed.
  void bind_scope(NodeId node, sim::TaskScope* scope);

  /// Mark a host down (crashed) or back up.  A down host neither receives
  /// packets nor should send them (its protocol stack is stopped).
  void set_down(NodeId node, bool down);
  [[nodiscard]] bool is_down(NodeId node) const;

  /// Unicast `payload` from `src` to `dst`.  Takes the payload by value:
  /// a Bytes rvalue converts with a single move (no copy), and the
  /// in-flight packet holds a refcount, not a duplicate buffer.
  void send(NodeId src, NodeId dst, SharedBytes payload);

  /// Broadcast `payload` from `src` to every attached host except `src`.
  /// The payload buffer is allocated once and shared by every receiver's
  /// in-flight packet.  (Totem multicasts regular messages; the sender
  /// delivers locally without the network.)
  void broadcast(NodeId src, SharedBytes payload);

  /// Split the network into components; packets cross components only after
  /// heal().  Each node appears in at most one component; unlisted nodes
  /// form an implicit final component.
  void partition(const std::vector<std::vector<NodeId>>& components);
  void heal();
  [[nodiscard]] bool partitioned() const { return components_assigned_ > 0; }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] NetworkConfig& config() { return cfg_; }

  /// Attach (or detach, with nullptr) an observability recorder.  Purely
  /// passive: recording never schedules events or draws randomness.
  void set_recorder(obs::Recorder* rec);

 private:
  /// Everything the network knows about one host, in one cache-friendly
  /// slot indexed directly by node id.  This replaces five parallel
  /// `std::map<NodeId, ...>` instances (handlers/scopes/down/tx_free_at/
  /// component_of), collapsing the five per-packet map lookups into array
  /// loads.  Iteration over attached slots is ascending-id — identical to
  /// the old ordered-map walk, so broadcast's per-receiver RNG draw order
  /// (part of the deterministic schedule) is unchanged.
  struct NodeSlot {
    Handler handler;
    sim::TaskScope* scope = nullptr;
    // Per-node NIC: a host transmits one packet at a time at the wire
    // rate, so a burst (e.g. checkpoint fragments) queues behind itself.
    // Survives detach(), like the old standalone tx_free_at_ map.
    Micros tx_free_at = 0;
    int component = -1;  // -1 = not in any partition component
    bool attached = false;
    bool down = false;
  };

  [[nodiscard]] bool reachable(NodeId src, NodeId dst) const;
  [[nodiscard]] int component_of(NodeId node) const;
  [[nodiscard]] Micros tx_departure(NodeId src, std::size_t payload_size);
  [[nodiscard]] Micros draw_hop_latency();
  void deliver(NodeId src, NodeId dst, SharedBytes payload, Micros depart);
  void drop(NodeId src, NodeId dst, std::size_t payload_size);

  sim::Simulator& sim_;
  NetworkConfig cfg_;
  Rng rng_;
  // Deterministic ordered storage, deliberately: broadcast() walks the
  // slots drawing per-receiver loss/jitter randomness, so iteration order
  // is part of the deterministic schedule.  A hash map here would tie the
  // RNG sequence to hash-table layout, which varies across standard-library
  // versions; DenseNodeIndex iterates in ascending node-id order.
  DenseNodeIndex<NodeSlot> nodes_;
  int components_assigned_ = 0;  // #ids (dense or sparse) with component != -1
  // Component assignments for ids the dense index cannot hold (callers can
  // legitimately pass sentinel/unattached ids — e.g. a default NodeId — to
  // partition(); the old std::map stored them inertly, and so do we).
  FlatMap<std::uint32_t, int> sparse_components_;
  NetworkStats stats_;
  obs::Recorder* rec_ = nullptr;
  // Hot-path counters, resolved once in set_recorder().
  obs::Counter* c_sent_ = nullptr;
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_corrupted_ = nullptr;
};

}  // namespace cts::net
