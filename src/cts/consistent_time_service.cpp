#include "cts/consistent_time_service.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cts::ccs {

const char* to_string(ClockCallType t) {
  switch (t) {
    case ClockCallType::kGettimeofday:
      return "gettimeofday";
    case ClockCallType::kTime:
      return "time";
    case ClockCallType::kFtime:
      return "ftime";
    case ClockCallType::kClockGettime:
      return "clock_gettime";
  }
  return "?";
}

ConsistentTimeService::ConsistentTimeService(sim::Simulator& sim, gcs::GcsEndpoint& gcs,
                                             clock::PhysicalClock& clk, CtsConfig cfg)
    : sim_(sim), gcs_(gcs), clock_(clk), cfg_(cfg), scope_(gcs.scope()) {
  // Paper initialization (Figure 2, lines 1-2): offset and round numbers
  // start at zero, so the first CCS message carries the raw physical
  // hardware clock value.
  my_clock_offset_ = 0;

  // In passive/semi-active styles a replica is a backup until the
  // replication infrastructure promotes it; in active replication the flag
  // is irrelevant (everyone competes).
  primary_ = (cfg_.style == ReplicationStyle::kActive);

  // The special-round handler exists from the start at every replica.
  handlers_[kSpecialThread].my_thread_id = kSpecialThread;

  gcs_.subscribe(cfg_.group, [this](const gcs::Message& m) {
    if (m.hdr.type == gcs::MsgType::kCcs && m.hdr.conn == cfg_.ccs_conn) {
      on_ccs_delivered(m);
    }
  });

  // Fail-stop: when the node's scope shuts down, abandon every in-flight
  // round — a dead replica answers no callers.  Registered per instance and
  // removed in the destructor, because crash/restart cycles rebuild the CTS
  // while the node's scope persists across the replacement.
  shutdown_hook_ = scope_.on_shutdown([this] { abandon_inflight_rounds(); });
}

ConsistentTimeService::~ConsistentTimeService() { scope_.remove_hook(shutdown_hook_); }

void ConsistentTimeService::abandon_inflight_rounds() {
  std::uint64_t frames = 0;
  for (auto& [t, h] : handlers_) {
    if (h.waiting && h.waiting.is_coroutine()) ++frames;
    // Dropping the continuation destroys a parked coroutine frame (and any
    // locals it holds) or discards the callback — never invokes either.
    h.waiting = RoundContinuation{};
  }
  recovery_done_ = nullptr;
  if (frames > 0) scope_.note_frames_destroyed(frames);
}

// --- Thread registration ----------------------------------------------------------

void ConsistentTimeService::register_thread(ThreadId t) {
  auto [it, fresh] = handlers_.try_emplace(t);
  if (!fresh) return;
  it->second.my_thread_id = t;
  // Drain CCS messages that arrived before the thread existed (paper 3.1:
  // my_common_input_buffer).
  auto cb = common_input_buffer_.find(t);
  if (cb != common_input_buffer_.end()) {
    for (auto& msg : cb->second) recv_into_handler(it->second, std::move(msg));
    common_input_buffer_.erase(cb);
  }
}

// --- The clock-related operation ----------------------------------------------------

Micros ConsistentTimeService::propose_local_clock(Micros physical) {
  // Paper Figure 2, line 4: local logical clock = physical + offset.
  Micros local = physical + my_clock_offset_;
  if (cfg_.drift == DriftCompensation::kReferenceBias && reference_ != nullptr) {
    // Section 3.3: add a small proportion of (reference − proposal) so the
    // group clock acquires a repeated bias toward drift-free real time.
    const Micros ref = reference_->read();
    local += static_cast<Micros>(cfg_.reference_gain * static_cast<double>(ref - local));
  }
  // Multi-group causality (Section 5): never propose at or below an
  // observed remote timestamp.  Applied LAST — a reference pulling the
  // proposal backwards must not undercut the floor.
  if (causal_floor_ != kNoTime && local <= causal_floor_) local = causal_floor_ + 1;
  return local;
}

bool ConsistentTimeService::start_round(ThreadId thread, ClockCallType call_type, DoneFn done) {
  return start_round_impl(thread, call_type, RoundContinuation{std::move(done)});
}

bool ConsistentTimeService::start_round_impl(ThreadId thread, ClockCallType call_type,
                                            RoundContinuation done) {
  register_thread(thread);  // idempotent; tolerates lazy registration
  CcsHandler& h = handlers_.at(thread);
  if (h.waiting) {
    // Always-on guard (paper 3.1: clock-related operations within a thread
    // are sequential).  Proceeding would silently clobber the in-flight
    // round's DoneFn, stranding its caller forever.
    ++stats_.reentrant_rejected;
    if (c_reentrant_) ++*c_reentrant_;
    if (rec_) {
      rec_->event(obs::EventKind::kCcsReentrantCall, gcs_.node_id(), cfg_.replica, thread.value);
    }
    CTS_ERROR() << "replica " << to_string(cfg_.replica) << ": clock-related operation started on "
                << to_string(thread) << " while round " << h.my_round_number
                << " is still in flight; call rejected";
    // For a coroutine continuation the awaiter retains ownership of the
    // suspended frame on this path (it resumes the frame with kNoTime), so
    // `done` must not destroy the frame when it goes out of scope.
    done.release();
    return false;
  }

  // Figure 2, line 9: a new round begins.
  ++h.my_round_number;

  // Figure 2, lines 3-4.
  h.pc_at_round = clock_.read();
  h.proposed_at_round = propose_local_clock(h.pc_at_round);
  h.call_type = call_type;
  h.sent_this_round = false;
  h.waiting = std::move(done);
  if (rec_) {
    rec_->event(obs::EventKind::kCcsRoundStart, gcs_.node_id(), cfg_.replica, thread.value,
                static_cast<std::int64_t>(h.my_round_number));
  }

  // Figure 2, lines 11-13: send only if nothing is buffered for this round.
  // Passive/semi-active backups never send (Section 3.3); if the primary
  // dies, set_primary() re-issues the proposal.
  if (h.my_input_buffer.empty()) {
    const bool may_send = cfg_.style == ReplicationStyle::kActive || primary_;
    if (may_send && !recovering_) send_proposal(h, /*special=*/false);
  } else {
    ++stats_.sends_avoided;
    if (c_avoided_) ++*c_avoided_;
    if (rec_) {
      rec_->event(obs::EventKind::kCcsSendAvoided, gcs_.node_id(), cfg_.replica, thread.value,
                  static_cast<std::int64_t>(h.my_round_number));
    }
  }

  try_complete(h);
  return true;
}

void ConsistentTimeService::send_proposal(CcsHandler& h, bool special) {
  CcsPayload p;
  p.thread = h.my_thread_id;
  p.call_type = h.call_type;
  p.proposed_clock = h.proposed_at_round;
  p.special_round = special;

  gcs::Message m;
  m.hdr.type = gcs::MsgType::kCcs;
  m.hdr.src_grp = cfg_.group;
  m.hdr.dst_grp = cfg_.group;
  m.hdr.conn = cfg_.ccs_conn;
  m.hdr.tag = h.my_thread_id;
  m.hdr.seq = h.my_round_number;
  m.hdr.sender_replica = cfg_.replica;
  m.payload = p.encode();
  gcs_.send(std::move(m));
  h.sent_this_round = true;
  ++stats_.sends_initiated;
  if (c_sends_) ++*c_sends_;
  if (orc_) {
    orc_->on_ccs_send(cfg_.group, cfg_.replica, h.my_thread_id, h.my_round_number,
                      h.proposed_at_round, special);
  }
}

// --- Delivery path --------------------------------------------------------------------

void ConsistentTimeService::on_ccs_delivered(const gcs::Message& m) {
  CcsPayload p;
  try {
    p = CcsPayload::decode(m.payload);
  } catch (const CodecError& e) {
    CTS_WARN() << "malformed CCS payload: " << e.what();
    return;
  }

  // Monotonicity guard, applied in the agreed delivery order so every
  // replica computes the same effective value.  With the paper's single
  // processing thread this never fires; with concurrent threads it
  // guarantees the group clock cannot move backwards.
  Micros effective = p.proposed_clock;
  if (last_group_clock_ != kNoTime && effective <= last_group_clock_) {
    effective = last_group_clock_ + 1;
  }
  if (cfg_.max_forward_jump_us > 0 && last_group_clock_ != kNoTime &&
      effective > last_group_clock_ + cfg_.max_forward_jump_us) {
    // Fast-forward guard: a wildly-ahead proposal (stepped hardware clock)
    // is clamped; the sender's offset re-derives against the clamped value
    // so the group clock resumes normal pace immediately.
    effective = last_group_clock_ + cfg_.max_forward_jump_us;
  }
  last_group_clock_ = effective;
  p.proposed_clock = effective;

  if (p.special_round) {
    if (recovering_) {
      // Section 3.2: the recovering replica does not compete; it performs a
      // clock-related operation as soon as it receives the special-round
      // CCS message and adjusts its offset to the group clock.
      const Micros pc = clock_.read();
      my_clock_offset_ = effective - pc;
      CcsHandler& sh = handlers_[kSpecialThread];
      sh.my_thread_id = kSpecialThread;
      sh.my_round_number = m.hdr.seq;
      sh.last_seq_seen = m.hdr.seq;
      recovering_ = false;
      ++stats_.special_rounds;
      if (orc_) {
        orc_->on_round_complete(cfg_.group, cfg_.replica, kSpecialThread, m.hdr.seq, effective,
                                m.hdr.sender_replica, /*special=*/true);
      }
      CTS_INFO() << "replica " << to_string(cfg_.replica)
                 << " clock initialized from group clock " << effective << " (offset "
                 << my_clock_offset_ << ")";
      if (recovery_done_) {
        auto done = std::move(recovery_done_);
        recovery_done_ = nullptr;
        done(effective);
      }
      return;
    }
    CcsHandler& sh = handlers_[kSpecialThread];
    if (m.hdr.seq <= sh.last_seq_seen) {
      ++stats_.duplicates_dropped;
      if (c_duplicates_) ++*c_duplicates_;
      return;
    }
    if (sh.waiting) {
      // This replica ran run_special_round() and is blocked on the result:
      // complete it through the normal path.
      sh.last_seq_seen = m.hdr.seq;
      BufferedMsg b{p, m.hdr.seq, m.hdr.sender_replica, m.hdr.sender_node};
      sh.my_input_buffer.push_back(std::move(b));
      try_complete(sh);
    } else {
      // A passive backup never processes GET_STATE, so it adopts the
      // special round's value directly, keeping its offset and round
      // numbering aligned with the rest of the group.
      const Micros pc = clock_.read();
      my_clock_offset_ = effective - pc;
      sh.my_round_number = m.hdr.seq;
      sh.last_seq_seen = m.hdr.seq;
      ++stats_.special_rounds;
      if (orc_) {
        orc_->on_round_complete(cfg_.group, cfg_.replica, kSpecialThread, m.hdr.seq, effective,
                                m.hdr.sender_replica, /*special=*/true);
      }
    }
    return;
  }

  BufferedMsg b;
  b.payload = p;
  b.seq = m.hdr.seq;
  b.sender_replica = m.hdr.sender_replica;
  b.sender_node = m.hdr.sender_node;

  auto it = handlers_.find(m.hdr.tag);
  if (it == handlers_.end()) {
    // The thread that will perform this logical operation has not been
    // created yet at this (slow) replica: park the message in the common
    // input buffer (Figure 3, line 4).
    common_input_buffer_[m.hdr.tag].push_back(std::move(b));
    return;
  }
  recv_into_handler(it->second, std::move(b));
}

void ConsistentTimeService::recv_into_handler(CcsHandler& h, BufferedMsg msg) {
  // Figure 3, lines 5 & 10: duplicate detection based on msg_seq_num.
  if (msg.seq <= h.last_seq_seen) {
    ++stats_.duplicates_dropped;
    if (c_duplicates_) ++*c_duplicates_;
    return;
  }
  h.last_seq_seen = msg.seq;
  h.my_input_buffer.push_back(std::move(msg));
  // Figure 3, lines 8-9: wake the blocked thread, if any.
  try_complete(h);
}

void ConsistentTimeService::try_complete(CcsHandler& h) {
  if (!h.waiting || h.my_input_buffer.empty()) return;

  // Figure 2, lines 15-17: take the first message; its clock value is the
  // consistent group clock value for the round.
  BufferedMsg msg = std::move(h.my_input_buffer.front());
  h.my_input_buffer.pop_front();

  const Micros grp = msg.payload.proposed_clock;

  // Figure 2, line 7: offset = group clock − this replica's physical
  // reading for the round.
  const Micros raw_offset = grp - h.pc_at_round;
  my_clock_offset_ = raw_offset;
  if (cfg_.drift == DriftCompensation::kMeanDelay) {
    // Section 3.3: compensate for the mean communication/processing delay.
    my_clock_offset_ += cfg_.mean_delay_us;
  } else if (cfg_.drift == DriftCompensation::kAdaptiveMeanDelay) {
    // Same idea, but the "mean delay" is estimated online.  The raw offset
    // shrinks each round by (true delay − current estimate), so integrating
    // the signed shrinkage steers the estimate to the true delay: when we
    // under-compensate the offset keeps falling and the estimate grows;
    // when we over-compensate it rises and the estimate backs off.
    if (prev_raw_offset_ != kNoTime) {
      const double delta = static_cast<double>(prev_raw_offset_ - raw_offset);
      estimated_round_delay_us_ += cfg_.adaptive_alpha * delta;
      if (estimated_round_delay_us_ < 0) estimated_round_delay_us_ = 0;
    }
    prev_raw_offset_ = raw_offset;
    my_clock_offset_ += static_cast<Micros>(estimated_round_delay_us_);
  }

  ++stats_.rounds_completed;
  if (c_rounds_) ++*c_rounds_;
  const bool won = msg.sender_replica == cfg_.replica;
  if (won) {
    ++stats_.rounds_won;
    if (c_wins_) ++*c_wins_;
  }
  if (msg.payload.special_round) ++stats_.special_rounds;
  if (rec_) {
    rec_->event(obs::EventKind::kCcsRoundComplete, gcs_.node_id(), cfg_.replica,
                static_cast<std::int64_t>(h.my_round_number),
                static_cast<std::int64_t>(msg.sender_replica.value), grp);
    if (won) {
      // One kSynchronizerWin per (thread, round) across the whole group:
      // only the replica whose proposal was ordered first records it.
      rec_->event(obs::EventKind::kSynchronizerWin, gcs_.node_id(), cfg_.replica,
                  static_cast<std::int64_t>(h.my_round_number),
                  static_cast<std::int64_t>(h.my_thread_id.value));
    }
    // Observed skew of the agreed group clock vs drift-free real time
    // (epoch + simulated now).  Signed value in the event and gauge; the
    // histogram takes the magnitude (Histogram rejects negatives).
    const Micros skew = grp - (clock_.config().epoch_us + sim_.now());
    rec_->event(obs::EventKind::kSkewSample, gcs_.node_id(), cfg_.replica, skew,
                static_cast<std::int64_t>(h.my_round_number));
    rec_->metrics().set_gauge("cts.last_skew_us", skew);
    if (h_skew_) h_skew_->add(skew < 0 ? -skew : skew);
  }

  if (observer_) {
    RoundResult rr;
    rr.round = h.my_round_number;
    rr.thread = h.my_thread_id;
    rr.call_type = h.call_type;
    rr.group_clock = grp;
    rr.physical_clock = h.pc_at_round;
    rr.offset_after = my_clock_offset_;
    rr.winner_replica = msg.sender_replica;
    rr.winner_node = msg.sender_node;
    rr.i_sent = h.sent_this_round;
    rr.special = msg.payload.special_round;
    observer_(rr);
  }

  if (orc_) {
    orc_->on_round_complete(cfg_.group, cfg_.replica, h.my_thread_id, msg.seq, grp,
                            msg.sender_replica, msg.payload.special_round);
  }

  auto done = std::move(h.waiting);
  done(grp);
}

// --- Primary/backup control ---------------------------------------------------------

void ConsistentTimeService::set_primary(bool primary) {
  const bool promoted = primary && !primary_;
  primary_ = primary;
  if (!promoted || cfg_.style == ReplicationStyle::kActive) return;
  // Section 3 / 3.3: if the old primary failed before its CCS message was
  // delivered anywhere, the new primary must send one for any round that
  // is still blocked.  If the message WAS delivered, the input buffer is
  // non-empty and nothing needs to be sent.
  for (auto& [t, h] : handlers_) {
    if (h.waiting && h.my_input_buffer.empty() && !h.sent_this_round) {
      send_proposal(h, t == kSpecialThread);
      ++stats_.proposals_resent;
      if (rec_) {
        rec_->event(obs::EventKind::kProposalResent, gcs_.node_id(), cfg_.replica, t.value,
                    static_cast<std::int64_t>(h.my_round_number));
      }
    }
  }
}

// --- Recovery -------------------------------------------------------------------------

bool ConsistentTimeService::run_special_round(DoneFn done) {
  CcsHandler& h = handlers_.at(kSpecialThread);
  if (h.waiting) {
    // Always-on guard: special rounds are serialized by the state-transfer
    // protocol; a second one in flight means the caller broke that
    // serialization and would clobber the pending DoneFn.
    ++stats_.reentrant_rejected;
    if (c_reentrant_) ++*c_reentrant_;
    if (rec_) {
      rec_->event(obs::EventKind::kCcsReentrantCall, gcs_.node_id(), cfg_.replica,
                  kSpecialThread.value);
    }
    CTS_ERROR() << "replica " << to_string(cfg_.replica)
                << ": special round started while one is still in flight; call rejected";
    return false;
  }
  ++h.my_round_number;
  h.pc_at_round = clock_.read();
  h.proposed_at_round = propose_local_clock(h.pc_at_round);
  h.call_type = ClockCallType::kGettimeofday;
  h.sent_this_round = false;
  h.waiting = std::move(done);
  if (h.my_input_buffer.empty()) {
    const bool may_send = cfg_.style == ReplicationStyle::kActive || primary_;
    if (may_send) send_proposal(h, /*special=*/true);
  } else {
    ++stats_.sends_avoided;
    if (c_avoided_) ++*c_avoided_;
  }
  try_complete(h);
  return true;
}

void ConsistentTimeService::begin_recovery(DoneFn initialized) {
  recovering_ = true;
  recovery_done_ = std::move(initialized);
}

Bytes ConsistentTimeService::checkpoint() const {
  BytesWriter w;
  w.i64(last_group_clock_);
  w.i64(causal_floor_);
  w.u32(static_cast<std::uint32_t>(handlers_.size()));
  for (const auto& [t, h] : handlers_) {
    w.u32(t.value);
    w.u64(h.my_round_number);
    w.u64(h.last_seq_seen);
  }
  return std::move(w).take();
}

void ConsistentTimeService::restore(const Bytes& state) {
  BytesReader r(state);
  last_group_clock_ = r.i64();
  causal_floor_ = r.i64();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ThreadId t{r.u32()};
    auto& h = handlers_[t];
    h.my_thread_id = t;
    h.my_round_number = r.u64();
    h.last_seq_seen = std::max(h.last_seq_seen, r.u64());
    // Rounds up to my_round_number were consumed by the replica that took
    // the checkpoint; drop any copies buffered here before the restore.
    std::erase_if(h.my_input_buffer,
                  [&](const BufferedMsg& b) { return b.seq <= h.my_round_number; });
  }
  for (auto& [t, buf] : common_input_buffer_) {
    auto it = handlers_.find(t);
    if (it == handlers_.end()) continue;
    std::erase_if(buf, [&](const BufferedMsg& b) { return b.seq <= it->second.my_round_number; });
  }
}

void ConsistentTimeService::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  orc_ = rec ? rec->oracle() : nullptr;
  if (rec) {
    c_rounds_ = &rec->counter("cts.rounds_completed");
    c_wins_ = &rec->counter("cts.rounds_won");
    c_sends_ = &rec->counter("cts.sends_initiated");
    c_avoided_ = &rec->counter("cts.sends_avoided");
    c_duplicates_ = &rec->counter("cts.duplicates_dropped");
    c_reentrant_ = &rec->counter("cts.reentrant_rejected");
    h_skew_ = &rec->metrics().histogram("cts.skew_abs_us", 100, 100'000);
  } else {
    c_rounds_ = c_wins_ = c_sends_ = c_avoided_ = c_duplicates_ = c_reentrant_ = nullptr;
    h_skew_ = nullptr;
  }
}

}  // namespace cts::ccs
