// Library-interpositioning facade for clock-related system calls.
//
// The paper's implementation (Section 4.1) interposes on the libc symbols
// gettimeofday(), time() and ftime() with LD_PRELOAD so the application is
// unchanged; each interposed call carries a unique type identifier in the
// CCS message.  In the simulation, application code receives a TimeSyscalls
// object instead of calling libc; each method corresponds to one interposed
// symbol, carries its own ClockCallType, and drives one round of the CCS
// algorithm.  The returned value respects the original call's resolution
// (microseconds / seconds / milliseconds).
#pragma once

#include <coroutine>

#include "cts/consistent_time_service.hpp"

namespace cts::ccs {

/// A timeval-like result for gettimeofday().
struct TimeVal {
  std::int64_t tv_sec = 0;
  std::int64_t tv_usec = 0;
  friend bool operator==(const TimeVal&, const TimeVal&) = default;

  [[nodiscard]] Micros total_us() const { return tv_sec * 1'000'000 + tv_usec; }
  static TimeVal from_us(Micros us) { return TimeVal{us / 1'000'000, us % 1'000'000}; }
};

/// A timeb-like result for ftime().
struct TimeB {
  std::int64_t time = 0;      // seconds
  std::uint16_t millitm = 0;  // milliseconds
  friend bool operator==(const TimeB&, const TimeB&) = default;

  [[nodiscard]] Micros total_us() const {
    return time * 1'000'000 + static_cast<Micros>(millitm) * 1'000;
  }
  static TimeB from_us(Micros us) {
    return TimeB{us / 1'000'000, static_cast<std::uint16_t>((us / 1'000) % 1'000)};
  }
};

/// Per-thread interposed syscall table.  One instance per application
/// thread of a replica, bound to that thread's identifier (the identifier
/// that rides in CCS headers).
class TimeSyscalls {
 public:
  TimeSyscalls(ConsistentTimeService& svc, ThreadId thread) : svc_(svc), thread_(thread) {
    svc_.register_thread(thread_);
  }

  /// Awaitable mapping the raw group-clock microseconds through a
  /// resolution-preserving conversion.
  template <typename Result, ClockCallType kType, Result (*Convert)(Micros)>
  struct Call {
    ConsistentTimeService& svc;
    ThreadId thread;
    Micros raw = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      // The parked handle has destroy-on-drop semantics: tearing the
      // service down mid-round destroys this frame instead of leaking it.
      if (!svc.start_round(thread, kType, h, &raw)) {
        // Rejected (round already in flight on this thread): resume with
        // kNoTime rather than suspending forever.  The resume event is
        // owned by the node's lifecycle scope like every other
        // node-scheduled continuation.
        raw = kNoTime;
        svc.scope().after(0, sim::Simulator::CoroResume{h});
      }
    }
    Result await_resume() const { return Convert(raw); }
  };

  static TimeVal to_timeval(Micros us) { return TimeVal::from_us(us); }
  static std::int64_t to_seconds(Micros us) { return us / 1'000'000; }
  static TimeB to_timeb(Micros us) { return TimeB::from_us(us); }
  static Micros to_micros(Micros us) { return us; }

  /// gettimeofday(2): microsecond resolution.
  // detlint:allow(wall-clock): interposed-symbol facade — reads the CCS
  // group clock, never the host clock; the name mirrors the libc symbol.
  auto gettimeofday() {
    return Call<TimeVal, ClockCallType::kGettimeofday, &TimeSyscalls::to_timeval>{svc_, thread_};
  }

  /// time(2): whole seconds.
  // detlint:allow(wall-clock): interposed-symbol facade — reads the CCS
  // group clock, never the host clock; the name mirrors the libc symbol.
  auto time() {
    return Call<std::int64_t, ClockCallType::kTime, &TimeSyscalls::to_seconds>{svc_, thread_};
  }

  /// ftime(3): millisecond resolution.
  // detlint:allow(wall-clock): interposed-symbol facade — reads the CCS
  // group clock, never the host clock; the name mirrors the libc symbol.
  auto ftime() {
    return Call<TimeB, ClockCallType::kFtime, &TimeSyscalls::to_timeb>{svc_, thread_};
  }

  /// clock_gettime(2) with CLOCK_REALTIME: microseconds (ns granularity is
  /// below the simulation's resolution).
  // detlint:allow(wall-clock): interposed-symbol facade — reads the CCS
  // group clock, never the host clock; the name mirrors the libc symbol.
  auto clock_gettime() {
    return Call<Micros, ClockCallType::kClockGettime, &TimeSyscalls::to_micros>{svc_, thread_};
  }

  [[nodiscard]] ThreadId thread() const { return thread_; }

 private:
  ConsistentTimeService& svc_;
  ThreadId thread_;
};

}  // namespace cts::ccs
