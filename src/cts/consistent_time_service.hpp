// The Consistent Time Service — the paper's primary contribution.
//
// One ConsistentTimeService instance runs per replica.  It renders
// clock-related operations deterministic across the replica group by
// running the Consistent Clock Synchronization algorithm of Section 3:
//
//   * each clock-related operation starts a new round;
//   * the replica reads its physical hardware clock, adds its clock offset
//     to form the local logical clock value, and proposes it for the group
//     clock in a CCS message multicast with reliable total order;
//   * the proposal ordered FIRST wins the round — its sender is the round's
//     synchronizer — and every replica returns that value and re-derives
//     its own offset as (group clock − its own physical clock);
//   * a replica that already has a matching CCS message buffered does not
//     send at all, and a replica whose copy is still queued when the winner
//     is delivered cancels it (the GCS layer's duplicate suppression) — so
//     roughly one CCS message hits the wire per round.
//
// Replication styles (Section 2 / 3.3):
//   * Active: every replica competes to be the synchronizer.
//   * Passive / semi-active: only the primary sends; a backup that takes
//     over after a primary crash first checks its input buffer and only
//     sends if the old primary's message never made it.
//
// Recovery (Section 3.2): during state transfer a special CCS round is run;
// the recovering replica does not compete, it adopts the delivered group
// clock value to initialize its offset.
//
// Drift compensation (Section 3.3): optional strategies — add a mean delay
// (fixed, or estimated online) to the offset each time it is recalculated,
// or nudge each proposal a small proportion toward an external drift-free
// reference (NTP/GPS).  An optional fast-forward guard bounds how far a
// single (possibly stepped) proposal may yank the group clock ahead.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "clock/physical_clock.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "cts/ccs_message.hpp"
#include "gcs/gcs.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::ccs {

/// How the replica group is organized (paper Section 2).
enum class ReplicationStyle : std::uint8_t {
  kActive,      // all replicas process and compete to be synchronizer
  kPassive,     // only the primary processes; backups apply checkpoints
  kSemiActive,  // all process, but only the primary decides (Delta-4)
};

/// Optional strategies for bounding group-clock drift (paper Section 3.3).
enum class DriftCompensation : std::uint8_t {
  kNone,               // plain algorithm: group clock lags real time
  kMeanDelay,          // add a FIXED mean round delay to the offset each round
  kAdaptiveMeanDelay,  // estimate the mean round delay online (EWMA) instead
  kReferenceBias,      // blend each proposal toward an NTP/GPS reference
};

struct CtsConfig {
  GroupId group;
  ConnectionId ccs_conn;  // the group's self-connection for CCS traffic
  ReplicaId replica;
  ReplicationStyle style = ReplicationStyle::kActive;

  DriftCompensation drift = DriftCompensation::kNone;
  /// kMeanDelay: estimate of (communication + processing) delay per round.
  Micros mean_delay_us = 0;
  /// kAdaptiveMeanDelay: EWMA smoothing factor for the online estimate.
  double adaptive_alpha = 0.05;
  /// kReferenceBias: fraction of (reference − proposal) added per round.
  double reference_gain = 0.0;

  /// Optional fast-forward guard (0 = off): a delivered proposal may not
  /// advance the group clock by more than this in one round.  Bounds the
  /// damage of a replica whose hardware clock was stepped far ahead (the
  /// paper's Section 1 warns fast-forward causes "unnecessary time-outs").
  /// Applied in delivery order, so every replica clamps identically.
  Micros max_forward_jump_us = 0;
};

/// Everything observers (benches, tests) want to know about one completed
/// round of the CCS algorithm at this replica.
struct RoundResult {
  MsgSeqNum round = 0;
  ThreadId thread;
  ClockCallType call_type = ClockCallType::kGettimeofday;
  Micros group_clock = 0;        // the agreed value returned to the caller
  Micros physical_clock = 0;     // this replica's hw reading for the round
  Micros offset_after = 0;       // my_clock_offset after the update
  ReplicaId winner_replica;      // the synchronizer of the round
  NodeId winner_node;
  bool i_sent = false;           // whether this replica multicast a proposal
  bool special = false;
};

/// Aggregate per-replica statistics.
struct CtsStats {
  std::uint64_t rounds_completed = 0;
  std::uint64_t rounds_won = 0;        // this replica was the synchronizer
  std::uint64_t sends_initiated = 0;   // CCS messages this replica queued
  std::uint64_t sends_avoided = 0;     // buffer already held the round's msg
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t special_rounds = 0;
  std::uint64_t reentrant_rejected = 0;  // start_round while a round was in flight
  std::uint64_t proposals_resent = 0;    // re-issued by a freshly promoted primary
};

/// Parked continuation of an in-flight CCS round: either a plain callback
/// (replication control paths) or a suspended coroutine awaiting the round's
/// group-clock value.  Move-only with destroy-on-drop semantics for the
/// coroutine case — if the service is torn down with a round still in
/// flight, dropping the continuation destroys the suspended frame instead
/// of leaking it (the same discipline sim::Simulator::CoroResume applies to
/// dropped events).
class RoundContinuation {
 public:
  /// Move-only: round completions are single-owner by construction (each
  /// fires exactly once), and callers park move-only state — handoff
  /// payloads, pending-reply completions — inside them.
  using DoneFn = UniqueFn<void(Micros)>;

  RoundContinuation() = default;
  /// Callback form.
  RoundContinuation(DoneFn f) : cb_(std::move(f)) {}  // NOLINT(google-explicit-constructor)
  /// Coroutine form: on completion writes the value through `out` (which
  /// must point into the suspended frame) and resumes `h` through the event
  /// queue, matching Signal semantics.  The resume event is owned by the
  /// replica's lifecycle scope, so a node that crashes between a round
  /// completing and its caller resuming destroys the frame instead of
  /// running dead-node code.
  RoundContinuation(std::coroutine_handle<> h, Micros* out, sim::TaskScope& scope)
      : coro_(h), out_(out), scope_(&scope) {}

  RoundContinuation(RoundContinuation&& o) noexcept
      : cb_(std::move(o.cb_)),
        coro_(std::exchange(o.coro_, nullptr)),
        out_(o.out_),
        scope_(o.scope_) {
    o.cb_ = nullptr;
  }
  RoundContinuation& operator=(RoundContinuation&& o) noexcept {
    if (this != &o) {
      drop();
      cb_ = std::move(o.cb_);
      o.cb_ = nullptr;
      coro_ = std::exchange(o.coro_, nullptr);
      out_ = o.out_;
      scope_ = o.scope_;
    }
    return *this;
  }
  RoundContinuation(const RoundContinuation&) = delete;
  RoundContinuation& operator=(const RoundContinuation&) = delete;
  ~RoundContinuation() { drop(); }

  [[nodiscard]] explicit operator bool() const {
    return coro_ != nullptr || static_cast<bool>(cb_);
  }

  /// Complete the round.  Consumes the continuation: afterwards every
  /// member is null, so a (buggy) second invocation is a no-op rather than
  /// a write through a dangling pointer into a freed frame.
  void operator()(Micros v) {
    if (coro_) {
      *std::exchange(out_, nullptr) = v;
      std::exchange(scope_, nullptr)
          ->after(0, sim::Simulator::CoroResume{std::exchange(coro_, nullptr)});
    } else if (cb_) {
      auto f = std::move(cb_);
      cb_ = nullptr;
      f(v);
    }
  }

  /// Whether this continuation owns a suspended coroutine frame (the
  /// shutdown hook counts those when abandoning in-flight rounds).
  [[nodiscard]] bool is_coroutine() const { return coro_ != nullptr; }

  /// Disown the continuation WITHOUT running or destroying it.  Rejection
  /// paths use this: the awaiter that parked the coroutine handle keeps
  /// ownership of the suspended frame (it resumes it with kNoTime), so the
  /// by-value continuation must not destroy the frame when it goes out of
  /// scope — that would leave the awaiter writing into, and resuming, a
  /// freed frame.
  void release() {
    coro_ = nullptr;
    out_ = nullptr;
    scope_ = nullptr;
    cb_ = nullptr;
  }

 private:
  void drop() {
    if (coro_) std::exchange(coro_, nullptr).destroy();
  }

  DoneFn cb_;
  std::coroutine_handle<> coro_;
  Micros* out_ = nullptr;
  sim::TaskScope* scope_ = nullptr;
};

class ConsistentTimeService {
 public:
  using DoneFn = RoundContinuation::DoneFn;
  using RoundObserver = std::function<void(const RoundResult&)>;

  ConsistentTimeService(sim::Simulator& sim, gcs::GcsEndpoint& gcs, clock::PhysicalClock& clk,
                        CtsConfig cfg);
  ~ConsistentTimeService();

  ConsistentTimeService(const ConsistentTimeService&) = delete;
  ConsistentTimeService& operator=(const ConsistentTimeService&) = delete;

  // --- Thread registration ---------------------------------------------------

  /// Register an application thread.  The paper requires all threads that
  /// perform clock-related operations to be created in the same order at
  /// every replica, so the thread identifier is a consistent cross-replica
  /// name.  Registration drains any CCS messages that arrived early and
  /// were parked in the common input buffer.
  void register_thread(ThreadId t);

  // --- The clock-related operation ---------------------------------------------

  /// Start a round of the CCS algorithm for `thread` and invoke `done` with
  /// the consistent group clock value once the first matching CCS message
  /// is delivered.  This is the callback form of get_grp_clock_time().
  ///
  /// Clock-related operations within a thread are strictly sequential
  /// (paper Section 3.1).  If `thread` already has a round in flight the
  /// call is rejected: it logs an error, leaves the in-flight round (and
  /// its DoneFn) untouched, never invokes `done`, and returns false.  This
  /// check is always on — it is a caller bug that a release build must not
  /// turn into a silently clobbered callback.
  bool start_round(ThreadId thread, ClockCallType call_type, DoneFn done);

  /// Coroutine form of start_round(): parks `h` with destroy-on-drop
  /// semantics so a service torn down mid-round cannot leak the suspended
  /// frame.  On completion, writes the group clock through `out` and
  /// resumes `h` via the event queue.  Same rejection rule as above.
  bool start_round(ThreadId thread, ClockCallType call_type, std::coroutine_handle<> h,
                   Micros* out) {
    return start_round_impl(thread, call_type, RoundContinuation{h, out, scope_});
  }

  /// Awaitable form for simulated logical threads:
  ///   Micros now = co_await svc.get_time(thread);
  struct TimeAwaiter {
    ConsistentTimeService& svc;
    ThreadId thread;
    ClockCallType call_type;
    Micros value = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!svc.start_round(thread, call_type, h, &value)) {
        // Rejected (a round is already in flight for this thread): resume
        // with kNoTime rather than suspending forever.  The resume is
        // scope-owned like every other node-scheduled event.
        value = kNoTime;
        svc.scope_.after(0, sim::Simulator::CoroResume{h});
      }
    }
    Micros await_resume() const noexcept { return value; }
  };

  [[nodiscard]] TimeAwaiter get_time(ThreadId thread,
                                     ClockCallType ct = ClockCallType::kGettimeofday) {
    return TimeAwaiter{*this, thread, ct, 0};
  }

  // --- Primary/backup control (passive & semi-active) ---------------------------

  /// Mark this replica as the primary.  On promotion, any round that is
  /// blocked waiting and has an empty input buffer re-sends its proposal
  /// (the old primary died before its CCS message was ordered).
  void set_primary(bool primary);
  [[nodiscard]] bool is_primary() const { return primary_; }

  // --- Recovery (Section 3.2) -----------------------------------------------------

  /// At an existing replica: run the special CCS round that is taken
  /// immediately before the state-transfer checkpoint.  `done` fires when
  /// the round completes at this replica.  Special rounds are serialized
  /// by the state-transfer protocol; like start_round(), a call while one
  /// is already in flight is rejected with a loud error and returns false.
  bool run_special_round(DoneFn done);

  /// At a recovering replica: enter recovery mode.  The replica will not
  /// compete; the next special-round CCS message initializes its offset.
  void begin_recovery(DoneFn initialized = nullptr);
  [[nodiscard]] bool recovering() const { return recovering_; }

  /// Serialize the CTS portion of a replica checkpoint: the per-thread
  /// round numbers (the offset is deliberately NOT transferred — it is
  /// local to each replica's own physical clock).
  [[nodiscard]] Bytes checkpoint() const;
  void restore(const Bytes& state);

  // --- Introspection ------------------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  /// The replica's node lifecycle scope (reached through the GCS endpoint's
  /// TotemNode).  Awaiters and facades above the CTS schedule their resume
  /// trampolines here so they die with the node.
  [[nodiscard]] sim::TaskScope& scope() { return scope_; }
  [[nodiscard]] Micros clock_offset() const { return my_clock_offset_; }
  /// Current online estimate of the per-round delay (kAdaptiveMeanDelay).
  [[nodiscard]] double estimated_round_delay() const { return estimated_round_delay_us_; }
  [[nodiscard]] Micros last_group_clock() const { return last_group_clock_; }
  [[nodiscard]] const CtsStats& stats() const { return stats_; }
  [[nodiscard]] const CtsConfig& config() const { return cfg_; }

  /// Observer invoked at every completed round (benchmarks, tests).
  void set_round_observer(RoundObserver obs) { observer_ = std::move(obs); }

  /// Attach (or detach, with nullptr) an observability recorder.
  void set_recorder(obs::Recorder* rec);

  /// Attach the external reference time source used by the kReferenceBias
  /// drift-compensation strategy.
  void set_reference(clock::ReferenceTimeSource* ref) { reference_ = ref; }

  // --- Multi-group causality (paper Section 5, future work) --------------------

  /// Raise the causal floor: every subsequent proposal from this replica is
  /// at least `ts + 1`.  Call this when delivering a message from another
  /// group that carries that group's clock value as a timestamp; because
  /// the delivery order is agreed, every replica raises the floor at the
  /// same point in its operation sequence, so the group clock stays
  /// consistent AND causally ahead of the remote timestamp.
  void advance_causal_floor(Micros ts) {
    if (causal_floor_ == kNoTime || ts > causal_floor_) causal_floor_ = ts;
  }
  [[nodiscard]] Micros causal_floor() const { return causal_floor_; }

  /// Thread id reserved for the state-transfer special round.
  static constexpr ThreadId kSpecialThread{0xfffffffe};

 private:
  struct BufferedMsg {
    CcsPayload payload;
    MsgSeqNum seq = 0;
    ReplicaId sender_replica;
    NodeId sender_node;
  };

  /// Per-thread consistent clock synchronization handler (paper 3.1).
  struct CcsHandler {
    ThreadId my_thread_id;
    MsgSeqNum my_round_number = 0;
    MsgSeqNum last_seq_seen = 0;  // duplicate detection
    std::deque<BufferedMsg> my_input_buffer;

    // State of the in-progress round, if a caller is blocked.  Dropping a
    // parked coroutine continuation destroys its frame (no leak on
    // teardown mid-round).
    RoundContinuation waiting;
    Micros pc_at_round = 0;
    Micros proposed_at_round = 0;
    ClockCallType call_type = ClockCallType::kGettimeofday;
    bool sent_this_round = false;
  };

  bool start_round_impl(ThreadId thread, ClockCallType call_type, RoundContinuation done);
  void on_ccs_delivered(const gcs::Message& m);
  void recv_into_handler(CcsHandler& h, BufferedMsg msg);
  void try_complete(CcsHandler& h);
  void send_proposal(CcsHandler& h, bool special);
  [[nodiscard]] Micros propose_local_clock(Micros physical);
  /// Fail-stop teardown (the scope's shutdown hook): drop every parked
  /// round continuation — destroying suspended caller frames — and the
  /// recovery-complete callback.  A dead replica answers no rounds.
  void abandon_inflight_rounds();

  sim::Simulator& sim_;
  gcs::GcsEndpoint& gcs_;
  clock::PhysicalClock& clock_;
  CtsConfig cfg_;
  sim::TaskScope& scope_;
  sim::TaskScope::HookId shutdown_hook_ = 0;

  Micros my_clock_offset_ = 0;  // paper: my_clock_offset
  std::map<ThreadId, CcsHandler> handlers_;
  std::map<ThreadId, std::deque<BufferedMsg>> common_input_buffer_;

  // Monotonicity guard, applied in delivery order (identical at every
  // replica): the group clock never moves backwards even if proposals from
  // concurrent threads interleave adversarially.
  Micros last_group_clock_ = kNoTime;

  // Lower bound on proposals, raised by timestamps observed on inter-group
  // messages (Section 5).
  Micros causal_floor_ = kNoTime;

  // kAdaptiveMeanDelay: online EWMA of the per-round offset loss.
  double estimated_round_delay_us_ = 0.0;
  Micros prev_raw_offset_ = kNoTime;

  bool primary_ = true;  // meaningful for passive/semi-active styles
  bool recovering_ = false;
  DoneFn recovery_done_;

  clock::ReferenceTimeSource* reference_ = nullptr;
  RoundObserver observer_;
  CtsStats stats_;

  obs::Recorder* rec_ = nullptr;
  obs::OrderingOracle* orc_ = nullptr;  // cached from rec_ in set_recorder()
  // Hot-path counters, resolved once in set_recorder().
  obs::Counter* c_rounds_ = nullptr;
  obs::Counter* c_wins_ = nullptr;
  obs::Counter* c_sends_ = nullptr;
  obs::Counter* c_avoided_ = nullptr;
  obs::Counter* c_duplicates_ = nullptr;
  obs::Counter* c_reentrant_ = nullptr;
  Histogram* h_skew_ = nullptr;

  friend struct TimeAwaiter;
};

}  // namespace cts::ccs
