// Replica-deterministic unique-identifier generation.
//
// The paper's introduction lists this as the first victim of clock
// non-determinism: "the physical hardware clock value is used as the seed
// of a random number generator to generate unique identifiers such as
// object identifiers or transaction identifiers".  Seed the generator from
// a hardware clock and every replica mints DIFFERENT ids for the SAME
// logical object.
//
// ConsistentIdGenerator seeds from the GROUP clock instead: each id is
// derived from one group-clock reading (identical at every replica) mixed
// with the generator's own call counter and namespace.  The result is
//   * deterministic across replicas — replica 1's id for transaction #7
//     equals replica 2's id for transaction #7;
//   * unique within the generator — the counter separates ids minted from
//     equal readings;
//   * unique across generators/groups — the namespace is mixed in;
//   * unpredictable enough for hashing — finalized with splitmix64.
#pragma once

#include <cstdint>

#include "cts/consistent_time_service.hpp"

namespace cts::ccs {

class ConsistentIdGenerator {
 public:
  /// `ns` namespaces the ids (use the group id value); `thread` is the
  /// dedicated logical thread for the generator's clock reads.
  ConsistentIdGenerator(ConsistentTimeService& time, ThreadId thread, std::uint64_t ns)
      : time_(time), thread_(thread), ns_(ns) {
    time_.register_thread(thread_);
  }

  /// Mint one id (callback form): one CCS round, then mix.
  void next_id(std::function<void(std::uint64_t)> done) {
    time_.start_round(thread_, ClockCallType::kClockGettime,
                      [this, done = std::move(done)](Micros group_time) {
                        done(mix(group_time, ++counter_, ns_));
                      });
  }

  /// Awaitable form: `std::uint64_t id = co_await gen.make_id();`
  ///
  /// Parks the coroutine handle directly in the CTS round (destroy-on-drop:
  /// a node torn down mid-round destroys this frame instead of leaking it,
  /// and the resume trampoline is owned by the node's lifecycle scope).
  struct IdAwaiter {
    ConsistentIdGenerator& gen;
    Micros raw = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!gen.time_.start_round(gen.thread_, ClockCallType::kClockGettime, h, &raw)) {
        // Rejected (a round is already in flight on the generator's
        // thread): resume with kNoTime instead of suspending forever.
        raw = kNoTime;
        gen.time_.scope().after(0, sim::Simulator::CoroResume{h});
      }
    }
    std::uint64_t await_resume() noexcept { return ConsistentIdGenerator::mix(raw, ++gen.counter_, gen.ns_); }
  };
  [[nodiscard]] IdAwaiter make_id() { return IdAwaiter{*this, 0}; }

  /// The deterministic mixing function (exposed for tests).
  static std::uint64_t mix(Micros group_time, std::uint64_t counter, std::uint64_t ns) {
    std::uint64_t x = static_cast<std::uint64_t>(group_time);
    x ^= counter * 0x9e3779b97f4a7c15ULL;
    x ^= ns * 0xbf58476d1ce4e5b9ULL;
    // splitmix64 finalizer
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::uint64_t minted() const { return counter_; }

 private:
  ConsistentTimeService& time_;
  ThreadId thread_;
  std::uint64_t ns_;
  std::uint64_t counter_ = 0;

  friend struct IdAwaiter;
};

}  // namespace cts::ccs
