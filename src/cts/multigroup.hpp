// Multi-group causal timestamps — the paper's Section 5 future work.
//
//   "If there are multiple groups of replicas, the problem of maintaining
//    causal relationships of the consistent group clocks for the different
//    groups arises.  We are currently investigating a solution to this
//    problem that includes the value of the consistent group clock as a
//    timestamp in the user messages multicast to the different groups."
//
// CausalMessenger implements that sketch.  On send, the sending group reads
// its group clock (one CCS round — deterministic across the senders'
// replicas) and prepends it to the payload.  On delivery, the receiving
// group raises its consistent time service's causal floor to the timestamp,
// so every subsequent clock reading in the receiving group exceeds it.
// Because messages are delivered in agreed order, all replicas of the
// receiving group raise the floor at the same point in their operation
// sequence — the group clock stays consistent AND causal:
//
//     send(m) happens-before deliver(m)  =>  ts(m) < any read after deliver(m).
//
// With ROADMAP item 1 this is no longer a demo: every cross-shard path —
// the archipelago ping chain, KV lease transfers, session migrations —
// rides a CausalMessenger stream, so the callbacks follow the move-only
// UniqueFn discipline (handoff adopters park single-owner state in them)
// and malformed stamps are counted (multigroup.stamps_rejected) instead of
// silently swallowed.
#pragma once

#include <coroutine>
#include <utility>

#include "common/bytes.hpp"
#include "common/unique_fn.hpp"
#include "cts/consistent_time_service.hpp"
#include "gcs/gcs.hpp"

namespace cts::ccs {

/// A payload carrying the sender group's clock value.
struct StampedPayload {
  Micros timestamp = 0;
  Bytes body;

  [[nodiscard]] Bytes encode() const {
    BytesWriter w;
    w.i64(timestamp);
    w.bytes(body);
    return std::move(w).take();
  }
  static StampedPayload decode(std::span<const std::uint8_t> b) {
    BytesReader r(b);
    StampedPayload p;
    p.timestamp = r.i64();
    p.body = r.bytes();
    return p;
  }
};

/// Sends and receives inter-group messages stamped with the group clock.
class CausalMessenger {
 public:
  /// Called with (header, timestamp, body) for each stamped message
  /// delivered to this group.  Move-only: cross-shard adopters capture
  /// single-owner handoff state.
  using StampedDeliverFn = UniqueFn<void(const gcs::Message&, Micros, const Bytes&)>;
  /// Completion of stamp_and_send: receives the timestamp used.
  using StampedDoneFn = UniqueFn<void(Micros)>;

  CausalMessenger(gcs::GcsEndpoint& gcs, ConsistentTimeService& time, GroupId my_group,
                  ThreadId thread)
      : gcs_(gcs), time_(time), my_group_(my_group), thread_(thread) {
    time_.register_thread(thread_);
  }

  /// Subscribe to stamped messages addressed to this group on `conn`.
  /// Raising the causal floor happens BEFORE the application callback, so
  /// any clock reading the handler performs already respects causality.
  /// A payload that does not decode as a StampedPayload is rejected,
  /// counted (multigroup.stamps_rejected) and traced — it must NOT raise
  /// the floor, since a garbage timestamp would wedge the group clock.
  void subscribe(ConnectionId conn, StampedDeliverFn fn) {
    gcs_.subscribe(my_group_, [this, conn, fn = std::move(fn)](const gcs::Message& m) mutable {
      if (m.hdr.type != gcs::MsgType::kUserRequest || m.hdr.conn != conn) return;
      StampedPayload p;
      try {
        p = StampedPayload::decode(m.payload);
      } catch (const CodecError&) {
        if (auto* rec = gcs_.recorder()) {
          ++rec->counter("multigroup.stamps_rejected");
          rec->event(obs::EventKind::kStampRejected, gcs_.node_id(), time_.config().replica,
                     m.hdr.conn.value, static_cast<std::int64_t>(m.payload.size()));
        }
        return;
      }
      if (auto* rec = gcs_.recorder()) {
        if (auto* orc = rec->oracle()) {
          orc->on_stamp_observed(my_group_, time_.config().replica, p.timestamp, m.hdr.src_grp);
        }
      }
      time_.advance_causal_floor(p.timestamp);
      if (fn) fn(m, p.timestamp, p.body);
    });
  }

  /// Read the group clock (one CCS round) and multicast `body` to
  /// `dst_group`, stamped with the reading.  `done` receives the timestamp
  /// used.  Deterministic across the sending group's replicas: each replica
  /// obtains the same timestamp and builds an identical message, so the GCS
  /// duplicate suppression collapses the copies.  Returns false (and never
  /// runs `done`) if this stream already has a round in flight — streams
  /// are strictly sequential, like every clock-related operation.
  bool stamp_and_send(GroupId dst_group, ConnectionId conn, MsgSeqNum seq, Bytes body,
                      StampedDoneFn done = nullptr) {
    return time_.start_round(thread_, ClockCallType::kGettimeofday,
                             [this, dst_group, conn, seq, body = std::move(body),
                              done = std::move(done)](Micros ts) mutable {
                               send_stamped(dst_group, conn, seq, std::move(body), ts);
                               if (done) done(ts);
                             });
  }

  /// Awaitable form: `Micros ts = co_await messenger.send(dst, conn, seq,
  /// body);` — resumes (through the node's lifecycle scope) after the
  /// stamped message is multicast, with the timestamp used, or kNoTime if
  /// the stream had a round in flight.  The send happens on the resumed
  /// side of the round, so a replica that crashes mid-round simply never
  /// sends — the surviving replicas' identical copies carry the handoff.
  struct StampAwaiter {
    CausalMessenger& msgr;
    GroupId dst_group;
    ConnectionId conn;
    MsgSeqNum seq;
    Bytes body;
    Micros ts = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!msgr.time_.start_round(msgr.thread_, ClockCallType::kGettimeofday, h, &ts)) {
        ts = kNoTime;
        msgr.time_.scope().after(0, sim::Simulator::CoroResume{h});
      }
    }
    Micros await_resume() {
      if (ts != kNoTime) {
        msgr.send_stamped(dst_group, conn, seq, std::move(body), ts);
      }
      return ts;
    }
  };
  [[nodiscard]] StampAwaiter send(GroupId dst_group, ConnectionId conn, MsgSeqNum seq,
                                  Bytes body) {
    return StampAwaiter{*this, dst_group, conn, seq, std::move(body), 0};
  }

  [[nodiscard]] GroupId group() const { return my_group_; }
  [[nodiscard]] ThreadId stream() const { return thread_; }

 private:
  /// Build and multicast the stamped message — identical bytes at every
  /// replica of the sending group, by construction.
  void send_stamped(GroupId dst_group, ConnectionId conn, MsgSeqNum seq, Bytes body, Micros ts) {
    StampedPayload p;
    p.timestamp = ts;
    p.body = std::move(body);
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kUserRequest;
    m.hdr.src_grp = my_group_;
    m.hdr.dst_grp = dst_group;
    m.hdr.conn = conn;
    m.hdr.tag = thread_;
    m.hdr.seq = seq;
    m.hdr.sender_replica = time_.config().replica;
    m.payload = p.encode();
    gcs_.send(std::move(m));
  }

  gcs::GcsEndpoint& gcs_;
  ConsistentTimeService& time_;
  GroupId my_group_;
  ThreadId thread_;
};

}  // namespace cts::ccs
