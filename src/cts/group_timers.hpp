// Replica-deterministic timers driven by the group clock.
//
// The paper's introduction motivates the consistent time service with
// timeout handling: "the physical hardware clock value is used for
// timeouts, for example, in timed remote method invocations ... and by
// transaction processing systems in two-phase commit and transaction
// session management".  A timeout that fires from a hardware clock fires
// at different logical points at different replicas — a backup might abort
// a transaction the primary committed.
//
// GroupTimerService fixes this by expressing deadlines in GROUP time and
// by checking them with group-clock readings: a dedicated logical thread
// periodically performs a clock-related operation (one CCS round) and
// fires every timer whose deadline the reading has passed, in (deadline,
// id) order.  Because the readings are identical at every replica and
// timers are scheduled from the same ordered request stream, every replica
// fires the same timers in the same order with the same observed time —
// timeouts become part of the replicated state machine.
//
// Cost: one CCS round per poll while running (amortized across all armed
// timers).  The service stops polling automatically while no timers are
// armed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "cts/consistent_time_service.hpp"

namespace cts::ccs {

class GroupTimerService {
 public:
  using TimerId = std::uint64_t;
  /// Callback receives the group-clock reading that fired the timer
  /// (identical at every replica).
  using TimerFn = std::function<void(Micros)>;

  struct Config {
    /// Dedicated logical thread for the poll loop (must be distinct from
    /// application threads, and identical across replicas).
    ThreadId thread{100};
    /// Poll cadence in simulated time.  Timer precision is one poll
    /// period plus one CCS round.
    Micros poll_interval_us = 1'000;
  };

  GroupTimerService(ConsistentTimeService& time, Config cfg)
      : time_(time), cfg_(cfg) {
    time_.register_thread(cfg_.thread);
  }

  GroupTimerService(const GroupTimerService&) = delete;
  GroupTimerService& operator=(const GroupTimerService&) = delete;

  ~GroupTimerService() {
    stop();
    *alive_ = false;  // a suspended poll loop must not touch *this again
  }

  /// Arm a timer at an absolute group-clock deadline.  Returns a
  /// deterministic id (assigned in schedule order — callers schedule from
  /// the ordered request stream, so ids agree across replicas).
  TimerId schedule_at(Micros group_deadline, TimerFn fn) {
    const TimerId id = next_id_++;
    timers_.emplace(Key{group_deadline, id}, std::move(fn));
    ensure_polling();
    return id;
  }

  /// Arm a timer `delay` after the group-time `base` (typically the
  /// reading the caller just performed).
  TimerId schedule_after(Micros base, Micros delay, TimerFn fn) {
    return schedule_at(base + delay, std::move(fn));
  }

  /// Disarm.  Returns false if the timer already fired or never existed.
  /// Deterministic for the same reason scheduling is.
  bool cancel(TimerId id) {
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->first.id == id) {
        timers_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Stop the poll loop (e.g. at shutdown).  Armed timers stay armed and
  /// polling resumes on the next schedule_* call.
  void stop() { running_ = false; }

  [[nodiscard]] std::size_t armed() const { return timers_.size(); }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] Micros last_fire_time() const { return last_fire_time_; }

 private:
  struct Key {
    Micros deadline;
    TimerId id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  void ensure_polling() {
    if (running_ || timers_.empty()) return;
    running_ = true;
    poll_loop();
  }

  sim::Task poll_loop() {
    // Keep a by-value guard: if the service is destroyed while this
    // coroutine is suspended, the next resume exits without touching the
    // dead object.
    const std::shared_ptr<bool> alive = alive_;
    while (*alive && running_ && !timers_.empty()) {
      const Micros now = co_await time_.get_time(cfg_.thread, ClockCallType::kClockGettime);
      if (!*alive) co_return;
      // Fire everything due, in (deadline, id) order — identical at every
      // replica because `now` is the group clock.
      while (!timers_.empty() && timers_.begin()->first.deadline <= now) {
        auto node = timers_.extract(timers_.begin());
        ++fired_;
        last_fire_time_ = now;
        node.mapped()(now);
      }
      if (timers_.empty()) break;
      // The inter-poll sleep is a node-owned event: a fail-stop crash
      // cancels it and destroys this suspended frame instead of waking a
      // dead node's poll loop.
      co_await time_.scope().delay(cfg_.poll_interval_us);
      if (!*alive) co_return;
    }
    if (*alive) running_ = false;
  }

  ConsistentTimeService& time_;
  Config cfg_;
  // Destruction-mid-suspend guard, NOT a crash guard: crash cleanup is the
  // lifecycle scope's job (the scoped delay above dies with the node).  This
  // only protects a poll loop suspended on get_time() across ~GroupTimerService
  // — the CTS shutdown hook does not run for plain destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::map<Key, TimerFn> timers_;
  TimerId next_id_ = 1;
  bool running_ = false;
  std::uint64_t fired_ = 0;
  Micros last_fire_time_ = kNoTime;
};

}  // namespace cts::ccs
