// The Consistent Clock Synchronization (CCS) control message payload.
//
// A CCS message rides the group communication system with header fields
// msg_type = kCcs, src_grp = dst_grp = the replica group, conn = the
// group's CCS connection, tag = the sending thread identifier, and
// msg_seq_num = the CCS round number (paper Section 3.1).  The payload
// carries the local logical clock value that the sender proposes for the
// group clock, plus the clock-call type identifier that distinguishes
// gettimeofday() from time() from ftime() (paper Section 4.1).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace cts::ccs {

/// Which interposed clock-related system call started this round.  Each
/// call gets a unique type identifier so the algorithm can recognize and
/// distinguish them (paper Section 4.1).
enum class ClockCallType : std::uint8_t {
  kGettimeofday = 1,  // microsecond resolution
  kTime = 2,          // whole seconds
  kFtime = 3,         // millisecond resolution
  kClockGettime = 4,  // microsecond resolution (modern POSIX)
};

[[nodiscard]] const char* to_string(ClockCallType t);

/// CCS message payload (paper Section 3.1: "Sending thread identifier" and
/// "Local clock value being proposed for the group clock"; the call-type
/// identifier is the additional field of Section 4.1; the special flag
/// marks the state-transfer round of Section 3.2).
struct CcsPayload {
  ThreadId thread;
  ClockCallType call_type = ClockCallType::kGettimeofday;
  /// Physical hardware clock value + clock offset at the sender, in us.
  Micros proposed_clock = 0;
  /// True for the special round run during state transfer to initialize a
  /// recovering replica's clock.
  bool special_round = false;

  [[nodiscard]] Bytes encode() const {
    BytesWriter w;
    w.u32(thread.value);
    w.u8(static_cast<std::uint8_t>(call_type));
    w.i64(proposed_clock);
    w.boolean(special_round);
    return std::move(w).take();
  }

  static CcsPayload decode(std::span<const std::uint8_t> b) {
    BytesReader r(b);
    CcsPayload p;
    p.thread = ThreadId{r.u32()};
    p.call_type = static_cast<ClockCallType>(r.u8());
    p.proposed_clock = r.i64();
    p.special_round = r.boolean();
    return p;
  }
};

}  // namespace cts::ccs
