// Baseline clock services the paper argues against (Section 1).
//
// 1. LocalClockService — every replica answers clock-related operations
//    from its own physical hardware clock.  Trivially fast and trivially
//    inconsistent: replicas processing the same request return different
//    values, which breaks replica determinism.
//
// 2. PrimaryBackupClockService — the prior-art approach of [9] and [3]:
//    the primary reads its physical hardware clock and conveys the value to
//    the backups through the ordered multicast; backups adopt it.  This
//    solves per-reading consensus, but when the primary crashes the new
//    primary answers from its OWN raw physical clock — there is no offset
//    maintenance — so consecutive readings across a failover can roll back
//    or jump far forward (the clock roll-back / fast-forward anomalies the
//    paper's introduction describes).
//
// 3. NtpDisciplinedClock — a software clock slewed toward an external
//    drift-free reference, modeling "closely synchronizing the physical
//    hardware clocks using NTP/GPS" (Section 1).  Used to show that the
//    primary/backup anomaly shrinks but does not disappear, and that even
//    perfectly synchronized clocks cannot make replicas deterministic
//    (Figure 1's asynchrony argument).
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <map>

#include "clock/physical_clock.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "gcs/gcs.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::baseline {

/// Answers every clock-related operation from the local hardware clock.
class LocalClockService {
 public:
  explicit LocalClockService(clock::PhysicalClock& clk) : clock_(clk) {}

  /// Immediate, local, inconsistent.
  [[nodiscard]] Micros read() const { return clock_.read(); }

 private:
  clock::PhysicalClock& clock_;
};

/// The primary/backup clock-distribution approach of [9]: the primary's raw
/// physical clock reading is multicast; backups adopt it.  No offsets, no
/// competition, no continuity across failover.
class PrimaryBackupClockService {
 public:
  /// Move-only so the awaiter below can park its coroutine frame inside
  /// with destroy-on-drop semantics (same discipline as the CTS's
  /// RoundContinuation): tearing the service down mid-reading destroys the
  /// suspended caller instead of leaking it.
  using DoneFn = UniqueFn<void(Micros)>;
  /// The clock read by the primary.  Usually a PhysicalClock, but the
  /// failover ablation also runs this baseline over an NTP-disciplined
  /// clock ("alleviated by closely synchronizing the clocks", Section 1).
  using ClockFn = std::function<Micros()>;

  PrimaryBackupClockService(sim::Simulator& sim, gcs::GcsEndpoint& gcs, ClockFn read_clock,
                            GroupId group, ConnectionId conn, ReplicaId replica);

  PrimaryBackupClockService(sim::Simulator& sim, gcs::GcsEndpoint& gcs,
                            clock::PhysicalClock& clk, GroupId group, ConnectionId conn,
                            ReplicaId replica)
      : PrimaryBackupClockService(
            sim, gcs, [&clk] { return clk.read(); }, group, conn, replica) {}

  /// Perform one clock-related operation for `thread`; `done` receives the
  /// value the group agrees on for this reading.
  void read(ThreadId thread, DoneFn done);

  /// Promote/demote this replica.  Promotion re-issues the reading for any
  /// blocked operation — from this replica's OWN raw clock, which is
  /// precisely what makes the baseline unsafe.
  void set_primary(bool primary);
  [[nodiscard]] bool is_primary() const { return primary_; }

  /// Awaitable wrapper, mirroring ConsistentTimeService::get_time.  The
  /// completion callback owns the parked frame (CoroResume guard); the
  /// resume trampoline is owned by the node's lifecycle scope.
  struct Awaiter {
    PrimaryBackupClockService& svc;
    ThreadId thread;
    Micros value = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      svc.read(thread, [this, guard = sim::Simulator::CoroResume{h}](Micros v) mutable {
        value = v;
        svc.gcs_.scope().after(0, std::move(guard));
      });
    }
    Micros await_resume() const noexcept { return value; }
  };
  [[nodiscard]] Awaiter get_time(ThreadId t) { return Awaiter{*this, t, 0}; }

 private:
  struct PerThread {
    MsgSeqNum seq = 0;
    std::deque<Micros> buffer;
    DoneFn waiting;
    bool sent = false;
  };

  void on_delivered(const gcs::Message& m);
  void send_reading(ThreadId t, PerThread& pt);
  void try_complete(PerThread& pt);

  sim::Simulator& sim_;
  gcs::GcsEndpoint& gcs_;
  ClockFn read_clock_;
  GroupId group_;
  ConnectionId conn_;
  ReplicaId replica_;
  bool primary_ = false;
  std::map<ThreadId, PerThread> threads_;

  friend struct Awaiter;
};

/// A hardware clock disciplined toward an external reference by periodic
/// slewing — the NTP stand-in.  Bounded error, but still a *local* clock:
/// two disciplined clocks still disagree by up to twice the residual error.
class NtpDisciplinedClock {
 public:
  struct Config {
    Micros poll_interval_us = 1'000'000;  // sync once per simulated second
    double gain = 0.5;                    // fraction of the error removed per poll
  };

  NtpDisciplinedClock(sim::Simulator& sim, clock::PhysicalClock& clk,
                      clock::ReferenceTimeSource& ref, Config cfg);
  NtpDisciplinedClock(sim::Simulator& sim, clock::PhysicalClock& clk,
                      clock::ReferenceTimeSource& ref)
      : NtpDisciplinedClock(sim, clk, ref, Config{}) {}

  /// Disciplined reading: physical clock + accumulated correction.
  [[nodiscard]] Micros read() const { return clock_.read() + correction_; }

  /// Current correction (for instrumentation).
  [[nodiscard]] Micros correction() const { return correction_; }

  /// Stop the discipline loop (host crash).
  void stop() { stopped_ = true; }

 private:
  void poll();

  sim::Simulator& sim_;
  clock::PhysicalClock& clock_;
  clock::ReferenceTimeSource& ref_;
  Config cfg_;
  Micros correction_ = 0;
  bool stopped_ = false;
};

}  // namespace cts::baseline
