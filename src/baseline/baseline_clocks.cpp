#include "baseline/baseline_clocks.hpp"

#include "common/bytes.hpp"

namespace cts::baseline {

// --- PrimaryBackupClockService ------------------------------------------------

PrimaryBackupClockService::PrimaryBackupClockService(sim::Simulator& sim,
                                                     gcs::GcsEndpoint& gcs, ClockFn read_clock,
                                                     GroupId group, ConnectionId conn,
                                                     ReplicaId replica)
    : sim_(sim), gcs_(gcs), read_clock_(std::move(read_clock)), group_(group), conn_(conn),
      replica_(replica) {
  gcs_.subscribe(group_, [this](const gcs::Message& m) {
    if (m.hdr.type == gcs::MsgType::kCcs && m.hdr.conn == conn_) on_delivered(m);
  });
}

void PrimaryBackupClockService::read(ThreadId thread, DoneFn done) {
  PerThread& pt = threads_[thread];
  ++pt.seq;
  pt.waiting = std::move(done);
  pt.sent = false;
  // Only the primary distributes a reading; backups wait for it.  Unlike
  // the CTS algorithm there is no proposal competition and no offset: the
  // value is the primary's raw hardware clock.
  if (primary_ && pt.buffer.empty()) send_reading(thread, pt);
  try_complete(pt);
}

void PrimaryBackupClockService::send_reading(ThreadId t, PerThread& pt) {
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kCcs;
  m.hdr.src_grp = group_;
  m.hdr.dst_grp = group_;
  m.hdr.conn = conn_;
  m.hdr.tag = t;
  m.hdr.seq = pt.seq;
  m.hdr.sender_replica = replica_;
  BytesWriter w;
  w.i64(read_clock_());  // the primary's own clock — the defect under test
  m.payload = std::move(w).take();
  gcs_.send(std::move(m));
  pt.sent = true;
}

void PrimaryBackupClockService::on_delivered(const gcs::Message& m) {
  BytesReader r(m.payload);
  const Micros value = r.i64();
  PerThread& pt = threads_[m.hdr.tag];
  pt.buffer.push_back(value);
  try_complete(pt);
}

void PrimaryBackupClockService::try_complete(PerThread& pt) {
  if (!pt.waiting || pt.buffer.empty()) return;
  const Micros v = pt.buffer.front();
  pt.buffer.pop_front();
  auto done = std::move(pt.waiting);
  pt.waiting = nullptr;
  done(v);
}

void PrimaryBackupClockService::set_primary(bool primary) {
  const bool promoted = primary && !primary_;
  primary_ = primary;
  if (!promoted) return;
  // Failover: complete any blocked reading from OUR raw clock.  The old
  // primary's value may be lost forever; nothing reconciles the two clocks,
  // so the reading the application sees may go backwards.
  for (auto& [t, pt] : threads_) {
    if (pt.waiting && pt.buffer.empty() && !pt.sent) send_reading(t, pt);
  }
}

// --- NtpDisciplinedClock ----------------------------------------------------------

NtpDisciplinedClock::NtpDisciplinedClock(sim::Simulator& sim, clock::PhysicalClock& clk,
                                         clock::ReferenceTimeSource& ref, Config cfg)
    : sim_(sim), clock_(clk), ref_(ref), cfg_(cfg) {
  sim_.after(cfg_.poll_interval_us, [this] { poll(); });
}

void NtpDisciplinedClock::poll() {
  if (stopped_ || !clock_.alive()) return;
  const Micros err = ref_.read() - read();
  correction_ += static_cast<Micros>(cfg_.gain * static_cast<double>(err));
  sim_.after(cfg_.poll_interval_us, [this] { poll(); });
}

}  // namespace cts::baseline
