// ScenarioSweep: run independent scenarios (seeds, configs) across worker
// threads and merge their results deterministically.
//
// Each scenario is a self-contained closure that builds its own world — its
// own Simulator, Testbed, Recorder — runs it, and returns a result string
// (typically a metrics JSON line).  Scenarios share nothing, so they are
// embarrassingly parallel; the only determinism hazard is merge order, and
// that is fixed by construction: results land in a pre-sized vector at the
// scenario's registration index, so the merged output is identical for any
// worker count, any completion order, any machine.
//
// This is the cheap half of ROADMAP item 4 (the island coordinator in
// sim/parallel.hpp is the deep half): crash sweeps, seed matrices, and
// bench grids get multi-core wall-clock wins with zero changes to the
// simulator itself.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cts::sim {

/// One completed scenario: its registration index, label, and the string
/// the scenario body returned (by convention a single JSON object/line).
struct SweepResult {
  std::size_t index = 0;
  std::string name;
  std::string output;
};

class ScenarioSweep {
 public:
  // detlint:allow(heap-callback): constructed once per registered scenario
  // in the harness setup, not on the simulator's event path
  using ScenarioFn = std::function<std::string()>;

  /// Register a scenario.  `name` labels the result row; `fn` must be
  /// fully self-contained (no references to state shared with any other
  /// scenario) because it may run on any worker thread.
  void add(std::string name, ScenarioFn fn) {
    names_.push_back(std::move(name));
    fns_.push_back(std::move(fn));
  }

  [[nodiscard]] std::size_t size() const { return fns_.size(); }

  /// Run every registered scenario and return results in registration
  /// order.  `threads` is the worker count (clamped to the scenario
  /// count); 1 runs everything inline on the caller.  Workers claim
  /// scenarios from a shared counter — claim order is racy, result order
  /// is not: each result is written to its own pre-allocated slot.
  std::vector<SweepResult> run(unsigned threads) {
    const std::size_t n = fns_.size();
    std::vector<SweepResult> results(n);
    for (std::size_t i = 0; i < n; ++i) {
      results[i].index = i;
      results[i].name = names_[i];
    }
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads == 0 ? 1 : threads, n));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) results[i].output = fns_[i]();
      return results;
    }
    std::atomic<std::size_t> next{0};
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        results[i].output = fns_[i]();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) pool.emplace_back(work);
    work();
    for (std::thread& th : pool) th.join();
    return results;
  }

  /// Merge results into one JSONL document, one row per scenario in
  /// registration order: {"scenario": <name>, "result": <output>}.
  /// `output` is spliced in raw when it looks like a JSON value (starts
  /// with '{', '[', or a digit), else quoted.
  static std::string merged_jsonl(const std::vector<SweepResult>& results) {
    std::string out;
    for (const SweepResult& r : results) {
      out += "{\"scenario\": \"";
      out += r.name;
      out += "\", \"result\": ";
      const char c = r.output.empty() ? '\0' : r.output.front();
      if (c == '{' || c == '[' || (c >= '0' && c <= '9') || c == '-') {
        out += r.output;
      } else {
        out += '"';
        out += r.output;
        out += '"';
      }
      out += "}\n";
    }
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::vector<ScenarioFn> fns_;
};

}  // namespace cts::sim
