// Deterministic discrete-event simulator.
//
// Everything the paper runs on a four-machine testbed runs here inside one
// process: simulated hosts, the LAN, Totem daemons, replicas, and clients
// are all driven from a single time-ordered event queue.  Determinism is
// total — same seed, same schedule, same results — which is what makes the
// agreement/monotonicity property tests meaningful.
//
// The queue is an EventHeap (indexed binary heap + slot map): scheduling is
// allocation-free for hot-path closures (InlineFn keeps captures up to 48
// bytes inline), cancel() removes entries in place instead of leaving
// tombstones, and reschedule() re-keys a live timer without a cancel+insert
// pair.  Ordering is a strict total order on (time, seq), so the schedule
// is byte-identical to the previous priority_queue implementation.
//
// Two programming models are supported:
//   * callback timers (`at` / `after` / `cancel` / `reschedule`) — used by
//     protocol code (Totem token timeouts, retransmission timers);
//   * C++20 coroutines (`co_await sim.delay(d)`, `co_await signal.wait()`) —
//     used by application-level logical threads, which in the paper block in
//     get_grp_clock_time() until the first CCS message of the round arrives.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/event_heap.hpp"
#include "sim/inline_fn.hpp"

namespace cts::sim {

class Simulator;

/// Fire-and-forget coroutine used for simulated logical threads.
///
/// The coroutine starts eagerly and destroys its own frame when it runs to
/// completion (final_suspend is suspend_never), so there is no join handle;
/// completion is observed through ordinary simulation state.
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// The event queue and simulated clock.
class Simulator {
 public:
  using EventFn = InlineFn;

  /// Handle for cancelling or rescheduling a scheduled callback.  A
  /// default-constructed EventId is never valid; a fired or cancelled id
  /// goes stale (its slot generation moves on) and is safely rejected.
  struct EventId {
    std::uint64_t id = 0;
  };

  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  /// Current simulated time in microseconds since simulation start.
  [[nodiscard]] Micros now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now).  The callable
  /// is forwarded all the way into the event heap's slot, so hot-path
  /// closures are constructed exactly once and never relocated.
  template <typename F>
  EventId at(Micros t, F&& fn) {
    assert(t >= now_);
    return EventId{heap_.push(t, seq_++, std::forward<F>(fn))};
  }

  /// Schedule `fn` after `delay` microseconds.
  template <typename F>
  EventId after(Micros delay, F&& fn) {
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a previously scheduled callback; a no-op if it already fired
  /// (or was already cancelled).  The entry is removed in place — repeated
  /// cancel-after-fire churn leaves nothing behind.  Returns true only if a
  /// pending event was actually removed, so callers (TaskScope::shutdown)
  /// can count real cancellations.
  ///
  /// Determinism: cancel consumes no sequence number, so cancellation
  /// sweeps never perturb the numbering of later-scheduled events.
  bool cancel(EventId ev) { return heap_.cancel(ev.id); }

  /// Whether `ev` is still pending (scheduled, unfired, uncancelled).
  [[nodiscard]] bool scheduled(EventId ev) const { return heap_.live(ev.id); }

  /// Move a still-pending callback to absolute time `t` (>= now), keeping
  /// its callback and handle.  Returns false if the event already fired or
  /// was cancelled — the caller should schedule a fresh one.
  ///
  /// Determinism: a successful reschedule consumes exactly one sequence
  /// number, the same as the cancel+at() pair it replaces (cancel consumes
  /// none), so timer-heavy schedules are unchanged byte for byte.
  bool reschedule(EventId ev, Micros t) {
    assert(t >= now_);
    if (!heap_.reschedule(ev.id, t, seq_)) return false;
    ++seq_;
    return true;
  }

  /// Run the next pending event.  Returns false if the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    EventHeap::Fired f = heap_.pop();
    assert(f.time >= now_);
    now_ = f.time;
    ++executed_;
    f.fn();
    return true;
  }

  /// Run until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Run all events with time <= t, then set now() = t.
  void run_until(Micros t) {
    while (!heap_.empty() && heap_.top_time() <= t) step();
    if (now_ < t) now_ = t;
  }

  /// Run every pending event with time strictly below `bound` and leave
  /// now() at the last fired event (events at exactly `bound` stay queued
  /// and now() is NOT advanced to the bound).  This is the island epoch
  /// primitive: under the conservative time-window barrier (doc/PARALLEL.md)
  /// an island may only execute events that predate the earliest possible
  /// cross-island delivery, which can land at exactly `bound`.
  /// Returns the number of events executed.
  std::uint64_t run_events_before(Micros bound) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top_time() < bound) {
      step();
      ++n;
    }
    return n;
  }

  /// Advance now() to `t` without running anything.  Only legal when no
  /// pending event predates `t` — the coordinator uses this once per
  /// run_until() to line every island's clock up on the final bound, the
  /// same "idle time passes" rule run_until() applies to a single simulator.
  void advance_to(Micros t) {
    assert(heap_.empty() || heap_.top_time() >= t);
    if (now_ < t) now_ = t;
  }

  /// Run for `d` microseconds of simulated time.  Saturates at the Micros
  /// horizon instead of wrapping: `run_for(max)` late in a long run means
  /// "run everything ever scheduled", not signed overflow into the past.
  void run_for(Micros d) {
    constexpr Micros kHorizon = std::numeric_limits<Micros>::max();
    run_until(d >= kHorizon - now_ ? kHorizon : now_ + d);
  }

  /// Number of scheduled-but-unfired events.  Cancelled events are removed
  /// immediately, so this is the exact live queue depth.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event.  Only meaningful when
  /// pending() > 0; the island coordinator reads it to compute the next
  /// conservative window.
  [[nodiscard]] Micros next_event_time() const { return heap_.top_time(); }

  /// Total events executed since construction (the obs layer exports this
  /// as the `sim.events_executed` counter).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Event-slot arena size (live + recycled); grows only with the peak
  /// number of simultaneously pending events.  For tests and diagnostics.
  [[nodiscard]] std::size_t slot_capacity() const { return heap_.slot_capacity(); }

  /// Root RNG for the experiment; fork() per-component streams from it.
  Rng& rng() { return rng_; }

  // --- Coroutine support -------------------------------------------------

  /// Event callback that resumes a suspended coroutine when fired — and
  /// destroys the suspended frame instead if the event is dropped unfired
  /// (cancelled, or the simulator is torn down with the event pending), so
  /// awaiting coroutines cannot leak their frames.
  struct CoroResume {
    std::coroutine_handle<> h;
    explicit CoroResume(std::coroutine_handle<> hh) noexcept : h(hh) {}
    CoroResume(CoroResume&& o) noexcept : h(std::exchange(o.h, nullptr)) {}
    CoroResume(const CoroResume&) = delete;
    CoroResume& operator=(const CoroResume&) = delete;
    CoroResume& operator=(CoroResume&&) = delete;
    ~CoroResume() {
      if (h) h.destroy();
    }
    void operator()() { std::exchange(h, nullptr).resume(); }
  };

  /// Awaitable that resumes the coroutine after `d` simulated microseconds.
  struct DelayAwaiter {
    Simulator& sim;
    Micros d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sim.after(d, CoroResume{h}); }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.delay(d)` — suspend the logical thread for d us.
  DelayAwaiter delay(Micros d) { return DelayAwaiter{*this, d}; }

 private:
  Micros now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  EventHeap heap_;
  Rng rng_;
};

/// A waitable condition for coroutines: logical threads block on it with
/// `co_await signal.wait()` and are resumed by `notify_one/notify_all`.
///
/// This is the simulation analogue of the POSIX condition variable the
/// paper's implementation uses to block the calling thread until the first
/// CCS message of the round is received (Section 4.1).
class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(sim) {}

  /// Waiters still suspended when the signal is destroyed can never be
  /// resumed; destroy their frames so they do not leak.
  ~Signal() {
    for (auto h : waiters_) h.destroy();
  }

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  struct Awaiter {
    Signal& sig;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sig.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Suspend the current coroutine until notified.
  Awaiter wait() { return Awaiter{*this}; }

  /// Resume one waiter (FIFO), as a fresh simulator event at the current
  /// simulated time.
  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.erase(waiters_.begin());
    sim_.after(0, Simulator::CoroResume{h});
  }

  /// Resume all waiters.
  void notify_all() {
    auto ws = std::move(waiters_);
    waiters_.clear();
    for (auto h : ws) sim_.after(0, Simulator::CoroResume{h});
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace cts::sim
