// Deterministic discrete-event simulator.
//
// Everything the paper runs on a four-machine testbed runs here inside one
// process: simulated hosts, the LAN, Totem daemons, replicas, and clients
// are all driven from a single time-ordered event queue.  Determinism is
// total — same seed, same schedule, same results — which is what makes the
// agreement/monotonicity property tests meaningful.
//
// Two programming models are supported:
//   * callback timers (`at` / `after` / `cancel`) — used by protocol code
//     (Totem token timeouts, retransmission timers);
//   * C++20 coroutines (`co_await sim.delay(d)`, `co_await signal.wait()`) —
//     used by application-level logical threads, which in the paper block in
//     get_grp_clock_time() until the first CCS message of the round arrives.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cts::sim {

class Simulator;

/// Fire-and-forget coroutine used for simulated logical threads.
///
/// The coroutine starts eagerly and destroys its own frame when it runs to
/// completion (final_suspend is suspend_never), so there is no join handle;
/// completion is observed through ordinary simulation state.
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// The event queue and simulated clock.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  /// Handle for cancelling a scheduled callback.
  struct EventId {
    std::uint64_t id = 0;
  };

  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  /// Current simulated time in microseconds since simulation start.
  [[nodiscard]] Micros now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now).
  EventId at(Micros t, EventFn fn) {
    assert(t >= now_);
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{t, seq_++, id, std::move(fn)});
    ++pending_;
    return EventId{id};
  }

  /// Schedule `fn` after `delay` microseconds.
  EventId after(Micros delay, EventFn fn) { return at(now_ + delay, std::move(fn)); }

  /// Cancel a previously scheduled callback; no-op if already fired.
  void cancel(EventId ev) {
    if (cancelled_.insert(ev.id).second) {
      // The entry stays in the queue and is skipped at pop time.
    }
  }

  /// Run the next pending event.  Returns false if the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      Entry e = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      --pending_;
      if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      assert(e.time >= now_);
      now_ = e.time;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Run all events with time <= t, then set now() = t.
  void run_until(Micros t) {
    while (!queue_.empty()) {
      if (peek_time() > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  /// Run for `d` microseconds of simulated time.
  void run_for(Micros d) { run_until(now_ + d); }

  /// Number of scheduled-but-unfired events (including cancelled ones).
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Root RNG for the experiment; fork() per-component streams from it.
  Rng& rng() { return rng_; }

  // --- Coroutine support -------------------------------------------------

  /// Awaitable that resumes the coroutine after `d` simulated microseconds.
  struct DelayAwaiter {
    Simulator& sim;
    Micros d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.after(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.delay(d)` — suspend the logical thread for d us.
  DelayAwaiter delay(Micros d) { return DelayAwaiter{*this, d}; }

 private:
  struct Entry {
    Micros time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  [[nodiscard]] Micros peek_time() const { return queue_.top().time; }

  Micros now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // detlint:allow(unordered-container): membership-test only (insert/find/
  // erase); never iterated, so hash order cannot leak into the schedule.
  std::unordered_set<std::uint64_t> cancelled_;
  Rng rng_;
};

/// A waitable condition for coroutines: logical threads block on it with
/// `co_await signal.wait()` and are resumed by `notify_one/notify_all`.
///
/// This is the simulation analogue of the POSIX condition variable the
/// paper's implementation uses to block the calling thread until the first
/// CCS message of the round is received (Section 4.1).
class Signal {
 public:
  explicit Signal(Simulator& sim) : sim_(sim) {}

  struct Awaiter {
    Signal& sig;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { sig.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Suspend the current coroutine until notified.
  Awaiter wait() { return Awaiter{*this}; }

  /// Resume one waiter (FIFO), as a fresh simulator event at the current
  /// simulated time.
  void notify_one() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.erase(waiters_.begin());
    sim_.after(0, [h] { h.resume(); });
  }

  /// Resume all waiters.
  void notify_all() {
    auto ws = std::move(waiters_);
    waiters_.clear();
    for (auto h : ws) sim_.after(0, [h] { h.resume(); });
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace cts::sim
