// InlineFn: the simulator's event-callback type.
//
// A move-only type-erased callable with 48 bytes of inline storage — sized
// for the real hot-path closures (a network delivery captures this + src +
// dst + a 32-byte SharedBytes handle = 48 bytes) so scheduling an event
// performs no allocation.  std::function, by contrast, spills anything past
// its ~16-byte small-buffer onto the heap, which made every scheduled
// delivery a malloc/free pair.
//
// Captures larger than the inline buffer (e.g. a Totem token-forward
// closure carrying a whole Token) fall back to a thread-local size-classed
// free-list pool, so even the oversize path settles into pointer-swap cost
// after warm-up instead of hitting the general-purpose allocator per event.
//
// Deliberately NOT implemented with memcpy/reinterpret_cast: the repo's
// detlint type-pun rule centralizes byte punning in src/common/bytes.hpp,
// so relocation here is placement-new move-construction + explicit
// destructor calls, which is also what non-trivially-copyable captures
// (shared_ptr, coroutine handles) require for correctness anyway.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace cts::sim {

namespace detail {

/// Thread-local free-list pool for oversize callback captures.  Three size
/// classes cover every closure the protocol stack creates today; anything
/// larger goes straight to operator new.  Blocks are recycled LIFO (the
/// hottest block is reused first) and capped per class so a burst cannot
/// pin memory forever.
class FnPool {
 public:
  static constexpr std::size_t kClassSizes[3] = {64, 128, 256};
  static constexpr std::size_t kMaxFreePerClass = 64;

  static FnPool& instance() {
    thread_local FnPool pool;
    return pool;
  }

  void* allocate(std::size_t n) {
    const int c = class_of(n);
    if (c < 0) return ::operator new(n);
    auto& list = free_[static_cast<std::size_t>(c)];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      return p;
    }
    return ::operator new(kClassSizes[static_cast<std::size_t>(c)]);
  }

  void release(void* p, std::size_t n) noexcept {
    const int c = class_of(n);
    if (c < 0) {
      ::operator delete(p);
      return;
    }
    auto& list = free_[static_cast<std::size_t>(c)];
    if (list.size() >= kMaxFreePerClass) {
      ::operator delete(p);
      return;
    }
    list.push_back(p);
  }

  ~FnPool() {
    for (auto& list : free_) {
      for (void* p : list) ::operator delete(p);
    }
  }

 private:
  static int class_of(std::size_t n) {
    for (std::size_t i = 0; i < 3; ++i) {
      if (n <= kClassSizes[i]) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<void*> free_[3];
};

}  // namespace detail

/// Move-only `void()` callable with small-buffer-optimized storage.
class InlineFn {
 public:
  /// Inline capture budget: fits the network delivery closure exactly.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    construct<F, D>(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` in place.  The
  /// EventHeap uses this to build the callback directly inside its slot,
  /// skipping the type-erased relocation a construct-then-move-assign pair
  /// would pay per scheduled event.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    construct<F, D>(std::forward<F>(f));
  }

  /// emplace() from an already-erased InlineFn: plain move-assignment.
  void emplace(InlineFn&& other) noexcept { *this = std::move(other); }

  InlineFn(InlineFn&& other) noexcept { take_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      take_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { vt_->invoke(*this); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(*this);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(InlineFn& self);
    // Move `src`'s callable into the empty `dst`; leaves `src` disengaged.
    void (*relocate)(InlineFn& dst, InlineFn& src) noexcept;
    void (*destroy)(InlineFn& self) noexcept;
  };

  union Storage {
    alignas(kInlineAlign) std::byte buf[kInlineSize];
    void* heap;
  };

  void* inline_ptr() noexcept { return static_cast<void*>(storage_.buf); }

  template <typename F, typename D>
  void construct(F&& f) {
    // Inline placement requires a nothrow move so relocation (vector growth
    // inside EventHeap) can be noexcept; throwing-move callables are rare
    // and simply take the pooled path.
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (inline_ptr()) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      void* p = detail::FnPool::instance().allocate(sizeof(D));
      try {
        ::new (p) D(std::forward<F>(f));
      } catch (...) {
        detail::FnPool::instance().release(p, sizeof(D));
        throw;
      }
      storage_.heap = p;
      vt_ = &kHeapVTable<D>;
    }
  }

  void take_from(InlineFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(*this, other);
      other.vt_ = nullptr;
    }
  }

  template <typename D>
  struct InlineOps {
    static D* get(InlineFn& self) noexcept {
      return std::launder(static_cast<D*>(self.inline_ptr()));
    }
    static void invoke(InlineFn& self) { (*get(self))(); }
    static void relocate(InlineFn& dst, InlineFn& src) noexcept {
      D* s = get(src);
      ::new (dst.inline_ptr()) D(std::move(*s));
      s->~D();
    }
    static void destroy(InlineFn& self) noexcept { get(self)->~D(); }
  };

  template <typename D>
  struct HeapOps {
    static D* get(InlineFn& self) noexcept { return static_cast<D*>(self.storage_.heap); }
    static void invoke(InlineFn& self) { (*get(self))(); }
    static void relocate(InlineFn& dst, InlineFn& src) noexcept {
      dst.storage_.heap = src.storage_.heap;
    }
    static void destroy(InlineFn& self) noexcept {
      get(self)->~D();
      detail::FnPool::instance().release(self.storage_.heap, sizeof(D));
    }
  };

  template <typename D>
  static constexpr VTable kInlineVTable{&InlineOps<D>::invoke, &InlineOps<D>::relocate,
                                        &InlineOps<D>::destroy};
  template <typename D>
  static constexpr VTable kHeapVTable{&HeapOps<D>::invoke, &HeapOps<D>::relocate,
                                      &HeapOps<D>::destroy};

  const VTable* vt_ = nullptr;
  Storage storage_;
};

}  // namespace cts::sim
