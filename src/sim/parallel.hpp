// IslandCoordinator: conservative-window parallel execution of disjoint
// simulation islands, byte-identical to serial execution.
//
// An *island* is one self-contained Simulator — its own EventHeap, its own
// RNG stream, its own TaskScope roots — hosting a subsystem (one Totem ring
// and everything above it) that interacts with other islands only through
// explicitly posted cross-island messages.  The coordinator advances all
// islands in lockstep epochs:
//
//   1. every cross-island message carries at least `window_floor_us` of
//      latency, so if T0 is the earliest pending event anywhere, no event
//      executed this epoch can cause a delivery before T0 + floor;
//   2. each epoch, every island therefore executes exactly the events with
//      time < W, where W = min(T0 + floor, bound) — independently, in
//      parallel, with zero shared state;
//   3. at the barrier the coordinator drains the mailboxes in canonical
//      (source island, post order) order into the destination heaps, then
//      recomputes T0.
//
// Determinism: an island's schedule is a function of its own heap contents
// and the mailbox drains.  Neither depends on the number of worker threads:
// epoch windows are pure virtual-time arithmetic, and the drain order is
// fixed by (src island, post seq) — a message's destination-side sequence
// number (the FIFO tie-break within a timestamp) is assigned at the
// single-threaded barrier, never by thread arrival order.  Hence a run with
// N workers fires exactly the events, in exactly the order, of the serial
// run — traces and metrics are byte-identical (proven by the double-run
// test in tests/parallel_sim_test.cpp; doc/PARALLEL.md has the full
// argument).
//
// Threading model: islands are pinned to workers (island i runs on worker
// i % threads for the life of the run), worker 0 being the coordinating
// thread itself, so threads == 1 spawns nothing and executes the islands
// in index order on the caller — the exact serial path.  Mailbox cells are
// (src, dst) pairs written only by src's worker during an epoch and read
// only by the coordinator at the barrier; the barrier's mutex establishes
// the happens-before edges, so the whole scheme is data-race-free (the TSan
// CI leg runs the parallel suite at CTS_SIM_THREADS=4).
#pragma once

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/inline_fn.hpp"
#include "sim/simulator.hpp"

namespace cts::sim {

/// Index of an island within its coordinator.
using IslandId = std::uint32_t;

/// Worker-thread count for parallel runs: the CTS_SIM_THREADS environment
/// variable when set to a positive integer, otherwise `fallback`.
/// 1 (the default everywhere) means fully serial execution.
inline unsigned threads_from_env(unsigned fallback = 1) {
  const char* env = std::getenv("CTS_SIM_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0 || v > 1024) return fallback;
  return static_cast<unsigned>(v);
}

class IslandCoordinator {
 public:
  struct Stats {
    std::uint64_t epochs = 0;          // barrier windows executed
    std::uint64_t posts = 0;           // cross-island messages posted
    std::uint64_t events_executed = 0; // events fired under the coordinator
  };

  /// `window_floor_us` is the minimum latency of every cross-island post —
  /// the conservative lookahead that makes the epoch windows safe.  Must be
  /// at least 1 (an island may never affect another in the same instant).
  explicit IslandCoordinator(Micros window_floor_us) : floor_(window_floor_us) {
    assert(floor_ >= 1);
  }

  IslandCoordinator(const IslandCoordinator&) = delete;
  IslandCoordinator& operator=(const IslandCoordinator&) = delete;

  ~IslandCoordinator() { stop_workers(); }

  /// Register an island.  All islands must be registered before the first
  /// run_until(); the returned id is the island's permanent index.
  IslandId add_island(Simulator& sim) {
    assert(!running_started_ && "add_island after the first run_until");
    const auto id = static_cast<IslandId>(islands_.size());
    islands_.push_back(&sim);
    post_seq_.push_back(0);
    const std::size_t k = islands_.size();
    mail_ = std::vector<std::vector<Entry>>(k * k);
    return id;
  }

  [[nodiscard]] std::size_t island_count() const { return islands_.size(); }
  [[nodiscard]] Micros window_floor() const { return floor_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Requested worker count for subsequent runs (clamped to the island
  /// count at run time; 1 = serial).  Callable between runs, not during one.
  void set_threads(unsigned n) {
    assert(!in_epoch_);
    requested_threads_ = n == 0 ? 1 : n;
  }
  [[nodiscard]] unsigned threads() const { return requested_threads_; }

  /// Post `fn` to run on island `dst` at absolute (destination) time
  /// `deliver_at`.  Must be called from island `src`'s execution (its
  /// worker thread, during an epoch, or any single-threaded setup phase
  /// outside run_until), and the delivery must respect the window floor:
  /// deliver_at >= src.now() + window_floor().  The callable must own its
  /// captures — it is executed (or destroyed unfired) on another thread.
  template <typename F>
  void post(IslandId src, IslandId dst, Micros deliver_at, F&& fn) {
    assert(src < islands_.size() && dst < islands_.size());
    assert(deliver_at >= islands_[src]->now() + floor_ &&
           "cross-island delivery below the conservative window floor");
    auto& cell = mail_[src * islands_.size() + dst];
    cell.push_back(Entry{deliver_at, InlineFn(std::forward<F>(fn))});
    ++post_seq_[src];
  }

  /// Run every island up to and including virtual time `t` (the multi-island
  /// analogue of Simulator::run_until): all events with time <= t fire, and
  /// every island's now() ends at exactly t.
  void run_until(Micros t) {
    running_started_ = true;
    ensure_workers();
    if (step_window_ != 0) {  // finish the epoch a step() left open
      for (; step_island_ < islands_.size(); ++step_island_) {
        stats_.events_executed += islands_[step_island_]->run_events_before(step_window_);
      }
      step_window_ = 0;
    }
    drain_mailboxes();
    for (;;) {
      Micros t0 = kInf;
      for (Simulator* s : islands_) {
        if (s->pending() > 0 && s->next_event_time() < t0) t0 = s->next_event_time();
      }
      if (t0 == kInf || t0 > t) break;
      const Micros w = std::min(sat_add(t0, floor_), sat_add(t, 1));
      execute_epoch(w);
      ++stats_.epochs;
      drain_mailboxes();
    }
    for (Simulator* s : islands_) s->advance_to(t);
    now_ = t;
  }

  /// Run for `d` microseconds of virtual time past the current bound.
  void run_for(Micros d) { run_until(sat_add(now_, d)); }

  /// Execute exactly ONE event, following the identical canonical schedule
  /// run_until() produces: epochs in window order, islands in index order
  /// within an epoch, each island's events in its own heap order.  Serial
  /// only (the whole point is a deterministic event-index grid for fault
  /// sweeps — see tests/handoff_sweep_test.cpp).  Returns false when no
  /// event remains at or before `t`; islands are then advanced to `t`.
  /// run_until() may be called afterwards — it first finishes any epoch a
  /// step() left open, so stepping K events and then running to completion
  /// executes the same schedule as a plain run with a K-indexed
  /// intervention.
  bool step(Micros t) {
    assert(effective_threads() == 1 && "step() is serial-only");
    running_started_ = true;
    for (;;) {
      if (step_window_ == 0) {  // open the next epoch
        drain_mailboxes();
        Micros t0 = kInf;
        for (Simulator* s : islands_) {
          if (s->pending() > 0 && s->next_event_time() < t0) t0 = s->next_event_time();
        }
        if (t0 == kInf || t0 > t) {
          for (Simulator* s : islands_) s->advance_to(t);
          now_ = t;
          return false;
        }
        step_window_ = std::min(sat_add(t0, floor_), sat_add(t, 1));
        step_island_ = 0;
        ++stats_.epochs;
      }
      for (; step_island_ < islands_.size(); ++step_island_) {
        Simulator* s = islands_[step_island_];
        if (s->pending() > 0 && s->next_event_time() < step_window_) {
          s->step();
          ++stats_.events_executed;
          return true;
        }
      }
      step_window_ = 0;  // epoch exhausted; open the next one
    }
  }

  /// The coordinator's virtual-time cursor: the bound of the last
  /// run_until().  Islands' own now() match it between runs.
  [[nodiscard]] Micros now() const { return now_; }

 private:
  struct Entry {
    Micros at;
    InlineFn fn;
  };

  static constexpr Micros kInf = std::numeric_limits<Micros>::max();

  static Micros sat_add(Micros a, Micros b) { return a > kInf - b ? kInf : a + b; }

  /// Schedule all queued cross-island messages into their destination heaps
  /// in canonical (src, post order) order — dst-side sequence numbers (the
  /// simultaneous-event tie break) are assigned here, single-threaded, so
  /// they are identical for every worker count.
  void drain_mailboxes() {
    const std::size_t k = islands_.size();
    for (std::size_t src = 0; src < k; ++src) {
      for (std::size_t dst = 0; dst < k; ++dst) {
        auto& cell = mail_[src * k + dst];
        for (Entry& e : cell) {
          // A post made during single-threaded setup may predate an
          // island's clock; deliver it as soon as the destination allows.
          const Micros at = std::max(e.at, islands_[dst]->now());
          islands_[dst]->at(at, std::move(e.fn));
          ++stats_.posts;
        }
        cell.clear();
      }
    }
  }

  void execute_epoch(Micros w) {
    const unsigned n = effective_threads();
    if (n <= 1) {
      for (Simulator* s : islands_) stats_.events_executed += s->run_events_before(w);
      return;
    }
    in_epoch_ = true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      window_ = w;
      workers_pending_ = static_cast<unsigned>(workers_.size());
      ++generation_;
    }
    cv_work_.notify_all();
    // Worker 0 is this thread: islands 0, n, 2n, ...
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < islands_.size(); i += n) {
      fired += islands_[i]->run_events_before(w);
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return workers_pending_ == 0; });
      stats_.events_executed += fired + worker_fired_;
      worker_fired_ = 0;
    }
    in_epoch_ = false;
  }

  [[nodiscard]] unsigned effective_threads() const {
    const auto k = static_cast<unsigned>(islands_.size());
    return std::min(requested_threads_, k == 0 ? 1u : k);
  }

  void ensure_workers() {
    const unsigned want = effective_threads();
    if (want == spawned_threads_) return;
    stop_workers();
    spawned_threads_ = want;
    if (want <= 1) return;
    stop_ = false;
    for (unsigned id = 1; id < want; ++id) {
      workers_.emplace_back([this, id, want] { worker_loop(id, want); });
    }
  }

  void worker_loop(unsigned id, unsigned n) {
    std::uint64_t seen = 0;
    for (;;) {
      Micros w;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        w = window_;
      }
      std::uint64_t fired = 0;
      for (std::size_t i = id; i < islands_.size(); i += n) {
        fired += islands_[i]->run_events_before(w);
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        worker_fired_ += fired;
        if (--workers_pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  void stop_workers() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& th : workers_) th.join();
    workers_.clear();
  }

  Micros floor_;
  Micros now_ = 0;
  std::vector<Simulator*> islands_;
  std::vector<std::vector<Entry>> mail_;     // mail_[src * K + dst]
  std::vector<std::uint64_t> post_seq_;      // per-src post counter
  Stats stats_;
  bool running_started_ = false;
  bool in_epoch_ = false;

  unsigned requested_threads_ = 1;
  unsigned spawned_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Micros window_ = 0;

  // step() epoch cursor: the open window (0 = none) and the island the next
  // single-step resumes at.  Serial-only state; see step().
  Micros step_window_ = 0;
  std::size_t step_island_ = 0;
  std::uint64_t generation_ = 0;
  unsigned workers_pending_ = 0;
  std::uint64_t worker_fired_ = 0;
  bool stop_ = false;
};

}  // namespace cts::sim
