// TaskScope: a per-node lifecycle scope over the simulator's event queue.
//
// The paper's fault model is fail-stop: a crashed processor stops acting and
// stops reading its hardware clock.  In the simulation every layer of a node
// (Totem daemon, GCS endpoint, replica manager, CTS, RMI client) schedules
// callbacks and parks coroutine frames on the shared event heap, so "crash"
// has to mean more than flipping a flag — every pending timer, in-flight
// delivery callback, and suspended frame the node owns must be torn down in
// one operation or the dead node keeps executing.
//
// A TaskScope is that operation's unit of ownership.  Each node owns exactly
// one (rooted in its TotemNode and reached by the higher layers through
// accessor chains); everything the node schedules goes through the scope,
// which records the EventId.  `shutdown()` then:
//
//   1. runs registered shutdown hooks in registration order (components
//      tear down their own protocol state — e.g. the Totem daemon leaves
//      the ring, the CTS abandons in-flight rounds);
//   2. sweeps every still-pending tracked event with the event heap's
//      O(log n) in-place cancel (PR 3's capability; this PR spends it).
//
// Destroy-on-drop discipline does the frame accounting for free: a cancelled
// event whose callback is a `Simulator::CoroResume` destroys the suspended
// frame when its heap slot is reset, and hooks that drop parked
// continuations (`ccs::RoundContinuation`) report the frames they destroyed
// via `note_frames_destroyed()`.
//
// Determinism: `at`/`after` forward to the simulator unmodified (same
// sequence-number consumption, zero per-event overhead beyond recording the
// id), so non-crash schedules are byte-identical with or without a scope.
// Cancellation consumes no sequence numbers, so the shutdown sweep only
// removes events — it never renumbers the survivors.
//
// A scope is reusable after shutdown(): the same per-node scope serves the
// node's whole lifetime across crash, restart, and cold restart.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace cts::sim {

class TaskScope {
 public:
  using HookId = std::uint64_t;

  explicit TaskScope(Simulator& sim) : sim_(sim) {}

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Schedule `fn` at absolute simulated time `t`, owned by this scope.
  template <typename F>
  Simulator::EventId at(Micros t, F&& fn) {
    const Simulator::EventId ev = sim_.at(t, std::forward<F>(fn));
    track(ev);
    return ev;
  }

  /// Schedule `fn` after `delay` microseconds, owned by this scope.
  template <typename F>
  Simulator::EventId after(Micros delay, F&& fn) {
    const Simulator::EventId ev = sim_.after(delay, std::forward<F>(fn));
    track(ev);
    return ev;
  }

  /// Cancel a scope-owned event.  Returns true if a pending event was
  /// removed.  Cancels performed by shutdown hooks count toward
  /// `timers_cancelled_on_shutdown()` exactly like the final sweep.
  bool cancel(Simulator::EventId ev) {
    const bool removed = sim_.cancel(ev);
    if (removed && in_shutdown_) ++timers_cancelled_;
    return removed;
  }

  /// Re-key a still-pending scope-owned event (the id stays tracked and
  /// stays valid).  Returns false if it already fired or was cancelled.
  bool reschedule(Simulator::EventId ev, Micros t) { return sim_.reschedule(ev, t); }

  /// Awaitable: suspend the coroutine for `d` simulated microseconds with
  /// the wakeup owned by this scope — shutdown() cancels the wakeup, which
  /// destroys the suspended frame instead of resuming a dead node's code.
  struct DelayAwaiter {
    TaskScope& scope;
    Micros d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { scope.after(d, Simulator::CoroResume{h}); }
    void await_resume() const noexcept {}
  };

  /// `co_await scope.delay(d)` — the scoped analogue of Simulator::delay.
  DelayAwaiter delay(Micros d) { return DelayAwaiter{*this, d}; }

  /// Register a hook to run at the start of shutdown(), before the timer
  /// sweep.  Hooks run in registration order.  Components whose lifetime is
  /// shorter than the scope's (anything rebuilt on restart) must
  /// remove_hook() in their destructor.
  // detlint:allow(heap-callback): hooks are registered once per component
  // lifetime, never constructed on the per-event path.
  HookId on_shutdown(std::function<void()> hook) {
    const HookId id = next_hook_id_++;
    hooks_.push_back(Hook{id, std::move(hook)});
    return id;
  }

  /// Deregister a shutdown hook.  Safe to call with an id that already ran.
  void remove_hook(HookId id) {
    for (std::size_t i = 0; i < hooks_.size(); ++i) {
      if (hooks_[i].id == id) {
        hooks_.erase(hooks_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Fail-stop teardown: run shutdown hooks, then cancel every pending
  /// event this scope owns.  Cancelled events destroy their callbacks in
  /// place, so parked `CoroResume` wakeups destroy their coroutine frames
  /// rather than resuming a dead node.  The scope remains usable — a
  /// restarted node keeps scheduling through the same scope.
  void shutdown() {
    in_shutdown_ = true;
    for (std::size_t i = 0; i < hooks_.size(); ++i) hooks_[i].fn();
    for (const std::uint64_t id : live_) {
      if (sim_.cancel(Simulator::EventId{id})) ++timers_cancelled_;
    }
    live_.clear();
    in_shutdown_ = false;
  }

  /// Shutdown hooks that drop parked continuations themselves (e.g. the
  /// CTS abandoning in-flight rounds) report the frames they destroyed.
  void note_frames_destroyed(std::uint64_t n) { frames_destroyed_ += n; }

  /// Pending events actually cancelled across all shutdown() calls (the
  /// obs layer exports this as `sim.timers_cancelled_on_shutdown`).
  [[nodiscard]] std::uint64_t timers_cancelled_on_shutdown() const { return timers_cancelled_; }

  /// Suspended coroutine frames destroyed by shutdown hooks (exported as
  /// `node.frames_destroyed_on_shutdown`).  Frames destroyed by the timer
  /// sweep itself (scoped delays, parked resume trampolines) are counted
  /// as cancelled timers, not here.
  [[nodiscard]] std::uint64_t frames_destroyed_on_shutdown() const { return frames_destroyed_; }

  /// Tracked ids not yet pruned (diagnostic; an upper bound on live timers).
  [[nodiscard]] std::size_t tracked() const { return live_.size(); }

 private:
  struct Hook {
    HookId id;
    // detlint:allow(heap-callback): see on_shutdown() — never per-event.
    std::function<void()> fn;
  };

  void track(Simulator::EventId ev) {
    live_.push_back(ev.id);
    if (live_.size() >= prune_threshold_) prune();
  }

  /// Drop ids whose events already fired or were cancelled.  Amortized O(1)
  /// per tracked event and purely a function of the schedule, so pruning
  /// never perturbs determinism.
  void prune() {
    std::size_t keep = 0;
    for (const std::uint64_t id : live_) {
      if (sim_.scheduled(Simulator::EventId{id})) live_[keep++] = id;
    }
    live_.resize(keep);
    prune_threshold_ = live_.size() * 2 < kMinPrune ? kMinPrune : live_.size() * 2;
  }

  static constexpr std::size_t kMinPrune = 64;

  Simulator& sim_;
  std::vector<std::uint64_t> live_;
  std::vector<Hook> hooks_;
  std::size_t prune_threshold_ = kMinPrune;
  HookId next_hook_id_ = 1;
  std::uint64_t timers_cancelled_ = 0;
  std::uint64_t frames_destroyed_ = 0;
  bool in_shutdown_ = false;
};

}  // namespace cts::sim
