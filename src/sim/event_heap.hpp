// EventHeap: the simulator's pending-event store.
//
// An indexed binary min-heap ordered by (time, seq) over a slot-map of
// stable, generation-checked handles.  Compared with the previous
// std::priority_queue + tombstone-set design:
//
//   * cancel() removes the entry in place in O(log n) — no tombstone is
//     left behind, so cancel-heavy protocol phases (Totem timer churn)
//     no longer grow the queue or the tombstone set without bound;
//   * cancelling an already-fired handle is a generation-checked no-op —
//     the slot's generation was bumped when the event fired, so a stale
//     handle can never hit a recycled slot;
//   * reschedule() re-keys a live entry in place (one sift) instead of a
//     cancel+insert pair — the common path for Totem's token-loss and
//     token-retransmission timers;
//   * the heap array holds 24-byte trivially copyable nodes, so sifting
//     moves small PODs instead of 64+-byte entries whose std::function
//     members drag a type-erased move through every level;
//   * pop() hands the callback out by value — no const_cast on a
//     priority_queue top() (the UB-smell this design replaces).
//
// Determinism: ordering is a strict total order on (time, seq) — seq is
// unique per entry — so pop order is independent of the heap's internal
// layout, slot recycling order, and handle values.  Handles never feed
// into ordering; they exist only so cancel/reschedule can find entries.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/inline_fn.hpp"

namespace cts::sim {

class EventHeap {
 public:
  /// Stable handle: (generation << 32) | (slot index + 1).  Zero is never
  /// produced, so a default-constructed handle is always invalid.
  using Handle = std::uint64_t;

  /// The popped front of the queue.
  struct Fired {
    Micros time;
    InlineFn fn;
  };

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest pending (time); caller must check empty() first.
  [[nodiscard]] Micros top_time() const {
    assert(!heap_.empty());
    return heap_.front().time;
  }

  /// Number of slots ever allocated (live + recycled).  Exposed so tests
  /// can assert that fire/cancel churn recycles slots instead of growing
  /// the arena without bound.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Schedule `fn` at (time, seq).  The callable is constructed directly in
  /// the slot (no type-erased relocation on the way in).
  template <typename F>
  Handle push(Micros time, std::uint64_t seq, F&& fn) {
    std::uint32_t s;
    if (!free_slots_.empty()) {
      s = free_slots_.back();
      free_slots_.pop_back();
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[s];
    slot.fn.emplace(std::forward<F>(fn));
    heap_.push_back(Node{time, seq, s});
    sift_up(heap_.size() - 1, heap_.back());
    return make_handle(slot.generation, s);
  }

  /// Remove and return the earliest entry.
  Fired pop() {
    assert(!heap_.empty());
    const Node front = heap_.front();
    Slot& slot = slots_[front.slot];
    Fired out{front.time, std::move(slot.fn)};
    release_slot(front.slot);
    remove_at(0);
    return out;
  }

  /// Remove the entry behind `h` in place.  Returns false (and does
  /// nothing) if the handle is stale: already fired, already cancelled, or
  /// never valid.
  bool cancel(Handle h) {
    Slot* slot = resolve(h);
    if (slot == nullptr) return false;
    const std::uint32_t pos = slot->heap_pos;
    slot->fn.reset();
    release_slot(slot_index(h));
    remove_at(pos);
    return true;
  }

  /// Whether `h` still refers to a pending (unfired, uncancelled) entry.
  /// Lifecycle scopes use this to prune stale ids from their registries
  /// without touching the heap structure.
  [[nodiscard]] bool live(Handle h) const {
    if ((h & 0xffffffffu) == 0) return false;
    const std::uint32_t s = slot_index(h);
    if (s >= slots_.size()) return false;
    const Slot& slot = slots_[s];
    return slot.generation == static_cast<std::uint32_t>(h >> 32) && slot.heap_pos != kFreePos;
  }

  /// Re-key the live entry behind `h` to (new_time, new_seq), keeping its
  /// callback and handle.  Returns false if the handle is stale.
  bool reschedule(Handle h, Micros new_time, std::uint64_t new_seq) {
    Slot* slot = resolve(h);
    if (slot == nullptr) return false;
    const std::size_t pos = slot->heap_pos;
    Node node = heap_[pos];
    node.time = new_time;
    node.seq = new_seq;
    sift_either(pos, node);
    return true;
  }

 private:
  struct Node {
    Micros time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events; unique
    std::uint32_t slot;
  };

  struct Slot {
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kFreePos;
    InlineFn fn;
  };

  static constexpr std::uint32_t kFreePos = UINT32_MAX;

  static Handle make_handle(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<Handle>(generation) << 32) | (static_cast<Handle>(slot) + 1);
  }
  static std::uint32_t slot_index(Handle h) {
    return static_cast<std::uint32_t>((h & 0xffffffffu) - 1);
  }

  /// Map a handle to its live slot, or nullptr if stale/invalid.
  Slot* resolve(Handle h) {
    if ((h & 0xffffffffu) == 0) return nullptr;  // default-constructed id
    const std::uint32_t s = slot_index(h);
    if (s >= slots_.size()) return nullptr;
    Slot& slot = slots_[s];
    if (slot.generation != static_cast<std::uint32_t>(h >> 32)) return nullptr;
    if (slot.heap_pos == kFreePos) return nullptr;
    return &slot;
  }

  /// Bump the generation (invalidating outstanding handles) and recycle.
  void release_slot(std::uint32_t s) {
    Slot& slot = slots_[s];
    ++slot.generation;
    slot.heap_pos = kFreePos;
    free_slots_.push_back(s);
  }

  /// Remove the node at heap position `pos` (its slot is already released):
  /// percolate the last node into the hole.
  void remove_at(std::size_t pos) {
    const std::size_t last = heap_.size() - 1;
    const Node moved = heap_[last];
    heap_.pop_back();
    if (pos != last) sift_either(pos, moved);
  }

  static bool earlier(const Node& a, const Node& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  /// Write `node` at `pos`, maintaining the slot back-pointer.
  void place(std::size_t pos, const Node& node) {
    heap_[pos] = node;
    slots_[node.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  // The sifts percolate a hole rather than swapping pairwise: each level
  // costs one 24-byte node copy and one slot back-pointer update instead of
  // a three-copy swap with two updates.  `node` is the entry logically at
  // `pos`; whatever the array holds there is treated as the hole.

  void sift_up(std::size_t pos, const Node node) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!earlier(node, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, node);
  }

  void sift_down(std::size_t pos, const Node node) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t kid = 2 * pos + 1;
      if (kid >= n) break;
      const std::size_t r = kid + 1;
      if (r < n && earlier(heap_[r], heap_[kid])) kid = r;
      if (!earlier(heap_[kid], node)) break;
      place(pos, heap_[kid]);
      pos = kid;
    }
    place(pos, node);
  }

  /// Settle `node` at `pos` in whichever direction the heap property needs;
  /// a single parent comparison picks it (they cannot both be violated).
  void sift_either(std::size_t pos, const Node& node) {
    if (pos > 0 && earlier(node, heap_[(pos - 1) / 2])) {
      sift_up(pos, node);
    } else {
      sift_down(pos, node);
    }
  }

  std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace cts::sim
