// Simulated stable storage (a local disk with fsync latency).
//
// The paper's recovery protocol assumes at least one replica survives to
// serve the state transfer.  Stable storage lifts that assumption: each
// replica persists its checkpoints locally, so after a TOTAL failure the
// group can cold-start from disk — and, critically for the time service,
// the persisted CTS state carries the last group-clock value, so the group
// clock stays monotone across the outage (readings after the cold start
// are forced above everything handed out before it).
//
// The store belongs to the HOST, not the process: it survives crash() and
// restart() of the node's software stack, which is exactly what a disk
// does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace cts::storage {

class StableStore {
 public:
  struct Config {
    /// Synchronous-write (fsync) latency bounds, microseconds.
    Micros min_write_us = 400;
    Micros max_write_us = 4'000;
  };

  StableStore(sim::Simulator& sim, Config cfg, std::uint64_t seed)
      : sim_(sim), cfg_(cfg), rng_(seed) {}

  /// Durably write `value` under `key`; `done` fires after the simulated
  /// fsync completes.  A crash before `done` may or may not have persisted
  /// the write — modeled by committing the data at the START of the fsync
  /// window (the common torn-write case is out of scope; values are
  /// checksummed at a higher layer in real systems).
  void write(const std::string& key, Bytes value, std::function<void()> done = nullptr) {
    data_[key] = std::move(value);
    ++writes_;
    const Micros latency = rng_.range(cfg_.min_write_us, cfg_.max_write_us);
    if (done) {
      sim_.after(latency, [done = std::move(done)] { done(); });
    }
  }

  /// Read back a key (instant: cold-start reads are not on the hot path).
  [[nodiscard]] std::optional<Bytes> read(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  void erase(const std::string& key) { data_.erase(key); }

  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::size_t keys() const { return data_.size(); }

 private:
  sim::Simulator& sim_;
  Config cfg_;
  Rng rng_;
  std::map<std::string, Bytes> data_;
  std::uint64_t writes_ = 0;
};

}  // namespace cts::storage
