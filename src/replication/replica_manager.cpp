#include "replication/replica_manager.hpp"

#include <cassert>

#include "common/logging.hpp"

namespace cts::replication {

namespace {
/// Tag values for the kState streams (dedup is per (conn, type, tag)).
constexpr ThreadId kRecoveryStateTag{0};
constexpr ThreadId kPeriodicStateTag{1};
constexpr ThreadId kColdStateTag{2};

/// Stable-storage key for the local checkpoint.
const char* const kCheckpointKey = "replica-checkpoint";

/// The covered-request count a snapshot declares (its trailing u64),
/// without applying it.  Throws CodecError on a malformed snapshot.
std::uint64_t peek_covered(std::span<const std::uint8_t> snapshot) {
  BytesReader r(snapshot);
  const auto shard_count = r.u32();
  for (std::uint32_t i = 0; i < shard_count; ++i) r.skip(r.u32());  // app states
  r.skip(r.u32());                                                  // cts state
  return r.u64();
}
}  // namespace

ReplicaManager::ReplicaManager(sim::Simulator& sim, gcs::GcsEndpoint& gcs,
                               clock::PhysicalClock& clk, ManagerConfig cfg,
                               ReplicaFactory factory)
    : sim_(sim),
      gcs_(gcs),
      scope_(gcs.scope()),
      cfg_(cfg),
      cts_(sim, gcs, clk, [&cfg] {
        ccs::CtsConfig c;
        c.group = cfg.group;
        c.ccs_conn = cfg.ccs_conn;
        c.replica = cfg.replica;
        c.style = cfg.style;
        c.drift = cfg.drift;
        c.mean_delay_us = cfg.mean_delay_us;
        c.reference_gain = cfg.reference_gain;
        return c;
      }()) {
  assert(cfg_.shards >= 1);
  assert((cfg_.shards == 1 || cfg_.style != ReplicationStyle::kPassive) &&
         "sharded processing is supported for active/semi-active replication");

  // Create the shards in index order — the paper's requirement that threads
  // be created in the same order at every replica.
  shards_.resize(cfg_.shards);
  for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
    const ThreadId thread{cfg_.processing_thread.value + i};
    shards_[i].ctx = std::make_unique<ReplicaContext>(
        ReplicaContext{sim, cts_, cfg_.group, cfg_.replica, thread, clk, &gcs_});
    shards_[i].app = factory(*shards_[i].ctx);
    cts_.register_thread(thread);
  }

  gcs_.subscribe(cfg_.group, [this](const gcs::Message& m) { on_message(m); });
  gcs_.subscribe_view(cfg_.group, [this](const gcs::GroupView& v) { on_view(v); });
}

// --- Lifecycle -----------------------------------------------------------------

ReplicaManager::~ReplicaManager() {
  // Self-referential timers (GET_STATE retry, pump trampolines) may still
  // be pending — e.g. Testbed::restart_server destroys the old manager
  // mid-simulation.  Cancel them through the node's scope, which outlives
  // the manager; cancellation consumes no sequence numbers, so surviving
  // events keep their positions in the deterministic schedule.
  if (get_state_armed_) scope_.cancel(get_state_timer_);
  for (auto& sh : shards_) {
    if (sh.pump_armed) scope_.cancel(sh.pump_event);
  }
}

void ReplicaManager::start() {
  recovering_ = false;
  gcs_.join_group(cfg_.group, cfg_.replica);
}

void ReplicaManager::start_recovering(UniqueFn<void()> recovered) {
  recovering_ = true;
  clock_initialized_ = false;
  saw_own_get_state_ = false;
  recovered_cb_ = std::move(recovered);
  if (rec_) {
    ++*c_recoveries_started_;
    rec_->event(obs::EventKind::kRecoveryStart, gcs_.node_id(), cfg_.replica);
  }
  cts_.begin_recovery([this](Micros) { clock_initialized_ = true; });

  // Evict our dead predecessor incarnation from the group view.  If the
  // host rebooted faster than the ring's token-loss detection, the Totem
  // membership never changed, so the old (node, replica) entry is still a
  // member everywhere — a ghost that would keep a dead primary "elected"
  // and wedge the group.  We are its successor on this host, so we know it
  // is gone; announce the departure through the ordered stream.
  gcs_.leave_group(cfg_.group, cfg_.replica);

  // NOTE: the replica does NOT join the group yet — it becomes a member
  // (and primary-eligible) only once its state is initialized.  It still
  // observes the ordered stream, which is how it queues the requests it
  // must process after the checkpoint.
  send_get_state();
}

void ReplicaManager::send_get_state() {
  // A (re-)issued GET_STATE supersedes any previous recovery epoch.  The
  // checkpoint the new epoch produces is taken at a quiescent point AFTER
  // everything ordered before the new GET_STATE — including the requests
  // queued since the OLD GET_STATE was ordered.  Replaying those from the
  // queue on top of the new snapshot would apply them twice, so drop them
  // and re-arm the queue discipline on the new epoch.  (On the first issue
  // the queues are empty and this is a no-op.)
  saw_own_get_state_ = false;
  for (auto& sh : shards_) sh.queue.clear();

  gcs::Message m;
  m.hdr.type = gcs::MsgType::kGetState;
  m.hdr.src_grp = cfg_.group;
  m.hdr.dst_grp = cfg_.group;
  m.hdr.conn = cfg_.state_conn;
  m.hdr.tag = kRecoveryStateTag;
  // Simulated time is strictly monotone across this replica's recoveries,
  // so it serves as a unique recovery-epoch number.
  m.hdr.seq = static_cast<MsgSeqNum>(sim_.now()) + 1;
  m.hdr.sender_replica = cfg_.replica;
  recovery_epoch_ = m.hdr.seq;
  if (orc_) orc_->on_recovery_epoch(cfg_.group, cfg_.replica, recovery_epoch_);
  gcs_.send(std::move(m));

  // Re-issues can overlap an armed retry (e.g. a checkpoint raced clock
  // initialization): drop the stale timer first — it would only bail on its
  // epoch check anyway, and cancellation consumes no sequence numbers.
  if (get_state_armed_) scope_.cancel(get_state_timer_);
  get_state_timer_ = scope_.after(cfg_.get_state_retry_us, [this, epoch = recovery_epoch_] {
    get_state_armed_ = false;
    if (recovering_ && recovery_epoch_ == epoch) {
      CTS_WARN() << "replica " << to_string(cfg_.replica)
                 << " state transfer timed out; re-issuing GET_STATE";
      send_get_state();
    }
  });
  get_state_armed_ = true;
}

void ReplicaManager::start_cold() {
  recovering_ = false;
  if (cfg_.stable_store != nullptr) {
    if (auto state = cfg_.stable_store->read(kCheckpointKey)) {
      // Disk contents survive crashes but not corruption: the persisted
      // payload carries its header chain, so a damaged checkpoint is
      // detected and ignored instead of booting the replica into garbage.
      if (auto d = verify_state_payload(*state)) {
        apply_full_checkpoint(d->snapshot);
        chain_ = std::move(d->headers);
        note_chain(/*verified=*/true);
        delivery_count_ = processed_count_;
        CTS_INFO() << "replica " << to_string(cfg_.replica) << " cold-started from disk ("
                   << processed_count_ << " requests covered)";
      } else {
        CTS_WARN() << "replica " << to_string(cfg_.replica)
                   << " ignoring corrupt on-disk checkpoint";
      }
    }
  }
  gcs_.join_group(cfg_.group, cfg_.replica);
  // Announce the restored state: peers whose disks are staler adopt it.
  // (Deterministic processing means equal covered-counts imply equal
  // state, so the announcement with the highest count wins everywhere.)
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kState;
  m.hdr.src_grp = cfg_.group;
  m.hdr.dst_grp = cfg_.group;
  m.hdr.conn = cfg_.state_conn;
  m.hdr.tag = kColdStateTag;
  m.hdr.seq = processed_count_ + 1;  // dedup keeps the freshest announcement
  m.hdr.sender_replica = cfg_.replica;
  m.payload = chained_checkpoint();
  gcs_.send(std::move(m));
}

void ReplicaManager::stop() { gcs_.leave_group(cfg_.group, cfg_.replica); }

// --- Message routing ---------------------------------------------------------------

void ReplicaManager::on_message(const gcs::Message& m) {
  switch (m.hdr.type) {
    case gcs::MsgType::kUserRequest:
      on_request(m);
      break;
    case gcs::MsgType::kGetState:
      on_get_state(m);
      break;
    case gcs::MsgType::kState:
      on_state(m);
      break;
    default:
      break;  // kCcs is consumed by the ConsistentTimeService
  }
}

void ReplicaManager::on_view(const gcs::GroupView& v) {
  const gcs::GroupMember me{gcs_.node_id(), cfg_.replica};
  const bool now_primary = !v.members.empty() && v.members.front() == me;
  if (now_primary && !primary_) {
    ++stats_.promotions;
    primary_ = true;
    CTS_INFO() << "replica " << to_string(cfg_.replica) << " promoted to primary";
    if (rec_) {
      ++*c_promotions_;
      rec_->event(obs::EventKind::kFailover, gcs_.node_id(), cfg_.replica,
                  static_cast<std::int64_t>(stats_.promotions));
    }
    cts_.set_primary(true);
    if (cfg_.style == ReplicationStyle::kSemiActive) {
      // Re-send the replies the old primary may never have transmitted;
      // the client's duplicate detection drops any it already received.
      for (auto& m : reply_cache_) {
        gcs_.send(m);
        ++stats_.replies_sent;
      }
      reply_cache_.clear();
    }
    if (cfg_.style == ReplicationStyle::kPassive && !log_.empty()) {
      // Replay the logged requests the old primary never checkpointed.
      // Clock reads during replay consume the CCS messages the old primary
      // already distributed, so the group clock stays continuous.
      auto& shard = shards_[0];  // passive is single-sharded
      for (auto it = log_.rbegin(); it != log_.rend(); ++it) shard.queue.push_front(*it);
      stats_.requests_replayed += log_.size();
      log_.clear();
      pump(0);
    }
  } else if (!now_primary && primary_) {
    primary_ = false;
    cts_.set_primary(false);
  }
}

// --- Requests --------------------------------------------------------------------------

bool ReplicaManager::should_process() const {
  if (recovering_) return false;
  if (cfg_.style == ReplicationStyle::kPassive) return primary_;
  return true;  // active & semi-active: everyone processes
}

std::uint32_t ReplicaManager::shard_of(const gcs::Message& m) const {
  if (shards_.size() == 1) return 0;
  if (cfg_.shard_fn) return cfg_.shard_fn(m) % static_cast<std::uint32_t>(shards_.size());
  return 0;
}

void ReplicaManager::on_request(const gcs::Message& m) {
  if (recovering_) {
    // Requests ordered before our GET_STATE are covered by the checkpoint;
    // queue only what comes after.
    if (saw_own_get_state_) {
      shards_[shard_of(m)].queue.push_back(PendingRequest{m, 0});
    }
    return;
  }
  ++delivery_count_;
  if (should_process()) {
    const auto s = shard_of(m);
    shards_[s].queue.push_back(PendingRequest{m, delivery_count_});
    pump(s);
  } else if (cfg_.style == ReplicationStyle::kPassive) {
    log_.push_back(PendingRequest{m, delivery_count_});
    ++stats_.requests_logged;
  }
}

void ReplicaManager::pump(std::uint32_t shard) {
  Shard& sh = shards_[shard];
  if (sh.processing || sh.at_barrier || sh.queue.empty()) return;

  if (sh.queue.front().msg.hdr.type == gcs::MsgType::kGetState) {
    // Barrier: this shard is quiescent for the pending state transfer.
    sh.at_barrier = true;
    maybe_serve_barrier();
    return;
  }

  sh.processing = true;
  PendingRequest req = std::move(sh.queue.front());
  sh.queue.pop_front();
  process(shard, std::move(req));
}

void ReplicaManager::process(std::uint32_t shard, PendingRequest req) {
  const gcs::Message request = req.msg;
  shards_[shard].app->handle_request(request.payload, [this, shard, request](Bytes reply) {
    ++stats_.requests_processed;
    ++processed_count_;
    ++since_checkpoint_;
    if (cfg_.style == ReplicationStyle::kActive || primary_) {
      send_reply(request, reply);
    } else if (cfg_.style == ReplicationStyle::kSemiActive) {
      // Remember the reply we computed but did not transmit, in case the
      // primary dies before its copy reaches the client.
      gcs::Message m;
      m.hdr.type = gcs::MsgType::kUserReply;
      m.hdr.src_grp = cfg_.group;
      m.hdr.dst_grp = request.hdr.src_grp;
      m.hdr.conn = request.hdr.conn;
      m.hdr.tag = request.hdr.tag;
      m.hdr.seq = request.hdr.seq;
      m.hdr.sender_replica = cfg_.replica;
      m.payload = reply;
      reply_cache_.push_back(std::move(m));
      if (reply_cache_.size() > kReplyCacheSize) reply_cache_.pop_front();
    }
    if (cfg_.style == ReplicationStyle::kPassive && primary_ &&
        cfg_.checkpoint_every_requests > 0 &&
        since_checkpoint_ >= cfg_.checkpoint_every_requests) {
      take_periodic_checkpoint();
    }
    Shard& sh = shards_[shard];
    sh.processing = false;
    maybe_persist_after_request();
    // Trampoline through the event queue so long synchronous bursts do not
    // recurse.  The event is scope-owned: a crash (or manager destruction)
    // cancels it instead of pumping a dead replica.
    if (!sh.pump_armed) {
      sh.pump_armed = true;
      sh.pump_event = scope_.after(0, [this, shard] {
        shards_[shard].pump_armed = false;
        pump(shard);
      });
    }
  });
}

void ReplicaManager::send_reply(const gcs::Message& request, const Bytes& reply) {
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kUserReply;
  m.hdr.src_grp = cfg_.group;
  m.hdr.dst_grp = request.hdr.src_grp;
  m.hdr.conn = request.hdr.conn;
  m.hdr.tag = request.hdr.tag;
  m.hdr.seq = request.hdr.seq;
  m.hdr.sender_replica = cfg_.replica;
  m.payload = reply;
  gcs_.send(std::move(m));
  ++stats_.replies_sent;
}

// --- State transfer -----------------------------------------------------------------------

Bytes ReplicaManager::full_checkpoint() const {
  BytesWriter w;
  w.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const auto& sh : shards_) w.bytes(sh.app->checkpoint());
  w.bytes(cts_.checkpoint());
  w.u64(processed_count_);  // requests covered by this checkpoint
  return std::move(w).take();
}

Bytes ReplicaManager::chained_checkpoint() {
  const Bytes snapshot = full_checkpoint();
  extend_chain(chain_, processed_count_, snapshot);
  note_chain(/*verified=*/true);
  return encode_chained_checkpoint(snapshot, chain_);
}

std::optional<DecodedCheckpoint> ReplicaManager::verify_state_payload(
    std::span<const std::uint8_t> payload) {
  auto d = decode_chained_checkpoint(payload);
  bool ok = d.has_value() && verify_chained_checkpoint(*d);
  if (ok) {
    // The newest link must describe THIS snapshot's covered count, or the
    // chain was grafted onto a different snapshot.
    try {
      ok = d->headers.back().upto == peek_covered(d->snapshot);
    } catch (const CodecError&) {
      ok = false;
    }
  }
  if (!ok) {
    ++stats_.checkpoints_rejected;
    if (rec_) ++*c_checkpoints_rejected_;
    return std::nullopt;
  }
  return d;
}

void ReplicaManager::apply_full_checkpoint(std::span<const std::uint8_t> state) {
  BytesReader r(state);
  const auto shard_count = r.u32();
  assert(shard_count == shards_.size() && "checkpoint shard layout mismatch");
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    const Bytes app_state = r.bytes();
    shards_[i].app->restore(app_state);
  }
  const Bytes cts_state = r.bytes();
  const std::uint64_t covered = r.u64();
  cts_.restore(cts_state);
  processed_count_ = covered;
  ++stats_.checkpoints_applied;
  if (rec_) {
    ++*c_checkpoints_applied_;
    rec_->event(obs::EventKind::kCheckpointApplied, gcs_.node_id(), cfg_.replica,
                static_cast<std::int64_t>(covered));
  }

  if (recovering_) {
    // Renumber the queued requests with group-consistent delivery indexes:
    // everything queued was ordered after GET_STATE, i.e. after `covered`.
    // (Re-deliver in a merged pass to keep per-shard FIFO order intact —
    // queues were filled in delivery order already, so only the indexes
    // need fixing.)
    delivery_count_ = covered;
    for (auto& sh : shards_) {
      for (auto& q : sh.queue) q.delivery_index = ++delivery_count_;
    }
  } else {
    // Passive backup: drop logged requests now covered by the checkpoint.
    std::erase_if(log_, [&](const PendingRequest& p) { return p.delivery_index <= covered; });
    since_checkpoint_ = 0;
  }
}

void ReplicaManager::on_get_state(const gcs::Message& m) {
  if (recovering_) {
    if (m.hdr.sender_replica == cfg_.replica && m.hdr.seq == recovery_epoch_) {
      saw_own_get_state_ = true;  // requests after this point must be queued
    }
    return;
  }
  // Passive backups do not serve state transfer (they may be stale); the
  // primary — and, for active/semi-active, every replica — handles
  // GET_STATE at a quiescent point: the barrier entry stalls each shard
  // until all shards drained everything ordered before it.
  if (!should_process()) return;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    shards_[s].queue.push_back(PendingRequest{m, 0});
    pump(s);
  }
}

void ReplicaManager::maybe_serve_barrier() {
  for (const auto& sh : shards_) {
    if (!sh.at_barrier) return;  // someone is still draining
  }
  // Global quiescence: all shards stalled on the same (totally ordered)
  // GET_STATE.  Serve it once, then release every shard.
  const gcs::Message get_state = shards_[0].queue.front().msg;
  serve_state_transfer(get_state);
}

void ReplicaManager::serve_state_transfer(const gcs::Message& get_state) {
  ++stats_.state_transfers_served;
  if (rec_) {
    ++*c_state_transfers_served_;
    rec_->event(obs::EventKind::kStateTransfer, gcs_.node_id(), cfg_.replica,
                static_cast<std::int64_t>(log_.size()));
  }
  // Section 3.2: a special round of consistent clock synchronization is
  // taken immediately before the checkpoint, so the recovering replica can
  // initialize its offset from the group clock.
  cts_.run_special_round([this, get_state](Micros) {
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kState;
    m.hdr.src_grp = cfg_.group;
    m.hdr.dst_grp = cfg_.group;
    m.hdr.conn = cfg_.state_conn;
    m.hdr.tag = kRecoveryStateTag;
    m.hdr.seq = get_state.hdr.seq;  // pairs the checkpoint with its request
    m.hdr.sender_replica = cfg_.replica;
    m.payload = chained_checkpoint();
    const auto ckpt_bytes = m.payload.size();
    gcs_.send(std::move(m));
    ++stats_.checkpoints_taken;
    if (rec_) {
      ++*c_checkpoints_taken_;
      rec_->event(obs::EventKind::kCheckpointTaken, gcs_.node_id(), cfg_.replica,
                  static_cast<std::int64_t>(ckpt_bytes));
    }
    // Release the barriers (scope-owned trampolines, same as pump()).
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = shards_[s];
      assert(sh.at_barrier && !sh.queue.empty());
      sh.queue.pop_front();
      sh.at_barrier = false;
      if (!sh.pump_armed) {
        sh.pump_armed = true;
        sh.pump_event = scope_.after(0, [this, s] {
          shards_[s].pump_armed = false;
          pump(s);
        });
      }
    }
  });
}

void ReplicaManager::persist_locally() {
  if (cfg_.stable_store == nullptr) return;
  cfg_.stable_store->write(kCheckpointKey, chained_checkpoint());
  ++stats_.checkpoints_persisted;
}

void ReplicaManager::maybe_persist_after_request() {
  if (cfg_.stable_store == nullptr || cfg_.persist_every_requests == 0) return;
  if (processed_count_ < persist_low_water_ + cfg_.persist_every_requests) return;
  // Persist only from a globally quiescent instant so the snapshot is not
  // torn across concurrently-processing shards.
  for (const auto& sh : shards_) {
    if (sh.processing) return;  // try again after the next completion
  }
  persist_low_water_ = processed_count_;
  persist_locally();
}

void ReplicaManager::take_periodic_checkpoint() {
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kState;
  m.hdr.src_grp = cfg_.group;
  m.hdr.dst_grp = cfg_.group;
  m.hdr.conn = cfg_.state_conn;
  m.hdr.tag = kPeriodicStateTag;
  m.hdr.seq = ++checkpoint_seq_;
  m.hdr.sender_replica = cfg_.replica;
  m.payload = chained_checkpoint();
  const auto ckpt_bytes = m.payload.size();
  gcs_.send(std::move(m));
  ++stats_.checkpoints_taken;
  if (rec_) {
    ++*c_checkpoints_taken_;
    rec_->event(obs::EventKind::kCheckpointTaken, gcs_.node_id(), cfg_.replica,
                static_cast<std::int64_t>(ckpt_bytes));
  }
  since_checkpoint_ = 0;
  persist_locally();
}

void ReplicaManager::on_state(const gcs::Message& m) {
  if (recovering_) {
    // Dedupe against the recovery epoch: a reply paired with a GET_STATE we
    // have since superseded (its reply crossed our retry in flight) must be
    // dropped, not applied — the queued requests only line up with the
    // checkpoint of the CURRENT epoch.
    if (m.hdr.tag != kRecoveryStateTag || m.hdr.seq != recovery_epoch_) return;
    if (!clock_initialized_) {
      // The special CCS round is ordered before the checkpoint, so this
      // cannot happen unless the serving replica misbehaved.
      CTS_WARN() << "checkpoint arrived before clock initialization; re-requesting";
      send_get_state();
      return;
    }
    auto d = verify_state_payload(m.payload);
    if (!d) {
      // Chain verification failed: do not adopt the state; ask again.
      CTS_WARN() << "replica " << to_string(cfg_.replica)
                 << " rejected checkpoint with broken hash chain; re-requesting";
      send_get_state();
      return;
    }
    apply_full_checkpoint(d->snapshot);
    chain_ = std::move(d->headers);
    note_chain(/*verified=*/true);
    persist_locally();
    recovering_ = false;
    gcs_.join_group(cfg_.group, cfg_.replica);  // now a full member
    std::size_t queued = 0;
    for (auto& sh : shards_) queued += sh.queue.size();
    CTS_INFO() << "replica " << to_string(cfg_.replica) << " recovered (" << queued
               << " queued requests to drain)";
    if (rec_) {
      ++*c_recoveries_completed_;
      rec_->event(obs::EventKind::kRecoveryComplete, gcs_.node_id(), cfg_.replica,
                  static_cast<std::int64_t>(queued));
    }
    if (recovered_cb_) {
      auto cb = std::move(recovered_cb_);
      recovered_cb_ = nullptr;
      cb();
    }
    for (std::uint32_t s = 0; s < shards_.size(); ++s) pump(s);
    return;
  }
  auto d = verify_state_payload(m.payload);
  if (!d) {
    CTS_WARN() << "replica " << to_string(cfg_.replica)
               << " ignoring checkpoint with broken hash chain";
    return;
  }
  if (m.hdr.tag == kColdStateTag) {
    // A cold-start announcement: adopt it only if it is strictly fresher
    // than our own restored state (equal counts imply equal state).
    if (d->headers.back().upto > processed_count_) {
      apply_full_checkpoint(d->snapshot);
      chain_ = std::move(d->headers);
      note_chain(/*verified=*/true);
      delivery_count_ = processed_count_;
      persist_locally();
    }
    return;
  }
  // A state transfer served for an epoch we have already moved past (e.g.
  // the late reply to a superseded GET_STATE, delivered after this replica
  // finished recovering) must not roll a fresher replica backward.
  if (d->headers.back().upto < processed_count_) return;
  // Existing replicas: the primary ignores its own checkpoints; passive
  // backups apply both periodic and recovery checkpoints to stay fresh.
  if (cfg_.style == ReplicationStyle::kPassive && !primary_) {
    apply_full_checkpoint(d->snapshot);
    chain_ = std::move(d->headers);
    note_chain(/*verified=*/true);
    persist_locally();
  }
}

void ReplicaManager::note_chain(bool verified) {
  if (!orc_) return;
  std::vector<obs::CheckpointLink> links;
  links.reserve(chain_.size());
  for (const auto& h : chain_) links.push_back({h.upto, h.digest, h.parent, h.link});
  orc_->on_checkpoint_chain(cfg_.group, cfg_.replica, links, verified);
}

void ReplicaManager::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  orc_ = rec ? rec->oracle() : nullptr;
  if (rec != nullptr) {
    // Resolve the repl.* counter handles once per wiring instead of paying
    // a by-name registry lookup on every checkpoint / recovery event.
    c_recoveries_started_ = &rec->counter("repl.recoveries_started");
    c_recoveries_completed_ = &rec->counter("repl.recoveries_completed");
    c_promotions_ = &rec->counter("repl.promotions");
    c_checkpoints_taken_ = &rec->counter("repl.checkpoints_taken");
    c_checkpoints_applied_ = &rec->counter("repl.checkpoints_applied");
    c_checkpoints_rejected_ = &rec->counter("repl.checkpoints_rejected");
    c_state_transfers_served_ = &rec->counter("repl.state_transfers_served");
  }
  cts_.set_recorder(rec);
}

}  // namespace cts::replication
