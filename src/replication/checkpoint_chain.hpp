// Hash-chained checkpoint batches.
//
// Every checkpoint a replica takes appends one header to an append-only
// chain: the header names how many requests the snapshot covers, a digest
// of the snapshot bytes, and a link value hashing the previous header into
// this one.  A kState payload ships the snapshot TOGETHER with the chain,
// so a recovering replica verifies the prefix hash — the chain links
// recompute and the final digest matches the snapshot it is about to adopt
// — instead of blindly installing whatever bytes arrived (paper Section
// 3.2's state transfer, hardened the way block-oriented ledgers chain
// their block headers).
//
// Wire format of a chained checkpoint (the kState payload, PROTOCOL.md §5):
//
//   snapshot   bytes      length-prefixed full checkpoint (§5.3)
//   count      u32        number of chain headers (≥ 1)
//   headers    count ×    { upto u64, digest u64, parent u64, link u64 }
//
// Invariants a verifier checks:
//   * headers[i].parent == headers[i-1].link          (the chain links)
//   * headers[i].link   == chain_link(header[i])      (links recompute)
//   * headers.back().digest == fnv1a64(snapshot)      (snapshot matches)
//
// The chain is bounded: only the newest kMaxHeaders links are kept (the
// oldest retained header's parent is the trusted base).  Deterministic
// processing means replicas that checkpoint at the same ordered points
// build identical chains; a recovering replica adopts the serving
// replica's chain wholesale along with the snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace cts::replication {

/// One link of the hash-chained checkpoint history.
struct CheckpointHeader {
  std::uint64_t upto = 0;    // requests covered by the snapshot
  std::uint64_t digest = 0;  // fnv1a64 of the serialized snapshot
  std::uint64_t parent = 0;  // link of the previous header (0 at the base)
  std::uint64_t link = 0;    // chain_link() over the three fields above

  friend bool operator==(const CheckpointHeader&, const CheckpointHeader&) = default;
};

/// The link value: fnv1a64 over the serialized (upto, digest, parent), so
/// a header can neither be reordered nor altered without breaking every
/// later link.
[[nodiscard]] inline std::uint64_t chain_link(std::uint64_t upto, std::uint64_t digest,
                                              std::uint64_t parent) {
  BytesWriter w;
  w.u64(upto);
  w.u64(digest);
  w.u64(parent);
  return fnv1a64(w.data());
}

/// Append a header covering `upto` requests of `snapshot` to `chain`,
/// unless the newest header already describes exactly this snapshot (a
/// checkpoint re-taken at an unchanged point is not a new link).  Keeps at
/// most `max_headers` links, dropping the oldest.
inline void extend_chain(std::vector<CheckpointHeader>& chain, std::uint64_t upto,
                         std::span<const std::uint8_t> snapshot,
                         std::size_t max_headers = 64) {
  const std::uint64_t digest = fnv1a64(snapshot);
  if (!chain.empty() && chain.back().upto == upto && chain.back().digest == digest) return;
  CheckpointHeader h;
  h.upto = upto;
  h.digest = digest;
  h.parent = chain.empty() ? 0 : chain.back().link;
  h.link = chain_link(h.upto, h.digest, h.parent);
  chain.push_back(h);
  if (chain.size() > max_headers) {
    chain.erase(chain.begin(), chain.end() - static_cast<std::ptrdiff_t>(max_headers));
  }
}

/// Serialize snapshot + chain into one kState payload.
[[nodiscard]] inline Bytes encode_chained_checkpoint(std::span<const std::uint8_t> snapshot,
                                                     const std::vector<CheckpointHeader>& chain) {
  BytesWriter w;
  w.reserve(snapshot.size() + 8 + chain.size() * 32);
  w.bytes(snapshot);
  w.u32(static_cast<std::uint32_t>(chain.size()));
  for (const auto& h : chain) {
    w.u64(h.upto);
    w.u64(h.digest);
    w.u64(h.parent);
    w.u64(h.link);
  }
  return std::move(w).take();
}

/// A decoded chained checkpoint; `snapshot` aliases the input payload.
struct DecodedCheckpoint {
  std::span<const std::uint8_t> snapshot;
  std::vector<CheckpointHeader> headers;
};

/// Parse a chained-checkpoint payload.  Returns nullopt if the payload is
/// malformed (truncated, trailing garbage, or carries no headers).
[[nodiscard]] inline std::optional<DecodedCheckpoint> decode_chained_checkpoint(
    std::span<const std::uint8_t> payload) {
  try {
    BytesReader r(payload);
    const std::uint32_t snap_len = r.u32();
    const std::size_t snap_off = r.pos();
    r.skip(snap_len);
    DecodedCheckpoint d;
    d.snapshot = payload.subspan(snap_off, snap_len);
    const std::uint32_t n = r.u32();
    if (n == 0) return std::nullopt;
    d.headers.reserve(std::min<std::size_t>(n, r.remaining() / 32));
    for (std::uint32_t i = 0; i < n; ++i) {
      CheckpointHeader h;
      h.upto = r.u64();
      h.digest = r.u64();
      h.parent = r.u64();
      h.link = r.u64();
      d.headers.push_back(h);
    }
    if (!r.done()) return std::nullopt;  // exact-length framing
    return d;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

/// Verify a decoded chained checkpoint: every link recomputes, consecutive
/// headers chain parent-to-link, covered counts never decrease, and the
/// newest header's digest matches the shipped snapshot.  O(headers + |snapshot|).
[[nodiscard]] inline bool verify_chained_checkpoint(const DecodedCheckpoint& d) {
  if (d.headers.empty()) return false;
  for (std::size_t i = 0; i < d.headers.size(); ++i) {
    const CheckpointHeader& h = d.headers[i];
    if (h.link != chain_link(h.upto, h.digest, h.parent)) return false;
    if (i > 0 && (h.parent != d.headers[i - 1].link || h.upto < d.headers[i - 1].upto)) {
      return false;
    }
  }
  return d.headers.back().digest == fnv1a64(d.snapshot);
}

}  // namespace cts::replication
