// Replication infrastructure: one ReplicaManager per replica, implementing
// active, passive, and semi-active replication over the group
// communication system, with checkpoint-based state transfer and the
// special CCS round of paper Section 3.2 for recovering replicas.
//
// Styles (paper Section 2):
//   * Active: every replica processes every request and transmits the
//     reply; the GCS suppresses duplicate replies, and the Consistent Time
//     Service makes the replicas' clock reads deterministic.
//   * Semi-active: every replica processes every request, but only the
//     primary transmits replies and CCS proposals; on primary failure a
//     backup is promoted and continues from its own (identical) state.
//   * Passive: only the primary processes requests; backups log requests
//     and apply the primary's periodic checkpoints.  On failover the new
//     primary replays the logged requests past the last checkpoint; clock
//     reads during replay consume the CCS messages the old primary already
//     distributed, so the group clock stays continuous (Section 3.3).
//
// State transfer (paper Section 3.2): a recovering replica multicasts
// GET_STATE; existing replicas process it at a quiescent point (between
// requests, since processing is serialized), run the special CCS round,
// take a checkpoint (application + CTS), and multicast it.  The recovering
// replica queues requests ordered after GET_STATE, initializes its clock
// offset from the special round, applies the checkpoint, then drains the
// queue.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clock/physical_clock.hpp"
#include "common/unique_fn.hpp"
#include "cts/consistent_time_service.hpp"
#include "gcs/gcs.hpp"
#include "replication/checkpoint_chain.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"
#include "storage/stable_store.hpp"

namespace cts::replication {

using ccs::ReplicationStyle;

struct ManagerConfig {
  GroupId group;
  ReplicaId replica;
  ReplicationStyle style = ReplicationStyle::kActive;

  /// Connection ids (fixed per group, by convention).
  ConnectionId ccs_conn{1000};
  ConnectionId state_conn{1001};

  /// The first request-processing thread's identifier; shard i uses
  /// processing_thread.value + i.
  ThreadId processing_thread{0};

  /// Number of request-processing shards (logical threads).  Each shard is
  /// its own application instance with its own CCS handler stream; requests
  /// are routed by `shard_fn`.  The paper requires threads to be created in
  /// the same order at every replica — shards satisfy that by construction.
  /// Sharding > 1 is supported for active and semi-active replication.
  std::uint32_t shards = 1;
  /// Deterministic request→shard routing (a pure function of the ordered
  /// message).  Default: everything to shard 0.
  std::function<std::uint32_t(const gcs::Message&)> shard_fn;

  /// Passive: primary checkpoints after this many processed requests
  /// (0 = checkpoint only for state transfer, never periodically).
  std::uint32_t checkpoint_every_requests = 0;

  /// Forwarded to the Consistent Time Service.
  ccs::DriftCompensation drift = ccs::DriftCompensation::kNone;
  Micros mean_delay_us = 0;
  double reference_gain = 0.0;

  /// Optional local stable storage.  When set, checkpoints are also
  /// persisted to the host's disk, enabling cold starts after a TOTAL
  /// failure (start_cold) with a monotone group clock.
  storage::StableStore* stable_store = nullptr;
  /// Persist a local checkpoint every N processed requests (0 = only when
  /// a checkpoint is taken/applied for other reasons).  Persisting waits
  /// for a moment when every shard is idle.
  std::uint32_t persist_every_requests = 0;

  /// How long a recovering replica waits for the checkpoint before
  /// re-issuing GET_STATE (covers "the replica serving the transfer
  /// crashed").  Tests shrink this to exercise the retry/reply races.
  Micros get_state_retry_us = 2'000'000;
};

struct ManagerStats {
  std::uint64_t requests_processed = 0;
  std::uint64_t requests_logged = 0;    // passive backup
  std::uint64_t requests_replayed = 0;  // passive failover
  std::uint64_t replies_sent = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_applied = 0;
  std::uint64_t checkpoints_persisted = 0;
  std::uint64_t promotions = 0;
  std::uint64_t state_transfers_served = 0;
  /// Checkpoints whose hash chain failed verification (dropped, re-requested).
  std::uint64_t checkpoints_rejected = 0;
};

class ReplicaManager {
 public:
  ReplicaManager(sim::Simulator& sim, gcs::GcsEndpoint& gcs, clock::PhysicalClock& clk,
                 ManagerConfig cfg, ReplicaFactory factory);

  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  ~ReplicaManager();

  /// Join the group as a fresh member (initial startup, empty state).
  void start();

  /// Join the group as a recovering member: multicast GET_STATE, adopt the
  /// special CCS round, apply the checkpoint, then start processing.
  /// `recovered` fires once the replica is fully integrated.  The
  /// continuation is move-only with destroy-on-drop semantics: if the
  /// manager is torn down mid-recovery the continuation is destroyed,
  /// never invoked, and never leaked.
  void start_recovering(UniqueFn<void()> recovered = nullptr);

  /// Cold start after a TOTAL group failure: restore the newest local
  /// checkpoint from stable storage (if any), join the group, and announce
  /// the restored state so peers with staler disks catch up.  The restored
  /// CTS state forces the group clock above every reading handed out
  /// before the outage.
  void start_cold();

  /// Leave the group cleanly.
  void stop();

  [[nodiscard]] bool is_primary() const { return primary_; }
  [[nodiscard]] bool recovered() const { return !recovering_; }
  [[nodiscard]] const ManagerStats& stats() const { return stats_; }
  [[nodiscard]] ccs::ConsistentTimeService& time_service() { return cts_; }
  /// The application instance of shard `i` (shard 0 by default).
  [[nodiscard]] Replica& app(std::uint32_t shard = 0) { return *shards_[shard].app; }
  [[nodiscard]] std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }
  [[nodiscard]] const ManagerConfig& config() const { return cfg_; }
  /// The hash-chained checkpoint history (newest last; see checkpoint_chain.hpp).
  [[nodiscard]] const std::vector<CheckpointHeader>& checkpoint_chain() const { return chain_; }

  /// Attach (or detach, with nullptr) an observability recorder.  Also
  /// wires the embedded ConsistentTimeService.
  void set_recorder(obs::Recorder* rec);

  /// Report the current checkpoint chain to the ordering oracle (no-op
  /// without one).  Called at every adoption/extension site.
  void note_chain(bool verified);

 private:
  struct PendingRequest {
    gcs::Message msg;
    std::uint64_t delivery_index = 0;
  };

  void send_get_state();
  void on_message(const gcs::Message& m);
  void on_view(const gcs::GroupView& v);
  void on_request(const gcs::Message& m);
  void on_get_state(const gcs::Message& m);
  void on_state(const gcs::Message& m);

  void pump(std::uint32_t shard);
  void process(std::uint32_t shard, PendingRequest req);
  void maybe_serve_barrier();
  [[nodiscard]] std::uint32_t shard_of(const gcs::Message& m) const;
  void serve_state_transfer(const gcs::Message& get_state);
  void take_periodic_checkpoint();
  void persist_locally();
  void maybe_persist_after_request();
  void send_reply(const gcs::Message& request, const Bytes& reply);
  [[nodiscard]] bool should_process() const;
  [[nodiscard]] Bytes full_checkpoint() const;
  /// full_checkpoint() wrapped with the (freshly extended) header chain —
  /// the payload every kState message and local persist now carries.
  [[nodiscard]] Bytes chained_checkpoint();
  /// Decode + chain-verify an incoming kState payload.  Returns nullopt
  /// (and counts a rejection) unless every link recomputes and the final
  /// digest covers the shipped snapshot.
  std::optional<DecodedCheckpoint> verify_state_payload(std::span<const std::uint8_t> payload);
  void apply_full_checkpoint(std::span<const std::uint8_t> state);

  sim::Simulator& sim_;
  gcs::GcsEndpoint& gcs_;
  /// The node's lifecycle scope (owned by the TotemNode underneath the GCS
  /// endpoint).  Every timer and trampoline this manager schedules is
  /// registered here: a fail-stop crash cancels them wholesale, and the
  /// destructor cancels this incarnation's own events (the scope outlives
  /// the manager — restart_server replaces the manager while the node's
  /// Totem daemon persists).
  sim::TaskScope& scope_;
  ManagerConfig cfg_;
  ccs::ConsistentTimeService cts_;

  bool primary_ = false;
  bool recovering_ = false;
  bool clock_initialized_ = false;   // recovering: special round adopted
  bool saw_own_get_state_ = false;   // recovering: our GET_STATE was ordered
  MsgSeqNum recovery_epoch_ = 0;     // seq of our outstanding GET_STATE
  UniqueFn<void()> recovered_cb_;

  // The GET_STATE retry timer, cancelled on destruction/crash instead of
  // firing into a freed (or dead) manager.
  sim::Simulator::EventId get_state_timer_{};
  bool get_state_armed_ = false;

  // Per-shard serialized request processing; shards run concurrently.
  // A kGetState entry acts as a barrier: the shard stalls on it until
  // every shard has reached its copy (global quiescence), the state
  // transfer is served, and the barriers are released together.
  struct Shard {
    std::unique_ptr<ReplicaContext> ctx;
    std::unique_ptr<Replica> app;
    std::deque<PendingRequest> queue;
    bool processing = false;
    bool at_barrier = false;
    // The pump trampoline through the event queue (at most one in flight
    // per shard), scope-owned like every other node event.
    sim::Simulator::EventId pump_event{};
    bool pump_armed = false;
  };
  std::vector<Shard> shards_;
  std::uint64_t delivery_count_ = 0;   // requests delivered so far (total order)
  std::uint64_t processed_count_ = 0;  // requests fully processed here

  // Passive backup request log: (delivery index, request).
  std::deque<PendingRequest> log_;
  // Semi-active backups cache the replies they computed but did not send;
  // on promotion they are re-sent (the old primary may have died before
  // transmitting them).  The client's duplicate detection absorbs replies
  // that did make it out.
  std::deque<gcs::Message> reply_cache_;
  static constexpr std::size_t kReplyCacheSize = 32;
  std::uint32_t since_checkpoint_ = 0;
  std::uint64_t checkpoint_seq_ = 0;   // seq for periodic kState messages
  // Hash-chained checkpoint history (newest last).  Extended whenever a
  // checkpoint is taken; adopted wholesale when one is applied, so the
  // serving replica's history continues at the recovered replica.
  std::vector<CheckpointHeader> chain_;
  std::uint64_t persist_low_water_ = 0;  // processed_count_ at last local persist

  ManagerStats stats_;
  obs::Recorder* rec_ = nullptr;
  obs::OrderingOracle* orc_ = nullptr;  // cached from rec_ in set_recorder()
  // repl.* counter handles, cached alongside rec_ (guarded by `if (rec_)`
  // at every use, same as rec_ itself).
  obs::Counter* c_recoveries_started_ = nullptr;
  obs::Counter* c_recoveries_completed_ = nullptr;
  obs::Counter* c_promotions_ = nullptr;
  obs::Counter* c_checkpoints_taken_ = nullptr;
  obs::Counter* c_checkpoints_applied_ = nullptr;
  obs::Counter* c_checkpoints_rejected_ = nullptr;
  obs::Counter* c_state_transfers_served_ = nullptr;
};

}  // namespace cts::replication
