// Generic nondeterministic-decision distribution for semi-active
// replication (the Delta-4 mechanism, paper Section 2):
//
//   "In semi-active replication, both the primary and the backup replicas
//    process incoming messages.  However, any nondeterministic decision is
//    made at the primary replica and is conveyed to the backup replicas so
//    that they remain consistent with the primary replica."
//
// The Consistent Time Service is the special case where the decision is a
// clock reading.  DecisionRelay generalizes the same round structure to
// ARBITRARY decisions — random draws, I/O results, scheduling choices:
//   * the primary computes the decision locally and multicasts it on the
//     relay's connection, tagged with the decision stream and a sequence
//     number;
//   * backups performing the same logical step block until the primary's
//    decision for that sequence number is delivered, then use it verbatim;
//   * if the primary fails, the promoted backup re-issues the pending
//     decision from its own decider (exactly the CCS failover rule), and
//     receiver-side duplicate detection discards the slower copy.
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <map>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "gcs/gcs.hpp"
#include "sim/simulator.hpp"
#include "sim/task_scope.hpp"

namespace cts::replication {

class DecisionRelay {
 public:
  /// Produces this replica's local value for a decision (only consulted at
  /// the primary, or at a backup promoted mid-round).
  using DeciderFn = std::function<Bytes()>;
  /// Move-only so the coroutine awaiter below can park its frame inside
  /// with destroy-on-drop semantics: a relay torn down (or a stream
  /// abandoned) with a decision in flight destroys the suspended caller
  /// instead of leaking it.
  using DoneFn = UniqueFn<void(Bytes)>;

  DecisionRelay(sim::Simulator& sim, gcs::GcsEndpoint& gcs, GroupId group, ConnectionId conn,
                ReplicaId replica)
      : sim_(sim), gcs_(gcs), group_(group), conn_(conn), replica_(replica) {
    gcs_.subscribe(group_, [this](const gcs::Message& m) {
      if (m.hdr.type == gcs::MsgType::kUserRequest && m.hdr.conn == conn_) on_delivered(m);
    });
  }

  DecisionRelay(const DecisionRelay&) = delete;
  DecisionRelay& operator=(const DecisionRelay&) = delete;

  /// Perform one nondeterministic decision on `stream`.  At the primary,
  /// `decider` runs and its result is conveyed to the group; at backups the
  /// conveyed value is awaited.  Streams are independent (one per logical
  /// thread, like CCS handlers).
  void decide(ThreadId stream, DeciderFn decider, DoneFn done) {
    Stream& st = streams_[stream];
    ++st.seq;
    st.decider = std::move(decider);
    st.waiting = std::move(done);
    st.sent = false;
    if (primary_ && st.buffer.empty()) send_decision(stream, st);
    try_complete(st);
  }

  /// Awaitable form for coroutine threads.  The parked frame is owned by
  /// the completion callback (CoroResume guard): dropping the callback
  /// destroys the frame, and the resume trampoline is owned by the node's
  /// lifecycle scope so it dies with the node.
  struct Awaiter {
    DecisionRelay& relay;
    ThreadId stream;
    DeciderFn decider;
    Bytes value;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      relay.decide(stream, std::move(decider),
                   [this, guard = sim::Simulator::CoroResume{h}](Bytes v) mutable {
                     value = std::move(v);
                     relay.gcs_.scope().after(0, std::move(guard));
                   });
    }
    Bytes await_resume() { return std::move(value); }
  };
  [[nodiscard]] Awaiter decide_await(ThreadId stream, DeciderFn decider) {
    return Awaiter{*this, stream, std::move(decider), {}};
  }

  /// Promotion: a blocked round whose decision never arrived is re-decided
  /// locally and conveyed (paper Section 3: "the new primary replica will
  /// send a CCS message" — same rule, generalized).
  void set_primary(bool primary) {
    const bool promoted = primary && !primary_;
    primary_ = primary;
    if (!promoted) return;
    for (auto& [t, st] : streams_) {
      if (st.waiting && st.buffer.empty() && !st.sent) send_decision(t, st);
    }
  }
  [[nodiscard]] bool is_primary() const { return primary_; }

  [[nodiscard]] std::uint64_t decisions_made() const { return decisions_made_; }
  [[nodiscard]] std::uint64_t decisions_adopted() const { return decisions_adopted_; }

 private:
  struct Stream {
    MsgSeqNum seq = 0;
    std::deque<Bytes> buffer;
    DeciderFn decider;
    DoneFn waiting;
    bool sent = false;
  };

  void send_decision(ThreadId t, Stream& st) {
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kUserRequest;
    m.hdr.src_grp = group_;
    m.hdr.dst_grp = group_;
    m.hdr.conn = conn_;
    m.hdr.tag = t;
    m.hdr.seq = st.seq;
    m.hdr.sender_replica = replica_;
    m.payload = st.decider ? st.decider() : Bytes{};
    gcs_.send(std::move(m));
    st.sent = true;
    ++decisions_made_;
  }

  void on_delivered(const gcs::Message& m) {
    Stream& st = streams_[m.hdr.tag];
    // Decision values are a few bytes; owning a copy beats pinning the
    // whole delivered batch frame in the buffer.
    st.buffer.push_back(m.payload.to_bytes());
    try_complete(st);
  }

  void try_complete(Stream& st) {
    if (!st.waiting || st.buffer.empty()) return;
    Bytes v = std::move(st.buffer.front());
    st.buffer.pop_front();
    ++decisions_adopted_;
    auto done = std::move(st.waiting);
    st.waiting = nullptr;
    done(std::move(v));
  }

  sim::Simulator& sim_;
  gcs::GcsEndpoint& gcs_;
  GroupId group_;
  ConnectionId conn_;
  ReplicaId replica_;
  bool primary_ = false;
  std::map<ThreadId, Stream> streams_;
  std::uint64_t decisions_made_ = 0;
  std::uint64_t decisions_adopted_ = 0;
};

}  // namespace cts::replication
