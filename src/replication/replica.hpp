// Application-side replica interface.
//
// A replicated application implements Replica.  Requests are delivered in
// the group's agreed total order, one at a time; while handling a request
// the application may perform clock-related operations through the
// interposed TimeSyscalls it gets from its ReplicaContext — which is where
// the Consistent Time Service makes the replicas deterministic.
#pragma once

#include <functional>
#include <memory>

#include "clock/physical_clock.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "cts/consistent_time_service.hpp"
#include "sim/simulator.hpp"

namespace cts::replication {

/// Everything a replica implementation may touch.  Handed to the factory
/// when the ReplicaManager instantiates the application object.
struct ReplicaContext {
  sim::Simulator& sim;
  /// The consistent time service for this replica.  Clock-related
  /// operations MUST go through it (or through a TimeSyscalls bound to it)
  /// to keep the replicas deterministic.
  ccs::ConsistentTimeService& time;
  GroupId group;
  ReplicaId replica;
  /// The processing thread's identifier — the paper assigns exactly one
  /// thread to process incoming invocations (Section 2, last paragraph).
  ThreadId processing_thread;
  /// The host's raw hardware clock.  Only baseline applications touch this
  /// directly — doing so reintroduces exactly the replica non-determinism
  /// the Consistent Time Service exists to remove.
  clock::PhysicalClock& hw_clock;
  /// The host's GCS endpoint, or nullptr in minimal harnesses.  Sharded
  /// applications build their cross-shard CausalMessenger streams on it
  /// (lease transfer, session migration — doc/SHARDING.md); everything
  /// they send rides the same agreed order as their request traffic.
  gcs::GcsEndpoint* gcs = nullptr;
};

/// A replicated application object.
class Replica {
 public:
  virtual ~Replica() = default;

  /// Handle one request; call `done(reply)` when finished.  Handling may be
  /// asynchronous (e.g. a coroutine awaiting clock rounds); the manager
  /// serializes requests, so the next request is only delivered after
  /// `done` runs.  The request is a zero-copy view of the delivered
  /// message; an implementation that outlives the call (a coroutine frame)
  /// keeps a SharedBytes copy — a refcount bump, not a buffer copy.
  virtual void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) = 0;

  /// Serialize the full application state for state transfer.
  [[nodiscard]] virtual Bytes checkpoint() const = 0;

  /// Replace the application state with a checkpoint.
  virtual void restore(const Bytes& state) = 0;
};

using ReplicaFactory = std::function<std::unique_ptr<Replica>(ReplicaContext&)>;

}  // namespace cts::replication
