// Topology description layer — the ShardMap.
//
// ROADMAP item 1 promotes the archipelago from a demo wiring into the
// system's sharded backbone: N independent Totem rings, each carrying one
// replicated server group with its own group clock, stitched together by
// gateway links that carry causally stamped inter-ring traffic.  This
// header is the single place that wiring is DECLARED: which groups live on
// which ring, how keys and sessions map onto rings, which connection ids
// and stamp streams the cross-ring protocols use, and how per-ring seeds
// are derived.  Testbed/Archipelago/ctsim/ctsweep/bench all consume the
// same ShardMap instead of hand-building per-ring constants, so a topology
// change (more rings, more replicas) is one struct edit, not a sweep over
// five call sites.
//
// Everything here is deterministic and pure: the same spec and the same
// key always map to the same shard, on every replica of every ring, in
// serial and island-parallel runs alike.  doc/SHARDING.md documents the
// scheme; EXPERIMENTS.md documents the knobs that feed it.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace cts::app {

/// Declarative shape of a sharded deployment: how many rings, how many
/// server replicas per ring, whether each ring hosts an (unreplicated)
/// client node.  Parsed from ctsim's `--topology RxS` flag or built in
/// code; validated once by ShardMap.
struct TopologySpec {
  std::size_t rings = 1;
  std::size_t servers = 3;
  bool with_client = true;

  /// Parse a "RxS" topology string ("4x6" = 4 rings of 6 replicas).
  /// A bare "R" means R rings with the default replica count.
  static std::optional<TopologySpec> parse(std::string_view s) {
    TopologySpec spec;
    std::size_t i = 0;
    auto number = [&](std::size_t& out) {
      if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
      out = 0;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        out = out * 10 + static_cast<std::size_t>(s[i] - '0');
        ++i;
      }
      return true;
    };
    if (!number(spec.rings)) return std::nullopt;
    if (i < s.size()) {
      if (s[i] != 'x') return std::nullopt;
      ++i;
      if (!number(spec.servers) || i != s.size()) return std::nullopt;
    }
    if (spec.rings == 0 || spec.servers == 0) return std::nullopt;
    return spec;
  }
};

/// The deterministic ring/group/stream naming scheme plus the key- and
/// session-to-shard mapping.  One instance describes the whole deployment;
/// it is cheap to copy and safe to share read-only across islands (it is
/// immutable after construction — detlint's thread-hazard rules rely on
/// that).
class ShardMap {
 public:
  /// Group-id scheme: ring r's replicated server group, its (singleton)
  /// client group, and the cross-ring ingress group other rings stamp
  /// messages to.  The bases leave room for 100 rings before schemes
  /// collide; ShardMap's constructor enforces that bound.
  static constexpr std::uint32_t kServerGroupBase = 100;
  static constexpr std::uint32_t kClientGroupBase = 200;
  static constexpr std::uint32_t kCrossGroupBase = 300;

  /// Connection ids on the cross-ring links.  kPingConn carries the
  /// archipelago's liveness ping chain; the handoff connections carry the
  /// two-phase lease-transfer / session-migration protocol frames
  /// (doc/SHARDING.md).  Distinct conns keep the (conn, tag, seq) dedup
  /// streams of each protocol independent.
  static constexpr ConnectionId kPingConn{500};
  static constexpr ConnectionId kKvHandoffConn{600};
  static constexpr ConnectionId kSessionHandoffConn{601};

  /// Stamp-stream (thread/tag) bases: every CausalMessenger on ring r uses
  /// a ring-unique tag so receiver-side dedup streams never collide across
  /// protocols.  7000+r = ping chain, 7100+r = KV handoffs, 7200+r =
  /// session migrations.
  static constexpr std::uint32_t kPingStreamBase = 7000;
  static constexpr std::uint32_t kKvStreamBase = 7100;
  static constexpr std::uint32_t kSessionStreamBase = 7200;

  ShardMap() : ShardMap(TopologySpec{}) {}

  explicit ShardMap(TopologySpec spec) : spec_(spec) {
    if (spec_.rings == 0 || spec_.rings > kServerGroupBase) {
      throw std::invalid_argument("ShardMap: ring count must be in [1, 100]");
    }
    if (spec_.servers == 0) {
      throw std::invalid_argument("ShardMap: replica count must be >= 1");
    }
  }

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t rings() const { return spec_.rings; }
  [[nodiscard]] std::size_t servers() const { return spec_.servers; }

  [[nodiscard]] GroupId server_group(std::size_t ring) const {
    assert(ring < spec_.rings);
    return GroupId{kServerGroupBase + static_cast<std::uint32_t>(ring)};
  }
  [[nodiscard]] GroupId client_group(std::size_t ring) const {
    assert(ring < spec_.rings);
    return GroupId{kClientGroupBase + static_cast<std::uint32_t>(ring)};
  }
  /// The group ring `ring` SUBSCRIBES to for stamped cross-ring ingress;
  /// a message bound for ring r is addressed to cross_group(r).
  [[nodiscard]] GroupId cross_group(std::size_t ring) const {
    assert(ring < spec_.rings);
    return GroupId{kCrossGroupBase + static_cast<std::uint32_t>(ring)};
  }

  /// Inverse of cross_group: which ring owns a cross-ring ingress group.
  [[nodiscard]] std::optional<std::size_t> ring_of_cross_group(GroupId g) const {
    if (g.value < kCrossGroupBase || g.value >= kCrossGroupBase + spec_.rings) {
      return std::nullopt;
    }
    return g.value - kCrossGroupBase;
  }

  [[nodiscard]] ThreadId ping_stream(std::size_t ring) const {
    return ThreadId{kPingStreamBase + static_cast<std::uint32_t>(ring)};
  }
  [[nodiscard]] ThreadId kv_stream(std::size_t ring) const {
    return ThreadId{kKvStreamBase + static_cast<std::uint32_t>(ring)};
  }
  [[nodiscard]] ThreadId session_stream(std::size_t ring) const {
    return ThreadId{kSessionStreamBase + static_cast<std::uint32_t>(ring)};
  }

  /// Per-ring seed derivation: golden-ratio mixing keeps per-ring RNG
  /// streams decorrelated while remaining a pure function of (seed, ring),
  /// so serial and parallel runs build identical rings.
  [[nodiscard]] static std::uint64_t ring_seed(std::uint64_t base, std::size_t ring) {
    return base ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(ring) + 1));
  }

  /// Keyspace sharding: FNV-1a over the key bytes, mod ring count.  The
  /// KV store partitions its keyspace by this map; a request for a key
  /// owned elsewhere is a gateway misroute.
  [[nodiscard]] std::size_t shard_of_key(std::string_view key) const {
    std::uint32_t h = 2166136261u;
    for (const char c : key) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 16777619u;
    }
    return h % spec_.rings;
  }

  /// Session sharding: splitmix64 finalizer over the session id.  Session
  /// ids are group-clock-minted (ConsistentIdGenerator) and already encode
  /// their minting ring, so a plain modulus would skew; the finalizer
  /// spreads them evenly.
  [[nodiscard]] std::size_t shard_of_session(std::uint64_t session_id) const {
    std::uint64_t z = session_id + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    return z % spec_.rings;
  }

  /// Owning ring of an encoded KV request (u8 op, str key, ...), or
  /// nullopt if the buffer is not a parseable KV request.  The gateway
  /// router uses this to detect misroutes without depending on KvStoreApp.
  [[nodiscard]] std::optional<std::size_t> owner_of_kv_request(
      std::span<const std::uint8_t> request) const {
    try {
      BytesReader r(request);
      const std::uint8_t op = r.u8();
      if (op == 0 || op > 16) return std::nullopt;
      return shard_of_key(r.str());
    } catch (const CodecError&) {
      return std::nullopt;
    }
  }

 private:
  TopologySpec spec_;
};

}  // namespace cts::app
