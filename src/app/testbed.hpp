// A full simulated instance of the paper's experimental setup (Section 4.2):
//
//   "four Pentium III PCs ... over a 100Mbit/sec Ethernet ... Four copies of
//    Totem run on the four PCs, one for each PC ... a CORBA client makes a
//    remote method invocation on a three-way actively replicated server.
//    The client runs as the ring leader, n0.  One replica of the server
//    runs on each of the other three nodes, n1, n2 and n3."
//
// The Testbed wires together the whole stack per node — Totem, the GCS
// endpoint, a drifting physical hardware clock, the replication manager
// with its Consistent Time Service, and the application replica — plus an
// unreplicated RMI client on node 0.  Used by integration tests, every
// benchmark, and the examples.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "app/time_server.hpp"
#include "clock/physical_clock.hpp"
#include "common/unique_fn.hpp"
#include "cts/consistent_time_service.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "orb/rmi_client.hpp"
#include "replication/replica_manager.hpp"
#include "sim/simulator.hpp"
#include "storage/stable_store.hpp"
#include "totem/totem.hpp"

namespace cts::app {

struct TestbedConfig {
  /// Number of server replicas (each on its own node).
  std::size_t servers = 3;
  /// Whether node 0 hosts an unreplicated client (the ring leader).
  bool with_client = true;

  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  std::uint64_t seed = 1;

  net::NetworkConfig net;
  totem::TotemConfig totem;  // universe is filled in automatically

  /// Physical clock diversity.
  Micros max_clock_offset_us = 500'000;
  double max_drift_ppm = 50.0;

  /// Consistent Time Service options.
  ccs::DriftCompensation drift = ccs::DriftCompensation::kNone;
  Micros mean_delay_us = 0;
  double reference_gain = 0.0;

  /// Passive replication checkpoint cadence (requests).
  std::uint32_t checkpoint_every = 0;

  /// Request-processing shards per replica and the routing function
  /// (active/semi-active only).
  std::uint32_t shards = 1;
  std::function<std::uint32_t(const gcs::Message&)> shard_fn;

  /// Give every server host a simulated local disk and persist checkpoints
  /// to it, enabling cold starts after a total failure.
  bool with_stable_storage = false;
  std::uint32_t persist_every = 0;

  /// Recovering replicas re-issue GET_STATE after this long without a
  /// checkpoint.  Tests shrink it to force the retry to cross its own
  /// in-flight reply.
  Micros get_state_retry_us = 2'000'000;

  /// Application factory; defaults to the paper's time server.
  replication::ReplicaFactory factory;

  /// Group ids this testbed's server group and client send under.  Ring-
  /// local by default; the Archipelago (app/archipelago.hpp) assigns each
  /// ring a globally unique server group so inter-ring messages can name
  /// their destination ring by group id.
  GroupId server_group = GroupId{1};
  GroupId client_group = GroupId{2};

  /// Runtime ordering oracle (doc/STATIC_ANALYSIS.md): verifies total
  /// order, causal floor, clock monotonicity, membership and checkpoint
  /// coverage on every delivery, and aborts on the first violation.  On by
  /// default so the whole suite runs under it; the env var CTS_ORACLE
  /// ("off"/"0" or "on"/"1") overrides this flag either way.
  bool oracle = true;
};

/// Well-known ids used by the testbed.
struct TestbedIds {
  static constexpr GroupId kServerGroup{1};
  static constexpr GroupId kClientGroup{2};
  static constexpr ConnectionId kRequestConn{1};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg) : cfg_(std::move(cfg)), sim_(cfg_.seed), net_(sim_, cfg_.net) {
    const std::size_t nodes = cfg_.servers + (cfg_.with_client ? 1 : 0);
    totem::TotemConfig tcfg = cfg_.totem;
    tcfg.universe.clear();
    for (std::uint32_t i = 0; i < nodes; ++i) tcfg.universe.push_back(NodeId{i});

    if (!cfg_.factory) cfg_.factory = time_server_factory();

    Rng clock_rng(cfg_.seed * 7919 + 13);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      totems_.push_back(std::make_unique<totem::TotemNode>(sim_, net_, NodeId{i}, tcfg));
      eps_.push_back(std::make_unique<gcs::GcsEndpoint>(sim_, *totems_.back()));
      clocks_.push_back(std::make_unique<clock::PhysicalClock>(
          sim_, clock::random_clock_config(clock_rng, cfg_.max_clock_offset_us,
                                           cfg_.max_drift_ppm)));
    }

    const std::uint32_t first_server = cfg_.with_client ? 1 : 0;
    if (cfg_.with_stable_storage) {
      for (std::uint32_t s = 0; s < cfg_.servers; ++s) {
        stores_.push_back(std::make_unique<storage::StableStore>(
            sim_, storage::StableStore::Config{}, cfg_.seed * 101 + s));
      }
    }
    for (std::uint32_t s = 0; s < cfg_.servers; ++s) {
      const std::uint32_t node = first_server + s;
      replication::ManagerConfig mcfg;
      mcfg.group = cfg_.server_group;
      mcfg.replica = ReplicaId{s};
      mcfg.style = cfg_.style;
      mcfg.drift = cfg_.drift;
      mcfg.mean_delay_us = cfg_.mean_delay_us;
      mcfg.reference_gain = cfg_.reference_gain;
      mcfg.checkpoint_every_requests = cfg_.checkpoint_every;
      mcfg.shards = cfg_.shards;
      mcfg.shard_fn = cfg_.shard_fn;
      mcfg.get_state_retry_us = cfg_.get_state_retry_us;
      if (cfg_.with_stable_storage) {
        mcfg.stable_store = stores_[s].get();
        mcfg.persist_every_requests = cfg_.persist_every;
      }
      managers_.push_back(std::make_unique<replication::ReplicaManager>(
          sim_, *eps_[node], *clocks_[node], mcfg, cfg_.factory));
    }

    if (cfg_.with_client) {
      client_ = std::make_unique<orb::RmiClient>(sim_, *eps_[0], cfg_.client_group,
                                                 cfg_.server_group,
                                                 TestbedIds::kRequestConn);
    }

    // One shared recorder observes every layer of this testbed; endpoints
    // wire their Totem node, managers wire their time service.  The oracle
    // must exist before the wiring below — layers cache its pointer.
    bool oracle = cfg_.oracle;
    if (const char* env = std::getenv("CTS_ORACLE")) {
      const std::string_view v(env);
      oracle = !(v == "off" || v == "0");
    }
    if (oracle) recorder_.enable_oracle(/*abort_on_violation=*/true);
    net_.set_recorder(&recorder_);
    for (auto& ep : eps_) ep->set_recorder(&recorder_);
    for (auto& m : managers_) m->set_recorder(&recorder_);
  }

  /// Boot every node and let the ring form and the group views settle.
  void start(Micros settle_us = 200'000) {
    for (auto& t : totems_) t->start();
    for (auto& m : managers_) m->start();
    sim_.run_for(settle_us);
  }

  // --- Accessors --------------------------------------------------------------

  sim::Simulator& sim() { return sim_; }
  net::Network& net() { return net_; }
  obs::Recorder& recorder() { return recorder_; }
  orb::RmiClient& client() { return *client_; }
  [[nodiscard]] std::size_t server_count() const { return managers_.size(); }

  /// Node index hosting server replica s.
  [[nodiscard]] std::uint32_t server_node(std::uint32_t s) const {
    return (cfg_.with_client ? 1 : 0) + s;
  }

  replication::ReplicaManager& server(std::uint32_t s) { return *managers_[s]; }
  totem::TotemNode& totem_of(std::uint32_t node) { return *totems_[node]; }
  gcs::GcsEndpoint& gcs_of(std::uint32_t node) { return *eps_[node]; }
  clock::PhysicalClock& clock_of(std::uint32_t node) { return *clocks_[node]; }
  TimeServerApp& server_app(std::uint32_t s) {
    return static_cast<TimeServerApp&>(managers_[s]->app());
  }
  const TestbedConfig& config() const { return cfg_; }

  /// Node `node`'s lifecycle scope (owned by its Totem daemon).  Everything
  /// the node schedules — timers, packet deliveries, coroutine resume
  /// trampolines — is registered here and dies with the node.
  sim::TaskScope& scope_of(std::uint32_t node) { return totems_[node]->scope(); }

  // --- Fault injection ----------------------------------------------------------

  /// Fail-stop crash of server replica s (host + clock + protocol stack).
  ///
  /// Shutting the lifecycle scope down runs the per-layer shutdown hooks
  /// (Totem's crash() takes the node off the ring; the CTS abandons
  /// in-flight rounds, destroying suspended caller frames) and then cancels
  /// every timer and in-flight delivery the node owns.  Failing the clock
  /// afterwards arms the fail-stop tripwire: a dead node that somehow still
  /// executed would read its clock and be counted by reads_after_failure().
  void crash_server(std::uint32_t s) {
    const auto node = server_node(s);
    totems_[node]->scope().shutdown();
    clocks_[node]->fail();
    sync_scope_stats();
  }

  /// Copy the per-node lifecycle-scope shutdown totals into the recorder's
  /// metrics registry (schema in EXPERIMENTS.md).  Called after every
  /// crash; callers that export metrics mid-run may also call it directly.
  void sync_scope_stats() {
    std::uint64_t timers = 0;
    std::uint64_t frames = 0;
    for (const auto& t : totems_) {
      timers += t->scope().timers_cancelled_on_shutdown();
      frames += t->scope().frames_destroyed_on_shutdown();
    }
    // Counter handles resolved on first sync (stable for recorder_'s
    // lifetime) — repeated crash/export cycles skip the by-name lookup.
    if (c_scope_timers_ == nullptr) {
      c_scope_timers_ = &recorder_.counter("sim.timers_cancelled_on_shutdown");
      c_scope_frames_ = &recorder_.counter("node.frames_destroyed_on_shutdown");
    }
    c_scope_timers_->value = timers;
    c_scope_frames_->value = frames;
  }

  /// Restart server replica s's host and rejoin via state transfer.  The
  /// whole process is rebuilt — a fresh GCS endpoint and replica manager —
  /// and the hardware clock comes back with a new arbitrary offset
  /// (a reboot does not preserve the system time).  `recovered` is a
  /// move-only destroy-on-drop continuation: if the testbed (or the new
  /// manager) is torn down mid-recovery it is destroyed, never invoked
  /// twice and never leaked.
  void restart_server(std::uint32_t s, UniqueFn<void()> recovered = nullptr) {
    const auto node = server_node(s);
    const replication::ManagerConfig mcfg = managers_[s]->config();

    // Tear down the dead process before rebuilding on the same host: the
    // old manager (and its time service) must not keep subscriptions into
    // the endpoint it is being replaced on.
    managers_[s].reset();
    eps_[node] = std::make_unique<gcs::GcsEndpoint>(sim_, *totems_[node]);

    clocks_[node]->restart(clock_restart_rng_.range(-cfg_.max_clock_offset_us,
                                                    cfg_.max_clock_offset_us));
    totems_[node]->restart();

    managers_[s] = std::make_unique<replication::ReplicaManager>(sim_, *eps_[node],
                                                                 *clocks_[node], mcfg,
                                                                 cfg_.factory);
    if (auto* orc = recorder_.oracle()) {
      orc->on_node_reset(NodeId{node});
      orc->on_replica_reset(mcfg.group, mcfg.replica);
    }
    eps_[node]->set_recorder(&recorder_);
    managers_[s]->set_recorder(&recorder_);
    managers_[s]->start_recovering(std::move(recovered));
  }

  /// Restart server replica s after a TOTAL failure: rebuild the process
  /// and start from the host's local disk instead of a peer's checkpoint.
  void cold_restart_server(std::uint32_t s) {
    const auto node = server_node(s);
    const replication::ManagerConfig mcfg = managers_[s]->config();
    managers_[s].reset();
    eps_[node] = std::make_unique<gcs::GcsEndpoint>(sim_, *totems_[node]);
    clocks_[node]->restart(clock_restart_rng_.range(-cfg_.max_clock_offset_us,
                                                    cfg_.max_clock_offset_us));
    totems_[node]->restart();
    managers_[s] = std::make_unique<replication::ReplicaManager>(sim_, *eps_[node],
                                                                 *clocks_[node], mcfg,
                                                                 cfg_.factory);
    if (auto* orc = recorder_.oracle()) {
      orc->on_node_reset(NodeId{node});
      orc->on_replica_reset(mcfg.group, mcfg.replica);
      orc->on_group_reset(mcfg.group);
    }
    eps_[node]->set_recorder(&recorder_);
    managers_[s]->set_recorder(&recorder_);
    managers_[s]->start_cold();
  }

  storage::StableStore& store_of(std::uint32_t s) { return *stores_[s]; }

 private:
  TestbedConfig cfg_;
  sim::Simulator sim_;
  net::Network net_;
  obs::Recorder recorder_{sim_};
  obs::Counter* c_scope_timers_ = nullptr;   // cached by sync_scope_stats()
  obs::Counter* c_scope_frames_ = nullptr;
  std::vector<std::unique_ptr<totem::TotemNode>> totems_;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps_;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks_;
  std::vector<std::unique_ptr<replication::ReplicaManager>> managers_;
  std::vector<std::unique_ptr<storage::StableStore>> stores_;
  std::unique_ptr<orb::RmiClient> client_;
  Rng clock_restart_rng_{0xC10Cu};
};

}  // namespace cts::app
