#include "app/time_server.hpp"

#include <algorithm>

namespace cts::app {

Bytes make_get_time_request() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(TimeServerOp::kGetTime));
  return std::move(w).take();
}

Bytes make_burst_request(std::uint32_t rounds) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(TimeServerOp::kGetTimeBurst));
  w.u32(rounds);
  return std::move(w).take();
}

Bytes make_get_counter_request() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(TimeServerOp::kGetCounter));
  return std::move(w).take();
}

TimeServerApp::TimeServerApp(replication::ReplicaContext& ctx, Options opt)
    : ctx_(ctx), sys_(ctx.time, ctx.processing_thread), opt_(opt), delay_rng_(opt.delay_seed) {}

void TimeServerApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

sim::Task TimeServerApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  const auto op = static_cast<TimeServerOp>(r.u8());
  BytesWriter reply;

  switch (op) {
    case TimeServerOp::kGetTime: {
      // The paper's measured operation: the server "simply calls
      // gettimeofday(), which returns the clock value" in two longs.
      // The pre-op delay models ORB + scheduling overhead, which differs
      // per host (Figure 1(b)).
      co_await ctx_.time.scope().delay(opt_.pre_op_base_us + delay_rng_.range(0, opt_.pre_op_jitter_us));
      const ccs::TimeVal tv = co_await sys_.gettimeofday();
      ++counter_;
      history_.push_back(tv.total_us());
      reply.i64(tv.tv_sec);
      reply.i64(tv.tv_usec);
      break;
    }
    case TimeServerOp::kGetTimeBurst: {
      // One invocation triggers a sequence of clock-related operations with
      // random busy-wait delays between them (Section 4.2, experiment 2).
      const std::uint32_t rounds = r.u32();
      Micros last = 0;
      for (std::uint32_t i = 0; i < rounds; ++i) {
        co_await ctx_.time.scope().delay(delay_rng_.range(opt_.min_delay_us, opt_.max_delay_us));
        const ccs::TimeVal tv = co_await sys_.gettimeofday();
        ++counter_;
        last = tv.total_us();
        history_.push_back(last);
      }
      reply.i64(last);
      reply.u32(rounds);
      break;
    }
    case TimeServerOp::kGetCounter: {
      reply.u64(counter_);
      break;
    }
  }
  done(std::move(reply).take());
}

Bytes TimeServerApp::checkpoint() const {
  BytesWriter w;
  w.u64(counter_);
  w.u32(static_cast<std::uint32_t>(history_.size()));
  for (Micros t : history_) w.i64(t);
  return std::move(w).take();
}

void TimeServerApp::restore(const Bytes& state) {
  BytesReader r(state);
  counter_ = r.u64();
  const auto n = r.u32();
  history_.clear();
  // Cap the reserve by the bytes actually present so a malformed checkpoint
  // cannot trigger a huge allocation before the first read throws.
  history_.reserve(std::min<std::size_t>(n, r.remaining() / sizeof(std::int64_t)));
  for (std::uint32_t i = 0; i < n; ++i) history_.push_back(r.i64());
}

void LocalTimeServerApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

sim::Task LocalTimeServerApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  const auto op = static_cast<TimeServerOp>(r.u8());
  BytesWriter reply;
  switch (op) {
    case TimeServerOp::kGetTime: {
      // Same per-host processing overhead as the CTS variant, so the
      // Figure-5 latency comparison isolates the time service itself.
      co_await ctx_.time.scope().delay(opt_.pre_op_base_us + delay_rng_.range(0, opt_.pre_op_jitter_us));
      const Micros t = ctx_.hw_clock.read();  // local, inconsistent
      ++counter_;
      history_.push_back(t);
      reply.i64(t / 1'000'000);
      reply.i64(t % 1'000'000);
      break;
    }
    case TimeServerOp::kGetTimeBurst: {
      const std::uint32_t rounds = r.u32();
      Micros last = 0;
      for (std::uint32_t i = 0; i < rounds; ++i) {
        co_await ctx_.time.scope().delay(delay_rng_.range(opt_.min_delay_us, opt_.max_delay_us));
        last = ctx_.hw_clock.read();
        ++counter_;
        history_.push_back(last);
      }
      reply.i64(last);
      reply.u32(rounds);
      break;
    }
    case TimeServerOp::kGetCounter: {
      reply.u64(counter_);
      break;
    }
  }
  done(std::move(reply).take());
}

Bytes LocalTimeServerApp::checkpoint() const {
  BytesWriter w;
  w.u64(counter_);
  return std::move(w).take();
}

void LocalTimeServerApp::restore(const Bytes& state) {
  BytesReader r(state);
  counter_ = r.u64();
  history_.clear();
}

replication::ReplicaFactory local_time_server_factory(TimeServerApp::Options opt) {
  return [opt](replication::ReplicaContext& ctx) {
    TimeServerApp::Options o = opt;
    o.delay_seed = opt.delay_seed * 1000003 + ctx.replica.value;
    o.pre_op_base_us = opt.pre_op_base_us + 40 * ctx.replica.value;
    return std::make_unique<LocalTimeServerApp>(ctx, o);
  };
}

replication::ReplicaFactory time_server_factory(TimeServerApp::Options opt) {
  return [opt](replication::ReplicaContext& ctx) {
    TimeServerApp::Options o = opt;
    // Give each replica its own delay stream and its own systematic
    // processing overhead: the delays model CPU scheduling noise, which
    // differs per host (the paper's n2 was consistently fastest, winning
    // 9,977 of 10,000 rounds).
    o.delay_seed = opt.delay_seed * 1000003 + ctx.replica.value;
    o.pre_op_base_us = opt.pre_op_base_us + 40 * ctx.replica.value;
    return std::make_unique<TimeServerApp>(ctx, o);
  };
}

}  // namespace cts::app
