// GatewayRouter: explicit shard-aware request routing at each ring's
// gateway node — the ShardMap made operational (doc/SHARDING.md).
//
// Before this layer existed, inter-ring traffic was ad-hoc: ring r's node 0
// shipped whatever its cross-ring subscriptions delivered, and a client
// request for a key owned elsewhere simply executed on the wrong ring.  The
// router makes the ownership decision explicit: every client request is
// checked against the ShardMap's keyspace partition, requests for keys this
// ring owns go straight to the local replicated server, and misdirected
// requests are forwarded over the inter-island link to the owning ring's
// gateway, which invokes them locally and relays the reply back.
//
// Link frames are typed (LinkFrameKind) so one wire carries three kinds of
// traffic without ambiguity:
//   kXGroup      — an encoded GCS message for a remote ring's cross-ring
//                  group (the causally stamped handoff/broadcast path);
//   kFwdRequest  — a misdirected client request, tagged with the origin
//                  ring and a forwarding id;
//   kFwdReply    — the owning ring's reply, routed back by forwarding id.
//
// Determinism: a router instance is ring-local state, touched only from its
// ring's island worker (route() runs in ring-local simulation context;
// on_fwd_* run in the ring's link-ingress callback), so serial and parallel
// coordinator schedules see identical router behavior.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include <coroutine>

#include "app/topology.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "obs/recorder.hpp"
#include "orb/rmi_client.hpp"
#include "sim/task_scope.hpp"

namespace cts::app {

/// First byte of every inter-island link frame.
enum class LinkFrameKind : std::uint8_t {
  kXGroup = 1,      // rest of frame: GcsEndpoint::encode(m)
  kFwdRequest = 2,  // u32 origin ring, u64 fwd id, bytes request
  kFwdReply = 3,    // u64 fwd id, bytes reply
};

inline Bytes frame_xgroup(const Bytes& encoded) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(LinkFrameKind::kXGroup));
  w.raw(encoded);
  return std::move(w).take();
}

inline Bytes frame_fwd_request(std::uint32_t origin_ring, std::uint64_t fwd_id,
                               const Bytes& request) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(LinkFrameKind::kFwdRequest));
  w.u32(origin_ring);
  w.u64(fwd_id);
  w.bytes(request);
  return std::move(w).take();
}

inline Bytes frame_fwd_reply(std::uint64_t fwd_id, const Bytes& reply) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(LinkFrameKind::kFwdReply));
  w.u64(fwd_id);
  w.bytes(reply);
  return std::move(w).take();
}

class GatewayRouter {
 public:
  using ReplyFn = UniqueFn<void(const Bytes&)>;
  /// Ship a typed frame to another ring's gateway (the Archipelago wraps
  /// its InterIslandLink here).
  using SendFrameFn = UniqueFn<void(std::size_t dst_ring, Bytes frame)>;

  /// `scope` is the gateway node's lifecycle scope: awaiter resume
  /// trampolines are registered there so they die with the node.
  GatewayRouter(const ShardMap& map, std::size_t ring, orb::RmiClient& client,
                sim::TaskScope& scope, obs::Recorder& rec, SendFrameFn send)
      : map_(map),
        ring_(ring),
        client_(&client),
        scope_(&scope),
        rec_(rec),
        send_(std::move(send)),
        c_misroutes_(&rec.counter("gateway.misroutes")),
        c_forwards_(&rec.counter("gateway.forwards")),
        c_fwd_served_(&rec.counter("gateway.fwd_served")) {}

  /// After the gateway node's process is rebuilt (restart), point the
  /// router at the fresh client.  Outstanding forwards stay pending.
  void rebind_client(orb::RmiClient& client) { client_ = &client; }

  /// Route a client request.  If the ShardMap says this ring owns the key
  /// (or the request is not a recognizable keyed request — STATS, COUNT,
  /// and friends are served locally), invoke the local replicated server;
  /// otherwise count the misroute, forward to the owning ring, and relay
  /// its reply to `done`.
  void route(Bytes request, ReplyFn done) {
    const auto owner = map_.owner_of_kv_request(request);
    if (!owner.has_value() || *owner == ring_) {
      client_->invoke(std::move(request), std::move(done));
      return;
    }
    ++*c_misroutes_;
    ++*c_forwards_;
    const std::uint64_t id = ++next_fwd_id_;
    rec_.event(obs::EventKind::kGatewayForward, NodeId{0}, ReplicaId{},
               static_cast<std::int64_t>(ring_), static_cast<std::int64_t>(*owner),
               static_cast<std::int64_t>(id));
    pending_[id] = std::move(done);
    send_(*owner, frame_fwd_request(static_cast<std::uint32_t>(ring_), id, request));
  }

  /// Awaitable form: `Bytes reply = co_await router.call(request);`.
  /// Mirrors RmiClient::call — the completion callback owns the parked
  /// frame, so an abandoned router (teardown mid-forward) destroys rather
  /// than leaks the caller.
  struct CallAwaiter {
    GatewayRouter& router;
    Bytes request;
    Bytes reply;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      router.route(std::move(request),
                   [this, guard = sim::Simulator::CoroResume{h}](const Bytes& r) mutable {
                     reply = r;
                     router.scope_->after(0, std::move(guard));
                   });
    }
    [[nodiscard]] Bytes await_resume() { return std::move(reply); }
  };
  [[nodiscard]] CallAwaiter call(Bytes request) {
    return CallAwaiter{*this, std::move(request), {}};
  }

  /// Link ingress: a misdirected request forwarded from ring `origin`.
  /// Invoke it on this ring's replicated server and route the reply back.
  void on_fwd_request(std::uint32_t origin_ring, std::uint64_t fwd_id, Bytes request) {
    ++*c_fwd_served_;
    client_->invoke(std::move(request),
                    [this, origin_ring, fwd_id](const Bytes& reply) {
                      send_(origin_ring, frame_fwd_reply(fwd_id, reply));
                    });
  }

  /// Link ingress: the owning ring's reply for a forward we originated.
  void on_fwd_reply(std::uint64_t fwd_id, const Bytes& reply) {
    const auto it = pending_.find(fwd_id);
    if (it == pending_.end()) return;  // duplicate or post-teardown reply
    ReplyFn done = std::move(it->second);
    pending_.erase(it);
    if (done) done(reply);
  }

  [[nodiscard]] std::size_t pending_forwards() const { return pending_.size(); }
  [[nodiscard]] std::size_t ring() const { return ring_; }

 private:
  const ShardMap& map_;
  std::size_t ring_;
  orb::RmiClient* client_;
  sim::TaskScope* scope_;
  obs::Recorder& rec_;
  SendFrameFn send_;
  std::map<std::uint64_t, ReplyFn> pending_;
  std::uint64_t next_fwd_id_ = 0;
  // Counter handles resolved once at construction; route()/on_fwd_request()
  // run per client request and must not pay a by-name map lookup.
  obs::Counter* c_misroutes_;
  obs::Counter* c_forwards_;
  obs::Counter* c_fwd_served_;
};

}  // namespace cts::app
