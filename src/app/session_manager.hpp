// A replicated session manager — the paper's "transaction session
// management" motivation (Section 1) as a standalone application.
//
// Sessions are created with a time-to-live, renewed by touching, and
// reaped when idle past their TTL.  Every time-dependent decision — the
// session id, the creation stamp, the idle check, the reaping instant —
// comes from the group clock, so all replicas agree on which sessions
// exist at every logical point, across failover and recovery.
//
// Operations (ordered requests):
//   OPEN ttl                → new session id (deterministic), expiry stamp
//   TOUCH id                → extend the session's idle deadline
//   CLOSE id                → explicit termination
//   QUERY id                → alive? + last-activity stamp
//   COUNT                   → live-session count + deterministic digest
#pragma once

#include <cstdint>
#include <map>

#include "cts/group_timers.hpp"
#include "cts/id_gen.hpp"
#include "cts/time_syscalls.hpp"
#include "replication/replica.hpp"

namespace cts::app {

enum class SessionOp : std::uint8_t {
  kOpen = 1,
  kTouch = 2,
  kClose = 3,
  kQuery = 4,
  kCount = 5,
};

enum class SessionStatus : std::uint8_t {
  kOk = 0,
  kUnknownSession = 1,  // never existed, expired, or closed
  kBadRequest = 2,
};

// --- Client-side helpers ---------------------------------------------------------

Bytes session_open(Micros ttl_us);
Bytes session_touch(std::uint64_t id);
Bytes session_close(std::uint64_t id);
Bytes session_query(std::uint64_t id);
Bytes session_count();

struct SessionReply {
  SessionStatus status = SessionStatus::kBadRequest;
  std::uint64_t session_id = 0;
  Micros stamp = 0;  // creation/last-activity/expiry stamp, group time
  std::uint64_t live_count = 0;
  std::uint64_t digest = 0;

  static SessionReply parse(const Bytes& b);
};

// --- The replicated manager --------------------------------------------------------

class SessionManagerApp : public replication::Replica {
 public:
  explicit SessionManagerApp(replication::ReplicaContext& ctx);

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override;
  [[nodiscard]] Bytes checkpoint() const override;
  void restore(const Bytes& state) override;

  [[nodiscard]] std::uint64_t state_digest() const;
  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t sessions_reaped() const { return reaped_; }

 private:
  struct Session {
    Micros ttl = 0;
    Micros last_activity = 0;  // group time
    std::uint64_t epoch = 0;   // distinguishes successive reap timers
  };

  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done);
  void arm_reaper(std::uint64_t id, std::uint64_t epoch, Micros deadline);

  replication::ReplicaContext& ctx_;
  ccs::TimeSyscalls sys_;
  ccs::GroupTimerService timers_;
  ccs::ConsistentIdGenerator ids_;

  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t epoch_counter_ = 0;
  std::uint64_t reaped_ = 0;
};

replication::ReplicaFactory session_manager_factory();

}  // namespace cts::app
