// A replicated session manager — the paper's "transaction session
// management" motivation (Section 1) as a standalone application.
//
// Sessions are created with a time-to-live, renewed by touching, and
// reaped when idle past their TTL.  Every time-dependent decision — the
// session id, the creation stamp, the idle check, the reaping instant —
// comes from the group clock, so all replicas agree on which sessions
// exist at every logical point, across failover and recovery.
//
// Operations (ordered requests):
//   OPEN ttl                → new session id (deterministic), expiry stamp
//   TOUCH id                → extend the session's idle deadline
//   CLOSE id                → explicit termination
//   QUERY id                → alive? + last-activity stamp
//   COUNT                   → live-session count + deterministic digest
//   MIGRATE id dst_ring     → cross-shard session migration (sharded mode):
//                             a causally stamped two-phase handoff to the
//                             owning ring (doc/SHARDING.md)
//   OPEN_MANY count ttl     → synthetic bulk ingest: `count` sessions from
//                             ONE id round + ONE clock round, stored as a
//                             compact batch record — how the scalability
//                             bench loads millions of sessions per ring
//                             without millions of CCS rounds
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "app/topology.hpp"
#include "cts/group_timers.hpp"
#include "cts/id_gen.hpp"
#include "cts/multigroup.hpp"
#include "cts/time_syscalls.hpp"
#include "replication/replica.hpp"

namespace cts::app {

enum class SessionOp : std::uint8_t {
  kOpen = 1,
  kTouch = 2,
  kClose = 3,
  kQuery = 4,
  kCount = 5,
  kMigrate = 6,
  kOpenMany = 7,
};

enum class SessionStatus : std::uint8_t {
  kOk = 0,
  kUnknownSession = 1,  // never existed, expired, or closed
  kBadRequest = 2,
};

// --- Client-side helpers ---------------------------------------------------------

Bytes session_open(Micros ttl_us);
Bytes session_touch(std::uint64_t id);
Bytes session_close(std::uint64_t id);
Bytes session_query(std::uint64_t id);
Bytes session_count();
Bytes session_migrate(std::uint64_t id, std::uint32_t dst_ring);
Bytes session_open_many(std::uint32_t count, Micros ttl_us);

struct SessionReply {
  SessionStatus status = SessionStatus::kBadRequest;
  std::uint64_t session_id = 0;
  Micros stamp = 0;  // creation/last-activity/expiry stamp, group time
  std::uint64_t live_count = 0;
  std::uint64_t digest = 0;

  static SessionReply parse(const Bytes& b);
};

// --- The replicated manager --------------------------------------------------------

class SessionManagerApp : public replication::Replica {
 public:
  struct Options {
    /// Sharded deployment (nullptr = single-ring, no handoff stream; see
    /// KvStoreApp::Options for the contract — the map must outlive the
    /// app, and handoff-enabled managers must run with shards = 1).
    const ShardMap* shard_map = nullptr;
    std::size_t ring = 0;
  };

  explicit SessionManagerApp(replication::ReplicaContext& ctx) : SessionManagerApp(ctx, Options{}) {}
  SessionManagerApp(replication::ReplicaContext& ctx, Options opt);

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override;
  [[nodiscard]] Bytes checkpoint() const override;
  void restore(const Bytes& state) override;

  [[nodiscard]] std::uint64_t state_digest() const;
  /// Individually tracked sessions plus members of bulk-ingested batches.
  [[nodiscard]] std::uint64_t live_sessions() const { return sessions_.size() + batched_; }
  [[nodiscard]] std::uint64_t sessions_reaped() const { return reaped_; }
  [[nodiscard]] std::uint64_t handoffs_out() const { return handoffs_out_; }
  [[nodiscard]] std::uint64_t handoffs_in() const { return handoffs_in_; }
  [[nodiscard]] bool has_session(std::uint64_t id) const { return sessions_.count(id) != 0; }

 private:
  struct Session {
    Micros ttl = 0;
    Micros last_activity = 0;  // group time
    std::uint64_t epoch = 0;   // distinguishes successive reap timers
  };
  /// A bulk-ingested batch: `count` synthetic sessions with consecutive
  /// ids [base_id, base_id + count), one record and one reap timer for all
  /// of them.  O(batches) memory is what makes millions of sessions per
  /// ring affordable; members answer QUERY but not TOUCH/CLOSE.
  struct Batch {
    std::uint32_t count = 0;
    Micros ttl = 0;
    Micros last_activity = 0;
    std::uint64_t epoch = 0;
  };

  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done);
  void arm_reaper(std::uint64_t id, std::uint64_t epoch, Micros deadline);
  void arm_batch_reaper(std::uint64_t base_id, std::uint64_t epoch, Micros deadline);
  void adopt_handoff(const gcs::Message& m, Micros stamp, const Bytes& record);
  [[nodiscard]] const Batch* batch_of(std::uint64_t id, std::uint64_t* base) const;

  replication::ReplicaContext& ctx_;
  ccs::TimeSyscalls sys_;
  ccs::GroupTimerService timers_;
  ccs::ConsistentIdGenerator ids_;
  Options opt_;

  std::map<std::uint64_t, Session> sessions_;
  std::map<std::uint64_t, Batch> batches_;  // by base id
  std::uint64_t batched_ = 0;               // sum of live batch counts
  std::uint64_t epoch_counter_ = 0;
  std::uint64_t reaped_ = 0;

  // Cross-shard migration stream (sharded mode only; doc/SHARDING.md).
  std::unique_ptr<ccs::CausalMessenger> handoff_;
  std::uint64_t handoff_seq_ = 0;  // checkpointed: survives failover
  std::uint64_t handoffs_out_ = 0;
  std::uint64_t handoffs_in_ = 0;
};

replication::ReplicaFactory session_manager_factory(SessionManagerApp::Options opt = {});

}  // namespace cts::app
