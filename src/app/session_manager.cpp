#include "app/session_manager.hpp"

namespace cts::app {

// --- Client-side helpers ---------------------------------------------------------

Bytes session_open(Micros ttl_us) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kOpen));
  w.i64(ttl_us);
  return std::move(w).take();
}

namespace {
Bytes with_id(SessionOp op, std::uint64_t id) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(id);
  return std::move(w).take();
}
}  // namespace

Bytes session_touch(std::uint64_t id) { return with_id(SessionOp::kTouch, id); }
Bytes session_close(std::uint64_t id) { return with_id(SessionOp::kClose, id); }
Bytes session_query(std::uint64_t id) { return with_id(SessionOp::kQuery, id); }

Bytes session_count() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kCount));
  return std::move(w).take();
}

SessionReply SessionReply::parse(const Bytes& b) {
  BytesReader r(b);
  SessionReply out;
  out.status = static_cast<SessionStatus>(r.u8());
  out.session_id = r.u64();
  out.stamp = r.i64();
  out.live_count = r.u64();
  out.digest = r.u64();
  return out;
}

namespace {
Bytes make_reply(SessionStatus status, std::uint64_t id = 0, Micros stamp = 0,
                 std::uint64_t live = 0, std::uint64_t digest = 0) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(id);
  w.i64(stamp);
  w.u64(live);
  w.u64(digest);
  return std::move(w).take();
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

// --- SessionManagerApp ---------------------------------------------------------------

SessionManagerApp::SessionManagerApp(replication::ReplicaContext& ctx)
    : ctx_(ctx),
      sys_(ctx.time, ctx.processing_thread),
      // Derived thread ids keep shards (and other apps on the same
      // service) from colliding; same derivation at every replica.
      timers_(ctx.time,
              ccs::GroupTimerService::Config{ThreadId{ctx.processing_thread.value + 2000}, 1'000}),
      ids_(ctx.time, ThreadId{ctx.processing_thread.value + 3000},
           /*ns=*/ctx.group.value * 1000 + ctx.processing_thread.value) {}

void SessionManagerApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

void SessionManagerApp::arm_reaper(std::uint64_t id, std::uint64_t epoch, Micros deadline) {
  timers_.schedule_at(deadline, [this, id, epoch](Micros now) {
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second.epoch != epoch) return;  // touched/closed since
    if (it->second.last_activity + it->second.ttl > now) {
      // Touched between arming and firing (epoch unchanged only when the
      // touch path forgot to bump — it never does — but stay defensive).
      return;
    }
    sessions_.erase(it);
    ++reaped_;
  });
}

sim::Task SessionManagerApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  Bytes reply;
  try {
    const auto op = static_cast<SessionOp>(r.u8());
    switch (op) {
      case SessionOp::kOpen: {
        const Micros ttl = r.i64();
        if (ttl <= 0) {
          reply = make_reply(SessionStatus::kBadRequest);
          break;
        }
        const std::uint64_t id = co_await ids_.make_id();
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        Session s;
        s.ttl = ttl;
        s.last_activity = now.total_us();
        s.epoch = ++epoch_counter_;
        sessions_[id] = s;
        arm_reaper(id, s.epoch, s.last_activity + ttl);
        reply = make_reply(SessionStatus::kOk, id, s.last_activity + ttl);
        break;
      }
      case SessionOp::kTouch: {
        const std::uint64_t id = r.u64();
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          reply = make_reply(SessionStatus::kUnknownSession);
          break;
        }
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        it->second.last_activity = now.total_us();
        it->second.epoch = ++epoch_counter_;
        arm_reaper(id, it->second.epoch, it->second.last_activity + it->second.ttl);
        reply = make_reply(SessionStatus::kOk, id, it->second.last_activity + it->second.ttl);
        break;
      }
      case SessionOp::kClose: {
        const std::uint64_t id = r.u64();
        if (sessions_.erase(id) == 0) {
          reply = make_reply(SessionStatus::kUnknownSession);
        } else {
          reply = make_reply(SessionStatus::kOk, id);
        }
        break;
      }
      case SessionOp::kQuery: {
        const std::uint64_t id = r.u64();
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          reply = make_reply(SessionStatus::kUnknownSession);
        } else {
          reply = make_reply(SessionStatus::kOk, id, it->second.last_activity);
        }
        break;
      }
      case SessionOp::kCount: {
        reply = make_reply(SessionStatus::kOk, 0, 0, sessions_.size(), state_digest());
        break;
      }
      default:
        reply = make_reply(SessionStatus::kBadRequest);
    }
  } catch (const CodecError&) {
    reply = make_reply(SessionStatus::kBadRequest);
  }
  done(std::move(reply));
}

std::uint64_t SessionManagerApp::state_digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [id, s] : sessions_) {
    h = mix64(h, id);
    h = mix64(h, static_cast<std::uint64_t>(s.ttl));
    h = mix64(h, static_cast<std::uint64_t>(s.last_activity));
  }
  h = mix64(h, reaped_);
  return h;
}

Bytes SessionManagerApp::checkpoint() const {
  BytesWriter w;
  w.u64(epoch_counter_);
  w.u64(reaped_);
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [id, s] : sessions_) {
    w.u64(id);
    w.i64(s.ttl);
    w.i64(s.last_activity);
    w.u64(s.epoch);
  }
  return std::move(w).take();
}

void SessionManagerApp::restore(const Bytes& state) {
  BytesReader r(state);
  epoch_counter_ = r.u64();
  reaped_ = r.u64();
  sessions_.clear();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    Session s;
    s.ttl = r.i64();
    s.last_activity = r.i64();
    s.epoch = r.u64();
    sessions_[id] = s;
    arm_reaper(id, s.epoch, s.last_activity + s.ttl);
  }
}

replication::ReplicaFactory session_manager_factory() {
  return [](replication::ReplicaContext& ctx) {
    return std::make_unique<SessionManagerApp>(ctx);
  };
}

}  // namespace cts::app
