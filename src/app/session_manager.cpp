#include "app/session_manager.hpp"

namespace cts::app {

// --- Client-side helpers ---------------------------------------------------------

Bytes session_open(Micros ttl_us) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kOpen));
  w.i64(ttl_us);
  return std::move(w).take();
}

namespace {
Bytes with_id(SessionOp op, std::uint64_t id) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(id);
  return std::move(w).take();
}
}  // namespace

Bytes session_touch(std::uint64_t id) { return with_id(SessionOp::kTouch, id); }
Bytes session_close(std::uint64_t id) { return with_id(SessionOp::kClose, id); }
Bytes session_query(std::uint64_t id) { return with_id(SessionOp::kQuery, id); }

Bytes session_count() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kCount));
  return std::move(w).take();
}

Bytes session_migrate(std::uint64_t id, std::uint32_t dst_ring) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kMigrate));
  w.u64(id);
  w.u32(dst_ring);
  return std::move(w).take();
}

Bytes session_open_many(std::uint32_t count, Micros ttl_us) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(SessionOp::kOpenMany));
  w.u32(count);
  w.i64(ttl_us);
  return std::move(w).take();
}

SessionReply SessionReply::parse(const Bytes& b) {
  BytesReader r(b);
  SessionReply out;
  out.status = static_cast<SessionStatus>(r.u8());
  out.session_id = r.u64();
  out.stamp = r.i64();
  out.live_count = r.u64();
  out.digest = r.u64();
  return out;
}

namespace {
Bytes make_reply(SessionStatus status, std::uint64_t id = 0, Micros stamp = 0,
                 std::uint64_t live = 0, std::uint64_t digest = 0) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(id);
  w.i64(stamp);
  w.u64(live);
  w.u64(digest);
  return std::move(w).take();
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

// --- SessionManagerApp ---------------------------------------------------------------

SessionManagerApp::SessionManagerApp(replication::ReplicaContext& ctx, Options opt)
    : ctx_(ctx),
      sys_(ctx.time, ctx.processing_thread),
      // Derived thread ids keep shards (and other apps on the same
      // service) from colliding; same derivation at every replica.
      timers_(ctx.time,
              ccs::GroupTimerService::Config{ThreadId{ctx.processing_thread.value + 2000}, 1'000}),
      ids_(ctx.time, ThreadId{ctx.processing_thread.value + 3000},
           /*ns=*/ctx.group.value * 1000 + ctx.processing_thread.value),
      opt_(opt) {
  // Sharded mode: open the ring's session-migration stream (see
  // KvStoreApp's constructor for the src_grp/adoption contract).
  if (opt_.shard_map != nullptr && ctx.gcs != nullptr) {
    handoff_ = std::make_unique<ccs::CausalMessenger>(
        *ctx.gcs, ctx.time, opt_.shard_map->cross_group(opt_.ring),
        opt_.shard_map->session_stream(opt_.ring));
    handoff_->subscribe(ShardMap::kSessionHandoffConn,
                        [this](const gcs::Message& m, Micros ts, const Bytes& body) {
                          adopt_handoff(m, ts, body);
                        });
  }
}

void SessionManagerApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

void SessionManagerApp::arm_reaper(std::uint64_t id, std::uint64_t epoch, Micros deadline) {
  timers_.schedule_at(deadline, [this, id, epoch](Micros now) {
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second.epoch != epoch) return;  // touched/closed since
    if (it->second.last_activity + it->second.ttl > now) {
      // Touched between arming and firing (epoch unchanged only when the
      // touch path forgot to bump — it never does — but stay defensive).
      return;
    }
    sessions_.erase(it);
    ++reaped_;
  });
}

void SessionManagerApp::arm_batch_reaper(std::uint64_t base_id, std::uint64_t epoch,
                                         Micros deadline) {
  timers_.schedule_at(deadline, [this, base_id, epoch](Micros now) {
    auto it = batches_.find(base_id);
    if (it == batches_.end() || it->second.epoch != epoch) return;
    if (it->second.last_activity + it->second.ttl > now) return;
    reaped_ += it->second.count;
    batched_ -= it->second.count;
    batches_.erase(it);
  });
}

const SessionManagerApp::Batch* SessionManagerApp::batch_of(std::uint64_t id,
                                                            std::uint64_t* base) const {
  // Batches hold consecutive id ranges [base, base + count); find the
  // candidate batch at or below `id` and range-check it.
  auto it = batches_.upper_bound(id);
  if (it == batches_.begin()) return nullptr;
  --it;
  if (id - it->first >= it->second.count) return nullptr;
  if (base != nullptr) *base = it->first;
  return &it->second;
}

sim::Task SessionManagerApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  Bytes reply;
  try {
    const auto op = static_cast<SessionOp>(r.u8());
    switch (op) {
      case SessionOp::kOpen: {
        const Micros ttl = r.i64();
        if (ttl <= 0) {
          reply = make_reply(SessionStatus::kBadRequest);
          break;
        }
        const std::uint64_t id = co_await ids_.make_id();
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        Session s;
        s.ttl = ttl;
        s.last_activity = now.total_us();
        s.epoch = ++epoch_counter_;
        sessions_[id] = s;
        arm_reaper(id, s.epoch, s.last_activity + ttl);
        reply = make_reply(SessionStatus::kOk, id, s.last_activity + ttl);
        break;
      }
      case SessionOp::kTouch: {
        const std::uint64_t id = r.u64();
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          reply = make_reply(SessionStatus::kUnknownSession);
          break;
        }
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        it->second.last_activity = now.total_us();
        it->second.epoch = ++epoch_counter_;
        arm_reaper(id, it->second.epoch, it->second.last_activity + it->second.ttl);
        reply = make_reply(SessionStatus::kOk, id, it->second.last_activity + it->second.ttl);
        break;
      }
      case SessionOp::kClose: {
        const std::uint64_t id = r.u64();
        if (sessions_.erase(id) == 0) {
          reply = make_reply(SessionStatus::kUnknownSession);
        } else {
          reply = make_reply(SessionStatus::kOk, id);
        }
        break;
      }
      case SessionOp::kQuery: {
        const std::uint64_t id = r.u64();
        auto it = sessions_.find(id);
        if (it != sessions_.end()) {
          reply = make_reply(SessionStatus::kOk, id, it->second.last_activity);
        } else if (const Batch* b = batch_of(id, nullptr)) {
          reply = make_reply(SessionStatus::kOk, id, b->last_activity);
        } else {
          reply = make_reply(SessionStatus::kUnknownSession);
        }
        break;
      }
      case SessionOp::kCount: {
        reply = make_reply(SessionStatus::kOk, 0, 0, live_sessions(), state_digest());
        break;
      }
      case SessionOp::kOpenMany: {
        const std::uint32_t count = r.u32();
        const Micros ttl = r.i64();
        if (count == 0 || ttl <= 0) {
          reply = make_reply(SessionStatus::kBadRequest);
          break;
        }
        // One id round + one clock round, however large the batch: the
        // whole point of the bulk path.  Member ids are the consecutive
        // range [base, base + count) — synthetic, but each one answers
        // QUERY like an individually opened session.
        const std::uint64_t base = co_await ids_.make_id();
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        Batch b;
        b.count = count;
        b.ttl = ttl;
        b.last_activity = now.total_us();
        b.epoch = ++epoch_counter_;
        batches_[base] = b;
        batched_ += count;
        arm_batch_reaper(base, b.epoch, b.last_activity + ttl);
        reply = make_reply(SessionStatus::kOk, base, b.last_activity + ttl, count);
        break;
      }
      case SessionOp::kMigrate: {
        const std::uint64_t id = r.u64();
        const std::uint32_t dst = r.u32();
        if (!handoff_ || dst >= opt_.shard_map->rings() || dst == opt_.ring) {
          reply = make_reply(SessionStatus::kBadRequest);
          break;
        }
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          reply = make_reply(SessionStatus::kUnknownSession);
          break;
        }
        // Two-phase handoff, same shape as the KV lease transfer: ordered
        // release here, causally stamped adoption at the owning ring.
        const Session exported = it->second;
        BytesWriter rec;
        rec.u64(id);
        rec.i64(exported.ttl);
        rec.i64(exported.last_activity);
        sessions_.erase(it);
        const MsgSeqNum seq = ++handoff_seq_;
        const Micros ts =
            co_await handoff_->send(opt_.shard_map->cross_group(dst),
                                    ShardMap::kSessionHandoffConn, seq, std::move(rec).take());
        if (ts == kNoTime) {
          --handoff_seq_;
          sessions_[id] = exported;
          reply = make_reply(SessionStatus::kBadRequest);
          break;
        }
        ++handoffs_out_;
        if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
          // Handoffs are per-migration events (a handful per run), so the
          // by-name counter lookup here is deliberate — no handle cache.
          ++rec_ptr->counter("session.handoffs_out");
          rec_ptr->event(obs::EventKind::kHandoffExport, ctx_.gcs->node_id(), ctx_.replica,
                         opt_.shard_map->session_stream(opt_.ring).value,
                         static_cast<std::int64_t>(seq), static_cast<std::int64_t>(dst));
        }
        reply = make_reply(SessionStatus::kOk, id, ts);
        break;
      }
      default:
        reply = make_reply(SessionStatus::kBadRequest);
    }
  } catch (const CodecError&) {
    reply = make_reply(SessionStatus::kBadRequest);
  }
  done(std::move(reply));
}

void SessionManagerApp::adopt_handoff(const gcs::Message& m, Micros stamp, const Bytes& record) {
  // Agreed delivery order; causal floor already at `stamp` — the session's
  // next activity reading here exceeds the migration stamp minted at the
  // source (the cross-shard ordering property the sweep test asserts).
  try {
    BytesReader r(record);
    const std::uint64_t id = r.u64();
    Session s;
    s.ttl = r.i64();
    s.last_activity = r.i64();
    s.epoch = ++epoch_counter_;
    sessions_[id] = s;
    arm_reaper(id, s.epoch, s.last_activity + s.ttl);
    ++handoffs_in_;
    if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
      ++rec_ptr->counter("session.handoffs_in");
      rec_ptr->event(obs::EventKind::kHandoffAdopt, ctx_.gcs->node_id(), ctx_.replica,
                     m.hdr.tag.value, static_cast<std::int64_t>(m.hdr.seq),
                     static_cast<std::int64_t>(stamp));
    }
  } catch (const CodecError&) {
    if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
      ++rec_ptr->counter("session.handoffs_rejected");
    }
  }
}

std::uint64_t SessionManagerApp::state_digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [id, s] : sessions_) {
    h = mix64(h, id);
    h = mix64(h, static_cast<std::uint64_t>(s.ttl));
    h = mix64(h, static_cast<std::uint64_t>(s.last_activity));
  }
  for (const auto& [base, b] : batches_) {
    h = mix64(h, base);
    h = mix64(h, b.count);
    h = mix64(h, static_cast<std::uint64_t>(b.ttl));
    h = mix64(h, static_cast<std::uint64_t>(b.last_activity));
  }
  h = mix64(h, reaped_);
  return h;
}

Bytes SessionManagerApp::checkpoint() const {
  BytesWriter w;
  w.u64(epoch_counter_);
  w.u64(reaped_);
  w.u64(handoff_seq_);
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [id, s] : sessions_) {
    w.u64(id);
    w.i64(s.ttl);
    w.i64(s.last_activity);
    w.u64(s.epoch);
  }
  w.u32(static_cast<std::uint32_t>(batches_.size()));
  for (const auto& [base, b] : batches_) {
    w.u64(base);
    w.u32(b.count);
    w.i64(b.ttl);
    w.i64(b.last_activity);
    w.u64(b.epoch);
  }
  return std::move(w).take();
}

void SessionManagerApp::restore(const Bytes& state) {
  BytesReader r(state);
  epoch_counter_ = r.u64();
  reaped_ = r.u64();
  handoff_seq_ = r.u64();
  sessions_.clear();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t id = r.u64();
    Session s;
    s.ttl = r.i64();
    s.last_activity = r.i64();
    s.epoch = r.u64();
    sessions_[id] = s;
    arm_reaper(id, s.epoch, s.last_activity + s.ttl);
  }
  batches_.clear();
  batched_ = 0;
  const auto nb = r.u32();
  for (std::uint32_t i = 0; i < nb; ++i) {
    const std::uint64_t base = r.u64();
    Batch b;
    b.count = r.u32();
    b.ttl = r.i64();
    b.last_activity = r.i64();
    b.epoch = r.u64();
    batched_ += b.count;
    batches_[base] = b;
    arm_batch_reaper(base, b.epoch, b.last_activity + b.ttl);
  }
}

replication::ReplicaFactory session_manager_factory(SessionManagerApp::Options opt) {
  return [opt](replication::ReplicaContext& ctx) {
    return std::make_unique<SessionManagerApp>(ctx, opt);
  };
}

}  // namespace cts::app
