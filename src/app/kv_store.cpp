#include "app/kv_store.hpp"

namespace cts::app {

const char* to_string(KvStatus s) {
  switch (s) {
    case KvStatus::kOk:
      return "ok";
    case KvStatus::kNotFound:
      return "not-found";
    case KvStatus::kLeaseHeld:
      return "lease-held";
    case KvStatus::kLeaseDenied:
      return "lease-denied";
    case KvStatus::kBadRequest:
      return "bad-request";
  }
  return "?";
}

// --- Request builders ---------------------------------------------------------

namespace {
BytesWriter op_header(KvOp op, const std::string& key) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  return w;
}
}  // namespace

Bytes kv_put(const std::string& key, const std::string& value, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kPut, key);
  w.str(value);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_get(const std::string& key) { return std::move(op_header(KvOp::kGet, key)).take(); }

Bytes kv_del(const std::string& key, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kDelete, key);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_acquire(const std::string& key, std::uint64_t owner, Micros ttl_us) {
  BytesWriter w = op_header(KvOp::kAcquire, key);
  w.u64(owner);
  w.i64(ttl_us);
  return std::move(w).take();
}

Bytes kv_release(const std::string& key, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kRelease, key);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_stats() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(KvOp::kStats));
  w.str("");
  return std::move(w).take();
}

KvReply KvReply::parse(const Bytes& b) {
  BytesReader r(b);
  KvReply out;
  out.status = static_cast<KvStatus>(r.u8());
  out.value = r.str();
  out.version = r.u64();
  out.lease_expiry = r.i64();
  out.key_count = r.u64();
  out.state_digest = r.u64();
  return out;
}

namespace {
Bytes make_reply(KvStatus status, const std::string& value = "", std::uint64_t version = 0,
                 Micros lease_expiry = 0, std::uint64_t key_count = 0,
                 std::uint64_t digest = 0) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(value);
  w.u64(version);
  w.i64(lease_expiry);
  w.u64(key_count);
  w.u64(digest);
  return std::move(w).take();
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = hash_mix(h, c);
  return h;
}
}  // namespace

// --- KvStoreApp -------------------------------------------------------------------

KvStoreApp::KvStoreApp(replication::ReplicaContext& ctx, Options opt)
    : ctx_(ctx),
      sys_(ctx.time, ctx.processing_thread),
      // The timer thread id must be unique per shard: derive it from the
      // shard's processing thread (same derivation at every replica).
      timers_(ctx.time, ccs::GroupTimerService::Config{
                            ThreadId{ctx.processing_thread.value + 1000}, opt.timer_poll_us}),
      opt_(opt) {}

void KvStoreApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

bool KvStoreApp::lease_blocks(const Entry& e, std::uint64_t owner, Micros now) const {
  return e.lease_owner != 0 && e.lease_owner != owner && e.lease_expiry > now;
}

void KvStoreApp::arm_expiry(const std::string& key, std::uint64_t grant, Micros expiry) {
  timers_.schedule_at(expiry, [this, key, grant](Micros) {
    auto it = entries_.find(key);
    // Only expire the exact grant this timer was armed for: the lease may
    // have been released and re-acquired since.
    if (it == entries_.end() || it->second.lease_grant != grant) return;
    it->second.lease_owner = 0;
    it->second.lease_expiry = 0;
    ++leases_expired_;
  });
}

sim::Task KvStoreApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  Bytes reply;
  try {
    const auto op = static_cast<KvOp>(r.u8());
    const std::string key = r.str();
    switch (op) {
      case KvOp::kPut: {
        const std::string value = r.str();
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.lease_owner != 0) {
          // A lease exists: check it against the GROUP clock so every
          // replica reaches the same verdict.
          const ccs::TimeVal now = co_await sys_.gettimeofday();
          if (lease_blocks(it->second, owner, now.total_us())) {
            reply = make_reply(KvStatus::kLeaseHeld);
            break;
          }
        }
        Entry& e = entries_[key];
        e.value = value;
        ++e.version;
        reply = make_reply(KvStatus::kOk, "", e.version);
        break;
      }
      case KvOp::kGet: {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          reply = make_reply(KvStatus::kNotFound);
        } else {
          reply = make_reply(KvStatus::kOk, it->second.value, it->second.version);
        }
        break;
      }
      case KvOp::kDelete: {
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          reply = make_reply(KvStatus::kNotFound);
          break;
        }
        if (it->second.lease_owner != 0) {
          const ccs::TimeVal now = co_await sys_.gettimeofday();
          if (lease_blocks(it->second, owner, now.total_us())) {
            reply = make_reply(KvStatus::kLeaseHeld);
            break;
          }
        }
        entries_.erase(it);
        reply = make_reply(KvStatus::kOk);
        break;
      }
      case KvOp::kAcquire: {
        const std::uint64_t owner = r.u64();
        const Micros ttl = r.i64();
        if (owner == 0 || ttl <= 0) {
          reply = make_reply(KvStatus::kBadRequest);
          break;
        }
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        Entry& e = entries_[key];  // acquiring creates the key if absent
        if (lease_blocks(e, owner, now.total_us())) {
          reply = make_reply(KvStatus::kLeaseDenied, "", e.version, e.lease_expiry);
          break;
        }
        e.lease_owner = owner;
        e.lease_expiry = now.total_us() + ttl;
        e.lease_grant = ++grant_counter_;
        arm_expiry(key, e.lease_grant, e.lease_expiry);
        reply = make_reply(KvStatus::kOk, "", e.version, e.lease_expiry);
        break;
      }
      case KvOp::kRelease: {
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it == entries_.end() || it->second.lease_owner != owner) {
          reply = make_reply(KvStatus::kLeaseDenied);
          break;
        }
        it->second.lease_owner = 0;
        it->second.lease_expiry = 0;
        ++it->second.lease_grant;  // invalidates the pending expiry timer
        reply = make_reply(KvStatus::kOk);
        break;
      }
      case KvOp::kStats: {
        reply = make_reply(KvStatus::kOk, "", 0, 0, entries_.size(), state_digest());
        break;
      }
      default:
        reply = make_reply(KvStatus::kBadRequest);
    }
  } catch (const CodecError&) {
    reply = make_reply(KvStatus::kBadRequest);
  }
  done(std::move(reply));
}

std::uint64_t KvStoreApp::state_digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [k, e] : entries_) {
    h = hash_str(h, k);
    h = hash_str(h, e.value);
    h = hash_mix(h, e.version);
    h = hash_mix(h, e.lease_owner);
    h = hash_mix(h, static_cast<std::uint64_t>(e.lease_expiry));
  }
  return h;
}

Bytes KvStoreApp::checkpoint() const {
  BytesWriter w;
  w.u64(grant_counter_);
  w.u64(leases_expired_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [k, e] : entries_) {
    w.str(k);
    w.str(e.value);
    w.u64(e.version);
    w.u64(e.lease_owner);
    w.i64(e.lease_expiry);
    w.u64(e.lease_grant);
  }
  return std::move(w).take();
}

void KvStoreApp::restore(const Bytes& state) {
  BytesReader r(state);
  grant_counter_ = r.u64();
  leases_expired_ = r.u64();
  entries_.clear();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string k = r.str();
    Entry e;
    e.value = r.str();
    e.version = r.u64();
    e.lease_owner = r.u64();
    e.lease_expiry = r.i64();
    e.lease_grant = r.u64();
    // Re-arm expiry for live leases (the recovering replica's timers are
    // empty; group-time deadlines transfer verbatim).
    if (e.lease_owner != 0) arm_expiry(k, e.lease_grant, e.lease_expiry);
    entries_.emplace(k, std::move(e));
  }
}

std::uint32_t kv_shard_of(const gcs::Message& m) {
  // Route by key so each key's operations stay on one shard (and therefore
  // in one deterministic stream).
  try {
    BytesReader r(m.payload);
    (void)r.u8();
    const std::string key = r.str();
    std::uint32_t h = 2166136261u;
    for (unsigned char c : key) {
      h ^= c;
      h *= 16777619u;
    }
    return h;
  } catch (const CodecError&) {
    return 0;
  }
}

replication::ReplicaFactory kv_store_factory(KvStoreApp::Options opt) {
  return [opt](replication::ReplicaContext& ctx) {
    return std::make_unique<KvStoreApp>(ctx, opt);
  };
}

}  // namespace cts::app
