#include "app/kv_store.hpp"

namespace cts::app {

const char* to_string(KvStatus s) {
  switch (s) {
    case KvStatus::kOk:
      return "ok";
    case KvStatus::kNotFound:
      return "not-found";
    case KvStatus::kLeaseHeld:
      return "lease-held";
    case KvStatus::kLeaseDenied:
      return "lease-denied";
    case KvStatus::kBadRequest:
      return "bad-request";
    case KvStatus::kRetry:
      return "retry";
  }
  return "?";
}

// --- Request builders ---------------------------------------------------------

namespace {
BytesWriter op_header(KvOp op, const std::string& key) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  return w;
}
}  // namespace

Bytes kv_put(const std::string& key, const std::string& value, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kPut, key);
  w.str(value);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_get(const std::string& key) { return std::move(op_header(KvOp::kGet, key)).take(); }

Bytes kv_del(const std::string& key, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kDelete, key);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_acquire(const std::string& key, std::uint64_t owner, Micros ttl_us) {
  BytesWriter w = op_header(KvOp::kAcquire, key);
  w.u64(owner);
  w.i64(ttl_us);
  return std::move(w).take();
}

Bytes kv_release(const std::string& key, std::uint64_t owner) {
  BytesWriter w = op_header(KvOp::kRelease, key);
  w.u64(owner);
  return std::move(w).take();
}

Bytes kv_stats() {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(KvOp::kStats));
  w.str("");
  return std::move(w).take();
}

Bytes kv_migrate(const std::string& key, std::uint32_t dst_ring) {
  BytesWriter w = op_header(KvOp::kMigrate, key);
  w.u32(dst_ring);
  return std::move(w).take();
}

KvReply KvReply::parse(const Bytes& b) {
  BytesReader r(b);
  KvReply out;
  out.status = static_cast<KvStatus>(r.u8());
  out.value = r.str();
  out.version = r.u64();
  out.lease_expiry = r.i64();
  out.key_count = r.u64();
  out.state_digest = r.u64();
  return out;
}

namespace {
Bytes make_reply(KvStatus status, const std::string& value = "", std::uint64_t version = 0,
                 Micros lease_expiry = 0, std::uint64_t key_count = 0,
                 std::uint64_t digest = 0) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(value);
  w.u64(version);
  w.i64(lease_expiry);
  w.u64(key_count);
  w.u64(digest);
  return std::move(w).take();
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = hash_mix(h, c);
  return h;
}
}  // namespace

// --- KvStoreApp -------------------------------------------------------------------

KvStoreApp::KvStoreApp(replication::ReplicaContext& ctx, Options opt)
    : ctx_(ctx),
      sys_(ctx.time, ctx.processing_thread),
      // The timer thread id must be unique per shard: derive it from the
      // shard's processing thread (same derivation at every replica).
      timers_(ctx.time, ccs::GroupTimerService::Config{
                            ThreadId{ctx.processing_thread.value + 1000}, opt.timer_poll_us}),
      opt_(opt) {
  // Sharded mode: open the ring's KV handoff stream.  my_group is the
  // ring's cross-ring ingress group, so outgoing stamps carry this ring's
  // identity as src_grp and incoming handoffs (addressed to that group,
  // re-originated by the gateway) are adopted here in agreed order.
  if (opt_.shard_map != nullptr && ctx.gcs != nullptr) {
    handoff_ = std::make_unique<ccs::CausalMessenger>(
        *ctx.gcs, ctx.time, opt_.shard_map->cross_group(opt_.ring),
        opt_.shard_map->kv_stream(opt_.ring));
    handoff_->subscribe(ShardMap::kKvHandoffConn,
                        [this](const gcs::Message& m, Micros ts, const Bytes& body) {
                          adopt_handoff(m, ts, body);
                        });
  }
}

void KvStoreApp::handle_request(const SharedBytes& request, std::function<void(Bytes)> done) {
  serve(request, std::move(done));
}

bool KvStoreApp::lease_blocks(const Entry& e, std::uint64_t owner, Micros now) const {
  return e.lease_owner != 0 && e.lease_owner != owner && e.lease_expiry > now;
}

void KvStoreApp::arm_expiry(const std::string& key, std::uint64_t grant, Micros expiry) {
  timers_.schedule_at(expiry, [this, key, grant](Micros) {
    auto it = entries_.find(key);
    // Only expire the exact grant this timer was armed for: the lease may
    // have been released and re-acquired since.
    if (it == entries_.end() || it->second.lease_grant != grant) return;
    it->second.lease_owner = 0;
    it->second.lease_expiry = 0;
    ++leases_expired_;
  });
}

sim::Task KvStoreApp::serve(SharedBytes request, std::function<void(Bytes)> done) {
  BytesReader r(request);
  Bytes reply;
  try {
    const auto op = static_cast<KvOp>(r.u8());
    const std::string key = r.str();
    switch (op) {
      case KvOp::kPut: {
        const std::string value = r.str();
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.lease_owner != 0) {
          // A lease exists: check it against the GROUP clock so every
          // replica reaches the same verdict.
          const ccs::TimeVal now = co_await sys_.gettimeofday();
          if (lease_blocks(it->second, owner, now.total_us())) {
            reply = make_reply(KvStatus::kLeaseHeld);
            break;
          }
        }
        Entry& e = entries_[key];
        e.value = value;
        ++e.version;
        reply = make_reply(KvStatus::kOk, "", e.version);
        break;
      }
      case KvOp::kGet: {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          reply = make_reply(KvStatus::kNotFound);
        } else {
          reply = make_reply(KvStatus::kOk, it->second.value, it->second.version);
        }
        break;
      }
      case KvOp::kDelete: {
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          reply = make_reply(KvStatus::kNotFound);
          break;
        }
        if (it->second.lease_owner != 0) {
          const ccs::TimeVal now = co_await sys_.gettimeofday();
          if (lease_blocks(it->second, owner, now.total_us())) {
            reply = make_reply(KvStatus::kLeaseHeld);
            break;
          }
        }
        entries_.erase(it);
        reply = make_reply(KvStatus::kOk);
        break;
      }
      case KvOp::kAcquire: {
        const std::uint64_t owner = r.u64();
        const Micros ttl = r.i64();
        if (owner == 0 || ttl <= 0) {
          reply = make_reply(KvStatus::kBadRequest);
          break;
        }
        const ccs::TimeVal now = co_await sys_.gettimeofday();
        Entry& e = entries_[key];  // acquiring creates the key if absent
        if (lease_blocks(e, owner, now.total_us())) {
          reply = make_reply(KvStatus::kLeaseDenied, "", e.version, e.lease_expiry);
          break;
        }
        e.lease_owner = owner;
        e.lease_expiry = now.total_us() + ttl;
        e.lease_grant = ++grant_counter_;
        arm_expiry(key, e.lease_grant, e.lease_expiry);
        reply = make_reply(KvStatus::kOk, "", e.version, e.lease_expiry);
        break;
      }
      case KvOp::kRelease: {
        const std::uint64_t owner = r.u64();
        auto it = entries_.find(key);
        if (it == entries_.end() || it->second.lease_owner != owner) {
          reply = make_reply(KvStatus::kLeaseDenied);
          break;
        }
        it->second.lease_owner = 0;
        it->second.lease_expiry = 0;
        ++it->second.lease_grant;  // invalidates the pending expiry timer
        reply = make_reply(KvStatus::kOk);
        break;
      }
      case KvOp::kStats: {
        reply = make_reply(KvStatus::kOk, "", 0, 0, entries_.size(), state_digest());
        break;
      }
      case KvOp::kMigrate: {
        const std::uint32_t dst = r.u32();
        if (!handoff_ || dst >= opt_.shard_map->rings() || dst == opt_.ring) {
          reply = make_reply(KvStatus::kBadRequest);
          break;
        }
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          reply = make_reply(KvStatus::kNotFound);
          break;
        }
        // Phase 1 — ordered release: export the entry and erase it at this
        // agreed position in the stream, so no replica of this ring serves
        // the key past the release point.
        const Entry exported = it->second;
        BytesWriter rec;
        rec.str(key);
        rec.str(exported.value);
        rec.u64(exported.version);
        rec.u64(exported.lease_owner);
        rec.i64(exported.lease_expiry);
        entries_.erase(it);
        const MsgSeqNum seq = ++handoff_seq_;
        // Phase 2 — stamped transfer: one CCS round mints the transfer
        // stamp (identical at every live replica of this ring; duplicate
        // suppression collapses the copies, and one survivor suffices if a
        // representative crashes mid-handoff).  The destination raises its
        // causal floor to the stamp before adoption, so a reading taken
        // after adoption on the destination exceeds the stamp minted here.
        const Micros ts = co_await handoff_->send(
            opt_.shard_map->cross_group(dst), ShardMap::kKvHandoffConn, seq, std::move(rec).take());
        if (ts == kNoTime) {
          // Stamp stream busy (possible only with multiple concurrent
          // migrations): roll the release back and ask the client to retry.
          --handoff_seq_;
          entries_[key] = exported;
          reply = make_reply(KvStatus::kRetry);
          break;
        }
        ++handoffs_out_;
        if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
          // Handoffs are per-migration events (a handful per run), so the
          // by-name counter lookup here is deliberate — no handle cache.
          ++rec_ptr->counter("kv.handoffs_out");
          rec_ptr->event(obs::EventKind::kHandoffExport, ctx_.gcs->node_id(), ctx_.replica,
                         opt_.shard_map->kv_stream(opt_.ring).value,
                         static_cast<std::int64_t>(seq), static_cast<std::int64_t>(dst));
        }
        reply = make_reply(KvStatus::kOk, "", exported.version, ts);
        break;
      }
      default:
        reply = make_reply(KvStatus::kBadRequest);
    }
  } catch (const CodecError&) {
    reply = make_reply(KvStatus::kBadRequest);
  }
  done(std::move(reply));
}

void KvStoreApp::adopt_handoff(const gcs::Message& m, Micros stamp, const Bytes& record) {
  // Runs at every replica of the destination ring, in agreed order, with
  // the causal floor already raised to `stamp` by the messenger — so the
  // next clock reading here exceeds the transfer stamp minted at the
  // source.  Everything below is a pure function of (record, local state),
  // identical at every replica.
  try {
    BytesReader r(record);
    const std::string key = r.str();
    Entry e;
    e.value = r.str();
    e.version = r.u64();
    e.lease_owner = r.u64();
    e.lease_expiry = r.i64();
    // A concurrently created local entry loses to the transferred one, but
    // version never regresses for readers that watched the local copy.
    if (auto it = entries_.find(key); it != entries_.end() && it->second.version > e.version) {
      e.version = it->second.version;
    }
    // Fresh grant: the source's expiry timers died with its ownership; the
    // absolute group-time deadline transfers verbatim (the floor guarantees
    // our clock is causally AFTER the stamp, so the lease can only shorten,
    // never stretch past its source-side deadline).
    if (e.lease_owner != 0) {
      e.lease_grant = ++grant_counter_;
      arm_expiry(key, e.lease_grant, e.lease_expiry);
    }
    entries_[key] = std::move(e);
    ++handoffs_in_;
    if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
      ++rec_ptr->counter("kv.handoffs_in");
      rec_ptr->event(obs::EventKind::kHandoffAdopt, ctx_.gcs->node_id(), ctx_.replica,
                     m.hdr.tag.value, static_cast<std::int64_t>(m.hdr.seq),
                     static_cast<std::int64_t>(stamp));
    }
  } catch (const CodecError&) {
    if (auto* rec_ptr = ctx_.gcs != nullptr ? ctx_.gcs->recorder() : nullptr) {
      ++rec_ptr->counter("kv.handoffs_rejected");
    }
  }
}

std::uint64_t KvStoreApp::state_digest() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& [k, e] : entries_) {
    h = hash_str(h, k);
    h = hash_str(h, e.value);
    h = hash_mix(h, e.version);
    h = hash_mix(h, e.lease_owner);
    h = hash_mix(h, static_cast<std::uint64_t>(e.lease_expiry));
  }
  return h;
}

Bytes KvStoreApp::checkpoint() const {
  BytesWriter w;
  w.u64(grant_counter_);
  w.u64(leases_expired_);
  w.u64(handoff_seq_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [k, e] : entries_) {
    w.str(k);
    w.str(e.value);
    w.u64(e.version);
    w.u64(e.lease_owner);
    w.i64(e.lease_expiry);
    w.u64(e.lease_grant);
  }
  return std::move(w).take();
}

void KvStoreApp::restore(const Bytes& state) {
  BytesReader r(state);
  grant_counter_ = r.u64();
  leases_expired_ = r.u64();
  handoff_seq_ = r.u64();
  entries_.clear();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string k = r.str();
    Entry e;
    e.value = r.str();
    e.version = r.u64();
    e.lease_owner = r.u64();
    e.lease_expiry = r.i64();
    e.lease_grant = r.u64();
    // Re-arm expiry for live leases (the recovering replica's timers are
    // empty; group-time deadlines transfer verbatim).
    if (e.lease_owner != 0) arm_expiry(k, e.lease_grant, e.lease_expiry);
    entries_.emplace(k, std::move(e));
  }
}

std::uint32_t kv_shard_of(const gcs::Message& m) {
  // Route by key so each key's operations stay on one shard (and therefore
  // in one deterministic stream).
  try {
    BytesReader r(m.payload);
    (void)r.u8();
    const std::string key = r.str();
    std::uint32_t h = 2166136261u;
    for (unsigned char c : key) {
      h ^= c;
      h *= 16777619u;
    }
    return h;
  } catch (const CodecError&) {
    return 0;
  }
}

replication::ReplicaFactory kv_store_factory(KvStoreApp::Options opt) {
  return [opt](replication::ReplicaContext& ctx) {
    return std::make_unique<KvStoreApp>(ctx, opt);
  };
}

}  // namespace cts::app
