// A replicated key-value store with lease-based ownership — a realistic
// application of the consistent time service.
//
// Leases are the classic place where clock non-determinism corrupts
// replicated state: "is this lease still valid?" is answered by comparing
// a clock reading against the expiry.  If replicas read their own hardware
// clocks, one replica grants a lease another replica still considers held,
// and the copies of the store diverge.  KvStoreApp answers every such
// question with the GROUP clock, so all replicas make identical lease
// decisions, and lease expiry (driven by GroupTimerService) fires at the
// same logical instant everywhere.
//
// Operations (all requests arrive in agreed total order):
//   PUT key value [owner]   — write; fails if the key is leased to someone
//                             else and the lease has not expired
//   GET key                 — read value + version (no clock round)
//   DEL key [owner]         — delete, same lease check as PUT
//   ACQUIRE key owner ttl   — take the lease if free / expired / yours;
//                             reply carries the expiry in group time
//   RELEASE key owner       — drop the lease if held by `owner`
//   STATS                   — deterministic state digest (for tests)
//   MIGRATE key dst_ring    — cross-shard lease transfer (sharded mode):
//                             release the entry here, hand it to the owning
//                             ring as a causally stamped two-phase handoff
//                             (doc/SHARDING.md)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "app/topology.hpp"
#include "cts/group_timers.hpp"
#include "cts/multigroup.hpp"
#include "cts/time_syscalls.hpp"
#include "gcs/gcs.hpp"
#include "replication/replica.hpp"

namespace cts::app {

enum class KvOp : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kDelete = 3,
  kAcquire = 4,
  kRelease = 5,
  kStats = 6,
  kMigrate = 7,
};

enum class KvStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kLeaseHeld = 2,   // someone else's unexpired lease blocks the write
  kLeaseDenied = 3, // acquire refused
  kBadRequest = 4,
  kRetry = 5,       // transient: the handoff stamp stream was busy
};

[[nodiscard]] const char* to_string(KvStatus s);

// --- Client-side request builders / reply parsers ------------------------------

Bytes kv_put(const std::string& key, const std::string& value, std::uint64_t owner = 0);
Bytes kv_get(const std::string& key);
Bytes kv_del(const std::string& key, std::uint64_t owner = 0);
Bytes kv_acquire(const std::string& key, std::uint64_t owner, Micros ttl_us);
Bytes kv_release(const std::string& key, std::uint64_t owner);
Bytes kv_stats();
Bytes kv_migrate(const std::string& key, std::uint32_t dst_ring);

struct KvReply {
  KvStatus status = KvStatus::kBadRequest;
  std::string value;        // kGet
  std::uint64_t version = 0;
  Micros lease_expiry = 0;  // kAcquire (group time)
  std::uint64_t key_count = 0;     // kStats
  std::uint64_t state_digest = 0;  // kStats

  static KvReply parse(const Bytes& b);
};

// --- The replicated store --------------------------------------------------------

class KvStoreApp : public replication::Replica {
 public:
  struct Options {
    /// Lease-expiry sweep granularity for the deterministic timers.
    Micros timer_poll_us = 1'000;
    /// Sharded deployment (nullptr = single-ring; no handoff stream is
    /// built and the app behaves exactly as before).  When set, the app
    /// opens a CausalMessenger on the ShardMap's KV handoff stream for
    /// ring `ring`: MIGRATE exports entries to other rings and adoption
    /// installs entries stamped by them.  The map must outlive the app.
    /// Handoff-enabled managers must run with shards = 1 — the handoff
    /// stamp stream is per ring, not per processing shard.
    const ShardMap* shard_map = nullptr;
    std::size_t ring = 0;
  };

  KvStoreApp(replication::ReplicaContext& ctx, Options opt);

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override;
  [[nodiscard]] Bytes checkpoint() const override;
  void restore(const Bytes& state) override;

  // Introspection for tests (all replica-deterministic).
  [[nodiscard]] std::uint64_t state_digest() const;
  [[nodiscard]] std::size_t key_count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t leases_expired() const { return leases_expired_; }
  [[nodiscard]] std::uint64_t handoffs_out() const { return handoffs_out_; }
  [[nodiscard]] std::uint64_t handoffs_in() const { return handoffs_in_; }
  [[nodiscard]] bool has_key(const std::string& key) const { return entries_.count(key) != 0; }

 private:
  struct Entry {
    std::string value;
    std::uint64_t version = 0;
    std::uint64_t lease_owner = 0;  // 0 = unleased
    Micros lease_expiry = 0;        // group time
    std::uint64_t lease_grant = 0;  // distinguishes successive leases
  };

  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done);
  [[nodiscard]] bool lease_blocks(const Entry& e, std::uint64_t owner, Micros now) const;
  void arm_expiry(const std::string& key, std::uint64_t grant, Micros expiry);
  /// Destination side of a handoff: install the stamped record.  Runs in
  /// agreed delivery order, AFTER the causal floor was raised to the
  /// transfer stamp — so any reading taken after adoption exceeds it.
  void adopt_handoff(const gcs::Message& m, Micros stamp, const Bytes& record);

  replication::ReplicaContext& ctx_;
  ccs::TimeSyscalls sys_;
  ccs::GroupTimerService timers_;
  Options opt_;

  std::map<std::string, Entry> entries_;
  std::uint64_t grant_counter_ = 0;
  std::uint64_t leases_expired_ = 0;

  // Cross-shard handoff stream (sharded mode only; see doc/SHARDING.md).
  std::unique_ptr<ccs::CausalMessenger> handoff_;
  std::uint64_t handoff_seq_ = 0;  // checkpointed: survives failover
  std::uint64_t handoffs_out_ = 0;
  std::uint64_t handoffs_in_ = 0;
};

replication::ReplicaFactory kv_store_factory(KvStoreApp::Options opt = {});

/// Deterministic request→shard routing for sharded KV deployments: hashes
/// the key, so all operations on one key share one processing thread.
std::uint32_t kv_shard_of(const gcs::Message& m);

}  // namespace cts::app
