// The replicated application used throughout the paper's evaluation: a
// server whose remote method returns the current time (Section 4.2, "the
// client invokes a remote method that returns the current time in two
// CORBA longs; the server simply calls gettimeofday()").
//
// The server optionally inserts a busy-wait between its clock-related
// operations — the paper's "empty iteration loop ... to simulate a random
// delay comparable to the token-passing time" — drawn from {60..400}us.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "cts/time_syscalls.hpp"
#include "replication/replica.hpp"
#include "sim/simulator.hpp"

namespace cts::app {

/// Request opcodes understood by TimeServerApp.
enum class TimeServerOp : std::uint8_t {
  kGetTime = 1,       // one gettimeofday() round, returns (sec, usec)
  kGetTimeBurst = 2,  // u32 count follows: that many rounds with random delays
  kGetCounter = 3,    // pure state read (no clock op)
};

/// Builds request payloads for TimeServerApp (used by clients).
Bytes make_get_time_request();
Bytes make_burst_request(std::uint32_t rounds);
Bytes make_get_counter_request();

/// The replicated time server.
class TimeServerApp : public replication::Replica {
 public:
  struct Options {
    /// Busy-wait bounds between clock ops in a burst (paper: 60-400us).
    Micros min_delay_us = 60;
    Micros max_delay_us = 400;
    /// Per-replica seed for the (physically nondeterministic) delays.
    std::uint64_t delay_seed = 1;
    /// Fixed per-replica request-processing overhead before the clock op
    /// (models ORB demarshalling + scheduling; systematically different per
    /// host, which is why one replica dominates the CCS-winner statistics
    /// in the paper's measurement).  Set by the factory.
    Micros pre_op_base_us = 30;
    /// Per-request scheduling jitter added on top.
    Micros pre_op_jitter_us = 30;
  };

  TimeServerApp(replication::ReplicaContext& ctx, Options opt);

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override;
  [[nodiscard]] Bytes checkpoint() const override;
  void restore(const Bytes& state) override;

  /// Replica-deterministic state, for cross-replica consistency asserts.
  [[nodiscard]] std::uint64_t counter() const { return counter_; }
  [[nodiscard]] const std::vector<Micros>& time_history() const { return history_; }

 private:
  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done);

  replication::ReplicaContext& ctx_;
  ccs::TimeSyscalls sys_;
  Options opt_;
  Rng delay_rng_;

  // Deterministic state (must be identical across replicas).
  std::uint64_t counter_ = 0;
  std::vector<Micros> history_;
};

/// Factory adapter for ReplicaManager.
replication::ReplicaFactory time_server_factory(TimeServerApp::Options opt = {});

/// The control variant of the paper's Figure-5 experiment: the server
/// answers from its LOCAL hardware clock, bypassing the Consistent Time
/// Service entirely.  Fast, but "replica consistency of the server for this
/// operation cannot be guaranteed" (Section 4.2) — the replicas' histories
/// diverge, which the tests assert.
class LocalTimeServerApp : public replication::Replica {
 public:
  LocalTimeServerApp(replication::ReplicaContext& ctx, TimeServerApp::Options opt)
      : ctx_(ctx), opt_(opt), delay_rng_(opt.delay_seed) {}

  void handle_request(const SharedBytes& request, std::function<void(Bytes)> done) override;
  [[nodiscard]] Bytes checkpoint() const override;
  void restore(const Bytes& state) override;

  [[nodiscard]] std::uint64_t counter() const { return counter_; }
  [[nodiscard]] const std::vector<Micros>& time_history() const { return history_; }

 private:
  sim::Task serve(SharedBytes request, std::function<void(Bytes)> done);

  replication::ReplicaContext& ctx_;
  TimeServerApp::Options opt_;
  Rng delay_rng_;
  std::uint64_t counter_ = 0;
  std::vector<Micros> history_;
};

replication::ReplicaFactory local_time_server_factory(TimeServerApp::Options opt = {});

}  // namespace cts::app
