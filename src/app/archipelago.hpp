// Archipelago: N Totem rings, each a parallel simulation island, joined by
// causally-stamped inter-ring messaging — ROADMAP items 1 and 4 meeting in
// one rig.
//
// Each ring is a full Testbed (its own Simulator, LAN, Totem ring, server
// group, drifting clocks, Recorder/oracle) registered as an island with an
// IslandCoordinator; the only coupling between rings is the InterIslandLink,
// whose latency floor is exactly the coordinator's conservative window — so
// the rings execute whole barrier windows in parallel and the merged
// schedule is byte-identical to the serial one (doc/PARALLEL.md).
//
// Inter-ring traffic follows the paper's Section 5 sketch end to end:
//
//   sender ring i:  every live replica performs the same CausalMessenger
//                   stamp_and_send (one CCS round reads the group clock,
//                   the reading is prepended to the payload); GCS duplicate
//                   suppression collapses the copies to one wire message;
//   gateway:        node 0 of ring i subscribes to every remote ring's
//                   cross-ring group, so the single delivered copy is
//                   encoded and shipped over the InterIslandLink;
//   receiver ring j: the gateway re-originates the message on ring j's
//                   Totem ring (agreed order among ring j's replicas);
//                   every replica's CausalMessenger raises the causal floor
//                   to the carried timestamp before the app callback — all
//                   of ring j's subsequent clock readings exceed it.
//
// Group-id scheme: ring r's server group is GroupId{100+r} (globally
// unique, so no two rings' RMI traffic shares a group id), its client group
// GroupId{200+r}, and its cross-ring stamped-message group GroupId{300+r}.
// The cross-ring group is deliberately disjoint from the server group: the
// ReplicaManagers subscribe to the server group and treat every
// kUserRequest there as an RMI invocation, so stamped messages addressed to
// the server group would be "executed" as garbage requests and answered
// with spurious replies routed back across the link.  The inter-ring dedup
// stream tag is ThreadId{7000+r} per source ring, so streams from different
// rings never collide in a receiver's duplicate detection.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "app/testbed.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "cts/multigroup.hpp"
#include "net/island_link.hpp"
#include "sim/parallel.hpp"

namespace cts::app {

struct ArchipelagoConfig {
  /// Number of rings (islands).
  std::size_t rings = 2;
  /// Server replicas per ring.
  std::size_t servers = 3;
  /// Whether each ring's node 0 hosts an RMI client (and the gateway rides
  /// on a dedicated node; with false, server 0's node doubles as gateway).
  bool with_client = true;

  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  std::uint64_t seed = 1;

  /// Per-ring LAN and Totem parameters (applied to every ring).
  net::NetworkConfig net;
  totem::TotemConfig totem;

  /// One-way inter-ring latency; doubles as the coordinator's conservative
  /// window floor, so larger values mean fewer, fatter parallel epochs.
  Micros link_latency_us = 500;

  /// Island worker threads (1 = serial; same schedule either way).
  unsigned threads = 1;

  bool oracle = true;
};

class Archipelago {
 public:
  static constexpr ConnectionId kInterRingConn{500};

  /// Called (on the receiving ring's worker) for every stamped inter-ring
  /// delivery, once per live replica: (ring, replica, timestamp, body).
  using StampedFn =
      std::function<void(std::size_t ring, std::uint32_t replica, Micros ts, const Bytes& body)>;

  explicit Archipelago(ArchipelagoConfig cfg)
      : cfg_(std::move(cfg)),
        coord_(cfg_.link_latency_us),
        link_(coord_, net::IslandLinkConfig{cfg_.link_latency_us}) {
    assert(cfg_.rings >= 1);
    deliveries_.assign(cfg_.rings, 0);
    xseq_.assign(cfg_.rings * cfg_.rings, 0);
    crashed_.assign(cfg_.rings, std::vector<bool>(cfg_.servers, false));
    messengers_.resize(cfg_.rings);

    for (std::size_t r = 0; r < cfg_.rings; ++r) {
      TestbedConfig tc;
      tc.servers = cfg_.servers;
      tc.with_client = cfg_.with_client;
      tc.style = cfg_.style;
      tc.seed = cfg_.seed ^ (0x9E3779B97F4A7C15ull * (r + 1));
      tc.net = cfg_.net;
      tc.totem = cfg_.totem;
      tc.oracle = cfg_.oracle;
      tc.server_group = group_of(r);
      tc.client_group = GroupId{static_cast<std::uint32_t>(200 + r)};
      rings_.push_back(std::make_unique<Testbed>(std::move(tc)));
      islands_.push_back(coord_.add_island(rings_.back()->sim()));
    }
    coord_.set_threads(cfg_.threads);

    for (std::size_t r = 0; r < cfg_.rings; ++r) {
      link_.attach(islands_[r], rings_[r]->sim(),
                   [this, r](sim::IslandId src, Bytes frame) {
                     ingress(r, src, std::move(frame));
                   });
      wire_gateway(r);
      messengers_[r].resize(cfg_.servers);
      for (std::uint32_t s = 0; s < cfg_.servers; ++s) rebuild_messenger(r, s);
    }
  }

  /// Install the inter-ring delivery handler.  Setup-phase only (before
  /// start()): the handler is invoked from ring workers and must be safe
  /// for concurrent calls from different rings (ring-local or per-ring
  /// state only).
  void on_stamped(StampedFn fn) {
    assert(!started_);
    handler_ = std::move(fn);
  }

  /// Boot every ring and run `settle_us` of virtual time under the
  /// coordinator so rings form and group views install.
  void start(Micros settle_us = 400'000) {
    started_ = true;
    for (auto& tb : rings_) tb->start(0);
    coord_.run_for(settle_us);
  }

  void run_for(Micros d) { coord_.run_for(d); }
  void run_until(Micros t) { coord_.run_until(t); }
  [[nodiscard]] Micros now() const { return coord_.now(); }

  /// Schedule "every live replica of `src` performs the same stamped send
  /// to ring `dst`" at source-ring time `at`.  The per-(src,dst) sequence
  /// number is assigned when the broadcast executes, in source-ring event
  /// order, so it is identical for every worker count.  Call during setup
  /// or from ring `src`'s own execution context (never from another ring's
  /// callback — scheduling onto a foreign island's heap mid-run is a race).
  void stamped_broadcast_at(Micros at, std::size_t src, std::size_t dst, Bytes body) {
    assert(src < cfg_.rings && dst < cfg_.rings && src != dst);
    rings_[src]->sim().at(at, [this, src, dst, body = std::move(body)]() mutable {
      broadcast_now(src, dst, std::move(body));
    });
  }

  // --- Fault injection (wrappers that keep the messenger layer wired) ---

  void crash_server(std::size_t r, std::uint32_t s) {
    rings_[r]->crash_server(s);
    crashed_[r][s] = true;
  }

  void restart_server(std::size_t r, std::uint32_t s) {
    rings_[r]->restart_server(s);
    // The restart rebuilt the node's GCS endpoint and replica manager; the
    // messenger holds references into both and must be rebuilt with them.
    rebuild_messenger(r, s);
    // Without a client, server 0's node is also the ring's gateway — its
    // fresh endpoint needs the remote-group subscriptions again.
    if (rings_[r]->server_node(s) == 0) wire_gateway(r);
    crashed_[r][s] = false;
  }

  // --- Accessors ---

  [[nodiscard]] std::size_t ring_count() const { return rings_.size(); }
  Testbed& ring(std::size_t r) { return *rings_[r]; }
  sim::IslandCoordinator& coordinator() { return coord_; }
  net::InterIslandLink& link() { return link_; }
  [[nodiscard]] sim::IslandId island_of(std::size_t r) const { return islands_[r]; }

  /// Ring r's (globally unique) server group id.
  [[nodiscard]] static GroupId group_of(std::size_t r) {
    return GroupId{static_cast<std::uint32_t>(100 + r)};
  }

  /// Ring r's cross-ring stamped-message group.  Disjoint from group_of:
  /// the ReplicaManagers subscribe to the server group and would execute a
  /// stamped message delivered there as a garbage RMI request (and route
  /// the spurious reply back across the link).
  [[nodiscard]] static GroupId xgroup_of(std::size_t r) {
    return GroupId{static_cast<std::uint32_t>(300 + r)};
  }

  /// Stamped inter-ring deliveries observed by ring r's replicas (one count
  /// per replica per message).  Read between runs.
  [[nodiscard]] std::uint64_t stamped_deliveries(std::size_t r) const {
    return deliveries_[r];
  }

  /// Per-island recorders in island order, for the deterministic obs merge.
  [[nodiscard]] std::vector<obs::Recorder*> recorders() {
    std::vector<obs::Recorder*> out;
    out.reserve(rings_.size());
    for (auto& tb : rings_) out.push_back(&tb->recorder());
    return out;
  }

 private:
  /// Dedup-stream tag for messages originated by ring r: one stream per
  /// source ring, shared by all of that ring's replicas so GCS duplicate
  /// suppression collapses their copies.
  [[nodiscard]] static ThreadId tag_of(std::size_t r) {
    return ThreadId{static_cast<std::uint32_t>(7000 + r)};
  }

  /// Subscribe ring r's gateway endpoint (node 0) to every remote ring's
  /// cross-ring group: a locally delivered message addressed to ring j
  /// leaves over the link exactly once (GCS dedup upstream guarantees
  /// single delivery per endpoint).
  void wire_gateway(std::size_t r) {
    for (std::size_t j = 0; j < cfg_.rings; ++j) {
      if (j == r) continue;
      rings_[r]->gcs_of(0).subscribe(xgroup_of(j), [this, r, j](const gcs::Message& m) {
        ++rings_[r]->recorder().counter("xring.egress");
        link_.send(islands_[r], islands_[j], gcs::GcsEndpoint::encode(m));
      });
    }
  }

  /// Link delivery on ring r's worker: re-originate the frame on ring r's
  /// Totem ring so all of its replicas receive it in agreed order.
  void ingress(std::size_t r, sim::IslandId /*src*/, Bytes frame) {
    ++rings_[r]->recorder().counter("xring.ingress");
    rings_[r]->gcs_of(0).send(gcs::GcsEndpoint::decode(frame));
  }

  void broadcast_now(std::size_t src, std::size_t dst, Bytes body) {
    const MsgSeqNum seq = ++xseq_[src * cfg_.rings + dst];
    for (std::uint32_t s = 0; s < cfg_.servers; ++s) {
      if (crashed_[src][s]) continue;
      messengers_[src][s]->stamp_and_send(xgroup_of(dst), kInterRingConn, seq, body);
    }
  }

  void rebuild_messenger(std::size_t r, std::uint32_t s) {
    Testbed& tb = *rings_[r];
    const auto node = tb.server_node(s);
    messengers_[r][s] = std::make_unique<ccs::CausalMessenger>(
        tb.gcs_of(node), tb.server(s).time_service(), xgroup_of(r), tag_of(r));
    messengers_[r][s]->subscribe(
        kInterRingConn, [this, r, s](const gcs::Message&, Micros ts, const Bytes& body) {
          ++deliveries_[r];
          ++rings_[r]->recorder().counter("xring.stamped_delivered");
          if (handler_) handler_(r, s, ts, body);
        });
  }

  ArchipelagoConfig cfg_;
  sim::IslandCoordinator coord_;
  net::InterIslandLink link_;
  std::vector<std::unique_ptr<Testbed>> rings_;
  std::vector<sim::IslandId> islands_;
  std::vector<std::vector<std::unique_ptr<ccs::CausalMessenger>>> messengers_;
  std::vector<std::vector<bool>> crashed_;
  std::vector<std::uint64_t> deliveries_;   // per-ring, each written by its ring's worker
  std::vector<MsgSeqNum> xseq_;             // per (src,dst), written by src's worker
  StampedFn handler_;
  bool started_ = false;
};

}  // namespace cts::app
