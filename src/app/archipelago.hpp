// Archipelago: N Totem rings, each a parallel simulation island, joined by
// causally-stamped inter-ring messaging — ROADMAP items 1 and 4 meeting in
// one rig.
//
// Each ring is a full Testbed (its own Simulator, LAN, Totem ring, server
// group, drifting clocks, Recorder/oracle) registered as an island with an
// IslandCoordinator; the only coupling between rings is the InterIslandLink,
// whose latency floor is exactly the coordinator's conservative window — so
// the rings execute whole barrier windows in parallel and the merged
// schedule is byte-identical to the serial one (doc/PARALLEL.md).
//
// Inter-ring traffic follows the paper's Section 5 sketch end to end:
//
//   sender ring i:  every live replica performs the same CausalMessenger
//                   stamp_and_send (one CCS round reads the group clock,
//                   the reading is prepended to the payload); GCS duplicate
//                   suppression collapses the copies to one wire message;
//   gateway:        node 0 of ring i subscribes to every remote ring's
//                   cross-ring group, so the single delivered copy is
//                   encoded and shipped over the InterIslandLink;
//   receiver ring j: the gateway re-originates the message on ring j's
//                   Totem ring (agreed order among ring j's replicas);
//                   every replica's CausalMessenger raises the causal floor
//                   to the carried timestamp before the app callback — all
//                   of ring j's subsequent clock readings exceed it.
//
// Naming (groups, stamp streams, connection ids, per-ring seeds) comes from
// the ShardMap (app/topology.hpp) — the topology layer this rig consumes
// instead of hand-building per-ring constants.  The cross-ring group is
// deliberately disjoint from the server group: the ReplicaManagers
// subscribe to the server group and treat every kUserRequest there as an
// RMI invocation, so stamped messages addressed to the server group would
// be "executed" as garbage requests and answered with spurious replies
// routed back across the link.  Link frames are typed (LinkFrameKind): the
// stamped cross-group path shares the wire with the gateway router's
// forwarded requests and replies (app/gateway.hpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "app/gateway.hpp"
#include "app/testbed.hpp"
#include "app/topology.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "cts/multigroup.hpp"
#include "net/island_link.hpp"
#include "sim/parallel.hpp"

namespace cts::app {

struct ArchipelagoConfig {
  /// Deployment shape: ring count, replicas per ring, client nodes.  When
  /// with_client is false, server 0's node doubles as the ring's gateway
  /// (and there is no RMI client, so no gateway router either).
  TopologySpec topo;

  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  std::uint64_t seed = 1;

  /// Per-ring application factory (nullptr ring entries fall back to the
  /// paper's time server).  Receives the deployment's ShardMap so sharded
  /// apps (KvStoreApp, SessionManagerApp) can wire their handoff streams.
  std::function<replication::ReplicaFactory(const ShardMap&, std::size_t ring)> app;

  /// Per-ring LAN and Totem parameters (applied to every ring).
  net::NetworkConfig net;
  totem::TotemConfig totem;

  /// One-way inter-ring latency; doubles as the coordinator's conservative
  /// window floor, so larger values mean fewer, fatter parallel epochs.
  Micros link_latency_us = 500;

  /// Island worker threads (1 = serial; same schedule either way).
  unsigned threads = 1;

  bool oracle = true;
};

class Archipelago {
 public:
  static constexpr ConnectionId kInterRingConn = ShardMap::kPingConn;

  /// Called (on the receiving ring's worker) for every stamped inter-ring
  /// delivery, once per live replica: (ring, replica, timestamp, body).
  using StampedFn =
      std::function<void(std::size_t ring, std::uint32_t replica, Micros ts, const Bytes& body)>;

  explicit Archipelago(ArchipelagoConfig cfg)
      : cfg_(std::move(cfg)),
        map_(cfg_.topo),
        coord_(cfg_.link_latency_us),
        link_(coord_, net::IslandLinkConfig{cfg_.link_latency_us}) {
    const std::size_t rings = map_.rings();
    const std::size_t servers = map_.servers();
    deliveries_.assign(rings, 0);
    xseq_.assign(rings * rings, 0);
    crashed_.assign(rings, std::vector<bool>(servers, false));
    messengers_.resize(rings);
    routers_.resize(rings);

    for (std::size_t r = 0; r < rings; ++r) {
      TestbedConfig tc;
      tc.servers = servers;
      tc.with_client = cfg_.topo.with_client;
      tc.style = cfg_.style;
      tc.seed = ShardMap::ring_seed(cfg_.seed, r);
      tc.net = cfg_.net;
      tc.totem = cfg_.totem;
      tc.oracle = cfg_.oracle;
      tc.server_group = map_.server_group(r);
      tc.client_group = map_.client_group(r);
      if (cfg_.app) tc.factory = cfg_.app(map_, r);
      rings_.push_back(std::make_unique<Testbed>(std::move(tc)));
      islands_.push_back(coord_.add_island(rings_.back()->sim()));
      // Resolve the ring's xring.* counter handles once: each ring's
      // Recorder outlives every restart, and the link ingress/egress paths
      // run per frame.
      obs::Recorder& rr = rings_.back()->recorder();
      xring_.push_back({&rr.counter("xring.egress"), &rr.counter("xring.ingress"),
                        &rr.counter("xring.frames_rejected"),
                        &rr.counter("xring.stamped_delivered")});
    }
    coord_.set_threads(cfg_.threads);

    for (std::size_t r = 0; r < rings; ++r) {
      link_.attach(islands_[r], rings_[r]->sim(),
                   [this, r](sim::IslandId src, Bytes frame) {
                     ingress(r, src, std::move(frame));
                   });
      wire_gateway(r);
      if (cfg_.topo.with_client) {
        routers_[r] = std::make_unique<GatewayRouter>(
            map_, r, rings_[r]->client(), rings_[r]->scope_of(0), rings_[r]->recorder(),
            [this, r](std::size_t dst, Bytes frame) {
              link_.send(islands_[r], islands_[dst], std::move(frame));
            });
      }
      messengers_[r].resize(servers);
      for (std::uint32_t s = 0; s < servers; ++s) rebuild_messenger(r, s);
    }
  }

  /// Install the inter-ring delivery handler.  Setup-phase only (before
  /// start()): the handler is invoked from ring workers and must be safe
  /// for concurrent calls from different rings (ring-local or per-ring
  /// state only).
  void on_stamped(StampedFn fn) {
    assert(!started_);
    handler_ = std::move(fn);
  }

  /// Boot every ring and run `settle_us` of virtual time under the
  /// coordinator so rings form and group views install.
  void start(Micros settle_us = 400'000) {
    started_ = true;
    for (auto& tb : rings_) tb->start(0);
    coord_.run_for(settle_us);
  }

  void run_for(Micros d) { coord_.run_for(d); }
  void run_until(Micros t) { coord_.run_until(t); }
  [[nodiscard]] Micros now() const { return coord_.now(); }

  /// Schedule "every live replica of `src` performs the same stamped send
  /// to ring `dst`" at source-ring time `at`.  The per-(src,dst) sequence
  /// number is assigned when the broadcast executes, in source-ring event
  /// order, so it is identical for every worker count.  Call during setup
  /// or from ring `src`'s own execution context (never from another ring's
  /// callback — scheduling onto a foreign island's heap mid-run is a race).
  void stamped_broadcast_at(Micros at, std::size_t src, std::size_t dst, Bytes body) {
    assert(src < map_.rings() && dst < map_.rings() && src != dst);
    rings_[src]->sim().at(at, [this, src, dst, body = std::move(body)]() mutable {
      broadcast_now(src, dst, std::move(body));
    });
  }

  // --- Fault injection (wrappers that keep the messenger layer wired) ---

  void crash_server(std::size_t r, std::uint32_t s) {
    rings_[r]->crash_server(s);
    crashed_[r][s] = true;
  }

  void restart_server(std::size_t r, std::uint32_t s) {
    rings_[r]->restart_server(s);
    // The restart rebuilt the node's GCS endpoint and replica manager; the
    // messenger holds references into both and must be rebuilt with them.
    rebuild_messenger(r, s);
    // Without a client, server 0's node is also the ring's gateway — its
    // fresh endpoint needs the remote-group subscriptions again.
    if (rings_[r]->server_node(s) == 0) wire_gateway(r);
    crashed_[r][s] = false;
  }

  // --- Accessors ---

  [[nodiscard]] std::size_t ring_count() const { return rings_.size(); }
  Testbed& ring(std::size_t r) { return *rings_[r]; }
  sim::IslandCoordinator& coordinator() { return coord_; }
  net::InterIslandLink& link() { return link_; }
  [[nodiscard]] sim::IslandId island_of(std::size_t r) const { return islands_[r]; }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }

  /// Ring r's gateway router (with_client topologies only).
  GatewayRouter& router(std::size_t r) { return *routers_[r]; }

  /// Ring r's (globally unique) server group id.
  [[nodiscard]] GroupId group_of(std::size_t r) const { return map_.server_group(r); }

  /// Ring r's cross-ring stamped-message group.  Disjoint from group_of:
  /// the ReplicaManagers subscribe to the server group and would execute a
  /// stamped message delivered there as a garbage RMI request (and route
  /// the spurious reply back across the link).
  [[nodiscard]] GroupId xgroup_of(std::size_t r) const { return map_.cross_group(r); }

  /// Stamped inter-ring deliveries observed by ring r's replicas (one count
  /// per replica per message).  Read between runs.
  [[nodiscard]] std::uint64_t stamped_deliveries(std::size_t r) const {
    return deliveries_[r];
  }

  /// Per-island recorders in island order, for the deterministic obs merge.
  [[nodiscard]] std::vector<obs::Recorder*> recorders() {
    std::vector<obs::Recorder*> out;
    out.reserve(rings_.size());
    for (auto& tb : rings_) out.push_back(&tb->recorder());
    return out;
  }

 private:
  /// Subscribe ring r's gateway endpoint (node 0) to every remote ring's
  /// cross-ring group: a locally delivered message addressed to ring j
  /// leaves over the link exactly once (GCS dedup upstream guarantees
  /// single delivery per endpoint).
  void wire_gateway(std::size_t r) {
    for (std::size_t j = 0; j < map_.rings(); ++j) {
      if (j == r) continue;
      rings_[r]->gcs_of(0).subscribe(xgroup_of(j), [this, r, j](const gcs::Message& m) {
        ++*xring_[r].egress;
        link_.send(islands_[r], islands_[j], frame_xgroup(gcs::GcsEndpoint::encode(m)));
      });
    }
  }

  /// Link delivery on ring r's worker.  Dispatch on the frame's kind byte:
  /// stamped cross-group messages are re-originated on ring r's Totem ring
  /// (agreed order among its replicas); gateway forwards and replies go to
  /// ring r's router.  Malformed frames are counted and dropped, like any
  /// malformed packet.
  void ingress(std::size_t r, sim::IslandId /*src*/, Bytes frame) {
    ++*xring_[r].ingress;
    try {
      BytesReader rd(frame);
      switch (static_cast<LinkFrameKind>(rd.u8())) {
        case LinkFrameKind::kXGroup: {
          const std::span<const std::uint8_t> rest{frame.data() + 1, frame.size() - 1};
          rings_[r]->gcs_of(0).send(gcs::GcsEndpoint::decode(rest));
          return;
        }
        case LinkFrameKind::kFwdRequest: {
          const std::uint32_t origin = rd.u32();
          const std::uint64_t id = rd.u64();
          if (routers_[r]) routers_[r]->on_fwd_request(origin, id, rd.bytes());
          return;
        }
        case LinkFrameKind::kFwdReply: {
          const std::uint64_t id = rd.u64();
          if (routers_[r]) routers_[r]->on_fwd_reply(id, rd.bytes());
          return;
        }
      }
      throw CodecError("unknown link frame kind");
    } catch (const CodecError&) {
      ++*xring_[r].frames_rejected;
    }
  }

  void broadcast_now(std::size_t src, std::size_t dst, Bytes body) {
    const MsgSeqNum seq = ++xseq_[src * map_.rings() + dst];
    for (std::uint32_t s = 0; s < map_.servers(); ++s) {
      if (crashed_[src][s]) continue;
      messengers_[src][s]->stamp_and_send(xgroup_of(dst), kInterRingConn, seq, body);
    }
  }

  void rebuild_messenger(std::size_t r, std::uint32_t s) {
    Testbed& tb = *rings_[r];
    const auto node = tb.server_node(s);
    messengers_[r][s] = std::make_unique<ccs::CausalMessenger>(
        tb.gcs_of(node), tb.server(s).time_service(), xgroup_of(r), map_.ping_stream(r));
    messengers_[r][s]->subscribe(
        kInterRingConn, [this, r, s](const gcs::Message&, Micros ts, const Bytes& body) {
          ++deliveries_[r];
          ++*xring_[r].stamped_delivered;
          if (handler_) handler_(r, s, ts, body);
        });
  }

  ArchipelagoConfig cfg_;
  ShardMap map_;
  sim::IslandCoordinator coord_;
  net::InterIslandLink link_;
  /// Per-ring xring.* counter handles, resolved once at construction
  /// (stable for the ring Recorder's lifetime — see MetricsRegistry).
  struct XRingCounters {
    obs::Counter* egress;
    obs::Counter* ingress;
    obs::Counter* frames_rejected;
    obs::Counter* stamped_delivered;
  };

  std::vector<std::unique_ptr<Testbed>> rings_;
  std::vector<XRingCounters> xring_;
  std::vector<sim::IslandId> islands_;
  std::vector<std::unique_ptr<GatewayRouter>> routers_;
  std::vector<std::vector<std::unique_ptr<ccs::CausalMessenger>>> messengers_;
  std::vector<std::vector<bool>> crashed_;
  std::vector<std::uint64_t> deliveries_;   // per-ring, each written by its ring's worker
  std::vector<MsgSeqNum> xseq_;             // per (src,dst), written by src's worker
  StampedFn handler_;
  bool started_ = false;
};

}  // namespace cts::app
