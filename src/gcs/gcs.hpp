// Group communication abstraction over Totem.
//
// The paper's replication infrastructure addresses *groups of replicas*,
// not hosts.  Every protocol message carries the common fault-tolerant
// header of Section 3.1: message type, source group id, destination group
// id, connection id, and message sequence number.  (src_grp, dst_grp,
// conn_id) name a connection; msg_seq_num names a message within it — for
// CCS messages the field carries the CCS round number.
//
// This layer provides, per simulated host:
//   * group membership announced through the totally-ordered stream, so all
//     hosts observe the same sequence of group views interleaved
//     identically with user traffic;
//   * delivery of group-addressed messages to local subscribers, in Totem's
//     agreed total order;
//   * receiver-side duplicate detection: with active replication, every
//     replica of a group sends the same logical message (same connection,
//     tag, sequence number); only the first copy ordered by Totem is
//     delivered ("effective duplicate detection mechanism", paper §4.3);
//   * sender-side duplicate suppression: when a copy of a message this host
//     still has queued is delivered, the queued copy is cancelled before it
//     ever reaches the wire.  This is why, in the paper's measurement, the
//     three server replicas put only 1 / 9,977 / 22 CCS messages on the
//     network for 10,000 rounds instead of 10,000 each.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "common/unique_fn.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::gcs {

/// Message types carried over the group communication system.
enum class MsgType : std::uint8_t {
  kUserRequest = 1,  // remote method invocation
  kUserReply = 2,    // reply to an invocation
  kCcs = 3,          // Consistent Clock Synchronization control message
  kGetState = 4,     // state-transfer synchronization point (checkpoint)
  kState = 5,        // checkpoint payload for a recovering replica
  kGroupJoin = 6,    // replica joined a group (control)
  kGroupLeave = 7,   // replica left a group (control)
  kFragment = 8,     // one fragment of a large message (transparent)
};

[[nodiscard]] const char* to_string(MsgType t);

/// The common fault-tolerant protocol message header (paper Section 3.1).
struct MessageHeader {
  MsgType type = MsgType::kUserRequest;
  GroupId src_grp;
  GroupId dst_grp;
  ConnectionId conn;
  /// Disambiguates streams within a connection; CCS messages put the
  /// sending thread identifier here so duplicate detection is per thread.
  ThreadId tag;
  /// Sequence number within (conn, type, tag); the CCS round number for
  /// kCcs messages.
  MsgSeqNum seq = 0;
  /// Which replica produced this copy (not part of the logical identity).
  ReplicaId sender_replica;
  NodeId sender_node;
};

struct Message {
  MessageHeader hdr;
  /// Delivered messages hold a zero-copy slice of the (batched) packet they
  /// arrived in; locally originated ones wrap their own buffer (Bytes
  /// converts implicitly).  Mutating consumers stage into a Bytes and
  /// re-assign — the view itself is immutable.
  SharedBytes payload;
};

/// A member of a group: a replica hosted on a node.
struct GroupMember {
  NodeId node;
  ReplicaId replica;
  friend auto operator<=>(const GroupMember&, const GroupMember&) = default;
};

/// A group view: the membership as observed at a point in the totally
/// ordered stream.
struct GroupView {
  GroupId group;
  ViewNum view_num = 0;
  std::vector<GroupMember> members;  // sorted

  [[nodiscard]] bool contains(ReplicaId r) const {
    for (const auto& m : members) {
      if (m.replica == r) return true;
    }
    return false;
  }
};

/// Wire-level statistics per message type (counts of copies that actually
/// reached the network, after sender-side suppression).
struct GcsStats {
  std::uint64_t sent_attempted[16]{};
  std::uint64_t sent_cancelled[16]{};
  std::uint64_t delivered[16]{};
  std::uint64_t duplicates_dropped[16]{};
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_received = 0;

  [[nodiscard]] std::uint64_t on_wire(MsgType t) const {
    const auto i = static_cast<std::size_t>(t);
    return sent_attempted[i] - sent_cancelled[i];
  }
};

/// One GCS endpoint per simulated host, layered on that host's TotemNode.
class GcsEndpoint {
 public:
  /// Delivery callbacks are move-only (UniqueFn): facades above GCS
  /// (CausalMessenger, the gateway router, handoff adopters) park
  /// single-owner state — pending completions, coroutine guards — inside
  /// their subscription closures, and the endpoint only ever moves and
  /// invokes them.
  using DeliverFn = UniqueFn<void(const Message&)>;
  using ViewFn = std::function<void(const GroupView&)>;

  GcsEndpoint(sim::Simulator& sim, totem::TotemNode& totem);

  GcsEndpoint(const GcsEndpoint&) = delete;
  GcsEndpoint& operator=(const GcsEndpoint&) = delete;

  /// Announce (via the ordered stream) that local replica `r` joined group
  /// `g`.  Joins are idempotent; every host re-announces its local members
  /// after a Totem membership change so late joiners converge.
  void join_group(GroupId g, ReplicaId r);

  /// Announce that local replica `r` left group `g`.
  void leave_group(GroupId g, ReplicaId r);

  /// Register the local delivery callback for messages addressed to `g`.
  /// Multiple subscribers per group are allowed (e.g. several local
  /// replicas of different groups listening to a connection endpoint).
  void subscribe(GroupId g, DeliverFn fn);

  /// Register a callback for membership changes of group `g`.
  void subscribe_view(GroupId g, ViewFn fn);

  /// Multicast `m` with agreed total order and duplicate suppression.
  /// Returns a handle usable with cancel() while the message is queued.
  /// Payloads larger than max_fragment_payload() are transparently split
  /// into kFragment messages and reassembled before delivery (large
  /// checkpoints do not fit one Ethernet frame).
  std::uint64_t send(Message m);

  /// Largest payload sent as a single packet (default ~one MTU).
  [[nodiscard]] std::size_t max_fragment_payload() const { return max_fragment_payload_; }
  void set_max_fragment_payload(std::size_t bytes) { max_fragment_payload_ = bytes; }

  /// Cancel a queued message (returns false if it already hit the wire).
  bool cancel(std::uint64_t handle);

  /// Current membership of `g` as observed by this host.
  [[nodiscard]] const GroupView& view(GroupId g);

  [[nodiscard]] const GcsStats& stats() const { return stats_; }
  [[nodiscard]] totem::TotemNode& totem() { return totem_; }
  [[nodiscard]] NodeId node_id() const { return totem_.id(); }

  /// The host's lifecycle scope (owned by the underlying TotemNode).  GCS
  /// itself schedules nothing — delivery and view-change callbacks run
  /// synchronously from Totem delivery, which stops the instant the node
  /// crashes — but the layers above (replication, CTS, ORB) reach their
  /// node's scope through this accessor and must schedule node-owned work
  /// there, never directly on the simulator.
  [[nodiscard]] sim::TaskScope& scope() { return totem_.scope(); }

  /// Attach (or detach, with nullptr) an observability recorder.  Also
  /// wires the underlying Totem node.
  void set_recorder(obs::Recorder* rec);
  /// The attached recorder (nullptr when observability is off).  Facades
  /// built on top of the endpoint (CausalMessenger) reach the ordering
  /// oracle through it.
  [[nodiscard]] obs::Recorder* recorder() const { return rec_; }

  /// Serialize / parse the header+payload wire format (exposed for tests).
  /// decode() takes a span so both Bytes and zero-copy SharedBytes views
  /// parse without materializing a copy first; its payload is a fresh
  /// buffer.  decode_view() parses out of a shared packet and returns a
  /// payload that aliases it — the delivery path, where one batched Totem
  /// frame fans out to N messages with zero per-message copies.
  static Bytes encode(const Message& m);
  static Message decode(std::span<const std::uint8_t> b);
  static Message decode_view(const SharedBytes& packet);

 private:
  // Packed stream identity (conn, type, tag): two u64 halves whose
  // field-wise comparison reproduces the tuple's lexicographic order —
  // conn and type occupy disjoint bit ranges of `hi`, so numeric order on
  // `hi` IS (conn, type) order.  Two word compares instead of three field
  // compares on the per-delivery dedup path.
  struct StreamKey {
    std::uint64_t hi;  // (conn << 8) | type
    std::uint64_t lo;  // tag
    friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
  };
  static constexpr StreamKey stream_key(std::uint32_t conn, std::uint8_t type,
                                        std::uint32_t tag) {
    return StreamKey{(static_cast<std::uint64_t>(conn) << 8) | type, tag};
  }

  // Full logical message identity (conn, type, tag, seq).
  struct MsgIdKey {
    StreamKey stream;
    MsgSeqNum seq;
    friend auto operator<=>(const MsgIdKey&, const MsgIdKey&) = default;
  };

  // Reassembly identity (sender node, conn, type, tag, seq) packed the same
  // way: lexicographic (a, b, seq) == (node, conn, type, tag, seq).
  struct ReasmKey {
    std::uint64_t a;  // (node << 32) | conn
    std::uint64_t b;  // (type << 32) | tag
    MsgSeqNum seq;
    friend auto operator<=>(const ReasmKey&, const ReasmKey&) = default;
  };

  void on_totem_deliver(NodeId sender, const SharedBytes& data);
  void process_message(Message m);
  void on_fragment(const Message& frag);
  void on_totem_view(const totem::View& v);
  void apply_group_join(const Message& m);
  void apply_group_leave(const Message& m);
  void bump_view(GroupId g);

  sim::Simulator& sim_;
  totem::TotemNode& totem_;

  // Flat sorted-vector maps (common/flat_map.hpp): same iteration order as
  // the std::map instances they replace, binary-search lookup without node
  // chasing.  Insert/erase invalidates references — the delivery paths
  // re-find entries after every callback that could mutate these maps.
  FlatMap<GroupId, GroupView> views_;
  FlatMap<GroupId, std::vector<DeliverFn>> subscribers_;
  FlatMap<GroupId, std::vector<ViewFn>> view_subscribers_;
  std::vector<std::pair<GroupId, ReplicaId>> local_members_;

  // Receiver-side duplicate detection: highest seq delivered per stream.
  FlatMap<StreamKey, MsgSeqNum> last_delivered_;

  // Sender-side suppression: queued local copies by logical identity.
  // Large messages queue several totem fragments under one identity.
  struct PendingSend {
    std::uint64_t gcs_handle;
    std::vector<std::uint64_t> totem_handles;
    MsgType type;
  };
  FlatMap<MsgIdKey, PendingSend> pending_;
  std::uint64_t next_handle_ = 1;
  std::size_t max_fragment_payload_ = 1400;

  // Fragment reassembly, keyed by the logical identity of the original
  // message (sender node disambiguates concurrent active-replica copies).
  struct Reassembly {
    std::uint32_t count = 0;
    std::uint32_t next = 0;
    MsgType original_type = MsgType::kUserRequest;
    Bytes data;
  };
  FlatMap<ReasmKey, Reassembly> reassembly_;

  GcsStats stats_;
  obs::Recorder* rec_ = nullptr;
  obs::OrderingOracle* orc_ = nullptr;  // cached from rec_ in set_recorder()
  // Hot-path counters resolved once in set_recorder(); per-type delivery
  // counts are indexed by MsgType so delivery stays map-lookup free.
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_duplicates_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_view_changes_ = nullptr;
  obs::Counter* c_delivered_by_type_[16] = {};
};

}  // namespace cts::gcs
