#include "gcs/gcs.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cts::gcs {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kUserRequest:
      return "UserRequest";
    case MsgType::kUserReply:
      return "UserReply";
    case MsgType::kCcs:
      return "CCS";
    case MsgType::kGetState:
      return "GetState";
    case MsgType::kState:
      return "State";
    case MsgType::kGroupJoin:
      return "GroupJoin";
    case MsgType::kGroupLeave:
      return "GroupLeave";
    case MsgType::kFragment:
      return "Fragment";
  }
  return "?";
}

namespace {
bool is_control(MsgType t) { return t == MsgType::kGroupJoin || t == MsgType::kGroupLeave; }
}  // namespace

GcsEndpoint::GcsEndpoint(sim::Simulator& sim, totem::TotemNode& totem)
    : sim_(sim), totem_(totem) {
  totem_.set_deliver_handler(
      [this](NodeId sender, const SharedBytes& data) { on_totem_deliver(sender, data); });
  totem_.set_view_handler([this](const totem::View& v) { on_totem_view(v); });
}

// --- Wire format ------------------------------------------------------------

Bytes GcsEndpoint::encode(const Message& m) {
  BytesWriter w;
  w.u8(static_cast<std::uint8_t>(m.hdr.type));
  w.u32(m.hdr.src_grp.value);
  w.u32(m.hdr.dst_grp.value);
  w.u32(m.hdr.conn.value);
  w.u32(m.hdr.tag.value);
  w.u64(m.hdr.seq);
  w.u32(m.hdr.sender_replica.value);
  w.u32(m.hdr.sender_node.value);
  w.bytes(m.payload);
  return std::move(w).take();
}

namespace {
MessageHeader decode_header(BytesReader& r) {
  MessageHeader h;
  h.type = static_cast<MsgType>(r.u8());
  h.src_grp = GroupId{r.u32()};
  h.dst_grp = GroupId{r.u32()};
  h.conn = ConnectionId{r.u32()};
  h.tag = ThreadId{r.u32()};
  h.seq = r.u64();
  h.sender_replica = ReplicaId{r.u32()};
  h.sender_node = NodeId{r.u32()};
  return h;
}
}  // namespace

Message GcsEndpoint::decode(std::span<const std::uint8_t> b) {
  BytesReader r(b);
  Message m;
  m.hdr = decode_header(r);
  m.payload = r.bytes();
  if (!r.done()) throw CodecError("trailing garbage after GCS message");
  return m;
}

Message GcsEndpoint::decode_view(const SharedBytes& packet) {
  BytesReader r(packet.span());
  Message m;
  m.hdr = decode_header(r);
  // Zero copy: the payload aliases the packet (which itself aliases the
  // batched Totem frame it arrived in).
  const std::uint32_t len = r.u32();
  const std::size_t off = r.pos();
  r.skip(len);
  if (!r.done()) throw CodecError("trailing garbage after GCS message");
  m.payload = packet.slice(off, len);
  return m;
}

// --- Group membership ----------------------------------------------------------

void GcsEndpoint::join_group(GroupId g, ReplicaId r) {
  local_members_.emplace_back(g, r);
  Message m;
  m.hdr.type = MsgType::kGroupJoin;
  m.hdr.src_grp = g;
  m.hdr.dst_grp = g;
  m.hdr.sender_replica = r;
  m.hdr.sender_node = totem_.id();
  totem_.multicast(encode(m));
}

void GcsEndpoint::leave_group(GroupId g, ReplicaId r) {
  std::erase(local_members_, std::make_pair(g, r));
  Message m;
  m.hdr.type = MsgType::kGroupLeave;
  m.hdr.src_grp = g;
  m.hdr.dst_grp = g;
  m.hdr.sender_replica = r;
  m.hdr.sender_node = totem_.id();
  totem_.multicast(encode(m));
}

void GcsEndpoint::subscribe(GroupId g, DeliverFn fn) {
  subscribers_[g].push_back(std::move(fn));
}

void GcsEndpoint::subscribe_view(GroupId g, ViewFn fn) {
  view_subscribers_[g].push_back(std::move(fn));
}

const GroupView& GcsEndpoint::view(GroupId g) {
  auto& v = views_[g];
  v.group = g;
  return v;
}

void GcsEndpoint::bump_view(GroupId g) {
  auto& v = views_[g];
  v.group = g;
  ++v.view_num;
  if (c_view_changes_) ++*c_view_changes_;
  if (rec_) {
    rec_->event(obs::EventKind::kGcsViewChange, totem_.id(), ReplicaId{},
                static_cast<std::int64_t>(g.value), static_cast<std::int64_t>(v.members.size()));
  }
  // Callbacks get a snapshot of the view, and the subscriber list is
  // re-found on every iteration: a callback may touch views_ (dangling the
  // `v` reference above) or register new view subscribers (growing /
  // reallocating the vector and the map) — FlatMap references do not
  // survive either.
  const GroupView snapshot = v;
  for (std::size_t i = 0;; ++i) {
    auto it = view_subscribers_.find(g);
    if (it == view_subscribers_.end() || i >= it->second.size()) break;
    it->second[i](snapshot);
  }
}

void GcsEndpoint::apply_group_join(const Message& m) {
  auto& v = views_[m.hdr.dst_grp];
  v.group = m.hdr.dst_grp;
  const GroupMember member{m.hdr.sender_node, m.hdr.sender_replica};
  auto it = std::lower_bound(v.members.begin(), v.members.end(), member);
  if (it != v.members.end() && *it == member) return;  // idempotent re-announce
  v.members.insert(it, member);
  bump_view(m.hdr.dst_grp);
}

void GcsEndpoint::apply_group_leave(const Message& m) {
  auto& v = views_[m.hdr.dst_grp];
  const GroupMember member{m.hdr.sender_node, m.hdr.sender_replica};
  auto n = std::erase(v.members, member);
  if (n > 0) bump_view(m.hdr.dst_grp);
}

void GcsEndpoint::on_totem_view(const totem::View& v) {
  if (orc_) orc_->on_view_installed(totem_.id(), v.ring_id, v.members);
  // Drop group members hosted on nodes that left the ring.  Every endpoint
  // applies the same rule to the same Totem view, so group views stay
  // consistent without extra messages.  Iterate over a snapshot of the
  // group ids: bump_view runs callbacks that may insert into views_, which
  // invalidates FlatMap iterators.  (A group inserted mid-loop has no
  // members yet, so skipping it is the same no-op the ordered-map walk
  // produced.)
  std::vector<GroupId> groups;
  groups.reserve(views_.size());
  for (const auto& [g, gv] : views_) groups.push_back(g);
  for (GroupId g : groups) {
    auto it = views_.find(g);
    if (it == views_.end()) continue;
    auto& gv = it->second;
    const auto before = gv.members.size();
    std::erase_if(gv.members, [&](const GroupMember& m) {
      return std::find(v.members.begin(), v.members.end(), m.node) == v.members.end();
    });
    if (gv.members.size() != before) bump_view(g);
  }
  // Re-announce our local members so hosts that just (re)joined the ring
  // learn about them; joins are idempotent at every receiver.
  for (const auto& [g, r] : local_members_) {
    Message m;
    m.hdr.type = MsgType::kGroupJoin;
    m.hdr.src_grp = g;
    m.hdr.dst_grp = g;
    m.hdr.sender_replica = r;
    m.hdr.sender_node = totem_.id();
    totem_.multicast(encode(m));
  }
}

// --- Send path -----------------------------------------------------------------

std::uint64_t GcsEndpoint::send(Message m) {
  m.hdr.sender_node = totem_.id();
  const auto type_idx = static_cast<std::size_t>(m.hdr.type);
  ++stats_.sent_attempted[type_idx];
  const std::uint64_t h = next_handle_++;

  std::vector<std::uint64_t> totem_handles;
  if (m.payload.size() <= max_fragment_payload_) {
    totem_handles.push_back(totem_.multicast(encode(m)));
  } else {
    // Fragment: each chunk rides a kFragment message carrying the original
    // header (so the logical identity is preserved) plus its index.
    const std::size_t chunk = max_fragment_payload_;
    const auto count =
        static_cast<std::uint32_t>((m.payload.size() + chunk - 1) / chunk);
    for (std::uint32_t i = 0; i < count; ++i) {
      Message frag;
      frag.hdr = m.hdr;
      frag.hdr.type = MsgType::kFragment;
      BytesWriter w;
      w.u8(static_cast<std::uint8_t>(m.hdr.type));
      w.u32(i);
      w.u32(count);
      const std::size_t begin = i * chunk;
      const std::size_t end = std::min(m.payload.size(), begin + chunk);
      w.bytes(std::span<const std::uint8_t>(m.payload.data() + begin, end - begin));
      frag.payload = std::move(w).take();
      totem_handles.push_back(totem_.multicast(encode(frag)));
      ++stats_.fragments_sent;
    }
  }

  if (!is_control(m.hdr.type)) {
    pending_[MsgIdKey{
        stream_key(m.hdr.conn.value, static_cast<std::uint8_t>(m.hdr.type), m.hdr.tag.value),
        m.hdr.seq}] = PendingSend{h, std::move(totem_handles), m.hdr.type};
  }
  return h;
}

bool GcsEndpoint::cancel(std::uint64_t handle) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second.gcs_handle == handle) {
      bool all = true;
      for (auto th : it->second.totem_handles) all &= totem_.cancel(th);
      if (all) ++stats_.sent_cancelled[static_cast<std::size_t>(it->second.type)];
      pending_.erase(it);
      return all;
    }
  }
  return false;
}

// --- Delivery path ----------------------------------------------------------------

void GcsEndpoint::on_totem_deliver(NodeId /*sender*/, const SharedBytes& data) {
  Message m;
  try {
    m = decode_view(data);
  } catch (const CodecError& e) {
    CTS_WARN() << to_string(totem_.id()) << " dropped malformed GCS message: " << e.what();
    return;
  }
  if (m.hdr.type == MsgType::kFragment) {
    on_fragment(m);
    return;
  }
  process_message(std::move(m));
}

void GcsEndpoint::on_fragment(const Message& frag) {
  ++stats_.fragments_received;
  std::uint8_t original_type = 0;
  std::uint32_t idx = 0, count = 0;
  std::size_t chunk_off = 0, chunk_len = 0;
  try {
    BytesReader r(frag.payload);
    original_type = r.u8();
    idx = r.u32();
    count = r.u32();
    // Locate the chunk instead of copying it out; it is appended straight
    // from the shared fragment payload into the reassembly buffer below.
    chunk_len = r.u32();
    chunk_off = r.pos();
    r.skip(chunk_len);
    if (!r.done()) throw CodecError("trailing garbage after fragment");
  } catch (const CodecError& e) {
    CTS_WARN() << to_string(totem_.id()) << " dropped malformed fragment: " << e.what();
    return;
  }

  const ReasmKey key{
      (static_cast<std::uint64_t>(frag.hdr.sender_node.value) << 32) | frag.hdr.conn.value,
      (static_cast<std::uint64_t>(original_type) << 32) | frag.hdr.tag.value, frag.hdr.seq};
  Reassembly& re = reassembly_[key];
  if (idx == 0) {
    re = Reassembly{};
    re.count = count;
    re.original_type = static_cast<MsgType>(original_type);
  }
  if (idx != re.next || count != re.count) {
    // Out-of-order or inconsistent fragment: the total order makes this
    // impossible for a correct sender; drop the partial message.
    reassembly_.erase(key);
    return;
  }
  re.data.insert(re.data.end(), frag.payload.data() + chunk_off,
                 frag.payload.data() + chunk_off + chunk_len);
  ++re.next;
  if (re.next < re.count) return;

  Message m;
  m.hdr = frag.hdr;
  m.hdr.type = re.original_type;
  m.payload = std::move(re.data);
  reassembly_.erase(key);
  process_message(std::move(m));
}

void GcsEndpoint::process_message(Message m) {
  if (m.hdr.type == MsgType::kGroupJoin) {
    apply_group_join(m);
    return;
  }
  if (m.hdr.type == MsgType::kGroupLeave) {
    apply_group_leave(m);
    return;
  }

  const auto type_idx = static_cast<std::size_t>(m.hdr.type);

  // Sender-side suppression: a copy of this logical message has now been
  // ordered, so a still-queued local copy must never reach the wire.
  const StreamKey sk =
      stream_key(m.hdr.conn.value, static_cast<std::uint8_t>(m.hdr.type), m.hdr.tag.value);
  const MsgIdKey pending_key{sk, m.hdr.seq};
  if (auto it = pending_.find(pending_key); it != pending_.end()) {
    if (m.hdr.sender_node != totem_.id()) {
      // Someone else's copy won the race; cancel ours if still queued.
      bool all = true;
      for (auto th : it->second.totem_handles) all &= totem_.cancel(th);
      if (all) {
        ++stats_.sent_cancelled[static_cast<std::size_t>(it->second.type)];
        if (c_cancelled_) ++*c_cancelled_;
        if (rec_) {
          rec_->event(obs::EventKind::kGcsSendCancelled, totem_.id(), m.hdr.sender_replica,
                      static_cast<std::int64_t>(it->second.type),
                      static_cast<std::int64_t>(m.hdr.seq));
        }
      }
    }
    pending_.erase(it);
  }

  // Receiver-side duplicate detection.
  auto [it, fresh] = last_delivered_.try_emplace(sk, 0);
  if (!fresh && m.hdr.seq <= it->second) {
    ++stats_.duplicates_dropped[type_idx];
    if (c_duplicates_) ++*c_duplicates_;
    return;
  }
  it->second = m.hdr.seq;

  ++stats_.delivered[type_idx];
  if (c_delivered_) ++*c_delivered_;
  if (type_idx < 16 && c_delivered_by_type_[type_idx]) ++*c_delivered_by_type_[type_idx];
  if (rec_) {
    rec_->event(obs::EventKind::kGcsDeliver, totem_.id(), m.hdr.sender_replica,
                static_cast<std::int64_t>(m.hdr.type), static_cast<std::int64_t>(m.hdr.seq),
                static_cast<std::int64_t>(m.hdr.conn.value));
  }
  if (orc_) {
    orc_->on_gcs_deliver(totem_.id(), m.hdr.dst_grp, m.hdr.conn,
                         static_cast<std::uint8_t>(m.hdr.type), m.hdr.tag, m.hdr.seq,
                         m.hdr.sender_node, m.payload.span());
  }
  // Index loop with a re-find per iteration: a callback may subscribe (CTS
  // construction during recovery paths), growing the vector — or a whole
  // new group's entry — mid-delivery; both the vector reference and the
  // FlatMap entry can move across the reallocation.  New subscribers do
  // not see the message that triggered their registration.
  for (std::size_t i = 0;; ++i) {
    auto sub = subscribers_.find(m.hdr.dst_grp);
    if (sub == subscribers_.end() || i >= sub->second.size()) break;
    sub->second[i](m);
  }
}

void GcsEndpoint::set_recorder(obs::Recorder* rec) {
  rec_ = rec;
  orc_ = rec ? rec->oracle() : nullptr;
  totem_.set_recorder(rec);
  if (rec) {
    c_delivered_ = &rec->counter("gcs.delivered");
    c_duplicates_ = &rec->counter("gcs.duplicates_dropped");
    c_cancelled_ = &rec->counter("gcs.sent_cancelled");
    c_view_changes_ = &rec->counter("gcs.view_changes");
    for (std::size_t i = 1; i <= static_cast<std::size_t>(MsgType::kFragment); ++i) {
      c_delivered_by_type_[i] =
          &rec->counter(std::string("gcs.delivered.") + to_string(static_cast<MsgType>(i)));
    }
  } else {
    c_delivered_ = c_duplicates_ = c_cancelled_ = c_view_changes_ = nullptr;
    for (auto& c : c_delivered_by_type_) c = nullptr;
  }
}

}  // namespace cts::gcs
