// Deterministic random number generation.
//
// Every source of randomness in the simulation (network jitter, packet loss,
// workload inter-op delays, clock drift assignment) draws from an Rng seeded
// from the experiment configuration, so each run is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace cts {

/// xoshiro256** PRNG with a splitmix64 seeding sequence.  Fast, high
/// quality, and fully deterministic across platforms (unlike std::
/// distributions, whose output is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& w : s_) w = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 1e-18;
    return -mean * log_approx(u);
  }

  /// Approximately normal value (sum of 12 uniforms, Irwin–Hall) with the
  /// given mean and standard deviation.  Deterministic and branch-free;
  /// accuracy is ample for modeling jitter.
  double gaussian(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return mean + (acc - 6.0) * stddev;
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Natural log via the standard library would be fine, but keep a local
  // wrapper so the header needs no <cmath> for one call site.
  static double log_approx(double v);

  std::uint64_t s_[4]{};
};

}  // namespace cts
