// UniqueFn: a move-only type-erased callable.
//
// The std::function callback types the layers above the simulator exchange
// (RMI replies, decision-relay deliveries, baseline clock readings,
// recovery-complete notifications) historically forced awaiters to park
// their coroutine_handle inside a *copyable* lambda — so tearing the owner
// down mid-await destroyed the callback but leaked the frame, and nothing
// in the type system said who owned it.
//
// UniqueFn is the ownership-honest replacement: it accepts move-only
// captures, so completion callbacks can hold a `sim::Simulator::CoroResume`
// guard whose destructor destroys the suspended frame if the callback is
// dropped unfired (destroy-on-drop), and whose invocation resumes it
// exactly once.  Copyable callables (plain lambdas, std::function) convert
// implicitly, so call sites that never park frames are unaffected.
//
// Not InlineFn: these callbacks live in per-request/per-round maps, not in
// the event heap's hot path, so one allocation per construction (the same
// cost std::function paid for >16-byte captures) is fine and keeps the
// type small (one pointer).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace cts {

template <typename Signature>
class UniqueFn;

template <typename R, typename... Args>
class UniqueFn<R(Args...)> {
 public:
  UniqueFn() noexcept = default;
  UniqueFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFn(F&& f)  // NOLINT(google-explicit-constructor): callable adapter
      : impl_(std::make_unique<Model<D>>(std::forward<F>(f))) {}

  UniqueFn(UniqueFn&&) noexcept = default;
  UniqueFn& operator=(UniqueFn&&) noexcept = default;
  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  UniqueFn& operator=(std::nullptr_t) noexcept {
    impl_.reset();
    return *this;
  }

  [[nodiscard]] explicit operator bool() const noexcept { return impl_ != nullptr; }

  R operator()(Args... args) { return impl_->call(std::forward<Args>(args)...); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R call(Args... args) = 0;
  };

  template <typename D>
  struct Model final : Concept {
    explicit Model(D fn) : f(std::move(fn)) {}
    R call(Args... args) override { return f(std::forward<Args>(args)...); }
    D f;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace cts
