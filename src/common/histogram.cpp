#include "common/histogram.hpp"

#include <sstream>

namespace cts {

std::string Histogram::table(const std::string& label) const {
  std::ostringstream out;
  out << "# " << label << "  n=" << count() << "  mean=" << mean() << "us  p50=" << percentile(0.5)
      << "us  p99=" << percentile(0.99) << "us  mode=" << mode_bin() << "us";
  if (underflow() > 0) out << "  underflow=" << underflow() << " (min=" << underflow_min() << "us)";
  if (overflow() > 0) out << "  overflow=" << overflow();
  out << "\n";
  out << "bin_us\tdensity\n";
  for (auto [bin, d] : density()) {
    out << bin << "\t" << d << "\n";
  }
  return out.str();
}

}  // namespace cts
