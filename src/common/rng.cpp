#include "common/rng.hpp"

#include <cmath>

namespace cts {

double Rng::log_approx(double v) { return std::log(v); }

}  // namespace cts
