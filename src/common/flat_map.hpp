// Deterministic flat containers for the delivery pipeline's hot paths.
//
// PR 2 banned hash containers from the protocol layers because their
// iteration order depends on hashing/rehashing history, which would leak
// into the deterministic schedule (broadcast walks receivers in container
// order, drawing per-receiver RNG).  The fix put red-black `std::map` on
// every hot path — stable order, but every lookup chases heap nodes and
// every insert allocates.  These containers keep the half of `std::map`
// that is part of the contract (strict-weak-ordered iteration, identical
// to `std::map` for the same key set) and drop the half that costs:
//
//  * `FlatMap` / `FlatSet` — sorted `std::vector` storage, binary-search
//    lookup, contiguous iteration.  Same iteration order as `std::map` /
//    `std::set` over the same keys, by construction.
//  * `DenseNodeIndex<T>` — direct vector indexing for small dense integer
//    ids (node ids 0..N), with deterministic ascending-id iteration.  One
//    array load replaces a map lookup.
//
// Contract differences from `std::map` that call sites must respect:
//
//  * Insert/erase invalidates ALL iterators and references (vector
//    reallocation / element shifting).  `std::map` references are
//    node-stable; code that holds a reference across a callback that may
//    mutate the map must re-find after the callback.
//  * `value_type` is `std::pair<Key, T>` (non-const Key) so elements are
//    move-assignable within the vector.  Do not mutate keys through
//    iterators.
//  * No transparent-comparator heterogeneous lookup; keys compare with
//    `operator<`.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

namespace cts {

/// Sorted-vector map with a `std::map`-compatible API subset and
/// `std::map`-identical iteration order.
template <typename Key, typename T>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;
  using reverse_iterator = typename storage_type::reverse_iterator;
  using const_reverse_iterator = typename storage_type::const_reverse_iterator;
  using size_type = std::size_t;

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }
  const_iterator cbegin() const { return data_.cbegin(); }
  const_iterator cend() const { return data_.cend(); }
  reverse_iterator rbegin() { return data_.rbegin(); }
  reverse_iterator rend() { return data_.rend(); }
  const_reverse_iterator rbegin() const { return data_.rbegin(); }
  const_reverse_iterator rend() const { return data_.rend(); }

  bool empty() const { return data_.empty(); }
  size_type size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(size_type n) { data_.reserve(n); }

  iterator lower_bound(const Key& k) {
    return std::lower_bound(data_.begin(), data_.end(), k, KeyLess{});
  }
  const_iterator lower_bound(const Key& k) const {
    return std::lower_bound(data_.begin(), data_.end(), k, KeyLess{});
  }
  iterator upper_bound(const Key& k) {
    return std::upper_bound(data_.begin(), data_.end(), k, KeyGreater{});
  }
  const_iterator upper_bound(const Key& k) const {
    return std::upper_bound(data_.begin(), data_.end(), k, KeyGreater{});
  }

  iterator find(const Key& k) {
    auto it = lower_bound(k);
    return (it != data_.end() && !(k < it->first)) ? it : data_.end();
  }
  const_iterator find(const Key& k) const {
    auto it = lower_bound(k);
    return (it != data_.end() && !(k < it->first)) ? it : data_.end();
  }
  bool contains(const Key& k) const { return find(k) != data_.end(); }
  size_type count(const Key& k) const { return contains(k) ? 1u : 0u; }

  T& operator[](const Key& k) { return try_emplace(k).first->second; }

  T& at(const Key& k) {
    auto it = find(k);
    assert(it != data_.end() && "FlatMap::at: key not found");
    return it->second;
  }
  const T& at(const Key& k) const {
    auto it = find(k);
    assert(it != data_.end() && "FlatMap::at: key not found");
    return it->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& k, Args&&... args) {
    // Tail fast path: monotone-key workloads (wire sequence numbers, round
    // ids) insert in increasing order, so the common case extends or
    // revisits the current maximum — no binary search over the whole run.
    if (!data_.empty()) {
      const Key& back = data_.back().first;
      if (back < k) {
        data_.emplace_back(std::piecewise_construct, std::forward_as_tuple(k),
                           std::forward_as_tuple(std::forward<Args>(args)...));
        return {data_.end() - 1, true};
      }
      if (!(k < back)) return {data_.end() - 1, false};
    }
    auto it = lower_bound(k);
    if (it != data_.end() && !(k < it->first)) return {it, false};
    it = data_.emplace(it, std::piecewise_construct, std::forward_as_tuple(k),
                       std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  /// `std::map::emplace`-alike for the common `emplace(key, mapped)` shape.
  template <typename K, typename... Args>
  std::pair<iterator, bool> emplace(K&& k, Args&&... args) {
    return try_emplace(Key(std::forward<K>(k)), std::forward<Args>(args)...);
  }

  std::pair<iterator, bool> insert(const value_type& v) {
    return try_emplace(v.first, v.second);
  }
  std::pair<iterator, bool> insert(value_type&& v) {
    return try_emplace(v.first, std::move(v.second));
  }

  template <typename M>
  std::pair<iterator, bool> insert_or_assign(const Key& k, M&& obj) {
    auto [it, inserted] = try_emplace(k, std::forward<M>(obj));
    if (!inserted) it->second = std::forward<M>(obj);
    return {it, inserted};
  }

  /// Batched insert: append a run of entries, then restore sorted order in
  /// one pass.  Equal keys keep the FIRST occurrence (existing entries win
  /// over batch entries, earlier batch entries win over later ones) —
  /// matching a loop of `insert()` calls.  O((n+m) log (n+m)) total instead
  /// of m inserts each shifting the tail.
  template <typename InputIt>
  void insert_batch(InputIt first, InputIt last) {
    const size_type old = data_.size();
    data_.insert(data_.end(), first, last);
    if (data_.size() == old) return;
    std::stable_sort(data_.begin(), data_.end(),
                     [](const value_type& a, const value_type& b) {
                       return a.first < b.first;
                     });
    auto pos = std::unique(data_.begin(), data_.end(),
                           [](const value_type& a, const value_type& b) {
                             return !(a.first < b.first) && !(b.first < a.first);
                           });
    data_.erase(pos, data_.end());
  }

  iterator erase(const_iterator it) { return data_.erase(it); }
  iterator erase(const_iterator first, const_iterator last) {
    return data_.erase(first, last);
  }
  size_type erase(const Key& k) {
    auto it = find(k);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.data_ == b.data_;
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& v, const Key& k) const {
      return v.first < k;
    }
  };
  struct KeyGreater {
    bool operator()(const Key& k, const value_type& v) const {
      return k < v.first;
    }
  };

  storage_type data_;
};

/// Sorted-vector set with a `std::set`-compatible API subset.
template <typename Key>
class FlatSet {
 public:
  using key_type = Key;
  using value_type = Key;
  using storage_type = std::vector<Key>;
  using iterator = typename storage_type::const_iterator;
  using const_iterator = typename storage_type::const_iterator;
  using size_type = std::size_t;

  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }
  const_iterator cbegin() const { return data_.cbegin(); }
  const_iterator cend() const { return data_.cend(); }

  bool empty() const { return data_.empty(); }
  size_type size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(size_type n) { data_.reserve(n); }

  const_iterator lower_bound(const Key& k) const {
    return std::lower_bound(data_.begin(), data_.end(), k);
  }
  const_iterator find(const Key& k) const {
    auto it = lower_bound(k);
    return (it != data_.end() && !(k < *it)) ? it : data_.end();
  }
  bool contains(const Key& k) const { return find(k) != data_.end(); }
  size_type count(const Key& k) const { return contains(k) ? 1u : 0u; }

  std::pair<const_iterator, bool> insert(const Key& k) {
    auto it = std::lower_bound(data_.begin(), data_.end(), k);
    if (it != data_.end() && !(k < *it)) return {it, false};
    it = data_.insert(it, k);
    return {it, true};
  }

  size_type erase(const Key& k) {
    auto it = find(k);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }
  const_iterator erase(const_iterator it) { return data_.erase(it); }

  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.data_ == b.data_;
  }

 private:
  storage_type data_;
};

/// Remove every entry matching `pred` from a FlatMap; returns the count.
/// Drop-in for the `std::erase_if(std::map, pred)` call sites.
template <typename Key, typename T, typename Pred>
std::size_t erase_if(FlatMap<Key, T>& m, Pred pred) {
  std::size_t removed = 0;
  for (auto it = m.begin(); it != m.end();) {
    if (pred(*it)) {
      it = m.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

template <typename Key, typename Pred>
std::size_t erase_if(FlatSet<Key>& s, Pred pred) {
  std::size_t removed = 0;
  for (auto it = s.begin(); it != s.end();) {
    if (pred(*it)) {
      it = s.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

/// Direct-indexed store for values keyed by small dense integer ids
/// (node ids 0..N on a ring).  `ensure`/`find` are O(1) array loads;
/// iteration visits present slots in ascending id order, which is exactly
/// the order a `std::map<NodeId, T>` would produce — so swapping one in
/// does not perturb the deterministic schedule.
template <typename T>
class DenseNodeIndex {
 public:
  using id_type = std::uint32_t;

  /// Largest id this index will store densely.  Callers with possibly
  /// non-dense keys (e.g. sentinel/invalid ids) must route them elsewhere.
  static constexpr id_type kMaxDenseId = (1u << 24) - 1u;

  /// Get-or-create the slot for `id` (default-constructs T on first use).
  T& ensure(id_type id) {
    assert(id <= kMaxDenseId && "DenseNodeIndex: id not dense/small");
    // size_t arithmetic: id + 1 must not wrap for ids near the u32 max.
    if (id >= slots_.size()) slots_.resize(static_cast<std::size_t>(id) + 1u);
    Slot& s = slots_[id];
    if (!s.present) {
      s.present = true;
      s.value = T{};
      ++size_;
    }
    return s.value;
  }

  T* find(id_type id) {
    if (id >= slots_.size() || !slots_[id].present) return nullptr;
    return &slots_[id].value;
  }
  const T* find(id_type id) const {
    if (id >= slots_.size() || !slots_[id].present) return nullptr;
    return &slots_[id].value;
  }
  bool contains(id_type id) const { return find(id) != nullptr; }

  /// Mark `id` absent (destroying its value).  Returns true if it was
  /// present.  Slots stay allocated, so pointers to OTHER slots remain
  /// valid — unlike FlatMap, only `ensure` of a larger id reallocates.
  bool erase(id_type id) {
    if (id >= slots_.size() || !slots_[id].present) return false;
    slots_[id].present = false;
    slots_[id].value = T{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Visit present slots in ascending id order: f(id, T&).
  template <typename F>
  void for_each(F&& f) {
    for (id_type id = 0; id < slots_.size(); ++id) {
      if (slots_[id].present) f(id, slots_[id].value);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (id_type id = 0; id < slots_.size(); ++id) {
      if (slots_[id].present) f(id, slots_[id].value);
    }
  }

 private:
  struct Slot {
    T value{};
    bool present = false;
  };
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// Pack two u32 halves into one u64 key whose `<` reproduces the
/// lexicographic order of the pair (hi, lo) — e.g. (node, group).
constexpr std::uint64_t pack_u32_pair(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

}  // namespace cts
