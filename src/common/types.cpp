#include "common/types.hpp"

namespace cts {

namespace {
std::string fmt(const char* prefix, std::uint32_t v) {
  return std::string(prefix) + std::to_string(v);
}
}  // namespace

std::string to_string(NodeId id) { return fmt("n", id.value); }
std::string to_string(GroupId id) { return fmt("g", id.value); }
std::string to_string(ConnectionId id) { return fmt("c", id.value); }
std::string to_string(ThreadId id) { return fmt("t", id.value); }
std::string to_string(ReplicaId id) { return fmt("r", id.value); }

}  // namespace cts
