// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger needs no synchronization.
// Log lines carry the current simulated time when a Simulator is attached
// (see sim::Simulator::attach_logger), which makes protocol traces readable.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace cts {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide logging configuration.
class Log {
 public:
  /// Minimum level that will be emitted.  Defaults to kWarn so tests and
  /// benches stay quiet unless a failure is being investigated.
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  /// Hook returning a timestamp prefix (set by the simulator).
  static std::function<std::string()>& time_source() {
    static std::function<std::string()> src;
    return src;
  }

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  static void write(LogLevel lvl, const std::string& msg) {
    static const char* names[] = {"TRACE", "DEBUG", "INFO ", "WARN ", "ERROR"};
    std::string ts;
    if (time_source()) ts = time_source()();
    std::cerr << "[" << names[static_cast<int>(lvl)] << "]" << ts << " " << msg << "\n";
  }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace cts

#define CTS_LOG(lvl)                       \
  if (!::cts::Log::enabled(lvl)) {         \
  } else                                   \
    ::cts::detail::LogLine(lvl)

#define CTS_TRACE() CTS_LOG(::cts::LogLevel::kTrace)
#define CTS_DEBUG() CTS_LOG(::cts::LogLevel::kDebug)
#define CTS_INFO() CTS_LOG(::cts::LogLevel::kInfo)
#define CTS_WARN() CTS_LOG(::cts::LogLevel::kWarn)
#define CTS_ERROR() CTS_LOG(::cts::LogLevel::kError)
