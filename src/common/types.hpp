// Strong identifier and time-unit types shared by every layer of the stack.
//
// The paper's protocol headers (Section 3.1) identify entities by small
// integers: nodes on the Totem ring, process groups, connections between
// groups, threads within a replica.  We wrap each in a distinct struct so
// that the compiler rejects accidental cross-assignment (e.g. passing a
// group id where a node id is expected).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace cts {

/// Simulated time and clock readings, in microseconds.
///
/// All clocks in the system (simulator time, physical hardware clocks, the
/// group clock) use this unit.  The paper measures everything in
/// microseconds (token passing ~51us, CTS overhead ~300us), so a 64-bit
/// microsecond count gives ~292k years of range — ample.
using Micros = std::int64_t;

/// A value that is not a valid time (used for "unset" sentinels).
inline constexpr Micros kNoTime = std::numeric_limits<Micros>::min();

namespace detail {

/// CRTP base for strongly-typed integer ids.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  Rep value{kInvalid};

  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

/// Identifies a host (and its Totem instance) on the simulated LAN.
/// Node ids impose the logical ring order; the lowest id is the ring leader.
struct NodeId : detail::StrongId<NodeId> {
  using StrongId::StrongId;
};

/// Identifies a process group (a set of replicas of one object).
struct GroupId : detail::StrongId<GroupId> {
  using StrongId::StrongId;
};

/// Identifies an established connection between a source group and a
/// destination group (paper Section 3.1: conn_id).
struct ConnectionId : detail::StrongId<ConnectionId> {
  using StrongId::StrongId;
};

/// Identifies a logical application thread within a replica.  The paper
/// requires threads to be created in the same order at all replicas, so the
/// creation index is a consistent cross-replica name for a thread.
struct ThreadId : detail::StrongId<ThreadId> {
  using StrongId::StrongId;
};

/// Identifies a replica within a group (dense index assigned at join).
struct ReplicaId : detail::StrongId<ReplicaId> {
  using StrongId::StrongId;
};

/// Sequence number of a message within a connection; for CCS messages this
/// field carries the CCS round number (paper Section 3.1).
using MsgSeqNum = std::uint64_t;

/// Totem global sequence number (total order position).
using TotemSeq = std::uint64_t;

/// Number of a Totem configuration (view) — increases on each membership
/// change.
using ViewNum = std::uint64_t;

[[nodiscard]] std::string to_string(NodeId id);
[[nodiscard]] std::string to_string(GroupId id);
[[nodiscard]] std::string to_string(ConnectionId id);
[[nodiscard]] std::string to_string(ThreadId id);
[[nodiscard]] std::string to_string(ReplicaId id);

}  // namespace cts

namespace std {
template <>
struct hash<cts::NodeId> {
  size_t operator()(cts::NodeId id) const noexcept { return hash<uint32_t>{}(id.value); }
};
template <>
struct hash<cts::GroupId> {
  size_t operator()(cts::GroupId id) const noexcept { return hash<uint32_t>{}(id.value); }
};
template <>
struct hash<cts::ConnectionId> {
  size_t operator()(cts::ConnectionId id) const noexcept { return hash<uint32_t>{}(id.value); }
};
template <>
struct hash<cts::ThreadId> {
  size_t operator()(cts::ThreadId id) const noexcept { return hash<uint32_t>{}(id.value); }
};
template <>
struct hash<cts::ReplicaId> {
  size_t operator()(cts::ReplicaId id) const noexcept { return hash<uint32_t>{}(id.value); }
};
}  // namespace std
