// Latency histogram / probability-density estimation.
//
// The paper's Figure 5 plots the probability density function of end-to-end
// latency in microsecond bins; this helper accumulates samples and emits the
// same representation, plus the usual summary statistics for EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cts {

/// Fixed-bin histogram over Micros samples.
class Histogram {
 public:
  /// Bins of `bin_width` microseconds covering [0, max_value); samples at or
  /// beyond max_value land in a single overflow bin.
  Histogram(Micros bin_width, Micros max_value)
      : bin_width_(bin_width), bins_(static_cast<std::size_t>(max_value / bin_width) + 1, 0) {}

  /// Negative samples indicate a causality bug upstream (a clock that ran
  /// backwards, a receive stamped before its send); they are counted in a
  /// dedicated underflow stat instead of being folded into bin 0 where they
  /// would silently distort the density.
  void add(Micros sample) {
    if (sample < 0) {
      ++underflow_;
      underflow_min_ = std::min(underflow_min_, sample);
      return;
    }
    samples_.push_back(sample);
    sorted_ = false;
    auto idx = static_cast<std::size_t>(sample / bin_width_);
    if (idx >= bins_.size()) idx = bins_.size() - 1;
    ++bins_[idx];
  }

  /// Number of non-negative samples recorded (underflow excluded).
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Number of negative samples rejected by add().
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }

  /// Most negative sample seen, or 0 if none underflowed.
  [[nodiscard]] Micros underflow_min() const { return underflow_ ? underflow_min_ : 0; }

  /// Samples at or beyond max_value (they share the final catch-all bin).
  [[nodiscard]] std::uint64_t overflow() const { return bins_.back(); }

  [[nodiscard]] Micros bin_width() const { return bin_width_; }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double acc = 0.0;
    for (auto s : samples_) acc += static_cast<double>(s);
    return acc / static_cast<double>(samples_.size());
  }

  /// q in [0,1]; e.g. 0.5 = median, 0.99 = p99.
  [[nodiscard]] Micros percentile(double q) const {
    if (samples_.empty()) return 0;
    sort();
    auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1));
    return samples_[idx];
  }

  [[nodiscard]] Micros min() const { return samples_.empty() ? 0 : (sort(), samples_.front()); }
  [[nodiscard]] Micros max() const { return samples_.empty() ? 0 : (sort(), samples_.back()); }

  /// Bin with the highest density (the distribution's mode) — the paper
  /// reports the token-passing time as "peak probability density ~51us".
  /// The overflow catch-all is not a real bin and can never be the mode;
  /// its mass is visible via overflow() instead.
  [[nodiscard]] Micros mode_bin() const {
    if (bins_.size() < 2) return 0;
    auto it = std::max_element(bins_.begin(), bins_.end() - 1);
    return static_cast<Micros>(it - bins_.begin()) * bin_width_;
  }

  /// Probability density per bin (fraction of samples / bin).  Suitable for
  /// printing the Figure-5 style PDF rows.
  [[nodiscard]] std::vector<std::pair<Micros, double>> density() const {
    std::vector<std::pair<Micros, double>> out;
    const double n = static_cast<double>(samples_.empty() ? 1 : samples_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (bins_[i] == 0) continue;
      out.emplace_back(static_cast<Micros>(i) * bin_width_, static_cast<double>(bins_[i]) / n);
    }
    return out;
  }

  /// Multi-line table: "bin_start_us density" rows, for bench output.
  [[nodiscard]] std::string table(const std::string& label) const;

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  Micros bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  Micros underflow_min_ = 0;
  mutable std::vector<Micros> samples_;
  mutable bool sorted_ = false;
};

}  // namespace cts
