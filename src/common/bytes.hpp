// Byte-level message codec.
//
// Every protocol message in the system (Totem tokens, regular messages, CCS
// control messages, checkpoints) is serialized through these two helpers so
// that what crosses the simulated wire is a flat byte buffer — exactly what
// would cross a real network.  Encoding is little-endian fixed-width.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cts {

using Bytes = std::vector<std::uint8_t>;

/// An immutable, refcounted view of a byte buffer.
///
/// The zero-copy payload type of the delivery path: a broadcast allocates
/// its payload once and every receiver's in-flight packet shares it; a
/// Totem multicast payload is an aliasing slice() of the sealed packet it
/// arrived in.  Copying a SharedBytes bumps a refcount; the underlying
/// buffer is freed when the last view drops.
///
/// Ownership rules (see doc/PERFORMANCE.md):
///   * the wrapped buffer is immutable for the lifetime of every view —
///     mutation paths (e.g. corruption injection) must materialize a fresh
///     buffer (copy-on-write) rather than write through a view;
///   * slice() aliases the parent buffer: it keeps the WHOLE parent alive,
///     which is the right trade for packet payloads (packet and payload
///     die together) but wrong for long-lived small slices of huge buffers
///     — materialize with to_bytes() in that case.
class SharedBytes {
 public:
  SharedBytes() = default;

  /// Wrap a buffer, taking ownership.  Implicit, so APIs migrated from
  /// `const Bytes&` to `SharedBytes` keep accepting Bytes rvalues.
  SharedBytes(Bytes b)  // NOLINT(google-explicit-constructor)
      : owner_(std::make_shared<const Bytes>(std::move(b))),
        data_(owner_->data()),
        size_(owner_->size()) {}

  /// Materialize an owning SharedBytes from any contiguous byte range.
  static SharedBytes copy_of(std::span<const std::uint8_t> s) {
    return SharedBytes(Bytes(s.begin(), s.end()));
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] std::span<const std::uint8_t> span() const { return {data_, size_}; }

  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }

  /// Aliasing sub-view: shares (and keeps alive) the parent buffer.
  /// `offset + len` must be within size().
  [[nodiscard]] SharedBytes slice(std::size_t offset, std::size_t len) const {
    SharedBytes out;
    out.owner_ = owner_;
    out.data_ = data_ + offset;
    out.size_ = len;
    return out;
  }

  /// Deep copy into a plain mutable buffer.
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const Bytes> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Thrown by BytesReader when a read runs past the end of the buffer or a
/// length prefix is inconsistent — i.e. the message is malformed.  Every
/// out-of-bounds access fails through this explicit error path; there is
/// deliberately no assert-based (NDEBUG-vanishing) variant, because a
/// malformed packet must be rejected identically in Debug and Release.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// The repository's single audited type-punning site: fixed-width
/// little-endian loads/stores for envelope fields that are written after
/// the fact (e.g. a checksum patched over a serialized packet).  All other
/// code must go through BytesWriter/BytesReader or these helpers — raw
/// memcpy/reinterpret_cast elsewhere is a detlint error.
///
/// The caller is responsible for bounds: `p` must point at 4 readable
/// (resp. writable) bytes.
inline std::uint32_t load_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_u32le(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

/// 8-byte flavor for word-at-a-time scans (the oracle's payload
/// fingerprint).  `p` must point at 8 readable bytes.
inline std::uint64_t load_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// FNV-1a over a byte range, starting at offset `from`.  The 32-bit flavor
/// seals packet envelopes (Totem's magic+checksum header); the 64-bit
/// flavor links checkpoint-chain headers (see src/replication).  `seed`
/// lets the 64-bit flavor chain over multiple inputs.
inline std::uint32_t fnv1a32(std::span<const std::uint8_t> data, std::size_t from = 0) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = from; i < data.size(); ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                             std::uint64_t seed = 14695981039346656037ull) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Appends fixed-width little-endian values to a growing byte buffer.
class BytesWriter {
 public:
  BytesWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put(v); }
  void u32(std::uint32_t v) { put(v); }
  void u64(std::uint64_t v) { put(v); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Unprefixed raw append — the scatter-gather path.  A frame encoder
  /// gathers several source buffers (envelope, per-message headers,
  /// payload slices) into one wire buffer without an intermediate
  /// concatenation buffer per source.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Grow the buffer's capacity by `additional` bytes beyond what is
  /// already written.  Scatter-gather encoders sum their source sizes up
  /// front so the whole gather lands in a single allocation.
  void reserve(std::size_t additional) { buf_.reserve(buf_.size() + additional); }

  /// Patch a u32 at an absolute offset inside the already-written buffer —
  /// for envelope fields whose value is only known once the body is in
  /// place (a checksum over the bytes that follow it).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    assert(offset + sizeof(v) <= buf_.size());
    store_u32le(buf_.data() + offset, v);
  }

  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  Bytes buf_;
};

/// Reads fixed-width little-endian values from a byte buffer; throws
/// CodecError on truncation.
class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    const auto n = u32();
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const auto n = u32();
    require(n);
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  /// Skip `n` bytes (e.g. an envelope already validated by the caller);
  /// throws CodecError if fewer than `n` remain.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  /// Number of unread bytes remaining.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  /// Current read offset from the start of the buffer this reader was
  /// constructed over.  Lets zero-copy consumers convert "where the reader
  /// is" into a SharedBytes::slice() of the enclosing packet.
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n) const {
    // Compare against the remaining count rather than `pos_ + n`: a hostile
    // length prefix near SIZE_MAX must not wrap the addition and sneak past
    // the bound (pos_ <= size() is an invariant, so the subtraction is safe).
    if (n > data_.size() - pos_) {
      throw CodecError("truncated message: need " + std::to_string(n) + " bytes, have " +
                       std::to_string(data_.size() - pos_));
    }
  }

  template <typename T>
  T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cts
