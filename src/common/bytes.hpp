// Byte-level message codec.
//
// Every protocol message in the system (Totem tokens, regular messages, CCS
// control messages, checkpoints) is serialized through these two helpers so
// that what crosses the simulated wire is a flat byte buffer — exactly what
// would cross a real network.  Encoding is little-endian fixed-width.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cts {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by BytesReader when a read runs past the end of the buffer or a
/// length prefix is inconsistent — i.e. the message is malformed.  Every
/// out-of-bounds access fails through this explicit error path; there is
/// deliberately no assert-based (NDEBUG-vanishing) variant, because a
/// malformed packet must be rejected identically in Debug and Release.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// The repository's single audited type-punning site: fixed-width
/// little-endian loads/stores for envelope fields that are written after
/// the fact (e.g. a checksum patched over a serialized packet).  All other
/// code must go through BytesWriter/BytesReader or these helpers — raw
/// memcpy/reinterpret_cast elsewhere is a detlint error.
///
/// The caller is responsible for bounds: `p` must point at 4 readable
/// (resp. writable) bytes.
inline std::uint32_t load_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_u32le(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

/// Appends fixed-width little-endian values to a growing byte buffer.
class BytesWriter {
 public:
  BytesWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put(v); }
  void u32(std::uint32_t v) { put(v); }
  void u64(std::uint64_t v) { put(v); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_.insert(buf_.end(), tmp, tmp + sizeof(T));
  }

  Bytes buf_;
};

/// Reads fixed-width little-endian values from a byte buffer; throws
/// CodecError on truncation.
class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(get<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    const auto n = u32();
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const auto n = u32();
    require(n);
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  /// Skip `n` bytes (e.g. an envelope already validated by the caller);
  /// throws CodecError if fewer than `n` remain.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  /// Number of unread bytes remaining.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    // Compare against the remaining count rather than `pos_ + n`: a hostile
    // length prefix near SIZE_MAX must not wrap the addition and sneak past
    // the bound (pos_ <= size() is an invariant, so the subtraction is safe).
    if (n > data_.size() - pos_) {
      throw CodecError("truncated message: need " + std::to_string(n) + " bytes, have " +
                       std::to_string(data_.size() - pos_));
    }
  }

  template <typename T>
  T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cts
