#include "clock/physical_clock.hpp"

namespace cts::clock {

ClockConfig random_clock_config(Rng& rng, Micros max_offset_us, double max_drift_ppm) {
  ClockConfig cfg;
  cfg.initial_offset_us = rng.range(-max_offset_us, max_offset_us);
  cfg.drift_ppm = (rng.uniform() * 2.0 - 1.0) * max_drift_ppm;
  return cfg;
}

}  // namespace cts::clock
