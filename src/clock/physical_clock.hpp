// Physical hardware clock model.
//
// Each simulated host owns one PhysicalClock.  The paper assumes clocks are
// fail-stop (a non-faulty replica never reports a wrong value) but makes no
// synchronization assumption: clocks may start at arbitrary offsets from
// real time and drift at tens of parts-per-million, and readings are
// quantized to the timer granularity of the host OS.
//
// The consistent time service deliberately does NOT synchronize these
// clocks; it distributes one replica's reading per round.  The baselines
// (src/baseline) read them directly, which is what exposes the roll-back /
// fast-forward anomalies of Section 1.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace cts::clock {

/// Parameters for one host's hardware clock.
struct ClockConfig {
  /// Initial offset of the clock from real (simulated) time, microseconds.
  Micros initial_offset_us = 0;
  /// Frequency error in parts-per-million.  +20 means the clock gains 20us
  /// per simulated second.  Commodity crystals are within ~±50 ppm.
  double drift_ppm = 0.0;
  /// Reading granularity in microseconds (1 = gettimeofday on Linux 2.x).
  Micros granularity_us = 1;
  /// Epoch base added to all readings, so clock values look like wall-clock
  /// timestamps rather than small numbers.  Defaults to 2003-06-23 00:00 UTC
  /// (the week of DSN 2003) in microseconds since the Unix epoch.
  Micros epoch_us = 1056326400LL * 1000000LL;
};

/// Draw a plausible commodity-PC clock configuration: offset uniform in
/// ±`max_offset_us`, drift uniform in ±`max_drift_ppm`.
ClockConfig random_clock_config(Rng& rng, Micros max_offset_us = 500'000,
                                double max_drift_ppm = 50.0);

/// A drifting, granular, fail-stop hardware clock driven by simulated time.
class PhysicalClock {
 public:
  PhysicalClock(sim::Simulator& sim, ClockConfig cfg) : sim_(sim), cfg_(cfg) {}

  /// Read the clock — the moral equivalent of gettimeofday().
  ///
  /// Fail-stop discipline says a failed host never produces a reading.
  /// Since the lifecycle-scope work (doc/LIFECYCLE.md), crash_server shuts
  /// the node's TaskScope down before failing the clock, cancelling every
  /// timer and destroying every suspended frame the node owned — so this
  /// counter is a tripwire, asserted == 0 by every crash/restart test
  /// (including the crash sweep).  Count rather than abort so every build
  /// type runs the same schedule and tests can observe a violation.
  [[nodiscard]] Micros read() const {
    if (!alive_) ++reads_after_failure_;
    const double t = static_cast<double>(sim_.now());
    const double skewed = t * (1.0 + cfg_.drift_ppm * 1e-6);
    Micros value = cfg_.epoch_us + cfg_.initial_offset_us + static_cast<Micros>(skewed);
    if (cfg_.granularity_us > 1) value -= value % cfg_.granularity_us;
    return value;
  }

  /// Reading relative to the first reading ever taken — used by the
  /// Figure 6(c) normalization ("physical hardware clock values are
  /// normalized by subtracting the value obtained in the initial round").
  [[nodiscard]] Micros read_normalized() {
    const Micros v = read();
    if (base_ == kNoTime) base_ = v;
    return v - base_;
  }

  /// Step the clock by `delta` (what an operator's `date -s` or an NTP
  /// step adjustment does).  Steps are the classic way a "synchronized"
  /// host wrecks timestamp-dependent software; the consistent time service
  /// absorbs them into the offset within one round.
  void step(Micros delta) { cfg_.initial_offset_us += delta; }

  /// Fail-stop: after this, read() is a programming error (counted, not
  /// fatal — see read()).
  void fail() { alive_ = false; }
  /// A restarted host gets a fresh (still unsynchronized) clock; model the
  /// reboot by re-enabling reads and perturbing the offset.
  void restart(Micros new_offset_us) {
    alive_ = true;
    cfg_.initial_offset_us = new_offset_us;
    base_ = kNoTime;
  }

  [[nodiscard]] bool alive() const { return alive_; }
  /// Total fail-stop violations observed since construction: reads taken
  /// while the clock was failed.  Diagnostic for crash-model tests.
  [[nodiscard]] std::uint64_t reads_after_failure() const { return reads_after_failure_; }
  [[nodiscard]] const ClockConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  ClockConfig cfg_;
  bool alive_ = true;
  Micros base_ = kNoTime;
  mutable std::uint64_t reads_after_failure_ = 0;
};

/// A drift-free external time source with bounded transient skew — the
/// stand-in for NTP/GPS in the Section 3.3 drift-compensation strategy.
/// Readings equal real (simulated) time plus a bounded random-walk error.
class ReferenceTimeSource {
 public:
  ReferenceTimeSource(sim::Simulator& sim, Rng rng, Micros max_skew_us = 1000,
                      Micros epoch_us = 1056326400LL * 1000000LL)
      : sim_(sim), rng_(rng), max_skew_us_(max_skew_us), epoch_us_(epoch_us) {}

  /// Read the reference: real time + transient skew, no drift.
  [[nodiscard]] Micros read() {
    // Random-walk the skew by +/-10us per read, clamped to +/-max_skew.
    skew_us_ += rng_.range(-10, 10);
    if (skew_us_ > max_skew_us_) skew_us_ = max_skew_us_;
    if (skew_us_ < -max_skew_us_) skew_us_ = -max_skew_us_;
    return epoch_us_ + sim_.now() + skew_us_;
  }

 private:
  sim::Simulator& sim_;
  Rng rng_;
  Micros max_skew_us_;
  Micros epoch_us_;
  Micros skew_us_ = 0;
};

}  // namespace cts::clock
