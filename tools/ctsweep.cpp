// ctsweep — scenario-sweep harness: run a seed/config matrix of independent
// testbeds across worker threads and emit a deterministically merged report.
//
// Every scenario is one fully self-contained Testbed (its own simulator,
// LAN, ring, clocks, oracle); scenarios share nothing, so the sweep is
// embarrassingly parallel, and the merged JSONL is ordered by registration
// index — byte-identical output for any --jobs value.
//
// Examples:
//   ctsweep --seeds 16 --jobs 8
//   ctsweep --seed-list 3,5,9 --loss 0.02 --crash 1@300ms --recover 1@900ms
//   ctsweep --seeds 8 --style passive --duration 2s --out sweep.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "app/archipelago.hpp"
#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "app/topology.hpp"
#include "obs/oracle.hpp"
#include "obs/recorder.hpp"
#include "sim/sweep.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct FaultEvent {
  enum class Kind { kCrash, kRecover } kind;
  std::uint32_t replica;
  Micros at_us;
};

struct Options {
  std::vector<std::uint64_t> seeds;
  unsigned jobs = std::thread::hardware_concurrency();
  std::size_t servers = 3;
  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  double loss = 0.0;
  Micros duration_us = 1'000'000;
  std::vector<FaultEvent> faults;
  std::string out;  // "" = stdout
  /// Rings per scenario.  1 = the classic single-testbed sweep; >1 runs a
  /// serial archipelago per scenario (sharded KV through the gateway
  /// router) — scenario-level parallelism still comes from --jobs.
  std::size_t rings = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seeds N         run seeds 1..N (default 8)\n"
      "  --seed-list A,B   run exactly these seeds (overrides --seeds)\n"
      "  --jobs N          worker threads (default: hardware concurrency)\n"
      "  --servers N       server replicas per scenario (default 3)\n"
      "  --rings N         Totem rings per scenario; >1 runs the sharded\n"
      "                    KV archipelago through the gateway router (default 1)\n"
      "  --style S         active | semiactive | passive (default active)\n"
      "  --loss P          packet loss probability (default 0)\n"
      "  --duration T      simulated run length per scenario (default 1s)\n"
      "  --crash R@T       crash replica R at time T in every scenario\n"
      "  --recover R@T     recover replica R at time T in every scenario\n"
      "  --out PATH        write the merged JSONL here (default stdout)\n",
      argv0);
  std::exit(2);
}

Micros parse_time(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  const std::string unit = end ? std::string(end) : "";
  if (unit == "s") return static_cast<Micros>(v * 1e6);
  if (unit == "ms") return static_cast<Micros>(v * 1e3);
  return static_cast<Micros>(v);
}

Options parse(int argc, char** argv) {
  Options o;
  std::size_t nseeds = 8;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds") nseeds = std::stoul(need(i));
    else if (a == "--seed-list") {
      o.seeds.clear();
      std::string list = need(i);
      for (std::size_t p = 0; p < list.size();) {
        const auto comma = list.find(',', p);
        const auto part = list.substr(p, comma == std::string::npos ? comma : comma - p);
        o.seeds.push_back(std::stoull(part));
        if (comma == std::string::npos) break;
        p = comma + 1;
      }
    } else if (a == "--jobs") o.jobs = static_cast<unsigned>(std::stoul(need(i)));
    else if (a == "--servers") o.servers = std::stoul(need(i));
    else if (a == "--rings") o.rings = std::stoul(need(i));
    else if (a == "--style") {
      const auto v = need(i);
      if (v == "active") o.style = replication::ReplicationStyle::kActive;
      else if (v == "semiactive") o.style = replication::ReplicationStyle::kSemiActive;
      else if (v == "passive") o.style = replication::ReplicationStyle::kPassive;
      else usage(argv[0]);
    } else if (a == "--loss") o.loss = std::stod(need(i));
    else if (a == "--duration") o.duration_us = parse_time(need(i));
    else if (a == "--crash" || a == "--recover") {
      const auto kind = a == "--crash" ? FaultEvent::Kind::kCrash : FaultEvent::Kind::kRecover;
      const auto spec = need(i);
      const auto at = spec.find('@');
      if (at == std::string::npos) usage(argv[0]);
      o.faults.push_back(FaultEvent{kind,
                                    static_cast<std::uint32_t>(std::stoul(spec.substr(0, at))),
                                    parse_time(spec.substr(at + 1))});
    } else if (a == "--out") o.out = need(i);
    else usage(argv[0]);
  }
  if (o.seeds.empty()) {
    for (std::uint64_t s = 1; s <= nseeds; ++s) o.seeds.push_back(s);
  }
  if (o.jobs == 0) o.jobs = 1;
  return o;
}

/// One scenario: a full testbed run under this seed, summarized as JSON.
std::string run_scenario(const Options& o, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.servers = o.servers;
  cfg.style = o.style;
  cfg.seed = seed;
  cfg.net.loss_probability = o.loss;
  if (o.style == replication::ReplicationStyle::kPassive) cfg.checkpoint_every = 5;
  Testbed tb(cfg);
  tb.start();
  const Micros t0 = tb.sim().now();
  for (const auto& f : o.faults) {
    tb.sim().at(t0 + f.at_us, [&tb, f] {
      if (f.kind == FaultEvent::Kind::kCrash) tb.crash_server(f.replica);
      else tb.restart_server(f.replica);
    });
  }
  tb.sim().run_for(o.duration_us);
  tb.sync_scope_stats();

  std::uint64_t rounds = 0;
  bool all_alive = true;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    rounds = std::max(rounds, tb.server(s).time_service().stats().rounds_completed);
    all_alive &= tb.clock_of(tb.server_node(s)).alive();
  }
  std::string j = "{\"seed\": " + std::to_string(seed);
  j += ", \"events\": " + std::to_string(tb.sim().events_executed());
  j += ", \"ccs_rounds\": " + std::to_string(rounds);
  j += ", \"token_passes\": " +
       std::to_string(tb.recorder().trace().count(obs::EventKind::kTokenPass));
  j += ", \"oracle_violations\": " +
       std::to_string(tb.recorder().trace().count(obs::EventKind::kOracleViolation));
  j += ", \"all_alive\": ";
  j += all_alive ? "true" : "false";
  j += "}";
  return j;
}

/// Per-ring client driver for the multi-ring scenario: a short sharded KV
/// mix through the gateway router (local and remote keys), so every sweep
/// scenario exercises forwarding, handoff streams, and the cross-shard
/// oracle check.
sim::Task kv_loop(Archipelago& ar, std::size_t r, std::uint64_t seed, std::uint8_t& done) {
  const ShardMap& map = ar.shard_map();
  Rng rng(seed * 13 + 7 + r * 101);
  for (int i = 0; i < 16; ++i) {
    co_await ar.ring(r).sim().delay(2'000);
    const std::string key = "k" + std::to_string(rng.below(48));
    Bytes req;
    switch (rng.below(3)) {
      case 0: req = kv_put(key, "v" + std::to_string(i)); break;
      case 1: req = kv_get(key); break;
      default: req = kv_acquire(key, 1 + rng.below(4), 10'000); break;
    }
    (void)co_await ar.router(r).call(std::move(req));
  }
  (void)map;
  done = 1;
}

/// One multi-ring scenario: a serial archipelago (sharded KV + stamped ping
/// chain) under this seed, summarized as JSON.
std::string run_scenario_rings(const Options& o, std::uint64_t seed) {
  ArchipelagoConfig cfg;
  cfg.topo = TopologySpec{o.rings, o.servers, /*with_client=*/true};
  cfg.seed = seed;
  cfg.net.loss_probability = o.loss;
  cfg.threads = 1;  // scenario-level parallelism comes from --jobs
  cfg.app = [](const ShardMap& map, std::size_t ring) {
    KvStoreApp::Options kopt;
    kopt.shard_map = &map;
    kopt.ring = ring;
    return kv_store_factory(kopt);
  };
  Archipelago ar(cfg);
  ar.start();
  const Micros t0 = ar.now();
  for (const auto& f : o.faults) {
    auto& sim0 = ar.ring(0).sim();
    sim0.at(t0 + f.at_us, [&ar, f] {
      if (f.kind == FaultEvent::Kind::kCrash) ar.crash_server(0, f.replica);
      else ar.restart_server(0, f.replica);
    });
  }
  std::vector<std::uint8_t> done(o.rings, 0);
  for (std::size_t r = 0; r < o.rings; ++r) kv_loop(ar, r, seed, done[r]);
  for (std::size_t r = 0; r < o.rings; ++r) {
    for (int k = 0; k < 8; ++k) {
      ar.stamped_broadcast_at(t0 + 80'000 * (k + 1) + static_cast<Micros>(r) * 5'000, r,
                              (r + 1) % o.rings, Bytes{static_cast<std::uint8_t>(k)});
    }
  }
  auto all_done = [&] {
    for (std::size_t r = 0; r < o.rings; ++r) {
      if (!done[r]) return false;
    }
    return true;
  };
  while (!all_done() && ar.now() < t0 + o.duration_us) ar.run_until(ar.now() + 200'000);
  ar.run_for(1'000'000);

  std::uint64_t events = 0, delivered = 0, forwards = 0, cross_shard = 0, oracle_viol = 0;
  bool all_alive = true;
  for (std::size_t r = 0; r < o.rings; ++r) {
    auto& tb = ar.ring(r);
    events += tb.sim().events_executed();
    delivered += ar.stamped_deliveries(r);
    forwards += tb.recorder().counter("gateway.forwards").value;
    oracle_viol += tb.recorder().trace().count(obs::EventKind::kOracleViolation);
    if (const auto* orc = tb.recorder().oracle()) cross_shard += orc->cross_shard_violations();
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      all_alive &= tb.clock_of(tb.server_node(s)).alive();
    }
  }
  std::string j = "{\"seed\": " + std::to_string(seed);
  j += ", \"rings\": " + std::to_string(o.rings);
  j += ", \"events\": " + std::to_string(events);
  j += ", \"stamped_deliveries\": " + std::to_string(delivered);
  j += ", \"gateway_forwards\": " + std::to_string(forwards);
  j += ", \"cross_shard\": " + std::to_string(cross_shard);
  j += ", \"oracle_violations\": " + std::to_string(oracle_viol);
  j += ", \"all_alive\": ";
  j += all_alive ? "true" : "false";
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  sim::ScenarioSweep sweep;
  for (const std::uint64_t seed : o.seeds) {
    sweep.add("seed" + std::to_string(seed), [&o, seed] {
      return o.rings > 1 ? run_scenario_rings(o, seed) : run_scenario(o, seed);
    });
  }
  const auto results = sweep.run(o.jobs);
  const std::string merged = sim::ScenarioSweep::merged_jsonl(results);

  if (o.out.empty()) {
    std::fputs(merged.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(o.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
      return 2;
    }
    std::fputs(merged.c_str(), f);
    std::fclose(f);
  }

  // Any oracle violation would have aborted the scenario already (the
  // testbed oracle aborts on violation); the count is belt and braces.
  // Multi-ring scenarios additionally gate on zero cross-shard causality
  // violations and at least one gateway forward (the router must have
  // actually routed something).
  for (const auto& r : results) {
    if (r.output.find("\"oracle_violations\": 0") == std::string::npos) return 1;
    if (o.rings > 1) {
      if (r.output.find("\"cross_shard\": 0") == std::string::npos) return 1;
      if (r.output.find("\"gateway_forwards\": 0,") != std::string::npos) return 1;
    }
  }
  std::fprintf(stderr, "ctsweep: %zu scenarios, %u jobs, ok\n", results.size(), o.jobs);
  return 0;
}
