// ctsweep — scenario-sweep harness: run a seed/config matrix of independent
// testbeds across worker threads and emit a deterministically merged report.
//
// Every scenario is one fully self-contained Testbed (its own simulator,
// LAN, ring, clocks, oracle); scenarios share nothing, so the sweep is
// embarrassingly parallel, and the merged JSONL is ordered by registration
// index — byte-identical output for any --jobs value.
//
// Examples:
//   ctsweep --seeds 16 --jobs 8
//   ctsweep --seed-list 3,5,9 --loss 0.02 --crash 1@300ms --recover 1@900ms
//   ctsweep --seeds 8 --style passive --duration 2s --out sweep.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "app/testbed.hpp"
#include "obs/recorder.hpp"
#include "sim/sweep.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct FaultEvent {
  enum class Kind { kCrash, kRecover } kind;
  std::uint32_t replica;
  Micros at_us;
};

struct Options {
  std::vector<std::uint64_t> seeds;
  unsigned jobs = std::thread::hardware_concurrency();
  std::size_t servers = 3;
  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  double loss = 0.0;
  Micros duration_us = 1'000'000;
  std::vector<FaultEvent> faults;
  std::string out;  // "" = stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seeds N         run seeds 1..N (default 8)\n"
      "  --seed-list A,B   run exactly these seeds (overrides --seeds)\n"
      "  --jobs N          worker threads (default: hardware concurrency)\n"
      "  --servers N       server replicas per scenario (default 3)\n"
      "  --style S         active | semiactive | passive (default active)\n"
      "  --loss P          packet loss probability (default 0)\n"
      "  --duration T      simulated run length per scenario (default 1s)\n"
      "  --crash R@T       crash replica R at time T in every scenario\n"
      "  --recover R@T     recover replica R at time T in every scenario\n"
      "  --out PATH        write the merged JSONL here (default stdout)\n",
      argv0);
  std::exit(2);
}

Micros parse_time(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  const std::string unit = end ? std::string(end) : "";
  if (unit == "s") return static_cast<Micros>(v * 1e6);
  if (unit == "ms") return static_cast<Micros>(v * 1e3);
  return static_cast<Micros>(v);
}

Options parse(int argc, char** argv) {
  Options o;
  std::size_t nseeds = 8;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds") nseeds = std::stoul(need(i));
    else if (a == "--seed-list") {
      o.seeds.clear();
      std::string list = need(i);
      for (std::size_t p = 0; p < list.size();) {
        const auto comma = list.find(',', p);
        const auto part = list.substr(p, comma == std::string::npos ? comma : comma - p);
        o.seeds.push_back(std::stoull(part));
        if (comma == std::string::npos) break;
        p = comma + 1;
      }
    } else if (a == "--jobs") o.jobs = static_cast<unsigned>(std::stoul(need(i)));
    else if (a == "--servers") o.servers = std::stoul(need(i));
    else if (a == "--style") {
      const auto v = need(i);
      if (v == "active") o.style = replication::ReplicationStyle::kActive;
      else if (v == "semiactive") o.style = replication::ReplicationStyle::kSemiActive;
      else if (v == "passive") o.style = replication::ReplicationStyle::kPassive;
      else usage(argv[0]);
    } else if (a == "--loss") o.loss = std::stod(need(i));
    else if (a == "--duration") o.duration_us = parse_time(need(i));
    else if (a == "--crash" || a == "--recover") {
      const auto kind = a == "--crash" ? FaultEvent::Kind::kCrash : FaultEvent::Kind::kRecover;
      const auto spec = need(i);
      const auto at = spec.find('@');
      if (at == std::string::npos) usage(argv[0]);
      o.faults.push_back(FaultEvent{kind,
                                    static_cast<std::uint32_t>(std::stoul(spec.substr(0, at))),
                                    parse_time(spec.substr(at + 1))});
    } else if (a == "--out") o.out = need(i);
    else usage(argv[0]);
  }
  if (o.seeds.empty()) {
    for (std::uint64_t s = 1; s <= nseeds; ++s) o.seeds.push_back(s);
  }
  if (o.jobs == 0) o.jobs = 1;
  return o;
}

/// One scenario: a full testbed run under this seed, summarized as JSON.
std::string run_scenario(const Options& o, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.servers = o.servers;
  cfg.style = o.style;
  cfg.seed = seed;
  cfg.net.loss_probability = o.loss;
  if (o.style == replication::ReplicationStyle::kPassive) cfg.checkpoint_every = 5;
  Testbed tb(cfg);
  tb.start();
  const Micros t0 = tb.sim().now();
  for (const auto& f : o.faults) {
    tb.sim().at(t0 + f.at_us, [&tb, f] {
      if (f.kind == FaultEvent::Kind::kCrash) tb.crash_server(f.replica);
      else tb.restart_server(f.replica);
    });
  }
  tb.sim().run_for(o.duration_us);
  tb.sync_scope_stats();

  std::uint64_t rounds = 0;
  bool all_alive = true;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    rounds = std::max(rounds, tb.server(s).time_service().stats().rounds_completed);
    all_alive &= tb.clock_of(tb.server_node(s)).alive();
  }
  std::string j = "{\"seed\": " + std::to_string(seed);
  j += ", \"events\": " + std::to_string(tb.sim().events_executed());
  j += ", \"ccs_rounds\": " + std::to_string(rounds);
  j += ", \"token_passes\": " +
       std::to_string(tb.recorder().trace().count(obs::EventKind::kTokenPass));
  j += ", \"oracle_violations\": " +
       std::to_string(tb.recorder().trace().count(obs::EventKind::kOracleViolation));
  j += ", \"all_alive\": ";
  j += all_alive ? "true" : "false";
  j += "}";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  sim::ScenarioSweep sweep;
  for (const std::uint64_t seed : o.seeds) {
    sweep.add("seed" + std::to_string(seed), [&o, seed] { return run_scenario(o, seed); });
  }
  const auto results = sweep.run(o.jobs);
  const std::string merged = sim::ScenarioSweep::merged_jsonl(results);

  if (o.out.empty()) {
    std::fputs(merged.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(o.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", o.out.c_str());
      return 2;
    }
    std::fputs(merged.c_str(), f);
    std::fclose(f);
  }

  // Any oracle violation would have aborted the scenario already (the
  // testbed oracle aborts on violation); the count is belt and braces.
  for (const auto& r : results) {
    if (r.output.find("\"oracle_violations\": 0") == std::string::npos) return 1;
  }
  std::fprintf(stderr, "ctsweep: %zu scenarios, %u jobs, ok\n", results.size(), o.jobs);
  return 0;
}
