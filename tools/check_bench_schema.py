#!/usr/bin/env python3
"""Validate a bench trajectory file (BENCH_sim_core.json schema v1).

Usage: check_bench_schema.py [--delta] FILE [FILE...]

The recorded performance trajectory is an append-only series of labeled
runs; CI gates on this checker so a malformed append (truncated write,
duplicate label, missing metric) is caught at merge time rather than when
someone next tries to plot the trajectory.

With --delta, additionally print a per-benchmark delta table for the most
recent '<prefix>-before-*' / '<prefix>-after-*' pair in each file (ns/op
and items/s where present).  The table is informational: CI runs it as a
non-gating step so reviewers see the measured effect of an optimization PR
without digging through raw JSON.

Exit status: 0 if every file validates, 1 otherwise (all problems are
reported, not just the first).
"""

import json
import sys

# Every benchmark name the trajectory may carry (arguments like
# 'BM_EventScheduleFire/64' are matched on the part before the first '/').
# A new benchmark must be registered here when it is introduced, so a typo'd
# or renamed metric fails the gate instead of silently forking the series.
KNOWN_BENCHMARKS = frozenset({
    "BM_EventScheduleFire",
    "BM_EventScheduleFireCapture40",
    "BM_EventScheduleBurst64",
    "BM_EventCancel64",
    "BM_TimerReschedule",
    "BM_NetBroadcast1400B",
    "BM_TokenRingEventsPerSec",
    "BM_RingBatchThroughput",
    "BM_StateTransferVerify",
    "BM_OracleOverhead",
    # PR 8: island-parallel simulation + scenario-sweep harness.
    "BM_ArchipelagoEventsPerSec",
    "BM_ScenarioSweep",
    # PR 9: sharded topology + gateway routing.
    "BM_ShardedGatewayOpsPerSec",
})

# Optimization PRs whose before/after pair is part of the recorded history:
# the trajectory must keep BOTH runs of each listed prefix, so the delta
# stays reconstructible forever (a later rewrite that drops one side fails
# the gate).
REQUIRED_PAIR_PREFIXES = frozenset({
    # PR 10: deterministic flat containers under the delivery pipeline.
    "pr10",
})


def fail(problems, path, msg):
    problems.append(f"{path}: {msg}")


def check_result(problems, path, label, res, idx):
    where = f"runs[{label!r}].results[{idx}]"
    if not isinstance(res, dict):
        fail(problems, path, f"{where} is not an object")
        return
    name = res.get("name")
    if not isinstance(name, str) or not name:
        fail(problems, path, f"{where} has no benchmark name")
        return
    base = name.split("/", 1)[0]
    if base not in KNOWN_BENCHMARKS:
        fail(problems, path,
             f"{where}: unknown benchmark {base!r}; register new metrics in "
             f"KNOWN_BENCHMARKS (tools/check_bench_schema.py) when introducing them")
    for key in ("iterations", "real_ns_per_op", "cpu_ns_per_op"):
        v = res.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            fail(problems, path, f"{where} ({name}): {key!r} must be a non-negative number, got {v!r}")
    ips = res.get("items_per_second")
    if ips is not None and (not isinstance(ips, (int, float)) or isinstance(ips, bool) or ips < 0):
        fail(problems, path, f"{where} ({name}): optional 'items_per_second' must be a non-negative number, got {ips!r}")


def check_file(problems, path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(problems, path, f"unreadable: {e}")
        return
    except json.JSONDecodeError as e:
        fail(problems, path, f"not valid JSON: {e}")
        return

    if not isinstance(doc, dict):
        fail(problems, path, "top level must be an object")
        return
    if doc.get("schema") != 1:
        fail(problems, path, f"'schema' must be 1, got {doc.get('schema')!r}")
    if not isinstance(doc.get("benchmark"), str) or not doc.get("benchmark"):
        fail(problems, path, "'benchmark' must be a non-empty string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(problems, path, "'runs' must be a non-empty array")
        return

    seen_labels = set()
    labels_in_order = []
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(problems, path, f"runs[{i}] is not an object")
            continue
        label = run.get("label")
        if not isinstance(label, str) or not label:
            fail(problems, path, f"runs[{i}] has no label")
            continue
        if label in seen_labels:
            fail(problems, path, f"duplicate run label {label!r}")
        seen_labels.add(label)
        labels_in_order.append(label)
        results = run.get("results")
        if not isinstance(results, list) or not results:
            fail(problems, path, f"runs[{label!r}] has no results")
            continue
        names = set()
        for j, res in enumerate(results):
            check_result(problems, path, label, res, j)
            if isinstance(res, dict) and res.get("name") in names:
                fail(problems, path, f"runs[{label!r}] repeats benchmark {res.get('name')!r}")
            if isinstance(res, dict) and isinstance(res.get("name"), str):
                names.add(res["name"])

    check_pairing(problems, path, labels_in_order)


def pair_prefix(label, marker):
    """The pairing key of a '<prefix>-before-...' / '<prefix>-after-...'
    label: the text before the marker segment, or None if the label has no
    such segment.  The marker must be a whole dash-delimited segment, so
    'pr9-aftermath-fix' does not count as an 'after' label."""
    segments = label.split("-")
    for k, seg in enumerate(segments):
        if seg == marker and k > 0:
            return "-".join(segments[:k])
    return None


def check_pairing(problems, path, labels):
    """Every '<prefix>-after-*' run must ride with its '<prefix>-before-*'
    partner: an optimization PR that records only the after-number has lost
    its baseline, and the trajectory can no longer show the delta.  The
    prefixes in REQUIRED_PAIR_PREFIXES must be present as complete pairs."""
    before_prefixes = {pair_prefix(lab, "before") for lab in labels}
    after_prefixes = {pair_prefix(lab, "after") for lab in labels}
    for lab in labels:
        prefix = pair_prefix(lab, "after")
        if prefix is not None and prefix not in before_prefixes:
            fail(problems, path,
                 f"run label {lab!r} has no matching {prefix + '-before-*'!r} partner: "
                 f"record the baseline run before the optimized one")
    for prefix in sorted(REQUIRED_PAIR_PREFIXES):
        missing = [m for m, seen in (("before", before_prefixes), ("after", after_prefixes))
                   if prefix not in seen]
        if missing:
            fail(problems, path,
                 f"required pair {prefix!r} is incomplete: missing "
                 f"{', '.join(prefix + '-' + m + '-*' for m in missing)} "
                 f"(REQUIRED_PAIR_PREFIXES in tools/check_bench_schema.py)")


def print_delta_table(path):
    """Print the per-benchmark delta between the newest before/after pair."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return  # validation already reported the problem
    runs = doc.get("runs") or []
    by_label = {r.get("label"): r for r in runs if isinstance(r, dict)}
    pair = None  # (prefix, before_label, after_label); newest after wins
    for lab in by_label:
        prefix = pair_prefix(lab or "", "after")
        if prefix is None:
            continue
        before = next((b for b in by_label if pair_prefix(b or "", "before") == prefix), None)
        if before is not None:
            pair = (prefix, before, lab)
    if pair is None:
        print(f"{path}: no before/after pair to diff")
        return
    prefix, before_lab, after_lab = pair
    before = {r["name"]: r for r in by_label[before_lab].get("results", [])
              if isinstance(r, dict) and "name" in r}
    after = {r["name"]: r for r in by_label[after_lab].get("results", [])
             if isinstance(r, dict) and "name" in r}
    print(f"\n{path}: {before_lab!r} -> {after_lab!r}")
    header = f"{'benchmark':<38} {'ns/op before':>14} {'ns/op after':>14} {'delta':>8}"
    print(header)
    print("-" * len(header))
    for name in sorted(set(before) & set(after)):
        b, a = before[name].get("cpu_ns_per_op"), after[name].get("cpu_ns_per_op")
        if not isinstance(b, (int, float)) or not isinstance(a, (int, float)) or not b:
            continue
        pct = (a - b) / b * 100.0
        print(f"{name:<38} {b:>14.1f} {a:>14.1f} {pct:>+7.1f}%")
        bi, ai = before[name].get("items_per_second"), after[name].get("items_per_second")
        if isinstance(bi, (int, float)) and isinstance(ai, (int, float)) and bi:
            ipct = (ai - bi) / bi * 100.0
            print(f"{'  items/s':<38} {bi:>14.3g} {ai:>14.3g} {ipct:>+7.1f}%")
    only = sorted(set(before) ^ set(after))
    if only:
        print(f"  (unpaired benchmarks skipped: {', '.join(only)})")


def main(argv):
    args = argv[1:]
    delta = "--delta" in args
    paths = [a for a in args if a != "--delta"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    for path in paths:
        check_file(problems, path)
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    if not problems:
        print(f"ok: {len(paths)} trajectory file(s) validate")
    if delta:
        for path in paths:
            print_delta_table(path)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
