// detlint — determinism & protocol-invariant static analysis for this repo.
//
// The whole reproduction rests on the simulation being bit-deterministic:
// CCS renders clock reads consistent only because every replica sees the
// same totally-ordered events, and the trace-based tests assume identical
// seeds yield identical traces.  detlint is the build-time guard for that
// property — and, since v2, for the thread-safety properties the parallel
// simulator (ROADMAP item 4) will depend on.
//
// v2 architecture: a comment/string/raw-string-aware stripper feeds both a
// line-oriented regex pass (the v1 rules below) and a tokenizer with a
// brace/scope tracker (namespace / class / function / block).  lint_sources
// runs two passes: pass 1 analyzes each file and records every mutable
// namespace-scope global into a cross-file symbol index; pass 2 flags
// references to those globals from the protocol layers.
//
// Determinism rules (v1, regex pass):
//
//   unordered-container   iteration over std::unordered_{map,set} in a
//                         protocol layer (src/net, src/sim, src/totem,
//                         src/gcs, src/replication, src/cts) — hash-map
//                         iteration order is not part of the protocol state
//                         and silently varies across library versions.
//   wall-clock            system_clock / steady_clock / gettimeofday() /
//                         time() / clock_gettime() / ftime() anywhere
//                         outside src/obs export paths — real time leaking
//                         into a simulated run destroys replayability.
//   raw-random            std::rand, srand, random_device, mt19937 outside
//                         src/common/rng — all randomness must flow from
//                         the seeded, forkable Rng.
//   side-effect-assert    assert(...) whose argument mutates state: the
//                         mutation vanishes under NDEBUG, so Release and
//                         Debug replicas diverge.
//   type-pun              reinterpret_cast / memcpy / memmove outside
//                         src/common/bytes.hpp — byte-level punning is
//                         centralized in the one audited codec.
//   float-compare         == / != against floating-point literals — exact
//                         float equality in clock arithmetic is
//                         platform-dependent.
//   pointer-key           std::map/std::set keyed by a pointer type —
//                         pointer order is allocation order, i.e.
//                         nondeterministic across runs.
//   scoped-timer          direct Simulator scheduling from a node-scoped
//                         layer, bypassing the node's sim::TaskScope.
//   heap-callback         std::function on the event hot path.
//
// Thread-hazard rules (v2, token pass; layers src/sim, src/net, src/totem,
// src/gcs, src/cts, src/replication are "hazard layers" — the code the
// parallel simulator will run on worker threads):
//
//   static-mutable-state  mutable namespace-scope or class-static variable
//                         declared in a hazard layer: shared across the
//                         worker threads of a parallel run.  const,
//                         constexpr, constinit, thread_local, std::atomic,
//                         std::mutex and std::once_flag are exempt.
//   static-local          function-local `static` (thread-hostile lazy
//                         singleton) in a hazard layer: initialization is
//                         serialized but every later access races.  Same
//                         exemptions as static-mutable-state.
//   global-in-callback    reference, from a hazard layer, to a mutable
//                         namespace-scope global defined anywhere in the
//                         scanned set (cross-file pass): event callbacks
//                         run per-node today and per-thread tomorrow.
//   iterator-invalidation range-for over a container that the loop body
//                         mutates (push_back/erase/...): undefined behavior
//                         today, a heisenbug under concurrent delivery.
//   callback-under-iteration
//                         range-for over a *member* container whose loop
//                         variable is invoked as a callback: the callee can
//                         subscribe/unsubscribe, growing the container and
//                         invalidating the iterator mid-loop.  Iterate by
//                         index or snapshot the container first.  (Member
//                         detection is the `name_` suffix / `.`/`->` access
//                         convention, so iterating a local copy is fine.)
//   cross-island-capture  lambda with a default capture ([&], [=]) or [this]
//                         passed to a cross-island post() in src/sim or
//                         src/net: the closure is drained into the
//                         destination island's heap and runs on that
//                         island's worker thread, so implicit captures reach
//                         source-island state across threads.  Name every
//                         capture explicitly — move the payload, or point at
//                         destination-owned state.
//
// Suppression: a finding is silenced by `detlint:allow(<rule>[,<rule>...])`
// in a comment on the same line or the line directly above, and the
// suppression MUST carry a justification after the closing parenthesis,
// e.g. a trailing `: simulated syscall facade, reads the group clock`.
// Bare or unused suppressions are themselves findings, so stale allows
// cannot accumulate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace detlint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

/// One in-memory source file for lint_sources (tests feed synthetic
/// multi-file sets; lint_tree loads them from disk).
struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string content;
};

/// Lint `content` as if it lived at repo-relative `path` (forward slashes;
/// layer-scoped rules key off the path prefix).  Findings are ordered by
/// line number.  Single-file convenience wrapper over lint_sources — the
/// cross-file pass sees only this file.
std::vector<Finding> lint_content(const std::string& path, const std::string& content);

/// The full two-pass analysis over a set of files: per-file rules plus the
/// cross-file mutable-global reference pass.  Findings are grouped by file
/// in input order, ordered by line within a file.
std::vector<Finding> lint_sources(const std::vector<SourceFile>& files);

/// Recursively lint every C++ source (.cpp/.cc/.cxx/.hpp/.h/.hh) under
/// root/<subdir> for each listed subdir, skipping build trees and .git.
/// Findings carry root-relative paths; file order (and therefore output
/// order) is sorted, so the tool's own output is deterministic.
std::vector<Finding> lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned = nullptr);

/// GCC-style one-line rendering: "path:line: severity: message [rule]".
[[nodiscard]] std::string format_finding(const Finding& f);

/// The whole result set as a JSON object (stable field order):
///   {"files_scanned": N, "errors": E, "warnings": W,
///    "findings": [{"file": ..., "line": ..., "rule": ...,
///                  "severity": "error"|"warning", "message": ...}, ...]}
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  std::size_t files_scanned);

/// Severity-ranked exit code: 0 = clean, 1 = warnings only, 2 = errors.
[[nodiscard]] int exit_code(const std::vector<Finding>& findings);

}  // namespace detlint
