// detlint — determinism & protocol-invariant static analysis for this repo.
//
// The whole reproduction rests on the simulation being bit-deterministic:
// CCS renders clock reads consistent only because every replica sees the
// same totally-ordered events, and the trace-based tests assume identical
// seeds yield identical traces.  detlint is the build-time guard for that
// property: a line-oriented scanner (comment- and string-literal-aware,
// deliberately not a full C++ front end) that flags the hazard classes
// which historically break reproducibility after the fact:
//
//   unordered-container   iteration over std::unordered_{map,set} in a
//                         protocol layer (src/net, src/sim, src/totem,
//                         src/gcs, src/replication, src/cts) — hash-map
//                         iteration order is not part of the protocol state
//                         and silently varies across library versions.
//   wall-clock            system_clock / steady_clock / gettimeofday() /
//                         time() / clock_gettime() / ftime() anywhere
//                         outside src/obs export paths — real time leaking
//                         into a simulated run destroys replayability.
//   raw-random            std::rand, srand, random_device, mt19937 outside
//                         src/common/rng — all randomness must flow from
//                         the seeded, forkable Rng.
//   side-effect-assert    assert(...) whose argument mutates state: the
//                         mutation vanishes under NDEBUG, so Release and
//                         Debug replicas diverge.
//   type-pun              reinterpret_cast / memcpy / memmove outside
//                         src/common/bytes.hpp — byte-level punning is
//                         centralized in the one audited codec.
//   float-compare         == / != against floating-point literals — exact
//                         float equality in clock arithmetic is
//                         platform-dependent.
//   pointer-key           std::map/std::set keyed by a pointer type —
//                         pointer order is allocation order, i.e.
//                         nondeterministic across runs.
//
// Suppression: a finding is silenced by `detlint:allow(<rule>[,<rule>...])`
// in a comment on the same line or the line directly above, and the
// suppression MUST carry a justification after the closing parenthesis,
// e.g. a trailing `: simulated syscall facade, reads the group clock`.
// Bare or unused suppressions are themselves findings, so stale allows
// cannot accumulate.
#pragma once

#include <string>
#include <vector>

namespace detlint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

/// Lint `content` as if it lived at repo-relative `path` (forward slashes;
/// layer-scoped rules key off the path prefix).  Findings are ordered by
/// line number.
std::vector<Finding> lint_content(const std::string& path, const std::string& content);

/// Recursively lint every C++ source (.cpp/.cc/.cxx/.hpp/.h/.hh) under
/// root/<subdir> for each listed subdir, skipping build trees and .git.
/// Findings carry root-relative paths; file order (and therefore output
/// order) is sorted, so the tool's own output is deterministic.
std::vector<Finding> lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned = nullptr);

/// GCC-style one-line rendering: "path:line: severity: message [rule]".
[[nodiscard]] std::string format_finding(const Finding& f);

/// Severity-ranked exit code: 0 = clean, 1 = warnings only, 2 = errors.
[[nodiscard]] int exit_code(const std::vector<Finding>& findings);

}  // namespace detlint
