#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace detlint {
namespace {

// --- Path classification ------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Protocol layers where iteration order and container choice are part of
/// the replicated state machine's determinism contract.  The same layers
/// are the thread-hazard layers: they are the code a parallel simulator
/// (ROADMAP item 4) will run on worker threads, so shared mutable state
/// here is tomorrow's data race.
bool in_protocol_layer(const std::string& path) {
  static const char* kLayers[] = {"src/net/",  "src/sim/",         "src/totem/",
                                  "src/gcs/",  "src/replication/", "src/cts/"};
  for (const char* l : kLayers) {
    if (starts_with(path, l)) return true;
  }
  return false;
}

/// src/obs export paths may stamp real timestamps on exported artifacts.
bool wall_clock_exempt(const std::string& path) { return starts_with(path, "src/obs/"); }

/// The seeded deterministic RNG implementation itself.
bool rng_home(const std::string& path) { return starts_with(path, "src/common/rng"); }

/// The one audited byte-punning site (fixed-width little-endian codec).
bool bytes_home(const std::string& path) { return path == "src/common/bytes.hpp"; }

/// Delivery-pipeline layers migrated to cts::FlatMap/FlatSet/DenseNodeIndex
/// (doc/PERFORMANCE.md): a node-based std::map here is usually an
/// accidental per-element-allocation regression, not a deliberate
/// stable-reference requirement.
bool in_flat_container_layer(const std::string& path) {
  static const char* kLayers[] = {"src/net/", "src/gcs/", "src/totem/", "src/obs/"};
  for (const char* l : kLayers) {
    if (starts_with(path, l)) return true;
  }
  return false;
}

/// Layers whose scheduled work belongs to a node: timers and continuations
/// must be registered with the node's sim::TaskScope so a fail-stop crash
/// cancels them.  (src/net schedules on behalf of the destination's scope
/// internally; src/sim implements the scope; baselines/storage model
/// node-independent hardware.)
bool in_node_layer(const std::string& path) {
  static const char* kLayers[] = {"src/totem/", "src/gcs/", "src/replication/",
                                  "src/orb/",   "src/cts/", "src/app/"};
  for (const char* l : kLayers) {
    if (starts_with(path, l)) return true;
  }
  return false;
}

/// Where the callback/iteration rules run: the hazard layers plus the app
/// wiring (the Testbed iterates subscriber lists too).
bool in_callback_layer(const std::string& path) {
  return in_protocol_layer(path) || starts_with(path, "src/app/");
}

/// Only src/ globals enter the cross-file index: event callbacks live in
/// src/, and a test's namespace-scope fixture cannot be reached from there.
bool indexed_for_globals(const std::string& path) { return starts_with(path, "src/"); }

// --- Line splitting & comment/string stripping --------------------------------

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// One source line split into the analyzable code text (string/char literal
/// contents and comments blanked with spaces, so offsets are preserved) and
/// the concatenated comment text (where suppressions live).
struct StrippedLine {
  std::string code;
  std::string comment;
};

/// Lexer state carried across physical lines: /* */ blocks, raw string
/// literals (R"delim( ... )delim"), and line-continuation splices — a
/// trailing backslash extends both // comments and ordinary string
/// literals onto the next physical line.
struct StripState {
  bool in_block = false;        // inside /* ... */
  bool in_line_comment = false; // a // comment spliced onward with a trailing backslash
  bool in_raw = false;          // inside a raw string literal
  std::string raw_delim;        // the )delim" terminator we are scanning for
  bool in_string = false;       // inside a spliced ordinary literal
  char quote = '"';
};

/// Would the '"' at `at` open a raw string?  True when the characters
/// before it form an encoding prefix ending in R (R, u8R, uR, UR, LR) that
/// is not the tail of a longer identifier.
bool raw_prefix_before(const std::string& line, std::size_t at) {
  if (at == 0 || line[at - 1] != 'R') return false;
  std::size_t b = at - 1;  // start of the identifier that ends at the quote
  while (b > 0 && (std::isalnum(static_cast<unsigned char>(line[b - 1])) != 0 ||
                   line[b - 1] == '_')) {
    --b;
  }
  const std::string prefix = line.substr(b, at - b);
  return prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "UR" || prefix == "LR";
}

/// Comment/string-aware stripper.  Raw strings are blanked in full (only
/// the opening and closing quote survive, so the tokenizer still sees one
/// string token); escape sequences inside ordinary literals are honored.
StrippedLine strip_line(const std::string& line, StripState& st) {
  StrippedLine out;
  out.code.reserve(line.size());
  const bool spliced = !line.empty() && line.back() == '\\';
  if (st.in_line_comment) {
    // The previous line's // comment was spliced onto this one.
    out.comment = line;
    out.code.append(line.size(), ' ');
    st.in_line_comment = spliced;
    return out;
  }
  std::size_t i = 0;
  while (i < line.size()) {
    if (st.in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        st.in_block = false;
        out.code += "  ";
        i += 2;
      } else {
        out.comment.push_back(line[i]);
        out.code.push_back(' ');
        ++i;
      }
      continue;
    }
    if (st.in_raw) {
      const std::size_t end = line.find(st.raw_delim, i);
      if (end == std::string::npos) {
        out.code.append(line.size() - i, ' ');
        break;
      }
      // Blank through the delimiter, keep the closing quote.
      out.code.append(end + st.raw_delim.size() - 1 - i, ' ');
      out.code.push_back('"');
      i = end + st.raw_delim.size();
      st.in_raw = false;
      continue;
    }
    if (st.in_string) {
      // Continuation of a spliced ordinary literal.
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (line[i] == st.quote) {
          out.code.push_back(st.quote);
          ++i;
          st.in_string = false;
          break;
        }
        out.code.push_back(' ');
        ++i;
      }
      if (i >= line.size() && st.in_string && !spliced) st.in_string = false;
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      out.comment.append(line, i + 2, std::string::npos);
      out.code.append(line.size() - i, ' ');
      st.in_line_comment = spliced;
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      st.in_block = true;
      out.code += "  ";
      i += 2;
      continue;
    }
    // A ' between digits is a C++14 digit separator (5'000), not a char
    // literal — the repo uses them pervasively for durations.
    if (c == '\'' && i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) != 0 &&
        i + 1 < line.size() && std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0) {
      out.code.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && raw_prefix_before(line, i)) {
      // R"delim( ... : blank the delimiter, remember the `)delim"` closer.
      const std::size_t open = line.find('(', i + 1);
      if (open == std::string::npos) {  // ill-formed; treat as ordinary text
        out.code.push_back(c);
        ++i;
        continue;
      }
      st.raw_delim = ")" + line.substr(i + 1, open - i - 1) + "\"";
      out.code.push_back('"');
      out.code.append(open - i, ' ');
      i = open + 1;
      st.in_raw = true;
      continue;
    }
    if (c == '"' || c == '\'') {
      st.quote = c;
      out.code.push_back(c);
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (line[i] == st.quote) {
          out.code.push_back(st.quote);
          ++i;
          closed = true;
          break;
        }
        out.code.push_back(' ');
        ++i;
      }
      // An unterminated literal on a spliced line continues on the next.
      if (!closed && spliced) st.in_string = true;
      continue;
    }
    out.code.push_back(c);
    ++i;
  }
  return out;
}

// --- Suppressions --------------------------------------------------------------

struct Suppression {
  int comment_line = 0;  // 1-based line the allow-comment sits on
  int target_line = 0;   // line the suppression covers (first code line at/below)
  std::set<std::string> rules;
  bool justified = false;
  bool used = false;
};

bool has_code(const StrippedLine& l) {
  return l.code.find_first_not_of(" \t") != std::string::npos;
}

/// Parse every `detlint:allow(rule[,rule...]) <justification>` in the
/// comment text of `lines`.
std::vector<Suppression> collect_suppressions(const std::vector<StrippedLine>& lines) {
  static const std::regex re(R"(detlint:allow\(([A-Za-z0-9_, \t-]+)\))");
  std::vector<Suppression> sups;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    std::smatch m;
    if (!std::regex_search(comment, m, re)) continue;
    Suppression s;
    s.comment_line = static_cast<int>(i + 1);
    // A trailing comment covers its own line; a standalone comment covers
    // the first code line below it (skipping the rest of the comment
    // block), so multi-line justifications work.
    s.target_line = s.comment_line;
    if (!has_code(lines[i])) {
      for (std::size_t j = i + 1; j < lines.size() && j < i + 8; ++j) {
        if (has_code(lines[j])) {
          s.target_line = static_cast<int>(j + 1);
          break;
        }
      }
    }
    std::stringstream ss(m[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) s.rules.insert(rule.substr(b, e - b + 1));
    }
    // Justification: any word characters after the closing parenthesis.
    const std::string rest = m.suffix().str();
    s.justified = std::any_of(rest.begin(), rest.end(),
                              [](unsigned char c) { return std::isalnum(c) != 0; });
    sups.push_back(std::move(s));
  }
  return sups;
}

bool covers(const Suppression& s, const std::string& rule, int line) {
  return (line == s.comment_line || line == s.target_line) && s.rules.count(rule) > 0;
}

// --- Tokenizer -----------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = kPunct;
  std::string text;
  int line = 0;  // 1-based
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Tokenize the stripped code lines.  Preprocessor lines (and their
/// backslash continuations) are skipped entirely — a `#define X {` must not
/// unbalance the brace tracker.  Multi-char operators that matter to the
/// scope walker (`::` vs `:`, `==`/`!=`/`<=`/`>=` vs `=`) are kept whole.
std::vector<Tok> tokenize(const std::vector<StrippedLine>& lines) {
  static const char* kOps[] = {"->*", "...", "<<=", ">>=", "::", "->", "==", "!=", "<=",
                               ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^=", "++", "--"};
  std::vector<Tok> toks;
  bool in_pp = false;  // inside a (possibly spliced) preprocessor directive
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const int line_no = static_cast<int>(li + 1);
    const std::size_t first = code.find_first_not_of(" \t");
    const bool spliced = !code.empty() && code[code.find_last_not_of(" \t") == std::string::npos
                                                   ? 0
                                                   : code.find_last_not_of(" \t")] == '\\';
    if (in_pp) {
      in_pp = spliced;
      continue;
    }
    if (first != std::string::npos && code[first] == '#') {
      in_pp = spliced;
      continue;
    }
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == ' ' || c == '\t' || c == '\\') {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < code.size() && ident_char(code[j])) ++j;
        toks.push_back({Tok::kIdent, code.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < code.size() && (ident_char(code[j]) || code[j] == '.' || code[j] == '\'')) ++j;
        toks.push_back({Tok::kNumber, code.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        // The stripper blanked the contents but kept both quotes; scan to
        // the partner quote (possibly on a later physical line for spliced
        // literals — then just emit what we have).
        std::size_t j = i + 1;
        while (j < code.size() && code[j] != c) ++j;
        toks.push_back({Tok::kString, std::string(1, c) + c, line_no});
        i = (j < code.size()) ? j + 1 : code.size();
        continue;
      }
      bool matched = false;
      for (const char* op : kOps) {
        const std::size_t n = std::string::traits_type::length(op);
        if (code.compare(i, n, op) == 0) {
          toks.push_back({Tok::kPunct, op, line_no});
          i += n;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      toks.push_back({Tok::kPunct, std::string(1, c), line_no});
      ++i;
    }
  }
  return toks;
}

// --- Scope walker & declaration analysis ---------------------------------------

enum class ScopeKind : std::uint8_t { kNamespace, kClass, kEnum, kFunction, kBlock, kInit };

bool contains_tok(const std::vector<const Tok*>& stmt, const char* text) {
  for (const Tok* t : stmt) {
    if (t->text == text) return true;
  }
  return false;
}

/// Classify the scope opened by a `{` from the statement head before it.
ScopeKind classify_brace(const std::vector<const Tok*>& stmt, ScopeKind parent) {
  const bool in_code = parent == ScopeKind::kFunction || parent == ScopeKind::kBlock;
  if (stmt.empty()) return in_code ? ScopeKind::kBlock : ScopeKind::kInit;
  if (contains_tok(stmt, "namespace")) return ScopeKind::kNamespace;
  if (stmt.front()->text == "extern" && stmt.size() >= 2 && stmt[1]->kind == Tok::kString) {
    return ScopeKind::kNamespace;  // extern "C" linkage block
  }
  const bool has_paren = contains_tok(stmt, "(");
  if (!has_paren && (contains_tok(stmt, "class") || contains_tok(stmt, "struct") ||
                     contains_tok(stmt, "union"))) {
    return ScopeKind::kClass;
  }
  if (!has_paren && contains_tok(stmt, "enum")) return ScopeKind::kEnum;
  static const std::set<std::string> kControl = {"if",    "for", "while", "switch",
                                                 "do",    "else", "try",  "catch"};
  if (kControl.count(stmt.front()->text) > 0) return ScopeKind::kBlock;
  const std::string& last = stmt.back()->text;
  if (last == "=") return ScopeKind::kInit;  // `int a[] = {`, `auto x = {`
  if (last == ")") return ScopeKind::kFunction;
  static const std::set<std::string> kFnTail = {"const", "noexcept", "override",
                                                "final", "mutable",  "try"};
  if (has_paren && kFnTail.count(last) > 0) return ScopeKind::kFunction;
  if (has_paren) return ScopeKind::kFunction;  // trailing return: `) -> T {`
  // No parens, no `=`: a braced initializer (`Foo f{...}`) when the head
  // names a variable, otherwise a bare block.
  std::size_t idents = 0;
  for (const Tok* t : stmt) idents += (t->kind == Tok::kIdent) ? 1u : 0u;
  if (idents >= 2) return ScopeKind::kInit;
  return in_code ? ScopeKind::kBlock : ScopeKind::kInit;
}

struct GlobalSym {
  std::string name;
  std::string file;
  int line = 0;
};

/// Per-file token analysis shared by the declaration pass and the
/// cross-file reference pass.
struct TokenAnalysis {
  std::vector<Tok> toks;
  std::vector<ScopeKind> scope_at;  // scope each token sits in
};

/// Statements whose first token can never head a hazardous variable.
bool skip_decl_head(const std::vector<const Tok*>& stmt) {
  static const std::set<std::string> kSkipFirst = {
      "using",  "typedef", "friend",  "template",  "extern", "return",
      "case",   "goto",    "public",  "private",   "protected",
      "class",  "struct",  "union",   "enum",      "namespace",
      "static_assert", "operator",    "if",        "for",    "while",
      "switch", "do",      "else",    "try",       "catch",  "break",
      "continue", "delete", "new",    "throw",     "asm"};
  if (kSkipFirst.count(stmt.front()->text) > 0) return true;
  for (const Tok* t : stmt) {
    if (t->text == "template" || t->text == "operator" || t->kind == Tok::kString) return true;
  }
  return false;
}

/// Thread-safe (or immutable) declaration specifiers and types.
bool decl_exempt(const std::vector<const Tok*>& stmt) {
  static const std::set<std::string> kExempt = {
      "const",      "constexpr", "constinit",   "thread_local",       "atomic",
      "atomic_flag", "mutex",    "shared_mutex", "recursive_mutex",   "once_flag",
      "condition_variable"};
  for (const Tok* t : stmt) {
    if (t->kind == Tok::kIdent && kExempt.count(t->text) > 0) return true;
  }
  return false;
}

/// Analyze one finished statement head for the static/global rules and the
/// symbol index.  `stmt` holds the tokens before the terminating `;` or the
/// initializer brace.
void scan_declaration(const std::vector<const Tok*>& stmt, ScopeKind scope,
                      const std::string& path, std::vector<Finding>& findings,
                      std::vector<GlobalSym>& globals) {
  if (stmt.empty() || skip_decl_head(stmt)) return;
  const bool target_scope =
      scope == ScopeKind::kNamespace || scope == ScopeKind::kClass ||
      scope == ScopeKind::kFunction || scope == ScopeKind::kBlock;
  if (!target_scope) return;
  if (decl_exempt(stmt)) return;

  // Truncate at the first top-level `=` (the initializer); a declarator
  // with parentheses before that point is a function declaration or a
  // paren-init we cannot disambiguate from one (the most vexing parse), so
  // only plain `T name;`, `T name = ...;` and `T name{...};` forms match.
  std::vector<const Tok*> decl;
  int depth = 0;
  for (const Tok* t : stmt) {
    if (t->text == "(" || t->text == "[") ++depth;
    if (t->text == ")" || t->text == "]") --depth;
    if (depth == 0 && t->text == "=") break;
    decl.push_back(t);
  }
  if (decl.empty() || contains_tok(decl, "(")) return;
  // The variable name: last identifier, skipping a trailing array extent.
  const Tok* name = nullptr;
  for (auto it = decl.rbegin(); it != decl.rend(); ++it) {
    if ((*it)->text == "]" || (*it)->text == "[" || (*it)->kind == Tok::kNumber) continue;
    if ((*it)->kind == Tok::kIdent) name = *it;
    break;
  }
  if (name == nullptr || decl.size() < 2) return;

  const bool has_static = contains_tok(decl, "static");
  const bool hazard = in_protocol_layer(path);
  if (scope == ScopeKind::kNamespace) {
    // A trailing underscore is this repo's member convention: at what the
    // walker sees as namespace scope it marks a fragment of a class pasted
    // without its enclosing braces (headers under refactor, test snippets),
    // not a global.
    if (name->text.back() == '_') return;
    if (indexed_for_globals(path) && name->text.size() >= 3) {
      globals.push_back({name->text, path, name->line});
    }
    if (hazard) {
      findings.push_back(Finding{
          path, name->line, "static-mutable-state", Severity::kError,
          std::string(has_static ? "namespace-scope static" : "namespace-scope global") +
              " '" + name->text +
              "' is mutable shared state in a protocol layer: the parallel simulator runs "
              "this code on worker threads; make it const/constexpr, move it into the "
              "owning object, or mark it thread_local with a justification"});
    }
  } else if (scope == ScopeKind::kClass && has_static) {
    if (hazard) {
      findings.push_back(Finding{
          path, name->line, "static-mutable-state", Severity::kError,
          "class-static member '" + name->text +
              "' is mutable shared state in a protocol layer: every instance on every "
              "worker thread shares it; make it const or per-instance"});
    }
  } else if ((scope == ScopeKind::kFunction || scope == ScopeKind::kBlock) && has_static) {
    if (hazard) {
      findings.push_back(Finding{
          path, name->line, "static-local", Severity::kError,
          "function-local static '" + name->text +
              "' in a protocol layer: initialization is serialized but every later access "
              "races under a parallel simulator; hoist the state into the owning object or "
              "make it const/thread_local"});
    }
  }
}

/// Walk the token stream tracking scopes, record each token's enclosing
/// scope, and run the declaration rules on every finished statement head.
TokenAnalysis analyze_tokens(const std::string& path, const std::vector<StrippedLine>& lines,
                             std::vector<Finding>& findings, std::vector<GlobalSym>& globals) {
  TokenAnalysis ta;
  ta.toks = tokenize(lines);
  ta.scope_at.resize(ta.toks.size(), ScopeKind::kNamespace);

  std::vector<ScopeKind> stack;  // empty = translation-unit (namespace) scope
  std::vector<const Tok*> stmt;
  const auto current = [&]() {
    return stack.empty() ? ScopeKind::kNamespace : stack.back();
  };
  static const std::set<std::string> kAccess = {"public", "private", "protected"};
  for (std::size_t i = 0; i < ta.toks.size(); ++i) {
    const Tok& t = ta.toks[i];
    ta.scope_at[i] = current();
    if (t.text == "{") {
      const ScopeKind kind = classify_brace(stmt, current());
      if (kind == ScopeKind::kInit && !stmt.empty()) {
        scan_declaration(stmt, current(), path, findings, globals);
      }
      stack.push_back(kind);
      stmt.clear();
    } else if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      stmt.clear();
    } else if (t.text == ";") {
      scan_declaration(stmt, current(), path, findings, globals);
      stmt.clear();
    } else if (t.text == ":" && stmt.size() == 1 && kAccess.count(stmt.front()->text) > 0) {
      stmt.clear();  // access label
    } else {
      stmt.push_back(&t);
    }
  }
  return ta;
}

// --- Range-for rules (iterator invalidation, callback under iteration) ---------

std::size_t match_forward(const std::vector<Tok>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == close_text && --depth == 0) return i;
  }
  return toks.size();
}

void check_range_for(const std::string& path, const TokenAnalysis& ta,
                     std::vector<Finding>& findings) {
  static const std::set<std::string> kMutators = {
      "push_back", "push_front", "emplace_back", "emplace_front", "emplace", "insert",
      "erase",     "clear",      "pop_back",     "pop_front",     "resize",  "assign"};
  const std::vector<Tok>& toks = ta.toks;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // The range-for separator: a lone `:` at paren depth 1.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") --depth;
      if (depth == 1 && toks[j].text == ":") {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic for loop
    // Loop variable: last identifier of the declaration side.
    std::string loop_var;
    for (std::size_t j = colon; j-- > i + 2;) {
      if (toks[j].kind == Tok::kIdent) {
        loop_var = toks[j].text;
        break;
      }
    }
    // Container: the trailing access path of the range expression (the
    // whole `c.members` / `this->subs_`, not just the last identifier — a
    // body mutating `v.members` must not match a loop over `c.members`).
    // Member ranges are recognized by access syntax or the
    // trailing-underscore convention.
    std::vector<std::string> container;
    bool member_range = false;
    for (std::size_t j = close; j-- > colon + 1;) {
      const Tok& rt = toks[j];
      const bool path_tok = rt.kind == Tok::kIdent || rt.text == "." || rt.text == "->";
      if (!path_tok) break;
      if (rt.text == "." || rt.text == "->" || rt.text == "this") member_range = true;
      container.insert(container.begin(), rt.text);
    }
    if (!container.empty() && container.back().back() == '_') member_range = true;
    // Body: a braced block or a single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && toks[body_begin].text == "{") {
      body_end = match_forward(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    std::string container_text;
    for (const std::string& part : container) container_text += part;
    for (std::size_t j = body_begin; j < body_end && j + 2 < toks.size(); ++j) {
      const std::size_t n = container.size();
      bool path_match = n > 0 && j + n + 1 < toks.size();
      for (std::size_t k = 0; path_match && k < n; ++k) {
        if (toks[j + k].text != container[k]) path_match = false;
      }
      if (path_match && j > 0 &&
          (toks[j - 1].text == "." || toks[j - 1].text == "->" ||
           toks[j - 1].kind == Tok::kIdent)) {
        path_match = false;  // tail of a longer access path: different object
      }
      if (path_match && (toks[j + n].text == "." || toks[j + n].text == "->") &&
          kMutators.count(toks[j + n + 1].text) > 0) {
        findings.push_back(Finding{
            path, toks[j].line, "iterator-invalidation", Severity::kError,
            "range-for over '" + container_text + "' mutates it via ." + toks[j + n + 1].text +
                "() inside the loop body: the loop's iterators are invalidated mid-flight; "
                "collect the changes and apply them after the loop, or iterate by index"});
      }
      if (member_range && !loop_var.empty() && toks[j].text == loop_var &&
          toks[j + 1].text == "(" &&
          (j == body_begin ||
           (toks[j - 1].text != "." && toks[j - 1].text != "->" && toks[j - 1].text != "::" &&
            toks[j - 1].kind != Tok::kIdent))) {
        findings.push_back(Finding{
            path, toks[j].line, "callback-under-iteration", Severity::kError,
            "callback '" + loop_var + "' invoked while range-iterating member container '" +
                container_text +
                "': the callee can (un)subscribe and grow the container, invalidating the "
                "iterator; iterate by index or snapshot the container first"});
      }
    }
  }
}

// --- Cross-island capture rule --------------------------------------------------

/// A lambda handed to a cross-island `post(...)` is drained into the
/// destination island's event heap and runs on that island's worker thread.
/// A default capture (`[&]`, `[=]`) or `[this]` silently closes over
/// source-island state, which the destination worker then reads or writes
/// concurrently with the source worker.  Cross-island payloads must name
/// every capture explicitly (moving the data or pointing at a
/// destination-owned slot), so the reach across the island boundary is
/// visible at the call site.
void check_cross_island_captures(const std::string& path, const TokenAnalysis& ta,
                                 std::vector<Finding>& findings) {
  const std::vector<Tok>& toks = ta.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != "post" || toks[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    for (std::size_t j = i + 2; j + 2 < close && j + 2 < toks.size(); ++j) {
      if (toks[j].text != "[") continue;
      // A lambda introducer, not a subscript: a subscript's `[` follows a
      // value (identifier, `]`, or `)`).
      const Tok& prev = toks[j - 1];
      if (prev.kind == Tok::kIdent || prev.text == "]" || prev.text == ")") continue;
      const std::string& c0 = toks[j + 1].text;
      const std::string& c1 = toks[j + 2].text;
      const bool default_cap = (c0 == "&" || c0 == "=") && (c1 == "]" || c1 == ",");
      const bool this_cap = c0 == "this" && (c1 == "]" || c1 == ",");
      if (!default_cap && !this_cap) continue;
      const std::string intro = "[" + c0 + (c1 == "," ? ", ..." : "") + "]";
      findings.push_back(Finding{
          path, toks[j].line, "cross-island-capture", Severity::kError,
          "lambda with capture " + intro +
              " passed to a cross-island post(): the closure runs on the destination "
              "island's worker thread, so implicit captures reach source-island state "
              "across threads; name every capture explicitly (move the payload or point "
              "at destination-owned state)"});
    }
  }
}

// --- Cross-file mutable-global reference pass ----------------------------------

void check_global_refs(const std::string& path, const TokenAnalysis& ta,
                       const std::map<std::string, GlobalSym>& index,
                       std::vector<Finding>& findings) {
  if (!in_protocol_layer(path) || index.empty()) return;
  std::set<std::pair<int, std::string>> seen;  // one finding per (line, name)
  for (std::size_t i = 0; i < ta.toks.size(); ++i) {
    const Tok& t = ta.toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (ta.scope_at[i] != ScopeKind::kFunction && ta.scope_at[i] != ScopeKind::kBlock) continue;
    const auto it = index.find(t.text);
    if (it == index.end() || it->second.file == path) continue;
    if (i > 0 && (ta.toks[i - 1].text == "." || ta.toks[i - 1].text == "->")) continue;
    if (!seen.insert({t.line, t.text}).second) continue;
    std::ostringstream msg;
    msg << "mutable global '" << t.text << "' (defined at " << it->second.file << ":"
        << it->second.line
        << ") referenced from a protocol layer: event callbacks run per-node today and on "
           "worker threads under the parallel simulator; pass the state in explicitly";
    findings.push_back(Finding{path, t.line, "global-in-callback", Severity::kWarning,
                               msg.str()});
  }
}

// --- Rules ---------------------------------------------------------------------

struct RegexRule {
  const char* name;
  Severity severity;
  std::regex pattern;
  const char* message;
  bool (*applies)(const std::string& path);
};

const std::vector<RegexRule>& regex_rules() {
  // NOTE: std::regex (ECMAScript) has no lookbehind; patterns that must not
  // match member access or identifier suffixes anchor on `(^|[^\w.>])`.
  static const std::vector<RegexRule> rules = {
      {"unordered-container", Severity::kError,
       std::regex(R"(std::\s*unordered_(map|set|multimap|multiset)\b)"),
       "unordered container in a protocol layer: iteration order is not deterministic; "
       "use std::map/std::set or a sorted vector, or suppress with a justification if the "
       "container is never iterated",
       [](const std::string& p) { return in_protocol_layer(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])(std::chrono::)?(system_clock|steady_clock|high_resolution_clock)\b)"),
       "wall-clock read outside src/obs export paths: real time in a simulated run breaks "
       "seed-replayability; read the simulator or the CCS facade instead",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])(gettimeofday|clock_gettime|ftime)\s*\()"),
       "OS time syscall outside src/obs export paths: route time through the simulated "
       "TimeSyscalls facade",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])time\s*\(\s*(\)|NULL\b|nullptr\b|0\s*[,\)]|&))"),
       "time() call outside src/obs export paths: route time through the simulated "
       "TimeSyscalls facade",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"raw-random", Severity::kError,
       std::regex(
           R"((^|[^\w.>])(std::\s*rand\b|srand\s*\(|rand\s*\(\s*\)|random_device\b|mt19937(_64)?\b|default_random_engine\b|minstd_rand0?\b))"),
       "nondeterministic randomness outside src/common/rng: every draw must flow from the "
       "seeded cts::Rng so runs replay from a seed",
       [](const std::string& p) { return !rng_home(p); }},
      {"type-pun", Severity::kError,
       std::regex(R"((^|[^\w.>])(reinterpret_cast\b|memcpy\s*\(|memmove\s*\())"),
       "raw type-punning outside src/common/bytes.hpp: byte-level codecs are centralized in "
       "the audited BytesWriter/BytesReader (use load_u32le/store_u32le)",
       [](const std::string& p) { return !bytes_home(p); }},
      {"float-compare", Severity::kError,
       std::regex(R"([=!]=\s*[-+]?(\d+\.\d*|\.\d+)([fFlL]\b)?)"),
       "exact floating-point equality: clock arithmetic must not branch on float ==/!=; "
       "compare against an integer representation or an epsilon",
       [](const std::string&) { return true; }},
      {"float-compare", Severity::kError,
       std::regex(R"((\d+\.\d*|\.\d+)[fFlL]?\s*[=!]=)"),
       "exact floating-point equality: clock arithmetic must not branch on float ==/!=; "
       "compare against an integer representation or an epsilon",
       [](const std::string&) { return true; }},
      {"pointer-key", Severity::kError,
       std::regex(R"(std::\s*(map|set|multimap|multiset)\s*<[^,<>]*\*\s*[,>])"),
       "pointer-keyed ordered container: pointer order is allocation order, which differs "
       "across runs; key by a stable id instead",
       [](const std::string& p) { return in_protocol_layer(p); }},
      {"pointer-key", Severity::kWarning,
       std::regex(R"(std::\s*(map|set|multimap|multiset)\s*<[^,<>]*\*\s*[,>])"),
       "pointer-keyed ordered container outside protocol layers: iteration order follows "
       "allocation order; avoid feeding it into any output or decision",
       [](const std::string& p) { return !in_protocol_layer(p); }},
      {"scoped-timer", Severity::kWarning,
       // Unlike the other rules this one MUST match member access (`ctx.sim.`,
       // `svc.simulator().`) — that is how node layers reach the simulator —
       // so the anchor only rejects identifier suffixes, not `.`/`->`.
       std::regex(R"((^|[^\w])(sim_?\.|simulator\s*\(\s*\)\s*\.)(at|after|delay|reschedule)\s*\()"),
       "direct Simulator scheduling from a node-scoped layer bypasses the node's "
       "sim::TaskScope: the event survives a fail-stop crash and can re-animate dead-node "
       "code; schedule through scope()/scope_ (or suppress with a justification if the "
       "work is genuinely node-independent)",
       [](const std::string& p) { return in_node_layer(p); }},
      {"hot-path-map", Severity::kWarning,
       std::regex(R"(std::\s*(map|multimap)\s*<)"),
       "node-based std::map/std::multimap in a delivery-pipeline layer: per-element "
       "allocation and pointer-chasing on a hot path; prefer cts::FlatMap/FlatSet "
       "(std::map-identical iteration order, src/common/flat_map.hpp) or DenseNodeIndex "
       "for dense integer keys, or suppress with a justification when stable element "
       "references are genuinely required",
       [](const std::string& p) { return in_flat_container_layer(p); }},
      {"heap-callback", Severity::kWarning,
       std::regex(R"(std::\s*function\b)"),
       "std::function in the event hot path: captures past its ~16-byte small buffer "
       "heap-allocate on every construction; use sim::InlineFn (48-byte inline storage), "
       "hoist the construction off the per-event path, or suppress with a justification",
       [](const std::string& p) {
         return starts_with(p, "src/sim/") || starts_with(p, "src/net/");
       }},
  };
  return rules;
}

// --- side-effect-assert (needs balanced-paren extraction) ----------------------

/// Does `arg` (the text between assert's parentheses) mutate state?
bool has_side_effect(const std::string& arg) {
  static const std::regex inc_dec(R"(\+\+|--)");
  static const std::regex mutating_call(
      R"((\.|->)\s*(insert|erase|emplace\w*|push_back|push_front|pop_back|pop_front|clear|reset|assign|swap)\s*\()");
  // Plain or compound assignment: '=' not part of ==, !=, <=, >= and not
  // preceded by a comparison char; compound (+=, -=, ...) counts too.
  static const std::regex assign(R"(([^=!<>\s]\s*|[+\-*/%&|^])=([^=]|$))");
  if (std::regex_search(arg, inc_dec)) return true;
  if (std::regex_search(arg, mutating_call)) return true;
  std::smatch m;
  std::string::const_iterator it = arg.begin();
  while (std::regex_search(it, arg.cend(), m, assign)) {
    const std::string pre = m[1].str();
    const char last = pre.empty() ? '\0' : pre[0];
    if (last == '+' || last == '-' || last == '*' || last == '/' || last == '%' ||
        last == '&' || last == '|' || last == '^') {
      return true;  // compound assignment
    }
    if (last != '<' && last != '>' && last != '!' && last != '=') return true;
    it = m[0].second;
  }
  return false;
}

void check_asserts(const std::string& path, const std::vector<StrippedLine>& lines,
                   std::vector<Finding>& findings) {
  static const std::regex assert_re(R"((^|[^\w.>])assert\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    const std::string& code = lines[i].code;
    if (!std::regex_search(code, m, assert_re)) continue;
    // Extract the balanced argument, joining at most 6 physical lines.
    std::string arg;
    int depth = 0;
    bool started = false, closed = false;
    std::size_t pos = static_cast<std::size_t>(m.position(0)) + m[0].length() - 1;
    for (std::size_t l = i; l < lines.size() && l < i + 6 && !closed; ++l) {
      const std::string& text = lines[l].code;
      for (std::size_t k = (l == i ? pos : 0); k < text.size(); ++k) {
        if (text[k] == '(') {
          ++depth;
          started = true;
          if (depth == 1) continue;
        } else if (text[k] == ')') {
          --depth;
          if (started && depth == 0) {
            closed = true;
            break;
          }
        }
        if (started && depth >= 1) arg.push_back(text[k]);
      }
      arg.push_back(' ');
    }
    if (has_side_effect(arg)) {
      findings.push_back(Finding{
          path, static_cast<int>(i + 1), "side-effect-assert", Severity::kError,
          "assert() argument mutates state: the mutation vanishes under NDEBUG, so Release "
          "and Debug replicas diverge; hoist the side effect out of the assert"});
    }
  }
}

// --- Per-file pipeline ----------------------------------------------------------

struct FileAnalysis {
  const SourceFile* src = nullptr;
  std::vector<StrippedLine> lines;
  std::vector<Suppression> sups;
  TokenAnalysis tokens;
  std::vector<Finding> findings;  // pre-suppression
};

/// Dedup (two wall-clock patterns can hit one line), apply suppressions,
/// then surface bare/unused suppressions as findings of their own.
std::vector<Finding> finalize_file(const std::string& path, std::vector<Finding> findings,
                                   std::vector<Suppression>& sups) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.rule == b.rule;
                             }),
                 findings.end());

  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (covers(s, f.rule, f.line)) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  for (const Suppression& s : sups) {
    if (!s.justified) {
      kept.push_back(Finding{path, s.comment_line, "bare-suppression", Severity::kError,
                             "detlint:allow() without a justification: state why the hazard "
                             "does not apply after the closing parenthesis"});
    }
    if (!s.used) {
      kept.push_back(Finding{path, s.comment_line, "unused-suppression", Severity::kWarning,
                             "detlint:allow() suppresses nothing on this or the next line: "
                             "the hazard was fixed or moved, delete the stale comment"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

}  // namespace

// --- Public API -----------------------------------------------------------------

std::vector<Finding> lint_sources(const std::vector<SourceFile>& files) {
  std::vector<FileAnalysis> fas(files.size());
  std::vector<GlobalSym> globals;

  // Pass 1: per-file analysis; mutable namespace-scope globals accumulate
  // into the cross-file symbol index as a side product.
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    FileAnalysis& fa = fas[fi];
    fa.src = &files[fi];
    const std::string& path = files[fi].path;
    const std::vector<std::string> raw = split_lines(files[fi].content);
    fa.lines.reserve(raw.size());
    StripState st;
    for (const std::string& l : raw) fa.lines.push_back(strip_line(l, st));
    fa.sups = collect_suppressions(fa.lines);

    for (const RegexRule& rule : regex_rules()) {
      if (!rule.applies(path)) continue;
      for (std::size_t i = 0; i < fa.lines.size(); ++i) {
        if (std::regex_search(fa.lines[i].code, rule.pattern)) {
          fa.findings.push_back(
              Finding{path, static_cast<int>(i + 1), rule.name, rule.severity, rule.message});
        }
      }
    }
    check_asserts(path, fa.lines, fa.findings);
    fa.tokens = analyze_tokens(path, fa.lines, fa.findings, globals);
    if (in_callback_layer(path)) check_range_for(path, fa.tokens, fa.findings);
    if (starts_with(path, "src/sim/") || starts_with(path, "src/net/")) {
      check_cross_island_captures(path, fa.tokens, fa.findings);
    }
  }

  // Pass 2: references to another file's mutable globals from the protocol
  // layers.  First declaration of a name wins; duplicates across
  // translation units are one logical symbol for our purposes.
  std::map<std::string, GlobalSym> index;
  for (GlobalSym& g : globals) index.try_emplace(g.name, std::move(g));
  std::vector<Finding> all;
  for (FileAnalysis& fa : fas) {
    check_global_refs(fa.src->path, fa.tokens, index, fa.findings);
    std::vector<Finding> kept = finalize_file(fa.src->path, std::move(fa.findings), fa.sups);
    all.insert(all.end(), std::make_move_iterator(kept.begin()),
               std::make_move_iterator(kept.end()));
  }
  return all;
}

std::vector<Finding> lint_content(const std::string& path, const std::string& content) {
  return lint_sources({SourceFile{path, content}});
}

std::vector<Finding> lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"};

  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir); it != fs::recursive_directory_iterator();
         ++it) {
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (it->is_directory() && (name == ".git" || starts_with(name, "build"))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && kExts.count(p.extension().string()) > 0) files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned) *files_scanned = files.size();

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.push_back(SourceFile{fs::path(p).lexically_relative(root).generic_string(), ss.str()});
  }
  return lint_sources(sources);
}

std::string format_finding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": "
      << (f.severity == Severity::kError ? "error" : "warning") << ": " << f.message << " ["
      << f.rule << "]";
  return out.str();
}

namespace {

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings, std::size_t files_scanned) {
  std::size_t errors = 0, warnings = 0;
  for (const Finding& f : findings) {
    (f.severity == Severity::kError ? errors : warnings) += 1;
  }
  std::ostringstream out;
  out << "{\"files_scanned\": " << files_scanned << ", \"errors\": " << errors
      << ", \"warnings\": " << warnings << ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ", ";
    out << "{\"file\": ";
    json_escape(out, f.file);
    out << ", \"line\": " << f.line << ", \"rule\": ";
    json_escape(out, f.rule);
    out << ", \"severity\": \"" << (f.severity == Severity::kError ? "error" : "warning")
        << "\", \"message\": ";
    json_escape(out, f.message);
    out << "}";
  }
  out << "]}\n";
  return out.str();
}

int exit_code(const std::vector<Finding>& findings) {
  int code = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) return 2;
    code = 1;
  }
  return code;
}

}  // namespace detlint
