#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace detlint {
namespace {

// --- Path classification ------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Protocol layers where iteration order and container choice are part of
/// the replicated state machine's determinism contract.
bool in_protocol_layer(const std::string& path) {
  static const char* kLayers[] = {"src/net/",  "src/sim/",         "src/totem/",
                                  "src/gcs/",  "src/replication/", "src/cts/"};
  for (const char* l : kLayers) {
    if (starts_with(path, l)) return true;
  }
  return false;
}

/// src/obs export paths may stamp real timestamps on exported artifacts.
bool wall_clock_exempt(const std::string& path) { return starts_with(path, "src/obs/"); }

/// The seeded deterministic RNG implementation itself.
bool rng_home(const std::string& path) { return starts_with(path, "src/common/rng"); }

/// The one audited byte-punning site (fixed-width little-endian codec).
bool bytes_home(const std::string& path) { return path == "src/common/bytes.hpp"; }

/// Layers whose scheduled work belongs to a node: timers and continuations
/// must be registered with the node's sim::TaskScope so a fail-stop crash
/// cancels them.  (src/net schedules on behalf of the destination's scope
/// internally; src/sim implements the scope; baselines/storage model
/// node-independent hardware.)
bool in_node_layer(const std::string& path) {
  static const char* kLayers[] = {"src/totem/", "src/gcs/", "src/replication/",
                                  "src/orb/",   "src/cts/", "src/app/"};
  for (const char* l : kLayers) {
    if (starts_with(path, l)) return true;
  }
  return false;
}

// --- Line splitting & comment/string stripping --------------------------------

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// One source line split into the analyzable code text (string/char literal
/// contents and comments blanked with spaces, so offsets are preserved) and
/// the concatenated comment text (where suppressions live).
struct StrippedLine {
  std::string code;
  std::string comment;
};

/// Comment-aware stripper.  `in_block` carries /* ... */ state across
/// lines.  Escape sequences inside literals are honored; raw strings are
/// not (the repo style avoids them, and a raw string would at worst blank
/// too little, never invent code text).
StrippedLine strip_line(const std::string& line, bool& in_block) {
  StrippedLine out;
  out.code.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        out.code += "  ";
        i += 2;
      } else {
        out.comment.push_back(line[i]);
        out.code.push_back(' ');
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      out.comment.append(line, i + 2, std::string::npos);
      out.code.append(line.size() - i, ' ');
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      out.code += "  ";
      i += 2;
      continue;
    }
    // A ' between digits is a C++14 digit separator (5'000), not a char
    // literal — the repo uses them pervasively for durations.
    if (c == '\'' && i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) != 0 &&
        i + 1 < line.size() && std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0) {
      out.code.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.code.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          out.code += "  ";
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          out.code.push_back(quote);
          ++i;
          break;
        }
        out.code.push_back(' ');
        ++i;
      }
      continue;
    }
    out.code.push_back(c);
    ++i;
  }
  return out;
}

// --- Suppressions --------------------------------------------------------------

struct Suppression {
  int comment_line = 0;  // 1-based line the allow-comment sits on
  int target_line = 0;   // line the suppression covers (first code line at/below)
  std::set<std::string> rules;
  bool justified = false;
  bool used = false;
};

bool has_code(const StrippedLine& l) {
  return l.code.find_first_not_of(" \t") != std::string::npos;
}

/// Parse every `detlint:allow(rule[,rule...]) <justification>` in the
/// comment text of `lines`.
std::vector<Suppression> collect_suppressions(const std::vector<StrippedLine>& lines) {
  static const std::regex re(R"(detlint:allow\(([A-Za-z0-9_, \t-]+)\))");
  std::vector<Suppression> sups;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    std::smatch m;
    if (!std::regex_search(comment, m, re)) continue;
    Suppression s;
    s.comment_line = static_cast<int>(i + 1);
    // A trailing comment covers its own line; a standalone comment covers
    // the first code line below it (skipping the rest of the comment
    // block), so multi-line justifications work.
    s.target_line = s.comment_line;
    if (!has_code(lines[i])) {
      for (std::size_t j = i + 1; j < lines.size() && j < i + 8; ++j) {
        if (has_code(lines[j])) {
          s.target_line = static_cast<int>(j + 1);
          break;
        }
      }
    }
    std::stringstream ss(m[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) s.rules.insert(rule.substr(b, e - b + 1));
    }
    // Justification: any word characters after the closing parenthesis.
    const std::string rest = m.suffix().str();
    s.justified = std::any_of(rest.begin(), rest.end(),
                              [](unsigned char c) { return std::isalnum(c) != 0; });
    sups.push_back(std::move(s));
  }
  return sups;
}

bool covers(const Suppression& s, const std::string& rule, int line) {
  return (line == s.comment_line || line == s.target_line) && s.rules.count(rule) > 0;
}

// --- Rules ---------------------------------------------------------------------

struct RegexRule {
  const char* name;
  Severity severity;
  std::regex pattern;
  const char* message;
  bool (*applies)(const std::string& path);
};

const std::vector<RegexRule>& regex_rules() {
  // NOTE: std::regex (ECMAScript) has no lookbehind; patterns that must not
  // match member access or identifier suffixes anchor on `(^|[^\w.>])`.
  static const std::vector<RegexRule> rules = {
      {"unordered-container", Severity::kError,
       std::regex(R"(std::\s*unordered_(map|set|multimap|multiset)\b)"),
       "unordered container in a protocol layer: iteration order is not deterministic; "
       "use std::map/std::set or a sorted vector, or suppress with a justification if the "
       "container is never iterated",
       [](const std::string& p) { return in_protocol_layer(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])(std::chrono::)?(system_clock|steady_clock|high_resolution_clock)\b)"),
       "wall-clock read outside src/obs export paths: real time in a simulated run breaks "
       "seed-replayability; read the simulator or the CCS facade instead",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])(gettimeofday|clock_gettime|ftime)\s*\()"),
       "OS time syscall outside src/obs export paths: route time through the simulated "
       "TimeSyscalls facade",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"wall-clock", Severity::kError,
       std::regex(R"((^|[^\w.>])time\s*\(\s*(\)|NULL\b|nullptr\b|0\s*[,\)]|&))"),
       "time() call outside src/obs export paths: route time through the simulated "
       "TimeSyscalls facade",
       [](const std::string& p) { return !wall_clock_exempt(p); }},
      {"raw-random", Severity::kError,
       std::regex(
           R"((^|[^\w.>])(std::\s*rand\b|srand\s*\(|rand\s*\(\s*\)|random_device\b|mt19937(_64)?\b|default_random_engine\b|minstd_rand0?\b))"),
       "nondeterministic randomness outside src/common/rng: every draw must flow from the "
       "seeded cts::Rng so runs replay from a seed",
       [](const std::string& p) { return !rng_home(p); }},
      {"type-pun", Severity::kError,
       std::regex(R"((^|[^\w.>])(reinterpret_cast\b|memcpy\s*\(|memmove\s*\())"),
       "raw type-punning outside src/common/bytes.hpp: byte-level codecs are centralized in "
       "the audited BytesWriter/BytesReader (use load_u32le/store_u32le)",
       [](const std::string& p) { return !bytes_home(p); }},
      {"float-compare", Severity::kError,
       std::regex(R"([=!]=\s*[-+]?(\d+\.\d*|\.\d+)([fFlL]\b)?)"),
       "exact floating-point equality: clock arithmetic must not branch on float ==/!=; "
       "compare against an integer representation or an epsilon",
       [](const std::string&) { return true; }},
      {"float-compare", Severity::kError,
       std::regex(R"((\d+\.\d*|\.\d+)[fFlL]?\s*[=!]=)"),
       "exact floating-point equality: clock arithmetic must not branch on float ==/!=; "
       "compare against an integer representation or an epsilon",
       [](const std::string&) { return true; }},
      {"pointer-key", Severity::kError,
       std::regex(R"(std::\s*(map|set|multimap|multiset)\s*<[^,<>]*\*\s*[,>])"),
       "pointer-keyed ordered container: pointer order is allocation order, which differs "
       "across runs; key by a stable id instead",
       [](const std::string& p) { return in_protocol_layer(p); }},
      {"pointer-key", Severity::kWarning,
       std::regex(R"(std::\s*(map|set|multimap|multiset)\s*<[^,<>]*\*\s*[,>])"),
       "pointer-keyed ordered container outside protocol layers: iteration order follows "
       "allocation order; avoid feeding it into any output or decision",
       [](const std::string& p) { return !in_protocol_layer(p); }},
      {"scoped-timer", Severity::kWarning,
       // Unlike the other rules this one MUST match member access (`ctx.sim.`,
       // `svc.simulator().`) — that is how node layers reach the simulator —
       // so the anchor only rejects identifier suffixes, not `.`/`->`.
       std::regex(R"((^|[^\w])(sim_?\.|simulator\s*\(\s*\)\s*\.)(at|after|delay|reschedule)\s*\()"),
       "direct Simulator scheduling from a node-scoped layer bypasses the node's "
       "sim::TaskScope: the event survives a fail-stop crash and can re-animate dead-node "
       "code; schedule through scope()/scope_ (or suppress with a justification if the "
       "work is genuinely node-independent)",
       [](const std::string& p) { return in_node_layer(p); }},
      {"heap-callback", Severity::kWarning,
       std::regex(R"(std::\s*function\b)"),
       "std::function in the event hot path: captures past its ~16-byte small buffer "
       "heap-allocate on every construction; use sim::InlineFn (48-byte inline storage), "
       "hoist the construction off the per-event path, or suppress with a justification",
       [](const std::string& p) {
         return starts_with(p, "src/sim/") || starts_with(p, "src/net/");
       }},
  };
  return rules;
}

// --- side-effect-assert (needs balanced-paren extraction) ----------------------

/// Does `arg` (the text between assert's parentheses) mutate state?
bool has_side_effect(const std::string& arg) {
  static const std::regex inc_dec(R"(\+\+|--)");
  static const std::regex mutating_call(
      R"((\.|->)\s*(insert|erase|emplace\w*|push_back|push_front|pop_back|pop_front|clear|reset|assign|swap)\s*\()");
  // Plain or compound assignment: '=' not part of ==, !=, <=, >= and not
  // preceded by a comparison char; compound (+=, -=, ...) counts too.
  static const std::regex assign(R"(([^=!<>\s]\s*|[+\-*/%&|^])=([^=]|$))");
  if (std::regex_search(arg, inc_dec)) return true;
  if (std::regex_search(arg, mutating_call)) return true;
  std::smatch m;
  std::string::const_iterator it = arg.begin();
  while (std::regex_search(it, arg.cend(), m, assign)) {
    const std::string pre = m[1].str();
    const char last = pre.empty() ? '\0' : pre[0];
    if (last == '+' || last == '-' || last == '*' || last == '/' || last == '%' ||
        last == '&' || last == '|' || last == '^') {
      return true;  // compound assignment
    }
    if (last != '<' && last != '>' && last != '!' && last != '=') return true;
    it = m[0].second;
  }
  return false;
}

void check_asserts(const std::string& path, const std::vector<StrippedLine>& lines,
                   std::vector<Finding>& findings) {
  static const std::regex assert_re(R"((^|[^\w.>])assert\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    const std::string& code = lines[i].code;
    if (!std::regex_search(code, m, assert_re)) continue;
    // Extract the balanced argument, joining at most 6 physical lines.
    std::string arg;
    int depth = 0;
    bool started = false, closed = false;
    std::size_t pos = static_cast<std::size_t>(m.position(0)) + m[0].length() - 1;
    for (std::size_t l = i; l < lines.size() && l < i + 6 && !closed; ++l) {
      const std::string& text = lines[l].code;
      for (std::size_t k = (l == i ? pos : 0); k < text.size(); ++k) {
        if (text[k] == '(') {
          ++depth;
          started = true;
          if (depth == 1) continue;
        } else if (text[k] == ')') {
          --depth;
          if (started && depth == 0) {
            closed = true;
            break;
          }
        }
        if (started && depth >= 1) arg.push_back(text[k]);
      }
      arg.push_back(' ');
    }
    if (has_side_effect(arg)) {
      findings.push_back(Finding{
          path, static_cast<int>(i + 1), "side-effect-assert", Severity::kError,
          "assert() argument mutates state: the mutation vanishes under NDEBUG, so Release "
          "and Debug replicas diverge; hoist the side effect out of the assert"});
    }
  }
}

}  // namespace

// --- Public API -----------------------------------------------------------------

std::vector<Finding> lint_content(const std::string& path, const std::string& content) {
  const std::vector<std::string> raw = split_lines(content);
  std::vector<StrippedLine> lines;
  lines.reserve(raw.size());
  bool in_block = false;
  for (const std::string& l : raw) lines.push_back(strip_line(l, in_block));

  std::vector<Suppression> sups = collect_suppressions(lines);

  std::vector<Finding> findings;
  for (const RegexRule& rule : regex_rules()) {
    if (!rule.applies(path)) continue;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i].code, rule.pattern)) {
        findings.push_back(
            Finding{path, static_cast<int>(i + 1), rule.name, rule.severity, rule.message});
      }
    }
  }
  check_asserts(path, lines, findings);

  // Deduplicate (two wall-clock patterns can hit one line) before applying
  // suppressions, so one allow() accounts for one diagnostic.
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.rule == b.rule;
                             }),
                 findings.end());

  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (covers(s, f.rule, f.line)) {
        s.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  for (const Suppression& s : sups) {
    if (!s.justified) {
      kept.push_back(Finding{path, s.comment_line, "bare-suppression", Severity::kError,
                             "detlint:allow() without a justification: state why the hazard "
                             "does not apply after the closing parenthesis"});
    }
    if (!s.used) {
      kept.push_back(Finding{path, s.comment_line, "unused-suppression", Severity::kWarning,
                             "detlint:allow() suppresses nothing on this or the next line: "
                             "the hazard was fixed or moved, delete the stale comment"});
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

std::vector<Finding> lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"};

  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir); it != fs::recursive_directory_iterator();
         ++it) {
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (it->is_directory() && (name == ".git" || starts_with(name, "build"))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && kExts.count(p.extension().string()) > 0) files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned) *files_scanned = files.size();

  std::vector<Finding> all;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string rel = fs::path(p).lexically_relative(root).generic_string();
    std::vector<Finding> fs_ = lint_content(rel, ss.str());
    all.insert(all.end(), fs_.begin(), fs_.end());
  }
  return all;
}

std::string format_finding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": "
      << (f.severity == Severity::kError ? "error" : "warning") << ": " << f.message << " ["
      << f.rule << "]";
  return out.str();
}

int exit_code(const std::vector<Finding>& findings) {
  int code = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) return 2;
    code = 1;
  }
  return code;
}

}  // namespace detlint
