// detlint CLI — scan the repository for determinism/protocol-invariant
// hazards.  Run as a CTest and as a CI gate; exit code is severity-ranked
// (0 clean, 1 warnings only, 2 errors), so `detlint --root .` doubles as a
// pass/fail check.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

void usage() {
  std::printf(
      "usage: detlint [--root DIR] [--format=text|json] [--quiet] [subdir...]\n"
      "\n"
      "Scans C++ sources under DIR (default: current directory) for\n"
      "determinism and protocol-invariant hazards.  Default subdirs:\n"
      "src tools tests bench examples.  See doc/STATIC_ANALYSIS.md for the\n"
      "rule catalogue and the detlint:allow(<rule>) suppression syntax.\n"
      "\n"
      "--format=json emits one machine-readable object (files_scanned,\n"
      "errors, warnings, findings[]) on stdout for CI annotation.\n"
      "\n"
      "exit code: 0 = clean, 1 = warnings only, 2 = errors\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool quiet = false;
  bool json = false;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--format=json") {
      json = true;
    } else if (a == "--format=text") {
      json = false;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", a.c_str());
      usage();
      return 2;
    } else {
      subdirs.push_back(a);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "tools", "tests", "bench", "examples"};

  std::size_t files = 0;
  const std::vector<detlint::Finding> findings = detlint::lint_tree(root, subdirs, &files);

  if (json) {
    std::fputs(detlint::to_json(findings, files).c_str(), stdout);
    return detlint::exit_code(findings);
  }

  std::size_t errors = 0, warnings = 0;
  for (const detlint::Finding& f : findings) {
    (f.severity == detlint::Severity::kError ? errors : warnings) += 1;
    std::printf("%s\n", detlint::format_finding(f).c_str());
  }
  if (!quiet) {
    std::printf("detlint: scanned %zu files: %zu error%s, %zu warning%s\n", files, errors,
                errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s");
  }
  return detlint::exit_code(findings);
}
