// ctsim — scenario driver for the consistent time service stack.
//
// Runs the full simulated testbed (client + replicated time server) under a
// user-specified topology, replication style, workload, network conditions,
// and fault schedule, then reports latency, CCS traffic, drift, and
// consistency checks.  Everything the library can do, from one command
// line — the fastest way for a new user to poke at the system.
//
// Examples:
//   ctsim --servers 5 --invocations 2000
//   ctsim --style passive --checkpoint-every 10 --crash 0@200ms --invocations 500
//   ctsim --servers 3 --loss 0.02 --crash 2@100ms --recover 2@400ms --seed 9
//   ctsim --style semiactive --drift mean --mean-delay 45 --invocations 10000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "app/archipelago.hpp"
#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "app/topology.hpp"
#include "common/histogram.hpp"
#include "obs/merge.hpp"
#include "obs/recorder.hpp"
#include "sim/parallel.hpp"

using namespace cts;
using namespace cts::app;

namespace {

struct FaultEvent {
  enum class Kind { kCrash, kRecover } kind;
  std::uint32_t replica;
  Micros at_us;
};

struct Options {
  std::size_t servers = 3;
  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  int invocations = 1000;
  Micros think_us = 500;
  std::uint64_t seed = 1;
  double loss = 0.0;
  Micros max_clock_offset_us = 500'000;
  double max_drift_ppm = 50.0;
  std::uint32_t checkpoint_every = 5;
  ccs::DriftCompensation drift = ccs::DriftCompensation::kNone;
  Micros mean_delay_us = 40;
  double reference_gain = 0.1;
  std::vector<FaultEvent> faults;
  bool verbose = false;
  std::uint32_t shards = 1;
  /// Multi-ring topology: rings > 1 runs an Archipelago (one Totem ring per
  /// island, causally-stamped inter-ring traffic) instead of one Testbed.
  std::size_t rings = 1;
  /// Island worker threads (doc/PARALLEL.md).  Defaults to CTS_SIM_THREADS
  /// or 1; 1 is the exact legacy serial path, and any value produces the
  /// same schedule byte for byte.
  unsigned threads = sim::threads_from_env(1);
  bool durable = false;  // stable storage + cold-startable
  bool kv = false;       // run the KV workload instead of the time server
  /// With rings > 1 and --kv: fraction of each client's requests aimed at
  /// keys another ring owns, to exercise the gateway router's forwarding.
  double remote_fraction = 0.5;
  std::string metrics_json;  // write obs metrics JSON here ("" = off)
  std::string trace_jsonl;   // write obs trace JSONL here ("" = off)
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --servers N             server replicas (default 3)\n"
      "  --style S               active | semiactive | passive (default active)\n"
      "  --invocations N         client invocations (default 1000)\n"
      "  --think US              client think time between invocations, us (default 500)\n"
      "  --seed N                experiment seed (default 1)\n"
      "  --loss P                packet loss probability (default 0)\n"
      "  --clock-offset US       max initial hw clock offset, us (default 500000)\n"
      "  --clock-drift PPM       max hw clock drift, ppm (default 50)\n"
      "  --checkpoint-every N    passive checkpoint cadence, requests (default 5)\n"
      "  --drift D               none | mean | reference (drift compensation)\n"
      "  --mean-delay US         mean-delay compensation constant (default 40)\n"
      "  --reference-gain G      reference-bias gain (default 0.1)\n"
      "  --crash R@T             crash replica R at time T (e.g. 2@100ms, 0@1s)\n"
      "  --recover R@T           recover replica R at time T\n"
      "  --shards N              request-processing shards per replica (default 1)\n"
      "  --rings N               Totem rings; >1 runs the multi-ring archipelago (default 1)\n"
      "  --topology RxS          shorthand for --rings R --servers S (\"4x6\"; bare \"R\" ok)\n"
      "  --threads N             island worker threads, identical schedule for any N\n"
      "                          (default CTS_SIM_THREADS or 1)\n"
      "  --durable               stable storage: persist checkpoints to local disk\n"
      "  --kv                    drive the lease KV store instead of the time server\n"
      "  --metrics-json PATH     write per-layer metrics (counters/gauges/histograms) as JSON\n"
      "  --trace-jsonl PATH      write the structured event trace as JSON lines\n"
      "  --verbose               per-event narration\n",
      argv0);
  std::exit(2);
}

Micros parse_time(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  const std::string unit = end ? std::string(end) : "";
  if (unit == "s") return static_cast<Micros>(v * 1e6);
  if (unit == "ms") return static_cast<Micros>(v * 1e3);
  return static_cast<Micros>(v);  // us
}

FaultEvent parse_fault(FaultEvent::Kind kind, const std::string& spec, const char* argv0) {
  const auto at = spec.find('@');
  if (at == std::string::npos) usage(argv0);
  return FaultEvent{kind, static_cast<std::uint32_t>(std::stoul(spec.substr(0, at))),
                    parse_time(spec.substr(at + 1))};
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--servers") o.servers = std::stoul(need(i));
    else if (a == "--style") {
      const auto v = need(i);
      if (v == "active") o.style = replication::ReplicationStyle::kActive;
      else if (v == "semiactive") o.style = replication::ReplicationStyle::kSemiActive;
      else if (v == "passive") o.style = replication::ReplicationStyle::kPassive;
      else usage(argv[0]);
    } else if (a == "--invocations") o.invocations = std::stoi(need(i));
    else if (a == "--think") o.think_us = parse_time(need(i));
    else if (a == "--seed") o.seed = std::stoull(need(i));
    else if (a == "--loss") o.loss = std::stod(need(i));
    else if (a == "--clock-offset") o.max_clock_offset_us = parse_time(need(i));
    else if (a == "--clock-drift") o.max_drift_ppm = std::stod(need(i));
    else if (a == "--checkpoint-every") o.checkpoint_every = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--drift") {
      const auto v = need(i);
      if (v == "none") o.drift = ccs::DriftCompensation::kNone;
      else if (v == "mean") o.drift = ccs::DriftCompensation::kMeanDelay;
      else if (v == "reference") o.drift = ccs::DriftCompensation::kReferenceBias;
      else usage(argv[0]);
    } else if (a == "--mean-delay") o.mean_delay_us = parse_time(need(i));
    else if (a == "--reference-gain") o.reference_gain = std::stod(need(i));
    else if (a == "--crash") o.faults.push_back(parse_fault(FaultEvent::Kind::kCrash, need(i), argv[0]));
    else if (a == "--recover") o.faults.push_back(parse_fault(FaultEvent::Kind::kRecover, need(i), argv[0]));
    else if (a == "--shards") o.shards = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--rings") o.rings = std::stoul(need(i));
    else if (a == "--topology") {
      const auto spec = TopologySpec::parse(need(i));
      if (!spec) usage(argv[0]);
      o.rings = spec->rings;
      o.servers = spec->servers;
    }
    else if (a == "--threads") o.threads = static_cast<unsigned>(std::stoul(need(i)));
    else if (a == "--durable") o.durable = true;
    else if (a == "--kv") o.kv = true;
    else if (a == "--metrics-json") o.metrics_json = need(i);
    else if (a == "--trace-jsonl") o.trace_jsonl = need(i);
    else if (a == "--verbose") o.verbose = true;
    else usage(argv[0]);
  }
  return o;
}

// `done` is one byte (not vector<bool>) so multi-ring runs can keep one
// flag per ring without adjacent flags sharing a word across workers.
sim::Task client_loop(Testbed& tb, const Options& o, std::vector<Micros>& stamps,
                      Histogram& lat, std::uint8_t& done) {
  Rng rng(o.seed * 17 + 3);
  for (int i = 0; i < o.invocations; ++i) {
    co_await tb.sim().delay(o.think_us);
    const Micros t0 = tb.sim().now();
    if (o.kv) {
      const std::string key = "k" + std::to_string(rng.below(32));
      Bytes req;
      switch (rng.below(3)) {
        case 0: req = kv_put(key, "v" + std::to_string(i)); break;
        case 1: req = kv_get(key); break;
        default: req = kv_acquire(key, 1 + rng.below(4), 10'000); break;
      }
      (void)co_await tb.client().call(std::move(req));
      lat.add(tb.sim().now() - t0);
    } else {
      const Bytes r = co_await tb.client().call(make_get_time_request());
      lat.add(tb.sim().now() - t0);
      BytesReader rd(r);
      stamps.push_back(rd.i64() * 1'000'000 + rd.i64());
    }
  }
  done = 1;
}

// Sharded KV workload for the multi-ring mode: ring r's client mixes
// ring-local keys with keys other rings own; every request goes through the
// gateway router, which serves local keys on this ring and forwards the
// rest to the owning ring (gateway.forwards / gateway.misroutes).
sim::Task kv_loop_sharded(Archipelago& ar, std::size_t r, const Options& o, Histogram& lat,
                          std::uint64_t& replies, std::uint8_t& done) {
  const ShardMap& map = ar.shard_map();
  Rng rng(o.seed * 17 + 3 + r * 101);
  for (int i = 0; i < o.invocations; ++i) {
    co_await ar.ring(r).sim().delay(o.think_us);
    // Draw keys until the local/remote choice matches the configured mix.
    const bool want_remote = map.rings() > 1 && rng.below(1000) < o.remote_fraction * 1000;
    std::string key;
    do {
      key = "k" + std::to_string(rng.below(64));
    } while ((map.shard_of_key(key) != r) == !want_remote);
    Bytes req;
    switch (rng.below(3)) {
      case 0: req = kv_put(key, "v" + std::to_string(i)); break;
      case 1: req = kv_get(key); break;
      default: req = kv_acquire(key, 1 + rng.below(4), 10'000); break;
    }
    const Micros t0 = ar.ring(r).sim().now();
    (void)co_await ar.router(r).call(std::move(req));
    lat.add(ar.ring(r).sim().now() - t0);
    ++replies;
  }
  done = 1;
}

// Multi-ring mode: N Totem rings as parallel islands, each with its own
// client workload, plus a cross-ring stamped ping chain (ring r -> r+1).
// Any --threads value yields the identical schedule (doc/PARALLEL.md); the
// merged metrics/trace exports are likewise byte-stable.
int run_archipelago(const Options& o) {
  if (o.durable || o.shards > 1) {
    std::fprintf(stderr, "--rings > 1 does not support --durable/--shards\n");
    return 2;
  }
  ArchipelagoConfig acfg;
  acfg.topo = TopologySpec{o.rings, o.servers, /*with_client=*/true};
  acfg.style = o.style;
  acfg.seed = o.seed;
  acfg.net.loss_probability = o.loss;
  acfg.threads = o.threads;
  if (o.kv) {
    acfg.app = [](const ShardMap& map, std::size_t ring) {
      KvStoreApp::Options kopt;
      kopt.shard_map = &map;
      kopt.ring = ring;
      return kv_store_factory(kopt);
    };
  }
  Archipelago ar(acfg);
  ar.start();

  // Fault schedule applies to ring 0.
  for (const auto& f : o.faults) {
    if (f.replica >= o.servers) {
      std::fprintf(stderr, "fault references replica %u but there are only %zu\n", f.replica,
                   o.servers);
      return 2;
    }
    auto& sim0 = ar.ring(0).sim();
    sim0.at(std::max(sim0.now(), f.at_us), [&ar, f] {
      if (f.kind == FaultEvent::Kind::kCrash) {
        ar.crash_server(0, f.replica);
      } else {
        ar.restart_server(0, f.replica);
      }
    });
  }

  // Per-ring client workloads (each written/read only by its ring's island;
  // done flags are one byte per ring, read between runs).
  std::vector<std::vector<Micros>> stamps(o.rings);
  std::vector<std::uint64_t> kv_replies(o.rings, 0);
  std::vector<Histogram> lat;
  std::vector<std::uint8_t> done(o.rings, 0);
  lat.reserve(o.rings);
  for (std::size_t r = 0; r < o.rings; ++r) lat.emplace_back(10, 10'000);
  for (std::size_t r = 0; r < o.rings; ++r) {
    if (o.kv) {
      kv_loop_sharded(ar, r, o, lat[r], kv_replies[r], done[r]);
    } else {
      client_loop(ar.ring(r), o, stamps[r], lat[r], done[r]);
    }
  }

  // Cross-ring ping chain: 20 stamped broadcasts per ring over the first
  // two seconds, ring r -> ring (r+1) % N.
  const Micros t0 = ar.now();
  for (std::size_t r = 0; r < o.rings; ++r) {
    for (int k = 0; k < 20; ++k) {
      ar.stamped_broadcast_at(t0 + 100'000 * (k + 1) + static_cast<Micros>(r) * 7'000, r,
                              (r + 1) % o.rings, Bytes{static_cast<std::uint8_t>(k)});
    }
  }

  const Micros deadline = 600'000'000'000LL;
  auto all_done = [&] {
    for (std::size_t r = 0; r < o.rings; ++r) {
      if (!done[r]) return false;
    }
    return true;
  };
  while (!all_done() && ar.now() < deadline) ar.run_until(ar.now() + 1'000'000);
  ar.run_for(2'000'000);

  // --- Report ----------------------------------------------------------------
  std::printf("# ctsim  rings=%zu servers=%zu style=%s invocations=%d seed=%llu loss=%.3f "
              "threads=%u\n\n",
              o.rings, o.servers,
              o.style == replication::ReplicationStyle::kActive        ? "active"
              : o.style == replication::ReplicationStyle::kSemiActive ? "semiactive"
                                                                       : "passive",
              o.invocations, (unsigned long long)o.seed, o.loss, o.threads);

  std::size_t violations = 0;
  bool consistent = true;
  std::uint64_t xring_delivered = 0;
  std::uint64_t forwards = 0, misroutes = 0, cross_shard = 0;
  for (std::size_t r = 0; r < o.rings; ++r) {
    auto& tb = ar.ring(r);
    std::size_t ring_viol = 0;
    for (std::size_t i = 1; i < stamps[r].size(); ++i) {
      ring_viol += (stamps[r][i] <= stamps[r][i - 1]);
    }
    violations += ring_viol;
    bool ring_consistent = true;
    if (o.kv) {
      const KvStoreApp* first = nullptr;
      for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
        if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
        if (o.style == replication::ReplicationStyle::kPassive && !tb.server(s).is_primary()) {
          continue;
        }
        auto& a = static_cast<KvStoreApp&>(tb.server(s).app());
        if (!first) first = &a;
        else ring_consistent &= (a.state_digest() == first->state_digest());
      }
    } else {
      const TimeServerApp* first = nullptr;
      for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
        if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
        if (o.style == replication::ReplicationStyle::kPassive && !tb.server(s).is_primary()) {
          continue;
        }
        auto& a = tb.server_app(s);
        if (!first) first = &a;
        else ring_consistent &= (a.time_history() == first->time_history());
      }
    }
    consistent &= ring_consistent;
    xring_delivered += ar.stamped_deliveries(r);
    forwards += tb.recorder().counter("gateway.forwards").value;
    misroutes += tb.recorder().counter("gateway.misroutes").value;
    if (const auto* orc = tb.recorder().oracle()) cross_shard += orc->cross_shard_violations();
    const std::size_t replies = o.kv ? kv_replies[r] : stamps[r].size();
    std::printf("ring %zu: replies=%zu/%d  latency mean=%.1f us p99=%lld  "
                "monotonicity violations=%zu  consistent=%s  stamped-deliveries=%llu\n",
                r, replies, o.invocations, lat[r].mean(),
                (long long)lat[r].percentile(0.99), ring_viol, ring_consistent ? "yes" : "NO",
                (unsigned long long)ar.stamped_deliveries(r));
  }
  const auto link = ar.link().total_stats();
  const auto& cstats = ar.coordinator().stats();
  std::printf("\ncross-ring: %llu frames (%llu bytes) over the link;  "
              "coordinator: %llu epochs, %llu posts, %llu events\n",
              (unsigned long long)link.frames_sent, (unsigned long long)link.bytes_sent,
              (unsigned long long)cstats.epochs, (unsigned long long)cstats.posts,
              (unsigned long long)cstats.events_executed);
  std::printf("gateway: forwards=%llu misroutes=%llu;  oracle.cross_shard=%llu\n",
              (unsigned long long)forwards, (unsigned long long)misroutes,
              (unsigned long long)cross_shard);
  std::printf("total monotonicity violations: %zu;  all rings consistent: %s\n", violations,
              consistent ? "yes" : "NO");

  // --- Observability export (deterministically merged across islands) --------
  auto recs = ar.recorders();
  if (!o.metrics_json.empty() || !o.trace_jsonl.empty()) {
    if (!obs::export_merged_files(recs, o.metrics_json, o.trace_jsonl)) {
      std::fprintf(stderr, "warning: could not write merged obs exports\n");
    }
  }
  obs::export_merged_from_env(recs, "ctsim");
  if (o.verbose) {
    for (std::size_t r = 0; r < o.rings; ++r) {
      std::printf("\n--- ring %zu ---\n%s", r, recs[r]->summary().c_str());
    }
  }

  const bool gateway_ok = !o.kv || forwards > 0;
  return violations == 0 && consistent && xring_delivered > 0 && cross_shard == 0 && gateway_ok
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.rings > 1) return run_archipelago(o);

  TestbedConfig cfg;
  cfg.servers = o.servers;
  cfg.style = o.style;
  cfg.seed = o.seed;
  cfg.net.loss_probability = o.loss;
  cfg.max_clock_offset_us = o.max_clock_offset_us;
  cfg.max_drift_ppm = o.max_drift_ppm;
  cfg.checkpoint_every = o.checkpoint_every;
  cfg.drift = o.drift;
  cfg.mean_delay_us = o.mean_delay_us;
  cfg.reference_gain = o.reference_gain;
  cfg.shards = o.shards;
  if (o.shards > 1) cfg.shard_fn = kv_shard_of;
  cfg.with_stable_storage = o.durable;
  if (o.durable) cfg.persist_every = 10;
  if (o.kv) cfg.factory = kv_store_factory();
  Testbed tb(cfg);

  clock::ReferenceTimeSource ref(tb.sim(), Rng(o.seed * 31 + 5), 200);
  if (o.drift == ccs::DriftCompensation::kReferenceBias) {
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      tb.server(s).time_service().set_reference(&ref);
    }
  }
  tb.start();

  // Fault schedule.
  for (const auto& f : o.faults) {
    if (f.replica >= tb.server_count()) {
      std::fprintf(stderr, "fault references replica %u but there are only %zu\n", f.replica,
                   tb.server_count());
      return 2;
    }
    tb.sim().at(std::max(tb.sim().now(), f.at_us), [&tb, f, &o] {
      if (f.kind == FaultEvent::Kind::kCrash) {
        if (o.verbose) std::printf("[%lld us] crash replica %u\n", (long long)f.at_us, f.replica);
        tb.crash_server(f.replica);
      } else {
        if (o.verbose) std::printf("[%lld us] recover replica %u\n", (long long)f.at_us, f.replica);
        tb.restart_server(f.replica);
      }
    });
  }

  std::vector<Micros> stamps;
  Histogram lat(10, 10'000);
  std::uint8_t done = 0;
  client_loop(tb, o, stamps, lat, done);
  const Micros deadline = 600'000'000'000LL;
  while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 1'000'000);
  tb.sim().run_for(2'000'000);

  // --- Report ----------------------------------------------------------------
  std::printf("# ctsim  servers=%zu style=%s invocations=%d seed=%llu loss=%.3f\n\n",
              o.servers,
              o.style == replication::ReplicationStyle::kActive        ? "active"
              : o.style == replication::ReplicationStyle::kSemiActive ? "semiactive"
                                                                       : "passive",
              o.invocations, (unsigned long long)o.seed, o.loss);

  std::printf("end-to-end latency: mean=%.1f us  p50=%lld  p99=%lld  max=%lld\n", lat.mean(),
              (long long)lat.percentile(0.5), (long long)lat.percentile(0.99),
              (long long)lat.max());

  std::size_t violations = 0;
  for (std::size_t i = 1; i < stamps.size(); ++i) violations += (stamps[i] <= stamps[i - 1]);
  if (!o.kv) {
    std::printf("replies: %zu of %d;  monotonicity violations: %zu\n", stamps.size(),
                o.invocations, violations);
  }

  std::uint64_t ccs_wire = 0, rounds = 0;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    ccs_wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
    rounds = std::max(rounds, tb.server(s).time_service().stats().rounds_completed);
  }
  std::printf("CCS rounds: %llu;  CCS messages on the wire: %llu (%.3f per round)\n",
              (unsigned long long)rounds, (unsigned long long)ccs_wire,
              rounds ? (double)ccs_wire / (double)rounds : 0.0);

  bool consistent = true;
  if (o.kv) {
    std::uint64_t digest = 0;
    bool have = false;
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
      if (o.style == replication::ReplicationStyle::kPassive && !tb.server(s).is_primary()) {
        continue;
      }
      for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
        const auto d = static_cast<KvStoreApp&>(tb.server(s).app(sh)).state_digest();
        if (!have && sh == 0) {
          digest = d;
          have = true;
        }
      }
    }
    // Pairwise per-shard comparison across live servers.
    for (std::uint32_t s = 1; s < tb.server_count(); ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
      for (std::uint32_t sh = 0; sh < tb.server(s).shard_count(); ++sh) {
        consistent &= static_cast<KvStoreApp&>(tb.server(s).app(sh)).state_digest() ==
                      static_cast<KvStoreApp&>(tb.server(0).app(sh)).state_digest();
      }
    }
    (void)digest;
  } else {
    const TimeServerApp* first = nullptr;
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive() || !tb.server(s).recovered()) continue;
      if (o.style == replication::ReplicationStyle::kPassive && !tb.server(s).is_primary()) {
        continue;  // passive backups hold checkpointed state, not live history
      }
      auto& a = tb.server_app(s);
      if (!first) first = &a;
      else consistent &= (a.time_history() == first->time_history());
    }
  }
  std::printf("replica state consistent: %s\n", consistent ? "yes" : "NO");

  std::printf("\nper-replica detail:\n");
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    const auto& st = tb.server(s).stats();
    const auto& ts = tb.server(s).time_service().stats();
    std::printf(
        "  r%u%-2s processed=%llu replayed=%llu ckpt=%llu/%llu rounds=%llu won=%llu "
        "sends=%llu avoided=%llu offset=%lld\n",
        s + 1,
        !tb.clock_of(tb.server_node(s)).alive() ? "✗"
        : tb.server(s).is_primary()             ? "*"
                                                : "",
        (unsigned long long)st.requests_processed, (unsigned long long)st.requests_replayed,
        (unsigned long long)st.checkpoints_taken, (unsigned long long)st.checkpoints_applied,
        (unsigned long long)ts.rounds_completed, (unsigned long long)ts.rounds_won,
        (unsigned long long)ts.sends_initiated, (unsigned long long)ts.sends_avoided,
        (long long)tb.server(s).time_service().clock_offset());
  }

  // --- Observability export ---------------------------------------------------
  if (!o.metrics_json.empty() && !tb.recorder().metrics().write_json(o.metrics_json)) {
    std::fprintf(stderr, "warning: could not write metrics to %s\n", o.metrics_json.c_str());
  }
  if (!o.trace_jsonl.empty() && !tb.recorder().trace().write_jsonl(o.trace_jsonl)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n", o.trace_jsonl.c_str());
  }
  obs::export_from_env(tb.recorder(), "ctsim");
  if (o.verbose) std::printf("\n%s", tb.recorder().summary().c_str());

  return violations == 0 && consistent ? 0 : 1;
}
