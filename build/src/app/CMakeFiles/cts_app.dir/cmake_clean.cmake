file(REMOVE_RECURSE
  "CMakeFiles/cts_app.dir/kv_store.cpp.o"
  "CMakeFiles/cts_app.dir/kv_store.cpp.o.d"
  "CMakeFiles/cts_app.dir/session_manager.cpp.o"
  "CMakeFiles/cts_app.dir/session_manager.cpp.o.d"
  "CMakeFiles/cts_app.dir/time_server.cpp.o"
  "CMakeFiles/cts_app.dir/time_server.cpp.o.d"
  "libcts_app.a"
  "libcts_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
