file(REMOVE_RECURSE
  "libcts_app.a"
)
