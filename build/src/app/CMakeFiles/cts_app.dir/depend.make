# Empty dependencies file for cts_app.
# This may be replaced when dependencies are built.
