# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("clock")
subdirs("net")
subdirs("totem")
subdirs("gcs")
subdirs("replication")
subdirs("orb")
subdirs("cts")
subdirs("baseline")
subdirs("app")
