# Empty compiler generated dependencies file for cts_replication.
# This may be replaced when dependencies are built.
