file(REMOVE_RECURSE
  "libcts_replication.a"
)
