file(REMOVE_RECURSE
  "CMakeFiles/cts_replication.dir/replica_manager.cpp.o"
  "CMakeFiles/cts_replication.dir/replica_manager.cpp.o.d"
  "libcts_replication.a"
  "libcts_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
