file(REMOVE_RECURSE
  "CMakeFiles/cts_core.dir/consistent_time_service.cpp.o"
  "CMakeFiles/cts_core.dir/consistent_time_service.cpp.o.d"
  "libcts_core.a"
  "libcts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
