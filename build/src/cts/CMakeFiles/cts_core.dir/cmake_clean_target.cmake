file(REMOVE_RECURSE
  "libcts_core.a"
)
