# Empty compiler generated dependencies file for cts_core.
# This may be replaced when dependencies are built.
