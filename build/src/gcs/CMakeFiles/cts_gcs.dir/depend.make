# Empty dependencies file for cts_gcs.
# This may be replaced when dependencies are built.
