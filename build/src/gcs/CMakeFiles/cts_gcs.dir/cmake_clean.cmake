file(REMOVE_RECURSE
  "CMakeFiles/cts_gcs.dir/gcs.cpp.o"
  "CMakeFiles/cts_gcs.dir/gcs.cpp.o.d"
  "libcts_gcs.a"
  "libcts_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
