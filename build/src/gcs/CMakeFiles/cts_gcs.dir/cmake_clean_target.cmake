file(REMOVE_RECURSE
  "libcts_gcs.a"
)
