file(REMOVE_RECURSE
  "libcts_orb.a"
)
