# Empty dependencies file for cts_orb.
# This may be replaced when dependencies are built.
