file(REMOVE_RECURSE
  "CMakeFiles/cts_orb.dir/rmi_client.cpp.o"
  "CMakeFiles/cts_orb.dir/rmi_client.cpp.o.d"
  "libcts_orb.a"
  "libcts_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
