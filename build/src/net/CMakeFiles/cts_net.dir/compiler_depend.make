# Empty compiler generated dependencies file for cts_net.
# This may be replaced when dependencies are built.
