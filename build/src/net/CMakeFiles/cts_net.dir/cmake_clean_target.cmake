file(REMOVE_RECURSE
  "libcts_net.a"
)
