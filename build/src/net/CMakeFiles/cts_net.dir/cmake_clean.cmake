file(REMOVE_RECURSE
  "CMakeFiles/cts_net.dir/network.cpp.o"
  "CMakeFiles/cts_net.dir/network.cpp.o.d"
  "libcts_net.a"
  "libcts_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
