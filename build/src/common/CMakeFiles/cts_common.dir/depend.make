# Empty dependencies file for cts_common.
# This may be replaced when dependencies are built.
