file(REMOVE_RECURSE
  "libcts_common.a"
)
