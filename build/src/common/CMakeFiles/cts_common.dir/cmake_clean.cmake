file(REMOVE_RECURSE
  "CMakeFiles/cts_common.dir/histogram.cpp.o"
  "CMakeFiles/cts_common.dir/histogram.cpp.o.d"
  "CMakeFiles/cts_common.dir/rng.cpp.o"
  "CMakeFiles/cts_common.dir/rng.cpp.o.d"
  "CMakeFiles/cts_common.dir/types.cpp.o"
  "CMakeFiles/cts_common.dir/types.cpp.o.d"
  "libcts_common.a"
  "libcts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
