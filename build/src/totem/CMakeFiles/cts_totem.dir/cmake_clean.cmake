file(REMOVE_RECURSE
  "CMakeFiles/cts_totem.dir/totem.cpp.o"
  "CMakeFiles/cts_totem.dir/totem.cpp.o.d"
  "libcts_totem.a"
  "libcts_totem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_totem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
