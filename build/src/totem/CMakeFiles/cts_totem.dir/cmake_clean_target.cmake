file(REMOVE_RECURSE
  "libcts_totem.a"
)
