# Empty dependencies file for cts_totem.
# This may be replaced when dependencies are built.
