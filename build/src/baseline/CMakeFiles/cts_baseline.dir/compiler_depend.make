# Empty compiler generated dependencies file for cts_baseline.
# This may be replaced when dependencies are built.
