file(REMOVE_RECURSE
  "CMakeFiles/cts_baseline.dir/baseline_clocks.cpp.o"
  "CMakeFiles/cts_baseline.dir/baseline_clocks.cpp.o.d"
  "libcts_baseline.a"
  "libcts_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
