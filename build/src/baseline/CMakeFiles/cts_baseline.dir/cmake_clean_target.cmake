file(REMOVE_RECURSE
  "libcts_baseline.a"
)
