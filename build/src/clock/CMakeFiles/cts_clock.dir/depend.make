# Empty dependencies file for cts_clock.
# This may be replaced when dependencies are built.
