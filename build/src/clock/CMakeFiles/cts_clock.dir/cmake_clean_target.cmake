file(REMOVE_RECURSE
  "libcts_clock.a"
)
