file(REMOVE_RECURSE
  "CMakeFiles/cts_clock.dir/physical_clock.cpp.o"
  "CMakeFiles/cts_clock.dir/physical_clock.cpp.o.d"
  "libcts_clock.a"
  "libcts_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
