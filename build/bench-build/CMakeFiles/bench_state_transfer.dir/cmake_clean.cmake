file(REMOVE_RECURSE
  "../bench/bench_state_transfer"
  "../bench/bench_state_transfer.pdb"
  "CMakeFiles/bench_state_transfer.dir/bench_state_transfer.cpp.o"
  "CMakeFiles/bench_state_transfer.dir/bench_state_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
