# Empty dependencies file for bench_state_transfer.
# This may be replaced when dependencies are built.
