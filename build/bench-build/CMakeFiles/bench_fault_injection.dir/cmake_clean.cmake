file(REMOVE_RECURSE
  "../bench/bench_fault_injection"
  "../bench/bench_fault_injection.pdb"
  "CMakeFiles/bench_fault_injection.dir/bench_fault_injection.cpp.o"
  "CMakeFiles/bench_fault_injection.dir/bench_fault_injection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
