file(REMOVE_RECURSE
  "../bench/bench_multigroup"
  "../bench/bench_multigroup.pdb"
  "CMakeFiles/bench_multigroup.dir/bench_multigroup.cpp.o"
  "CMakeFiles/bench_multigroup.dir/bench_multigroup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multigroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
