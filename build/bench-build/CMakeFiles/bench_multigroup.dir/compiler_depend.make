# Empty compiler generated dependencies file for bench_multigroup.
# This may be replaced when dependencies are built.
