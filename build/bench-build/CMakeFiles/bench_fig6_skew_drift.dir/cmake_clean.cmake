file(REMOVE_RECURSE
  "../bench/bench_fig6_skew_drift"
  "../bench/bench_fig6_skew_drift.pdb"
  "CMakeFiles/bench_fig6_skew_drift.dir/bench_fig6_skew_drift.cpp.o"
  "CMakeFiles/bench_fig6_skew_drift.dir/bench_fig6_skew_drift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_skew_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
