file(REMOVE_RECURSE
  "../bench/bench_token_ring"
  "../bench/bench_token_ring.pdb"
  "CMakeFiles/bench_token_ring.dir/bench_token_ring.cpp.o"
  "CMakeFiles/bench_token_ring.dir/bench_token_ring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_token_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
