# Empty dependencies file for bench_app_throughput.
# This may be replaced when dependencies are built.
