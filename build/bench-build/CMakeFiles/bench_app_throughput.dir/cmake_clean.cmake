file(REMOVE_RECURSE
  "../bench/bench_app_throughput"
  "../bench/bench_app_throughput.pdb"
  "CMakeFiles/bench_app_throughput.dir/bench_app_throughput.cpp.o"
  "CMakeFiles/bench_app_throughput.dir/bench_app_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
