file(REMOVE_RECURSE
  "../bench/bench_ablation_drift"
  "../bench/bench_ablation_drift.pdb"
  "CMakeFiles/bench_ablation_drift.dir/bench_ablation_drift.cpp.o"
  "CMakeFiles/bench_ablation_drift.dir/bench_ablation_drift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
