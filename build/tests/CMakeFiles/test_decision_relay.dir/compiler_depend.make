# Empty compiler generated dependencies file for test_decision_relay.
# This may be replaced when dependencies are built.
