file(REMOVE_RECURSE
  "CMakeFiles/test_decision_relay.dir/decision_relay_test.cpp.o"
  "CMakeFiles/test_decision_relay.dir/decision_relay_test.cpp.o.d"
  "test_decision_relay"
  "test_decision_relay.pdb"
  "test_decision_relay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
