# Empty compiler generated dependencies file for test_cold_start.
# This may be replaced when dependencies are built.
