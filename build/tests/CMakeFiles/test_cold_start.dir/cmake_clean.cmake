file(REMOVE_RECURSE
  "CMakeFiles/test_cold_start.dir/cold_start_test.cpp.o"
  "CMakeFiles/test_cold_start.dir/cold_start_test.cpp.o.d"
  "test_cold_start"
  "test_cold_start.pdb"
  "test_cold_start[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
