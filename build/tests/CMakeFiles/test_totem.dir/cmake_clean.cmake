file(REMOVE_RECURSE
  "CMakeFiles/test_totem.dir/totem_test.cpp.o"
  "CMakeFiles/test_totem.dir/totem_test.cpp.o.d"
  "test_totem"
  "test_totem.pdb"
  "test_totem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_totem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
