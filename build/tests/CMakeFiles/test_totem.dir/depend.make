# Empty dependencies file for test_totem.
# This may be replaced when dependencies are built.
