file(REMOVE_RECURSE
  "CMakeFiles/test_orb.dir/orb_test.cpp.o"
  "CMakeFiles/test_orb.dir/orb_test.cpp.o.d"
  "test_orb"
  "test_orb.pdb"
  "test_orb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
