# Empty compiler generated dependencies file for test_kv_fuzz.
# This may be replaced when dependencies are built.
