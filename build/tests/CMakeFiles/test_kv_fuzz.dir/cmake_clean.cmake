file(REMOVE_RECURSE
  "CMakeFiles/test_kv_fuzz.dir/kv_fuzz_test.cpp.o"
  "CMakeFiles/test_kv_fuzz.dir/kv_fuzz_test.cpp.o.d"
  "test_kv_fuzz"
  "test_kv_fuzz.pdb"
  "test_kv_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
