# Empty compiler generated dependencies file for test_session_manager.
# This may be replaced when dependencies are built.
