file(REMOVE_RECURSE
  "CMakeFiles/test_session_manager.dir/session_manager_test.cpp.o"
  "CMakeFiles/test_session_manager.dir/session_manager_test.cpp.o.d"
  "test_session_manager"
  "test_session_manager.pdb"
  "test_session_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
