# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_clock[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_totem[1]_include.cmake")
include("/root/repo/build/tests/test_gcs[1]_include.cmake")
include("/root/repo/build/tests/test_cts[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_multigroup[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_orb[1]_include.cmake")
include("/root/repo/build/tests/test_kv_store[1]_include.cmake")
include("/root/repo/build/tests/test_sharded[1]_include.cmake")
include("/root/repo/build/tests/test_cold_start[1]_include.cmake")
include("/root/repo/build/tests/test_decision_relay[1]_include.cmake")
include("/root/repo/build/tests/test_kv_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_session_manager[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
