file(REMOVE_RECURSE
  "CMakeFiles/ctsim.dir/ctsim.cpp.o"
  "CMakeFiles/ctsim.dir/ctsim.cpp.o.d"
  "ctsim"
  "ctsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
