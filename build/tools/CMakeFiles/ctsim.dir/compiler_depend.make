# Empty compiler generated dependencies file for ctsim.
# This may be replaced when dependencies are built.
