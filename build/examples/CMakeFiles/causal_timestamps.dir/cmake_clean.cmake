file(REMOVE_RECURSE
  "CMakeFiles/causal_timestamps.dir/causal_timestamps.cpp.o"
  "CMakeFiles/causal_timestamps.dir/causal_timestamps.cpp.o.d"
  "causal_timestamps"
  "causal_timestamps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_timestamps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
