# Empty compiler generated dependencies file for causal_timestamps.
# This may be replaced when dependencies are built.
