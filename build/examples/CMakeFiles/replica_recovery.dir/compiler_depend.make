# Empty compiler generated dependencies file for replica_recovery.
# This may be replaced when dependencies are built.
