file(REMOVE_RECURSE
  "CMakeFiles/replica_recovery.dir/replica_recovery.cpp.o"
  "CMakeFiles/replica_recovery.dir/replica_recovery.cpp.o.d"
  "replica_recovery"
  "replica_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
