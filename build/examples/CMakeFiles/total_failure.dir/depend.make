# Empty dependencies file for total_failure.
# This may be replaced when dependencies are built.
