
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/total_failure.cpp" "examples/CMakeFiles/total_failure.dir/total_failure.cpp.o" "gcc" "examples/CMakeFiles/total_failure.dir/total_failure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/cts_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cts_net.dir/DependInfo.cmake"
  "/root/repo/build/src/totem/CMakeFiles/cts_totem.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/cts_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/cts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/cts_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/cts_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/cts_app.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cts_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
