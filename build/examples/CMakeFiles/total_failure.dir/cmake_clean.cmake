file(REMOVE_RECURSE
  "CMakeFiles/total_failure.dir/total_failure.cpp.o"
  "CMakeFiles/total_failure.dir/total_failure.cpp.o.d"
  "total_failure"
  "total_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/total_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
