# Empty compiler generated dependencies file for transaction_timeouts.
# This may be replaced when dependencies are built.
