file(REMOVE_RECURSE
  "CMakeFiles/transaction_timeouts.dir/transaction_timeouts.cpp.o"
  "CMakeFiles/transaction_timeouts.dir/transaction_timeouts.cpp.o.d"
  "transaction_timeouts"
  "transaction_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
