file(REMOVE_RECURSE
  "CMakeFiles/passive_failover.dir/passive_failover.cpp.o"
  "CMakeFiles/passive_failover.dir/passive_failover.cpp.o.d"
  "passive_failover"
  "passive_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
