# Empty dependencies file for passive_failover.
# This may be replaced when dependencies are built.
