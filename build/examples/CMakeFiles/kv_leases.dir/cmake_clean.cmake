file(REMOVE_RECURSE
  "CMakeFiles/kv_leases.dir/kv_leases.cpp.o"
  "CMakeFiles/kv_leases.dir/kv_leases.cpp.o.d"
  "kv_leases"
  "kv_leases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_leases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
