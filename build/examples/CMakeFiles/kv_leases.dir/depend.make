# Empty dependencies file for kv_leases.
# This may be replaced when dependencies are built.
