# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_passive_failover "/root/repo/build/examples/passive_failover")
set_tests_properties(example_passive_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replica_recovery "/root/repo/build/examples/replica_recovery")
set_tests_properties(example_replica_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_causal_timestamps "/root/repo/build/examples/causal_timestamps")
set_tests_properties(example_causal_timestamps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transaction_timeouts "/root/repo/build/examples/transaction_timeouts")
set_tests_properties(example_transaction_timeouts PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_leases "/root/repo/build/examples/kv_leases")
set_tests_properties(example_kv_leases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_total_failure "/root/repo/build/examples/total_failure")
set_tests_properties(example_total_failure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
