// Unit tests for the simulated LAN: delivery, latency model, loss,
// crashes, partitions.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace cts::net {
namespace {

struct Rig {
  sim::Simulator sim{1};
  NetworkConfig cfg;
  Network net;
  std::map<std::uint32_t, std::vector<std::pair<NodeId, Bytes>>> inbox;

  explicit Rig(NetworkConfig c = {}) : cfg(c), net(sim, cfg) {}

  void attach(std::uint32_t id) {
    net.attach(NodeId{id}, [this, id](NodeId src, const SharedBytes& b) {
      inbox[id].emplace_back(src, b.to_bytes());
    });
  }
};

Bytes payload(std::uint8_t tag, std::size_t size = 1) { return Bytes(size, tag); }

TEST(NetworkTest, UnicastDeliversToDestinationOnly) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.attach(2);
  rig.net.send(NodeId{0}, NodeId{1}, payload(7));
  rig.sim.run();
  ASSERT_EQ(rig.inbox[1].size(), 1u);
  EXPECT_EQ(rig.inbox[1][0].first, NodeId{0});
  EXPECT_EQ(rig.inbox[1][0].second, payload(7));
  EXPECT_TRUE(rig.inbox[0].empty());
  EXPECT_TRUE(rig.inbox[2].empty());
}

TEST(NetworkTest, BroadcastReachesEveryoneButSender) {
  Rig rig;
  for (std::uint32_t i = 0; i < 4; ++i) rig.attach(i);
  rig.net.broadcast(NodeId{2}, payload(9));
  rig.sim.run();
  EXPECT_TRUE(rig.inbox[2].empty());
  for (std::uint32_t i : {0u, 1u, 3u}) {
    ASSERT_EQ(rig.inbox[i].size(), 1u) << "node " << i;
    EXPECT_EQ(rig.inbox[i][0].first, NodeId{2});
  }
}

TEST(NetworkTest, LatencyIsAtLeastBasePlusSerialization) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  Micros delivered_at = -1;
  rig.net.attach(NodeId{1}, [&](NodeId, const SharedBytes&) { delivered_at = rig.sim.now(); });
  rig.net.send(NodeId{0}, NodeId{1}, payload(1, 1250));  // 1250B at 12.5B/us = 100us
  rig.sim.run();
  ASSERT_GE(delivered_at, 0);
  EXPECT_GE(delivered_at, rig.cfg.base_latency_us + 100);
  EXPECT_LE(delivered_at, rig.cfg.base_latency_us + 100 + 50);  // jitter bound (loose)
}

TEST(NetworkTest, LossDropsApproximatelyTheConfiguredFraction) {
  NetworkConfig cfg;
  cfg.loss_probability = 0.3;
  Rig rig(cfg);
  rig.attach(0);
  rig.attach(1);
  for (int i = 0; i < 2000; ++i) rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  rig.sim.run();
  const double rate = static_cast<double>(rig.inbox[1].size()) / 2000.0;
  EXPECT_NEAR(rate, 0.7, 0.05);
  EXPECT_EQ(rig.net.stats().packets_dropped + rig.net.stats().packets_delivered, 2000u);
}

TEST(NetworkTest, DownNodeReceivesNothing) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.set_down(NodeId{1}, true);
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  rig.net.broadcast(NodeId{0}, payload(2));
  rig.sim.run();
  EXPECT_TRUE(rig.inbox[1].empty());
}

TEST(NetworkTest, NodeBackUpReceivesAgain) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.set_down(NodeId{1}, true);
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  rig.sim.run();
  rig.net.set_down(NodeId{1}, false);
  rig.net.send(NodeId{0}, NodeId{1}, payload(2));
  rig.sim.run();
  ASSERT_EQ(rig.inbox[1].size(), 1u);
  EXPECT_EQ(rig.inbox[1][0].second, payload(2));
}

TEST(NetworkTest, CrashWhilePacketInFlightDropsIt) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  // Crash before the propagation delay elapses.
  rig.sim.after(1, [&] { rig.net.set_down(NodeId{1}, true); });
  rig.sim.run();
  EXPECT_TRUE(rig.inbox[1].empty());
  EXPECT_EQ(rig.net.stats().packets_dropped, 1u);
}

TEST(NetworkTest, PartitionBlocksCrossComponentTraffic) {
  Rig rig;
  for (std::uint32_t i = 0; i < 4; ++i) rig.attach(i);
  rig.net.partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}}});
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));  // same component
  rig.net.send(NodeId{0}, NodeId{2}, payload(2));  // cross component
  rig.net.broadcast(NodeId{3}, payload(3));
  rig.sim.run();
  EXPECT_EQ(rig.inbox[1].size(), 1u);
  // Broadcast from 3 reaches only 2; the cross-component unicast is dropped.
  ASSERT_EQ(rig.inbox[2].size(), 1u);
  EXPECT_EQ(rig.inbox[2][0].second, payload(3));
  EXPECT_TRUE(rig.inbox[0].empty());
  EXPECT_TRUE(rig.inbox[3].empty());
}

TEST(NetworkTest, HealRestoresFullConnectivity) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.partition({{NodeId{0}}, {NodeId{1}}});
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  rig.sim.run();
  EXPECT_TRUE(rig.inbox[1].empty());
  rig.net.heal();
  EXPECT_FALSE(rig.net.partitioned());
  rig.net.send(NodeId{0}, NodeId{1}, payload(2));
  rig.sim.run();
  ASSERT_EQ(rig.inbox[1].size(), 1u);
}

TEST(NetworkTest, StatsCountBytes) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.send(NodeId{0}, NodeId{1}, payload(1, 100));
  rig.net.broadcast(NodeId{0}, payload(2, 50));
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().bytes_sent, 150u);
  EXPECT_EQ(rig.net.stats().packets_sent, 2u);
}

TEST(NetworkTest, DetachedNodeCountsAsDrop) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.net.detach(NodeId{1});
  rig.net.send(NodeId{0}, NodeId{1}, payload(1));
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().packets_dropped, 1u);
}

TEST(NetworkTest, NicSerializesBackToBackPackets) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  std::vector<Micros> arrivals;
  rig.net.attach(NodeId{1}, [&](NodeId, const SharedBytes&) { arrivals.push_back(rig.sim.now()); });
  // Ten 1250-byte packets sent at the same instant: the NIC transmits them
  // one after another at 12.5 B/us = 100us each.
  for (int i = 0; i < 10; ++i) rig.net.send(NodeId{0}, NodeId{1}, payload(1, 1250));
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    // Consecutive arrivals at least ~serialization time apart (jitter may
    // wobble the exact spacing slightly).
    EXPECT_GE(arrivals[i] - arrivals[i - 1], 80);
  }
  // Total spread covers the full transmission burst.
  EXPECT_GE(arrivals.back() - arrivals.front(), 9 * 80);
}

TEST(NetworkTest, DifferentSendersDoNotShareTheTxQueue) {
  Rig rig;
  rig.attach(0);
  rig.attach(1);
  rig.attach(2);
  std::vector<Micros> arrivals;
  rig.net.attach(NodeId{2}, [&](NodeId, const SharedBytes&) { arrivals.push_back(rig.sim.now()); });
  rig.net.send(NodeId{0}, NodeId{2}, payload(1, 1250));
  rig.net.send(NodeId{1}, NodeId{2}, payload(2, 1250));
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Independent NICs transmit concurrently: both arrive ~together.
  EXPECT_LE(arrivals[1] - arrivals[0], 40);
}

TEST(NetworkTest, BroadcastUsesOneTransmissionSlot) {
  Rig rig;
  for (std::uint32_t i = 0; i < 4; ++i) rig.attach(i);
  std::vector<Micros> arrivals;
  for (std::uint32_t i = 1; i < 4; ++i) {
    rig.net.attach(NodeId{i}, [&](NodeId, const SharedBytes&) { arrivals.push_back(rig.sim.now()); });
  }
  rig.net.broadcast(NodeId{0}, payload(1, 1250));
  rig.sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // All receivers hear the same transmission within jitter of each other.
  EXPECT_LE(arrivals.back() - arrivals.front(), 40);
}

TEST(NetworkTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Rig rig;
    rig.attach(0);
    rig.attach(1);
    std::vector<Micros> times;
    rig.net.attach(NodeId{1}, [&](NodeId, const SharedBytes&) { times.push_back(rig.sim.now()); });
    for (int i = 0; i < 50; ++i) rig.net.send(NodeId{0}, NodeId{1}, payload(1));
    rig.sim.run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cts::net
