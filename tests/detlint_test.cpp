// Unit tests for the detlint determinism/protocol-invariant analyzer.
//
// Every hazard snippet lives inside a C++ string literal, which the
// scanner blanks before matching — so this file itself lints clean even
// though it spells out each forbidden construct.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

using detlint::Finding;
using detlint::Severity;
using detlint::lint_content;

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; });
}

int line_of(const std::vector<Finding>& fs, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

// --- unordered-container -------------------------------------------------------

TEST(DetlintTest, UnorderedContainerFlaggedInProtocolLayer) {
  const std::string src = "#include <unordered_map>\n"
                          "std::unordered_map<int, int> m_;\n";
  const auto fs = lint_content("src/net/network.hpp", src);
  ASSERT_TRUE(has_rule(fs, "unordered-container"));
  EXPECT_EQ(line_of(fs, "unordered-container"), 2);
}

TEST(DetlintTest, UnorderedContainerAllowedOutsideProtocolLayers) {
  const std::string src = "std::unordered_map<int, int> m_;\n";
  EXPECT_FALSE(has_rule(lint_content("src/app/kv_store.hpp", src), "unordered-container"));
  EXPECT_FALSE(has_rule(lint_content("tests/foo_test.cpp", src), "unordered-container"));
}

TEST(DetlintTest, AllProtocolLayersCovered) {
  const std::string src = "std::unordered_set<int> s_;\n";
  for (const char* dir : {"src/net/a.hpp", "src/sim/a.hpp", "src/totem/a.hpp", "src/gcs/a.hpp",
                          "src/replication/a.hpp", "src/cts/a.hpp"}) {
    EXPECT_TRUE(has_rule(lint_content(dir, src), "unordered-container")) << dir;
  }
}

// --- wall-clock ----------------------------------------------------------------

TEST(DetlintTest, WallClockCallsFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp",
                                    "auto t = std::chrono::system_clock::now();\n"),
                       "wall-clock"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "steady_clock::now();\n"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "gettimeofday(&tv, nullptr);\n"),
                       "wall-clock"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "auto t = time(nullptr);\n"), "wall-clock"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "clock_gettime(CLOCK_REALTIME, &ts);\n"),
                       "wall-clock"));
}

TEST(DetlintTest, SimulatedFacadeCallsNotFlagged) {
  // Member access through the TimeSyscalls facade is the sanctioned path.
  EXPECT_FALSE(has_rule(lint_content("src/app/a.cpp", "auto now = co_await sys_.gettimeofday();\n"),
                        "wall-clock"));
  EXPECT_FALSE(
      has_rule(lint_content("src/app/a.cpp", "auto now = sys->clock_gettime();\n"), "wall-clock"));
  // Identifier suffixes are not calls.
  EXPECT_FALSE(has_rule(lint_content("src/app/a.cpp", "run_time(5);\n"), "wall-clock"));
}

TEST(DetlintTest, ObsExportPathsExemptFromWallClock) {
  EXPECT_FALSE(has_rule(lint_content("src/obs/recorder.cpp",
                                     "auto t = std::chrono::system_clock::now();\n"),
                        "wall-clock"));
}

// --- raw-random ----------------------------------------------------------------

TEST(DetlintTest, RawRandomnessFlaggedOutsideRngHome) {
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "int x = std::rand();\n"), "raw-random"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "std::random_device rd;\n"), "raw-random"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "std::mt19937_64 gen(seed);\n"),
                       "raw-random"));
  EXPECT_FALSE(has_rule(lint_content("src/common/rng.hpp", "std::random_device rd;\n"),
                        "raw-random"));
}

// --- side-effect-assert --------------------------------------------------------

TEST(DetlintTest, SideEffectAssertFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", "assert(++count > 0);\n"),
                       "side-effect-assert"));
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", "assert(m.insert(k).second);\n"),
                       "side-effect-assert"));
  EXPECT_TRUE(
      has_rule(lint_content("src/totem/a.cpp", "assert(x = compute());\n"), "side-effect-assert"));
}

TEST(DetlintTest, PureAssertsNotFlagged) {
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", "assert(t >= now_);\n"),
                        "side-effect-assert"));
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", "assert(it != m.end());\n"),
                        "side-effect-assert"));
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp",
                                     "assert(a == b && \"message text\");\n"),
                        "side-effect-assert"));
  // static_assert is compile-time; it cannot vanish at runtime.
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", "static_assert(sizeof(T) == 8);\n"),
                        "side-effect-assert"));
}

TEST(DetlintTest, MultiLineAssertArgumentIsJoined) {
  const std::string src = "assert(very_long_condition_one &&\n"
                          "       container.erase(k) == 1);\n";
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", src), "side-effect-assert"));
}

// --- type-pun ------------------------------------------------------------------

TEST(DetlintTest, TypePunningFlaggedOutsideBytesCodec) {
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", "std::memcpy(&v, p, 4);\n"), "type-pun"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp",
                                    "auto* p = reinterpret_cast<const char*>(data);\n"),
                       "type-pun"));
  EXPECT_FALSE(has_rule(lint_content("src/common/bytes.hpp", "std::memcpy(&v, p, 4);\n"),
                        "type-pun"));
}

// --- float-compare -------------------------------------------------------------

TEST(DetlintTest, FloatEqualityFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/clock/a.cpp", "if (drift == 0.0) return;\n"),
                       "float-compare"));
  EXPECT_TRUE(has_rule(lint_content("src/clock/a.cpp", "bool same = 1.5f == ratio;\n"),
                       "float-compare"));
  EXPECT_FALSE(has_rule(lint_content("src/clock/a.cpp", "if (count == 0) return;\n"),
                        "float-compare"));
  EXPECT_FALSE(has_rule(lint_content("src/clock/a.cpp", "if (x >= 0.5) return;\n"),
                        "float-compare"));
}

// --- pointer-key ---------------------------------------------------------------

TEST(DetlintTest, PointerKeyedContainersFlagged) {
  const std::string src = "std::map<Replica*, int> owners_;\n";
  const auto protocol = lint_content("src/replication/a.hpp", src);
  ASSERT_TRUE(has_rule(protocol, "pointer-key"));
  for (const Finding& f : protocol) {
    if (f.rule == "pointer-key") {
      EXPECT_EQ(f.severity, Severity::kError);
    }
  }
  const auto app = lint_content("src/app/a.hpp", src);
  ASSERT_TRUE(has_rule(app, "pointer-key"));
  for (const Finding& f : app) {
    if (f.rule == "pointer-key") {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
}

// --- heap-callback -------------------------------------------------------------

TEST(DetlintTest, HeapCallbackFlaggedInHotPathLayers) {
  const std::string src = "std::function<void()> cb_;\n";
  for (const char* dir : {"src/sim/a.hpp", "src/net/a.hpp"}) {
    const auto fs = lint_content(dir, src);
    ASSERT_TRUE(has_rule(fs, "heap-callback")) << dir;
    EXPECT_EQ(line_of(fs, "heap-callback"), 1) << dir;
    for (const Finding& f : fs) {
      if (f.rule == "heap-callback") {
        EXPECT_EQ(f.severity, Severity::kWarning);  // advisory, not gating
      }
    }
  }
}

TEST(DetlintTest, HeapCallbackNotFlaggedOutsideHotPathLayers) {
  const std::string src = "std::function<void()> cb_;\n";
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.hpp", src), "heap-callback"));
  EXPECT_FALSE(has_rule(lint_content("src/app/a.hpp", src), "heap-callback"));
  EXPECT_FALSE(has_rule(lint_content("tests/a_test.cpp", src), "heap-callback"));
  // Identifier suffixes are not the type.
  EXPECT_FALSE(has_rule(lint_content("src/sim/a.hpp", "my_function(1);\n"), "heap-callback"));
}

TEST(DetlintTest, HeapCallbackSuppressible) {
  const std::string src = "using Handler = std::function<void(int)>;  "
                          "// detlint:allow(heap-callback): bound once at attach time\n";
  EXPECT_TRUE(lint_content("src/net/a.hpp", src).empty());
}

// --- scoped-timer --------------------------------------------------------------

TEST(DetlintTest, DirectSimSchedulingFlaggedInNodeLayers) {
  for (const char* dir : {"src/totem/a.cpp", "src/gcs/a.cpp", "src/replication/a.cpp",
                          "src/orb/a.cpp", "src/cts/a.hpp", "src/app/a.hpp"}) {
    const auto fs = lint_content(dir, "sim_.after(10, [this] { tick(); });\n");
    ASSERT_TRUE(has_rule(fs, "scoped-timer")) << dir;
    for (const Finding& f : fs) {
      if (f.rule == "scoped-timer") {
        EXPECT_EQ(f.severity, Severity::kWarning);  // advisory, not gating
      }
    }
  }
  // All the spellings a node layer reaches the simulator by.
  EXPECT_TRUE(has_rule(lint_content("src/cts/a.hpp", "svc.simulator().after(0, cb);\n"),
                       "scoped-timer"));
  EXPECT_TRUE(has_rule(lint_content("src/cts/a.hpp", "sim_.at(deadline, cb);\n"), "scoped-timer"));
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", "co_await ctx_.sim.delay(5);\n"),
                       "scoped-timer"));
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", "sim_.reschedule(ev, t);\n"),
                       "scoped-timer"));
}

TEST(DetlintTest, ScopedSchedulingNotFlagged) {
  // The sanctioned path: the node's lifecycle scope.
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", "scope_.after(10, cb);\n"),
                        "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("src/cts/a.hpp", "svc.scope().after(0, cb);\n"),
                        "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("src/app/a.cpp",
                                     "co_await ctx_.time.scope().delay(5);\n"),
                        "scoped-timer"));
  // Non-scheduling simulator reads stay legal.
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", "const Micros t = sim_.now();\n"),
                        "scoped-timer"));
}

TEST(DetlintTest, DirectSimSchedulingAllowedOutsideNodeLayers) {
  const std::string src = "sim_.after(10, cb);\n";
  // src/net schedules on the destination's scope internally; src/sim owns
  // the primitive; baselines and storage model node-independent hardware.
  EXPECT_FALSE(has_rule(lint_content("src/net/network.cpp", src), "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("src/sim/task_scope.hpp", src), "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("src/baseline/a.cpp", src), "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("src/storage/a.hpp", src), "scoped-timer"));
  EXPECT_FALSE(has_rule(lint_content("tests/a_test.cpp", src), "scoped-timer"));
}

TEST(DetlintTest, ScopedTimerSuppressible) {
  const std::string src =
      "sim_.after(10, cb);  // detlint:allow(scoped-timer): node-independent hardware model\n";
  EXPECT_TRUE(lint_content("src/cts/a.hpp", src).empty());
}

// --- comment/string awareness --------------------------------------------------

TEST(DetlintTest, CommentsAndStringsAreNotCode) {
  EXPECT_TRUE(lint_content("src/net/a.hpp", "// std::unordered_map<int,int> old;\n").empty());
  EXPECT_TRUE(lint_content("src/net/a.hpp",
                           "/* std::unordered_map<int,int>\n   spans lines */\n")
                  .empty());
  EXPECT_TRUE(
      lint_content("src/net/a.hpp", "const char* s = \"std::unordered_map\";\n").empty());
}

TEST(DetlintTest, DigitSeparatorsDoNotStartCharLiterals) {
  // 5'000 must not open a char literal that swallows the hazard after it.
  const std::string src = "sim.after(5'000, [] { std::rand(); });\n";
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", src), "raw-random"));
}

// --- suppressions --------------------------------------------------------------

TEST(DetlintTest, SameLineSuppressionWithJustification) {
  const std::string src = "std::unordered_map<int, int> idx_;  "
                          "// detlint:allow(unordered-container): never iterated\n";
  EXPECT_TRUE(lint_content("src/net/a.hpp", src).empty());
}

TEST(DetlintTest, PrecedingCommentSuppressionCoversNextCodeLine) {
  const std::string src = "// detlint:allow(unordered-container): membership test only,\n"
                          "// never iterated so hash order cannot leak.\n"
                          "std::unordered_set<int> seen_;\n";
  EXPECT_TRUE(lint_content("src/sim/a.hpp", src).empty());
}

TEST(DetlintTest, BareSuppressionIsAnError) {
  const std::string src = "std::unordered_map<int, int> idx_;  "
                          "// detlint:allow(unordered-container)\n";
  const auto fs = lint_content("src/net/a.hpp", src);
  EXPECT_TRUE(has_rule(fs, "bare-suppression"));
  EXPECT_FALSE(has_rule(fs, "unordered-container"));  // still suppresses
}

TEST(DetlintTest, UnusedSuppressionIsAWarning) {
  const std::string src = "// detlint:allow(wall-clock): stale justification\n"
                          "int x = 1;\n";
  const auto fs = lint_content("src/app/a.cpp", src);
  ASSERT_TRUE(has_rule(fs, "unused-suppression"));
  EXPECT_EQ(fs.front().severity, Severity::kWarning);
}

TEST(DetlintTest, SuppressionOnlySilencesItsOwnRule) {
  const std::string src = "std::unordered_map<int, int> m_;  "
                          "// detlint:allow(wall-clock): wrong rule named\n";
  const auto fs = lint_content("src/net/a.hpp", src);
  EXPECT_TRUE(has_rule(fs, "unordered-container"));
  EXPECT_TRUE(has_rule(fs, "unused-suppression"));
}

// --- raw strings & splices (v2 stripper) ---------------------------------------

TEST(DetlintTest, RawStringContentsAreNotCode) {
  EXPECT_TRUE(lint_content("src/net/a.hpp",
                           "const char* s = R\"(std::unordered_map<int,int> g;)\";\n")
                  .empty());
  // Multi-line raw string: the hazard spans lines inside the literal.
  const std::string src = "const char* doc = R\"doc(\n"
                          "std::unordered_map<int, int> global_table;\n"
                          "std::rand();\n"
                          ")doc\";\n";
  EXPECT_TRUE(lint_content("src/net/a.hpp", src).empty());
}

TEST(DetlintTest, CodeAfterRawStringOnSameLineIsStillCode) {
  const std::string src =
      "emit(R\"(text)\"); std::unordered_map<int, int> live_map;\n";
  const auto fs = lint_content("src/net/a.hpp", src);
  EXPECT_TRUE(has_rule(fs, "unordered-container"));
}

TEST(DetlintTest, QuoteInsideRawStringDoesNotOpenALiteral) {
  // The `"` inside the raw string must not swallow the hazard after it.
  const std::string src = "const char* s = R\"(say \"hi\")\"; std::rand();\n";
  EXPECT_TRUE(has_rule(lint_content("src/app/a.cpp", src), "raw-random"));
}

TEST(DetlintTest, SplicedLineCommentHidesTheNextLine) {
  // A `//` comment ending in a backslash splices onto the next physical
  // line, so the "code" there is still comment text.
  const std::string src = "// hazard disabled: \\\n"
                          "std::unordered_map<int, int> g;\n";
  EXPECT_TRUE(lint_content("src/net/a.hpp", src).empty());
}

TEST(DetlintTest, SplicedStringLiteralIsNotCode) {
  const std::string src = "const char* s = \"std::unordered_map \\\n"
                          "<int,int> g;\";\n";
  EXPECT_TRUE(lint_content("src/net/a.hpp", src).empty());
}

// --- static-mutable-state (v2) -------------------------------------------------

TEST(DetlintTest, NamespaceScopeMutableStateFlaggedInHazardLayers) {
  const auto fs = lint_content("src/gcs/a.cpp", "static int g_total = 0;\n");
  ASSERT_TRUE(has_rule(fs, "static-mutable-state"));
  EXPECT_EQ(line_of(fs, "static-mutable-state"), 1);
  // A plain (non-static) global is just as shared.
  EXPECT_TRUE(has_rule(lint_content("src/totem/a.cpp", "int g_rounds;\n"),
                       "static-mutable-state"));
  // Inside a named namespace too.
  const std::string ns = "namespace cts::gcs {\n"
                         "static std::vector<int> g_pending;\n"
                         "}\n";
  EXPECT_TRUE(has_rule(lint_content("src/gcs/b.cpp", ns), "static-mutable-state"));
}

TEST(DetlintTest, ImmutableOrThreadSafeStateNotFlagged) {
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", "static const int kMax = 8;\n").empty());
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", "constexpr int kBits = 3;\n").empty());
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", "static thread_local int t_depth = 0;\n").empty());
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", "static std::once_flag g_once;\n").empty());
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", "static std::mutex g_lock;\n").empty());
  // Non-hazard layers keep their globals (the parallel simulator does not
  // run them on worker threads).
  EXPECT_FALSE(has_rule(lint_content("tools/ctsim/main.cpp", "static int g_verbose = 0;\n"),
                        "static-mutable-state"));
  EXPECT_FALSE(has_rule(lint_content("tests/a_test.cpp", "static int g_calls = 0;\n"),
                        "static-mutable-state"));
}

TEST(DetlintTest, ClassStaticMutableMemberFlagged) {
  const std::string src = "class Endpoint {\n"
                          "  static int live_count_;\n"
                          "};\n";
  const auto fs = lint_content("src/gcs/a.hpp", src);
  ASSERT_TRUE(has_rule(fs, "static-mutable-state"));
  EXPECT_EQ(line_of(fs, "static-mutable-state"), 2);
  // Per-instance members are fine.
  EXPECT_TRUE(lint_content("src/gcs/a.hpp", "class E {\n  int count_ = 0;\n};\n").empty());
  // constexpr class statics are immutable.
  EXPECT_TRUE(
      lint_content("src/gcs/a.hpp", "class E {\n  static constexpr int kMax = 4;\n};\n").empty());
}

TEST(DetlintTest, FunctionLocalStaticFlagged) {
  const std::string src = "int next_id() {\n"
                          "  static int counter = 0;\n"
                          "  return ++counter;\n"
                          "}\n";
  const auto fs = lint_content("src/cts/a.cpp", src);
  ASSERT_TRUE(has_rule(fs, "static-local"));
  EXPECT_EQ(line_of(fs, "static-local"), 2);
  // A static lookup table is const: initialized once, read forever.
  const std::string table = "int classify(int x) {\n"
                            "  static const std::set<int> kSpecial = {1, 2};\n"
                            "  return kSpecial.count(x);\n"
                            "}\n";
  EXPECT_TRUE(lint_content("src/cts/a.cpp", table).empty());
}

TEST(DetlintTest, StaticMutableStateSuppressible) {
  const std::string src = "static int g_epoch = 0;  "
                          "// detlint:allow(static-mutable-state): guarded by init-once barrier\n";
  EXPECT_TRUE(lint_content("src/gcs/a.cpp", src).empty());
}

// --- global-in-callback (v2 cross-file pass) -----------------------------------

TEST(DetlintTest, GlobalReferencedFromHazardLayerWarns) {
  const std::vector<detlint::SourceFile> files = {
      {"src/app/config.cpp", "int g_retry_budget = 3;\n"},
      {"src/gcs/deliver.cpp",
       "void on_deliver() {\n"
       "  if (g_retry_budget > 0) retry();\n"
       "}\n"},
  };
  const auto fs = detlint::lint_sources(files);
  ASSERT_TRUE(has_rule(fs, "global-in-callback"));
  for (const Finding& f : fs) {
    if (f.rule == "global-in-callback") {
      EXPECT_EQ(f.file, "src/gcs/deliver.cpp");
      EXPECT_EQ(f.line, 2);
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
}

TEST(DetlintTest, GlobalReferenceFromNonHazardLayerIsQuiet) {
  const std::vector<detlint::SourceFile> files = {
      {"src/app/config.cpp", "int g_retry_budget = 3;\n"},
      {"src/app/use.cpp", "void f() { g_retry_budget = 1; }\n"},   // same layer class
      {"tools/ctsim/main.cpp", "void g() { g_retry_budget = 2; }\n"},  // not a hazard layer
  };
  EXPECT_FALSE(has_rule(detlint::lint_sources(files), "global-in-callback"));
}

TEST(DetlintTest, MemberAccessDoesNotMatchGlobalName) {
  const std::vector<detlint::SourceFile> files = {
      {"src/app/config.cpp", "int budget = 3;\n"},
      {"src/gcs/deliver.cpp",
       "void on_deliver() {\n"
       "  if (cfg.budget > 0) retry();\n"
       "  if (cfg->budget > 0) retry();\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(detlint::lint_sources(files), "global-in-callback"));
}

// --- iterator invalidation / callback under iteration (v2) ---------------------

TEST(DetlintTest, MutationOfRangeForContainerFlagged) {
  const std::string src = "void f() {\n"
                          "  for (const auto& s : subs_) {\n"
                          "    if (s.dead) subs_.erase(s.id);\n"
                          "  }\n"
                          "}\n";
  const auto fs = lint_content("src/gcs/a.cpp", src);
  ASSERT_TRUE(has_rule(fs, "iterator-invalidation"));
  EXPECT_EQ(line_of(fs, "iterator-invalidation"), 3);
}

TEST(DetlintTest, MutationOfDifferentObjectSameMemberNameNotFlagged) {
  // The totem view-install idiom: iterate c.members, append to v.members.
  const std::string src = "void f() {\n"
                          "  for (const auto& m : c.members) v.members.push_back(m.node);\n"
                          "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/totem/a.cpp", src), "iterator-invalidation"));
}

TEST(DetlintTest, MutationAfterTheLoopNotFlagged) {
  const std::string src = "void f() {\n"
                          "  for (const auto& s : subs_) mark(s);\n"
                          "  subs_.clear();\n"
                          "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/gcs/a.cpp", src), "iterator-invalidation"));
}

TEST(DetlintTest, CallbackInvokedWhileIteratingMemberContainerFlagged) {
  const std::string src = "void f() {\n"
                          "  for (auto& fn : subs_) fn(msg);\n"
                          "}\n";
  const auto fs = lint_content("src/gcs/a.cpp", src);
  ASSERT_TRUE(has_rule(fs, "callback-under-iteration"));
  EXPECT_EQ(line_of(fs, "callback-under-iteration"), 2);
}

TEST(DetlintTest, CallbackOverLocalSnapshotNotFlagged) {
  // Snapshot-then-call is the sanctioned fix; a local range is safe.
  const std::string src = "void f() {\n"
                          "  auto copy = subs_;\n"
                          "  for (auto& fn : copy) fn(msg);\n"
                          "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/gcs/a.cpp", src), "callback-under-iteration"));
}

TEST(DetlintTest, MethodCallOnLoopVariableNotFlagged) {
  // h.destroy() is a member call on the element, not an invocation of a
  // stored callback.
  const std::string src = "void f() {\n"
                          "  for (auto& h : handles_) h.destroy();\n"
                          "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/sim/a.cpp", src), "callback-under-iteration"));
}

// --- cross-island-capture (v2) -------------------------------------------------

TEST(DetlintTest, DefaultCaptureInCrossIslandPostFlagged) {
  const std::string by_ref = "void f() {\n"
                             "  coord_.post(src, dst, at, [&] { ep->deliver(m); });\n"
                             "}\n";
  const std::string by_val = "void f() {\n"
                             "  coord_.post(src, dst, at, [=] { ep->deliver(m); });\n"
                             "}\n";
  const std::string this_cap = "void f() {\n"
                               "  coord_.post(src, dst, at, [this] { deliver(m); });\n"
                               "}\n";
  for (const std::string* src_text : {&by_ref, &by_val, &this_cap}) {
    const auto fs = lint_content("src/net/a.hpp", *src_text);
    ASSERT_TRUE(has_rule(fs, "cross-island-capture"));
    EXPECT_EQ(line_of(fs, "cross-island-capture"), 2);
  }
}

TEST(DetlintTest, DefaultCaptureHeadOfListFlagged) {
  // [&, x] and [this, x] still default-capture everything else.
  const std::string src = "void f() {\n"
                          "  coord->post(a, b, at, [&, frame] { sink(frame); });\n"
                          "  coord->post(a, b, at, [this, frame] { sink(frame); });\n"
                          "}\n";
  const auto fs = lint_content("src/sim/a.hpp", src);
  EXPECT_TRUE(has_rule(fs, "cross-island-capture"));
  EXPECT_EQ(line_of(fs, "cross-island-capture"), 2);
}

TEST(DetlintTest, ExplicitCapturesInCrossIslandPostNotFlagged) {
  // The sanctioned idiom: every capture named, payload moved or pointing at
  // destination-owned state (src/net/island_link.hpp does exactly this).
  const std::string src =
      "void f() {\n"
      "  coord_.post(src, dst, at,\n"
      "              [ep = &eps_[dst], src, frame = std::move(frame)]() mutable {\n"
      "                ep->fn(src, std::move(frame));\n"
      "              });\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/island_link.hpp", src), "cross-island-capture"));
}

TEST(DetlintTest, SubscriptInsidePostArgsIsNotALambda) {
  const std::string src = "void f() {\n"
                          "  coord_.post(islands_[src], islands_[dst], at, run_of(dst));\n"
                          "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/a.hpp", src), "cross-island-capture"));
}

TEST(DetlintTest, DefaultCaptureOutsidePostOrOutsideHazardLayersNotFlagged) {
  // Same-island scheduling may capture freely; so may non-sim/net layers.
  const std::string same_island = "void f() {\n"
                                  "  sim_.at(at, [&] { deliver(m); });\n"
                                  "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/sim/a.hpp", same_island), "cross-island-capture"));
  const std::string other_layer = "void f() {\n"
                                  "  coord_.post(src, dst, at, [&] { deliver(m); });\n"
                                  "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/app/a.hpp", other_layer), "cross-island-capture"));
}

TEST(DetlintTest, CrossIslandCaptureSuppressible) {
  const std::string src =
      "void f() {\n"
      "  // detlint:allow(cross-island-capture): coordinator outlives every epoch\n"
      "  coord_.post(src, dst, at, [this] { deliver(); });\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_content("src/net/a.hpp", src), "cross-island-capture"));
}

// --- JSON output ---------------------------------------------------------------

// --- hot-path-map --------------------------------------------------------------

TEST(DetlintTest, HotPathMapFlaggedInDeliveryLayers) {
  const std::string src = "std::map<std::uint64_t, PendingSend> pending_;\n";
  for (const char* dir :
       {"src/net/a.hpp", "src/gcs/a.hpp", "src/totem/a.hpp", "src/obs/a.hpp"}) {
    const auto fs = lint_content(dir, src);
    ASSERT_TRUE(has_rule(fs, "hot-path-map")) << dir;
    EXPECT_EQ(line_of(fs, "hot-path-map"), 1) << dir;
  }
  EXPECT_TRUE(has_rule(lint_content("src/gcs/a.hpp", "std::multimap<Key, V> m_;\n"),
                       "hot-path-map"));
}

TEST(DetlintTest, HotPathMapAdvisoryOnly) {
  const auto fs = lint_content("src/totem/a.hpp", "std::map<int, int> m_;\n");
  for (const Finding& f : fs) {
    if (f.rule == "hot-path-map") {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(has_rule(fs, "hot-path-map"));
}

TEST(DetlintTest, HotPathMapNotFlaggedOutsideDeliveryLayers) {
  const std::string src = "std::map<std::string, Entry> entries_;\n";
  EXPECT_FALSE(has_rule(lint_content("src/app/kv_store.hpp", src), "hot-path-map"));
  EXPECT_FALSE(has_rule(lint_content("src/replication/a.hpp", src), "hot-path-map"));
  EXPECT_FALSE(has_rule(lint_content("tests/foo_test.cpp", src), "hot-path-map"));
}

TEST(DetlintTest, HotPathMapIgnoresFlatMapAndComments) {
  EXPECT_FALSE(has_rule(lint_content("src/gcs/a.hpp", "cts::FlatMap<Key, V> m_;\n"),
                        "hot-path-map"));
  EXPECT_FALSE(has_rule(
      lint_content("src/gcs/a.hpp", "// replaced the old std::map<Key, V> here\n"),
      "hot-path-map"));
}

TEST(DetlintTest, HotPathMapSuppressible) {
  const std::string src = "// detlint:allow(hot-path-map): stable Counter& references\n"
                          "std::map<std::string, Counter, std::less<>> counters_;\n";
  EXPECT_TRUE(lint_content("src/obs/a.hpp", src).empty());
}

TEST(DetlintTest, JsonOutputCarriesCountsAndFindings) {
  const Finding warn{"src/a.hpp", 3, "pointer-key", Severity::kWarning, "keyed on pointer"};
  const Finding err{"src/b.cpp", 7, "wall-clock", Severity::kError, "say \"when\""};
  const std::string js = detlint::to_json({warn, err}, 42);
  EXPECT_NE(js.find("\"files_scanned\": 42"), std::string::npos);
  EXPECT_NE(js.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"rule\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(js.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(js.find("say \\\"when\\\""), std::string::npos);  // escaping
  EXPECT_NE(detlint::to_json({}, 0).find("\"findings\": []"), std::string::npos);
}

// --- exit codes ----------------------------------------------------------------

TEST(DetlintTest, ExitCodeIsSeverityRanked) {
  EXPECT_EQ(detlint::exit_code({}), 0);
  const Finding warn{"f", 1, "pointer-key", Severity::kWarning, "m"};
  const Finding err{"f", 1, "wall-clock", Severity::kError, "m"};
  EXPECT_EQ(detlint::exit_code({warn}), 1);
  EXPECT_EQ(detlint::exit_code({warn, err}), 2);
}

TEST(DetlintTest, FormatIsGccStyle) {
  const Finding f{"src/net/network.hpp", 42, "unordered-container", Severity::kError, "msg"};
  EXPECT_EQ(detlint::format_finding(f),
            "src/net/network.hpp:42: error: msg [unordered-container]");
}

}  // namespace
