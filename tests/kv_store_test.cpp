// Tests for the replicated key-value store with group-clock leases.
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"

namespace cts::app {
namespace {

struct KvBed {
  Testbed tb;

  explicit KvBed(std::size_t servers = 3, std::uint64_t seed = 1,
                 replication::ReplicationStyle style = replication::ReplicationStyle::kActive)
      : tb(make_cfg(servers, seed, style)) {
    tb.start();
  }

  static TestbedConfig make_cfg(std::size_t servers, std::uint64_t seed,
                                replication::ReplicationStyle style) {
    TestbedConfig cfg;
    cfg.servers = servers;
    cfg.seed = seed;
    cfg.style = style;
    if (style == replication::ReplicationStyle::kPassive) cfg.checkpoint_every = 4;
    cfg.factory = kv_store_factory();
    return cfg;
  }

  /// Synchronous-looking request helper: runs the sim until the reply.
  KvReply call(Bytes request, Micros budget = 30'000'000) {
    KvReply out;
    bool done = false;
    tb.client().invoke(std::move(request), [&](const Bytes& r) {
      out = KvReply::parse(r);
      done = true;
    });
    const Micros deadline = tb.sim().now() + budget;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 10'000);
    EXPECT_TRUE(done) << "request timed out";
    return out;
  }

  KvStoreApp& app(std::uint32_t s) { return static_cast<KvStoreApp&>(tb.server(s).app()); }

  void expect_replicas_identical() {
    tb.sim().run_for(2'000'000);
    for (std::uint32_t s = 1; s < tb.server_count(); ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive()) continue;
      if (tb.config().style == replication::ReplicationStyle::kPassive &&
          !tb.server(s).is_primary()) {
        continue;
      }
      EXPECT_EQ(app(s).state_digest(), app(0).state_digest()) << "replica " << s << " diverged";
    }
  }
};

TEST(KvStoreTest, PutGetRoundTrip) {
  KvBed kv;
  EXPECT_EQ(kv.call(kv_put("color", "blue")).status, KvStatus::kOk);
  const KvReply g = kv.call(kv_get("color"));
  EXPECT_EQ(g.status, KvStatus::kOk);
  EXPECT_EQ(g.value, "blue");
  EXPECT_EQ(g.version, 1u);
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, GetMissingKeyReturnsNotFound) {
  KvBed kv;
  EXPECT_EQ(kv.call(kv_get("ghost")).status, KvStatus::kNotFound);
}

TEST(KvStoreTest, VersionsIncrementPerWrite) {
  KvBed kv;
  kv.call(kv_put("k", "v1"));
  kv.call(kv_put("k", "v2"));
  const KvReply r = kv.call(kv_put("k", "v3"));
  EXPECT_EQ(r.version, 3u);
  EXPECT_EQ(kv.call(kv_get("k")).value, "v3");
}

TEST(KvStoreTest, DeleteRemovesKey) {
  KvBed kv;
  kv.call(kv_put("k", "v"));
  EXPECT_EQ(kv.call(kv_del("k")).status, KvStatus::kOk);
  EXPECT_EQ(kv.call(kv_get("k")).status, KvStatus::kNotFound);
  EXPECT_EQ(kv.call(kv_del("k")).status, KvStatus::kNotFound);
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, LeaseGrantsExclusiveWriteAccess) {
  KvBed kv;
  kv.call(kv_put("config", "initial"));
  const KvReply lease = kv.call(kv_acquire("config", /*owner=*/42, /*ttl=*/1'000'000));
  ASSERT_EQ(lease.status, KvStatus::kOk);
  EXPECT_GT(lease.lease_expiry, 0);

  // Another writer is blocked; the owner is not.
  EXPECT_EQ(kv.call(kv_put("config", "intruder", /*owner=*/7)).status, KvStatus::kLeaseHeld);
  EXPECT_EQ(kv.call(kv_put("config", "update", /*owner=*/42)).status, KvStatus::kOk);
  EXPECT_EQ(kv.call(kv_get("config")).value, "update");
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, AcquireDeniedWhileLeaseHeld) {
  KvBed kv;
  ASSERT_EQ(kv.call(kv_acquire("lock", 1, 1'000'000)).status, KvStatus::kOk);
  const KvReply denied = kv.call(kv_acquire("lock", 2, 1'000'000));
  EXPECT_EQ(denied.status, KvStatus::kLeaseDenied);
}

TEST(KvStoreTest, SameOwnerCanRenewLease) {
  KvBed kv;
  const KvReply first = kv.call(kv_acquire("lock", 9, 500'000));
  ASSERT_EQ(first.status, KvStatus::kOk);
  const KvReply renewed = kv.call(kv_acquire("lock", 9, 500'000));
  EXPECT_EQ(renewed.status, KvStatus::kOk);
  EXPECT_GE(renewed.lease_expiry, first.lease_expiry);
}

TEST(KvStoreTest, ReleaseFreesTheLease) {
  KvBed kv;
  ASSERT_EQ(kv.call(kv_acquire("lock", 1, 10'000'000)).status, KvStatus::kOk);
  EXPECT_EQ(kv.call(kv_release("lock", 1)).status, KvStatus::kOk);
  EXPECT_EQ(kv.call(kv_acquire("lock", 2, 10'000)).status, KvStatus::kOk);
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, ReleaseByNonOwnerFails) {
  KvBed kv;
  ASSERT_EQ(kv.call(kv_acquire("lock", 1, 1'000'000)).status, KvStatus::kOk);
  EXPECT_EQ(kv.call(kv_release("lock", 2)).status, KvStatus::kLeaseDenied);
}

TEST(KvStoreTest, ExpiredLeaseCanBeTakenOver) {
  KvBed kv;
  ASSERT_EQ(kv.call(kv_acquire("lock", 1, /*ttl=*/20'000)).status, KvStatus::kOk);
  // Wait past the ttl in simulated time; the deterministic timers fire.
  kv.tb.sim().run_for(100'000);
  EXPECT_EQ(kv.call(kv_acquire("lock", 2, 1'000'000)).status, KvStatus::kOk);
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, TimersExpireLeasesIdenticallyAtAllReplicas) {
  KvBed kv;
  kv.call(kv_acquire("a", 1, 15'000));
  kv.call(kv_acquire("b", 2, 25'000));
  kv.tb.sim().run_for(200'000);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(kv.app(s).leases_expired(), 2u) << "replica " << s;
  }
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, ReleasedLeaseTimerDoesNotFireLater) {
  KvBed kv;
  kv.call(kv_acquire("lock", 1, 30'000));
  kv.call(kv_release("lock", 1));
  kv.tb.sim().run_for(200'000);
  EXPECT_EQ(kv.app(0).leases_expired(), 0u);
}

TEST(KvStoreTest, MixedWorkloadKeepsReplicasIdentical) {
  KvBed kv;
  Rng rng(33);
  for (int i = 0; i < 60; ++i) {
    const std::string key = "k" + std::to_string(rng.below(8));
    switch (rng.below(5)) {
      case 0:
        kv.call(kv_put(key, "v" + std::to_string(i), rng.below(3)));
        break;
      case 1:
        kv.call(kv_get(key));
        break;
      case 2:
        kv.call(kv_del(key, rng.below(3)));
        break;
      case 3:
        kv.call(kv_acquire(key, 1 + rng.below(3), 1'000 + (Micros)rng.below(50'000)));
        break;
      case 4:
        kv.call(kv_release(key, 1 + rng.below(3)));
        break;
    }
  }
  kv.expect_replicas_identical();
  const KvReply st = kv.call(kv_stats());
  EXPECT_EQ(st.state_digest, kv.app(0).state_digest());
}

TEST(KvStoreTest, StateSurvivesCrashAndRecovery) {
  KvBed kv;
  kv.call(kv_put("durable", "yes"));
  kv.call(kv_acquire("durable", 5, 60'000'000));
  kv.tb.crash_server(2);
  kv.call(kv_put("while-down", "written"));
  bool recovered = false;
  kv.tb.restart_server(2, [&] { recovered = true; });
  const Micros deadline = kv.tb.sim().now() + 300'000'000;
  while (!recovered && kv.tb.sim().now() < deadline) {
    kv.tb.sim().run_until(kv.tb.sim().now() + 10'000);
  }
  ASSERT_TRUE(recovered);
  kv.call(kv_put("after", "recovery"));
  kv.expect_replicas_identical();
  // The recovered replica enforces the still-live lease too.
  EXPECT_EQ(kv.call(kv_put("durable", "no", /*owner=*/1)).status, KvStatus::kLeaseHeld);
}

TEST(KvStoreTest, SemiActiveStyleWorksToo) {
  KvBed kv(3, 2, replication::ReplicationStyle::kSemiActive);
  kv.call(kv_put("x", "1"));
  ASSERT_EQ(kv.call(kv_acquire("x", 1, 50'000)).status, KvStatus::kOk);
  kv.tb.sim().run_for(200'000);
  EXPECT_EQ(kv.call(kv_acquire("x", 2, 50'000)).status, KvStatus::kOk);
  kv.expect_replicas_identical();
}

TEST(KvStoreTest, LeaseDecisionsConsistentAcrossFailover) {
  KvBed kv(3, 3, replication::ReplicationStyle::kSemiActive);
  ASSERT_EQ(kv.call(kv_acquire("ha-lock", 1, 60'000'000)).status, KvStatus::kOk);
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (kv.tb.server(s).is_primary()) kv.tb.crash_server(s);
  }
  kv.tb.sim().run_for(2'000'000);
  // The new primary still refuses the competing acquire.
  EXPECT_EQ(kv.call(kv_acquire("ha-lock", 2, 1'000'000)).status, KvStatus::kLeaseDenied);
  // And honours the owner.
  EXPECT_EQ(kv.call(kv_put("ha-lock", "v", 1)).status, KvStatus::kOk);
}

TEST(KvStoreTest, BadRequestsAreRejectedDeterministically) {
  KvBed kv;
  EXPECT_EQ(kv.call(kv_acquire("k", /*owner=*/0, 1'000)).status, KvStatus::kBadRequest);
  EXPECT_EQ(kv.call(kv_acquire("k", 1, /*ttl=*/0)).status, KvStatus::kBadRequest);
  EXPECT_EQ(kv.call(Bytes{99}).status, KvStatus::kBadRequest);
  kv.expect_replicas_identical();
}

}  // namespace
}  // namespace cts::app
