// Fault-injection tests: primary failover (semi-active and passive),
// replica recovery with state transfer and the special CCS round, the
// primary/backup baseline's clock roll-back anomaly, NTP discipline, and
// the drift-compensation strategies.
#include <gtest/gtest.h>

#include "app/testbed.hpp"
#include "baseline/baseline_clocks.hpp"

namespace cts::app {
namespace {

using replication::ReplicationStyle;

bool run_until(Testbed& tb, const std::function<bool()>& pred, Micros budget) {
  const Micros deadline = tb.sim().now() + budget;
  while (tb.sim().now() < deadline) {
    tb.sim().run_until(tb.sim().now() + 10'000);
    if (pred()) return true;
  }
  return pred();
}

std::vector<Micros> reply_times(const std::vector<Bytes>& replies) {
  std::vector<Micros> out;
  for (const auto& r : replies) {
    BytesReader rd(r);
    const auto sec = rd.i64();
    out.push_back(sec * 1'000'000 + rd.i64());
  }
  return out;
}

sim::Task drive_client(Testbed& tb, int invocations, std::vector<Bytes>& replies,
                       Micros think_us = 500) {
  for (int i = 0; i < invocations; ++i) {
    co_await tb.sim().delay(think_us);
    replies.push_back(co_await tb.client().call(make_get_time_request()));
  }
}

// The lifecycle-scope fail-stop tripwire: no server may read its hardware
// clock while crashed (scope shutdown cancels every timer and destroys
// every suspended frame the node owned, so nothing is left to read it).
// RAII so every test exit path checks it.
struct FailStopCheck {
  Testbed& tb;
  ~FailStopCheck() {
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      EXPECT_EQ(tb.clock_of(tb.server_node(s)).reads_after_failure(), 0u)
          << "server " << s << " read its clock while crashed";
    }
  }
};

// --- Failover: semi-active --------------------------------------------------------

TEST(FailoverTest, SemiActivePrimaryCrashKeepsClientProgressing) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};

  std::vector<Bytes> replies;
  drive_client(tb, 40, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 10; }, 60'000'000));

  // Kill the primary mid-stream.
  int primary = -1;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.server(s).is_primary()) primary = static_cast<int>(s);
  }
  ASSERT_GE(primary, 0);
  tb.crash_server(static_cast<std::uint32_t>(primary));

  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 40; }, 120'000'000));

  // Exactly one survivor is primary now, and it is not the dead one.
  int new_primary = -1;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (static_cast<int>(s) != primary && tb.server(s).is_primary()) new_primary = (int)s;
  }
  EXPECT_NE(new_primary, -1);
  EXPECT_NE(new_primary, primary);
}

TEST(FailoverTest, SemiActiveClockNeverRollsBackAcrossFailover) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  cfg.max_clock_offset_us = 800'000;  // strongly disagreeing hardware clocks
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};

  std::vector<Bytes> replies;
  drive_client(tb, 30, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 8; }, 60'000'000));
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.server(s).is_primary()) tb.crash_server(s);
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 30; }, 120'000'000));

  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]) << "clock rolled back across failover at reply " << i;
  }
}

TEST(FailoverTest, SemiActiveSurvivorsStayConsistent) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 30, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 10; }, 60'000'000));
  // Crash a BACKUP this time; the primary continues.
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!tb.server(s).is_primary()) {
      tb.crash_server(s);
      break;
    }
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 30; }, 120'000'000));
  tb.sim().run_for(1'000'000);
  std::vector<const TimeServerApp*> live;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.clock_of(tb.server_node(s)).alive()) live.push_back(&tb.server_app(s));
  }
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0]->time_history(), live[1]->time_history());
}

// --- Failover: passive ---------------------------------------------------------------

TEST(FailoverTest, PassivePromotionReplaysLoggedRequests) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kPassive;
  cfg.checkpoint_every = 5;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};

  std::vector<Bytes> replies;
  drive_client(tb, 40, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 12; }, 60'000'000));

  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.server(s).is_primary()) tb.crash_server(s);
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 40; }, 200'000'000));

  // The new primary replayed whatever the checkpoint did not cover.
  std::uint64_t replayed = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.clock_of(tb.server_node(s)).alive()) replayed += tb.server(s).stats().requests_replayed;
  }
  EXPECT_GT(replayed, 0u);

  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]) << "passive failover rolled the clock back at " << i;
  }
}

TEST(FailoverTest, FastRestartOfPrimaryDoesNotLeaveAGhostMember) {
  // Regression test (found by fuzzing): the primary's host crashes and
  // reboots FASTER than the ring's token-loss detection, so Totem never
  // removes the node and the old (node, replica) entry would linger in the
  // group view — a dead primary that never yields.  The recovering process
  // must evict its predecessor incarnation explicitly.
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};

  std::vector<Bytes> replies;
  drive_client(tb, 30, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 8; }, 60'000'000));

  int old_primary = -1;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.server(s).is_primary()) old_primary = static_cast<int>(s);
  }
  ASSERT_GE(old_primary, 0);
  tb.crash_server(static_cast<std::uint32_t>(old_primary));
  // Restart well inside the 5ms token-loss window: the ring never shrinks.
  tb.sim().run_for(2'000);
  bool recovered = false;
  tb.restart_server(static_cast<std::uint32_t>(old_primary), [&] { recovered = true; });

  // A backup must still promote, requests must still flow, and the fast
  // restart must complete its state transfer.
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 30; }, 200'000'000));
  ASSERT_TRUE(run_until(tb, [&] { return recovered; }, 200'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

// --- Recovery -------------------------------------------------------------------------

TEST(RecoveryTest, RestartedReplicaRejoinsViaStateTransfer) {
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 60, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 15; }, 60'000'000));

  tb.crash_server(2);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 25; }, 60'000'000));

  bool recovered = false;
  tb.restart_server(2, [&] { recovered = true; });
  ASSERT_TRUE(run_until(tb, [&] { return recovered; }, 120'000'000));
  EXPECT_TRUE(tb.server(2).recovered());

  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 60; }, 200'000'000));
  tb.sim().run_for(2'000'000);

  // All three replicas hold identical state again (the recovered one
  // includes history from before its crash via the checkpoint).
  EXPECT_EQ(tb.server_app(2).time_history(), tb.server_app(0).time_history());
  EXPECT_EQ(tb.server_app(2).counter(), tb.server_app(0).counter());
}

TEST(RecoveryTest, SpecialRoundInitializesTheNewClock) {
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 30, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 10; }, 60'000'000));

  tb.crash_server(2);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 15; }, 60'000'000));

  bool recovered = false;
  tb.restart_server(2, [&] { recovered = true; });
  ASSERT_TRUE(run_until(tb, [&] { return recovered; }, 120'000'000));

  // The survivors served a state transfer and ran a special round.
  std::uint64_t specials = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    specials += tb.server(s).time_service().stats().special_rounds;
  }
  EXPECT_GE(specials, 1u);
  EXPECT_GE(tb.server(2).time_service().stats().special_rounds, 1u);

  // The recovered replica's next group-clock reads agree with the others.
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 30; }, 120'000'000));
  tb.sim().run_for(2'000'000);
  EXPECT_EQ(tb.server_app(2).time_history(), tb.server_app(0).time_history());
}

TEST(RecoveryTest, MonotonicityHoldsAcrossRecovery) {
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 50, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 10; }, 60'000'000));
  tb.crash_server(1);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 20; }, 60'000'000));
  bool recovered = false;
  tb.restart_server(1, [&] { recovered = true; });
  ASSERT_TRUE(run_until(tb, [&] { return recovered && replies.size() == 50; }, 300'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(RecoveryTest, RetriedGetStateCrossingItsOwnReplyIsDroppedNotDoubleApplied) {
  // Regression test for the retry/reply race: the retry timer is far below
  // the end-to-end state-transfer latency, so the recovering replica
  // re-issues GET_STATE while the reply to its FIRST request is still in
  // flight.  The stale reply pairs with a superseded recovery epoch — its
  // checkpoint does not cover the requests ordered between the two
  // GET_STATEs — so applying it (and then draining the queue rebuilt for
  // the NEW epoch) would skip or double-apply requests.  The fix tags every
  // kState reply with its GET_STATE's epoch and drops mismatches.
  TestbedConfig cfg;
  // Tuned against the measured transfer timeline: the first GET_STATE is
  // ordered ~2.6ms after restart and its reply lands ~3.0ms after, so a 3ms
  // retry re-issues while that first reply is still in flight.
  cfg.get_state_retry_us = 3'000;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 60, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 15; }, 60'000'000));

  tb.crash_server(2);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 25; }, 60'000'000));
  bool recovered = false;
  tb.restart_server(2, [&] { recovered = true; });
  // A dense burst of fire-and-forget invocations straddling the retry
  // point.  Some of these are ordered between the first GET_STATE and its
  // re-issue — exactly the traffic that sits in the recoverer's replay
  // queue while only the SECOND epoch's checkpoint covers it.
  for (Micros off = 2'000; off <= 3'200; off += 100) {
    tb.sim().after(off, [&tb] { tb.client().invoke(make_get_time_request(), [](const Bytes&) {}); });
  }
  ASSERT_TRUE(run_until(tb, [&] { return recovered; }, 200'000'000));

  // The race actually happened: the two healthy replicas served more than
  // one transfer epoch (each active replica serves every GET_STATE, so one
  // epoch accounts for exactly two serves)...
  std::uint64_t served = 0;
  for (std::uint32_t s = 0; s < 2; ++s) served += tb.server(s).stats().state_transfers_served;
  EXPECT_GE(served, 4u);
  // ...yet the recovering replica adopted exactly one checkpoint: every
  // reply from a superseded epoch was dropped, not applied.
  EXPECT_EQ(tb.server(2).stats().checkpoints_applied, 1u);

  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 60; }, 300'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
  tb.sim().run_for(2'000'000);
  // No request was lost or applied twice: all three replicas agree.
  EXPECT_EQ(tb.server_app(2).time_history(), tb.server_app(0).time_history());
  EXPECT_EQ(tb.server_app(2).counter(), tb.server_app(0).counter());
}

TEST(RecoveryTest, RepeatedCrashRecoverCycles) {
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 60, replies);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::uint32_t victim = static_cast<std::uint32_t>(cycle % 3);
    ASSERT_TRUE(
        run_until(tb, [&] { return replies.size() >= (cycle + 1) * 12u; }, 120'000'000))
        << "cycle " << cycle;
    tb.crash_server(victim);
    tb.sim().run_for(2'000'000);
    bool recovered = false;
    tb.restart_server(victim, [&] { recovered = true; });
    ASSERT_TRUE(run_until(tb, [&] { return recovered; }, 200'000'000)) << "cycle " << cycle;
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 60; }, 300'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
  tb.sim().run_for(2'000'000);
  EXPECT_EQ(tb.server_app(0).time_history(), tb.server_app(1).time_history());
  EXPECT_EQ(tb.server_app(1).time_history(), tb.server_app(2).time_history());
}

// --- Baseline: primary/backup clock roll-back (paper Section 1) ------------------------

struct BaselineRig {
  sim::Simulator sim{1};
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<baseline::PrimaryBackupClockService>> svcs;

  /// Primary's clock runs AHEAD of the backups' by `gap_us`.  Three nodes,
  /// so the two survivors of a primary crash still form a majority.
  explicit BaselineRig(Micros gap_us) : net(sim, {}) {
    totem::TotemConfig tcfg;
    tcfg.universe = {NodeId{0}, NodeId{1}, NodeId{2}};
    for (std::uint32_t i = 0; i < 3; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      clock::ClockConfig ccfg;
      ccfg.initial_offset_us = (i == 0) ? gap_us : 0;
      clocks.push_back(std::make_unique<clock::PhysicalClock>(sim, ccfg));
      svcs.push_back(std::make_unique<baseline::PrimaryBackupClockService>(
          sim, *eps.back(), *clocks.back(), GroupId{1}, ConnectionId{50}, ReplicaId{i}));
    }
    svcs[0]->set_primary(true);
    for (auto& t : totems) t->start();
    sim.run_for(100'000);
  }
};

TEST(BaselineTest, PrimaryBackupRollsBackOnFailover) {
  BaselineRig rig(500'000);  // primary's clock 500ms ahead

  // Both replicas perform the same logical operations (semi-active style);
  // the backup adopts the primary's distributed values.
  std::vector<Micros> readings;
  auto reader = [&](std::uint32_t r, bool record) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await rig.sim.delay(1'000);
      const Micros v = co_await rig.svcs[r]->get_time(ThreadId{0});
      if (record) readings.push_back(v);
    }
  };
  reader(0, false);
  reader(1, true);
  while (readings.size() < 10 && rig.sim.now() < 60'000'000) {
    rig.sim.run_until(rig.sim.now() + 1'000);
  }
  ASSERT_EQ(readings.size(), 10u);

  // Crash the primary; promote the backup; read again immediately — from
  // the backup's raw clock, 500ms behind: the reading ROLLS BACK.
  rig.totems[0]->crash();
  rig.clocks[0]->fail();
  rig.svcs[1]->set_primary(true);
  Micros after_failover = 0;
  auto reader2 = [&]() -> sim::Task {
    after_failover = co_await rig.svcs[1]->get_time(ThreadId{0});
  };
  reader2();
  rig.sim.run_for(5'000'000);
  ASSERT_NE(after_failover, 0);
  EXPECT_LT(after_failover, readings.back())
      << "expected the baseline to exhibit clock roll-back";
}

TEST(BaselineTest, PrimaryBackupFastForwardsWhenBackupIsAhead) {
  BaselineRig rig(-500'000);  // primary 500ms BEHIND the backup
  std::vector<Micros> readings;
  auto reader = [&](std::uint32_t r, bool record) -> sim::Task {
    for (int i = 0; i < 5; ++i) {
      co_await rig.sim.delay(1'000);
      const Micros v = co_await rig.svcs[r]->get_time(ThreadId{0});
      if (record) readings.push_back(v);
    }
  };
  reader(0, false);
  reader(1, true);
  while (readings.size() < 5 && rig.sim.now() < 60'000'000) {
    rig.sim.run_until(rig.sim.now() + 1'000);
  }
  ASSERT_EQ(readings.size(), 5u);
  rig.totems[0]->crash();
  rig.clocks[0]->fail();
  rig.svcs[1]->set_primary(true);
  Micros after_failover = 0;
  auto reader2 = [&]() -> sim::Task {
    after_failover = co_await rig.svcs[1]->get_time(ThreadId{0});
  };
  reader2();
  rig.sim.run_for(5'000'000);
  // The jump forward vastly exceeds the elapsed real time (fast-forward).
  EXPECT_GT(after_failover - readings.back(), 400'000);
}

TEST(BaselineTest, CtsDoesNotRollBackInTheSameScenario) {
  // Same adversarial clocks, but the Consistent Time Service in semi-active
  // mode: offsets absorb the clock gap, so failover cannot roll back.
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  cfg.servers = 2;
  cfg.max_clock_offset_us = 800'000;
  Testbed tb(cfg);
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 20, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 8; }, 60'000'000));
  for (std::uint32_t s = 0; s < 2; ++s) {
    if (tb.server(s).is_primary()) tb.crash_server(s);
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 20; }, 120'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

// --- Hardware clock steps --------------------------------------------------------------

TEST(ClockStepTest, GroupClockAbsorbsAHugeForwardStep) {
  // An operator (or a misbehaving NTP daemon) steps one replica's hardware
  // clock forward by 30 seconds mid-run.  The group clock must not jump:
  // the next round re-derives that replica's offset and life goes on.
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 40, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 15; }, 60'000'000));
  tb.clock_of(tb.server_node(1)).step(30'000'000);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 40; }, 120'000'000));

  const auto times = reply_times(replies);
  Micros max_delta = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
    max_delta = std::max(max_delta, times[i] - times[i - 1]);
  }
  // No reply-to-reply jump anywhere near the 30s step.  (The stepped
  // replica may briefly win a round with its inflated clock only before
  // its offset re-derives; the monotonic guard and offset arithmetic keep
  // the group clock continuous at the scale of round latency.)
  EXPECT_LT(max_delta, 1'000'000);
  tb.sim().run_for(2'000'000);
  EXPECT_EQ(tb.server_app(0).time_history(), tb.server_app(1).time_history());
}

TEST(ClockStepTest, BackwardStepCannotRollTheGroupClockBack) {
  Testbed tb({});
  tb.start();
  FailStopCheck fail_stop{tb};
  std::vector<Bytes> replies;
  drive_client(tb, 40, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() >= 15; }, 60'000'000));
  // Step ALL the hardware clocks backwards by 5 seconds.
  for (std::uint32_t s = 0; s < 3; ++s) {
    tb.clock_of(tb.server_node(s)).step(-5'000'000);
  }
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 40; }, 120'000'000));
  const auto times = reply_times(replies);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]) << "group clock rolled back after a hw clock step";
  }
}

// --- NTP discipline -----------------------------------------------------------------------

TEST(NtpTest, DisciplineBoundsClockError) {
  sim::Simulator sim(1);
  clock::ClockConfig ccfg;
  ccfg.initial_offset_us = 200'000;
  ccfg.drift_ppm = 40.0;
  clock::PhysicalClock pc(sim, ccfg);
  clock::ReferenceTimeSource ref(sim, Rng(2), 100);
  baseline::NtpDisciplinedClock ntp(sim, pc, ref);

  // After convergence the disciplined clock stays close to the reference,
  // while the raw clock keeps its offset and drifts further.
  sim.run_until(30'000'000);  // 30 s: plenty of polls
  const Micros real = 1056326400LL * 1000000LL + sim.now();
  EXPECT_LE(std::abs(ntp.read() - real), 5'000);
  EXPECT_GE(std::abs(pc.read() - real), 190'000);
}

TEST(NtpTest, StopFreezesCorrection) {
  sim::Simulator sim(1);
  clock::ClockConfig ccfg;
  ccfg.initial_offset_us = 100'000;
  clock::PhysicalClock pc(sim, ccfg);
  clock::ReferenceTimeSource ref(sim, Rng(2), 100);
  baseline::NtpDisciplinedClock ntp(sim, pc, ref);
  sim.run_until(10'000'000);
  const Micros frozen = ntp.correction();
  ntp.stop();
  sim.run_until(20'000'000);
  EXPECT_EQ(ntp.correction(), frozen);
}

TEST(NtpTest, TwoDisciplinedClocksStillDisagree) {
  // Even "closely synchronized" clocks leave a residual gap — which is why
  // the paper's Figure 1 argument holds regardless of synchronization.
  sim::Simulator sim(1);
  clock::ClockConfig c1, c2;
  c1.drift_ppm = 45.0;
  c2.drift_ppm = -45.0;
  clock::PhysicalClock p1(sim, c1), p2(sim, c2);
  clock::ReferenceTimeSource r1(sim, Rng(3), 500), r2(sim, Rng(4), 500);
  baseline::NtpDisciplinedClock n1(sim, p1, r1), n2(sim, p2, r2);
  sim.run_until(30'000'000);
  Micros max_gap = 0;
  for (int i = 0; i < 100; ++i) {
    sim.run_until(sim.now() + 100'000);
    max_gap = std::max(max_gap, std::abs(n1.read() - n2.read()));
  }
  EXPECT_GT(max_gap, 0);  // never exactly equal
}

// --- Drift compensation (paper Section 3.3) -------------------------------------------------

Micros measure_group_drift(ccs::DriftCompensation strategy, Micros mean_delay, double gain,
                           int rounds) {
  TestbedConfig cfg;
  cfg.drift = strategy;
  cfg.mean_delay_us = mean_delay;
  cfg.reference_gain = gain;
  cfg.max_drift_ppm = 0.0;  // isolate algorithmic drift from crystal drift
  cfg.max_clock_offset_us = 0;
  Testbed tb(cfg);

  clock::ReferenceTimeSource ref(tb.sim(), Rng(9), 200);
  if (strategy == ccs::DriftCompensation::kReferenceBias) {
    for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
      tb.server(s).time_service().set_reference(&ref);
    }
  }
  // Record (group clock − real time) at the moment each round completes.
  Micros last_drift = 0;
  tb.server(0).time_service().set_round_observer([&](const ccs::RoundResult& rr) {
    last_drift = rr.group_clock - (1056326400LL * 1000000LL + tb.sim().now());
  });
  tb.start();
  FailStopCheck fail_stop{tb};

  bool got = false;
  tb.client().invoke(make_burst_request(static_cast<std::uint32_t>(rounds)),
                     [&](const Bytes&) { got = true; });
  const Micros deadline = tb.sim().now() + 600'000'000;
  while (!got && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 100'000);
  return last_drift;
}

TEST(DriftCompensationTest, UncompensatedGroupClockLagsRealTime) {
  const Micros drift = measure_group_drift(ccs::DriftCompensation::kNone, 0, 0.0, 400);
  // Paper Figure 6(c): "the group clock runs slower than real time".
  EXPECT_LT(drift, -1'000);
}

TEST(DriftCompensationTest, MeanDelayCompensationShrinksTheLag) {
  const Micros none = measure_group_drift(ccs::DriftCompensation::kNone, 0, 0.0, 400);
  // The compensation constant approximates the measured per-round lag
  // (~40us on this simulated testbed; Section 3.3 calls it "necessarily
  // only approximate").
  const Micros mean = measure_group_drift(ccs::DriftCompensation::kMeanDelay, 40, 0.0, 400);
  EXPECT_LT(std::abs(mean), std::abs(none));
}

TEST(DriftCompensationTest, AdaptiveMeanDelayNeedsNoTuning) {
  const Micros none = measure_group_drift(ccs::DriftCompensation::kNone, 0, 0.0, 400);
  const Micros adaptive =
      measure_group_drift(ccs::DriftCompensation::kAdaptiveMeanDelay, 0, 0.0, 400);
  // The online estimate tracks the actual per-round loss without a
  // hand-picked constant.
  EXPECT_LT(std::abs(adaptive), std::abs(none) / 2);
}

TEST(DriftCompensationTest, ReferenceBiasBoundsTheDrift) {
  const Micros none = measure_group_drift(ccs::DriftCompensation::kNone, 0, 0.0, 400);
  const Micros biased =
      measure_group_drift(ccs::DriftCompensation::kReferenceBias, 0, 0.1, 400);
  EXPECT_LT(std::abs(biased), std::abs(none));
  EXPECT_LE(std::abs(biased), 5'000);
}

}  // namespace
}  // namespace cts::app
