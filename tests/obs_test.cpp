// Tests for the observability layer: metrics registry, bounded trace log,
// JSON export — and trace-based *behavioral* assertions over the protocol
// stack (a loss-free run retransmits nothing; exactly one synchronizer wins
// each CCS round; a promoted passive backup re-issues exactly one pending
// proposal; reentrant clock calls are rejected loudly, not silently).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::obs {
namespace {

using ccs::ConsistentTimeService;
using ccs::CtsConfig;
using ccs::ReplicationStyle;

constexpr GroupId kGroup{1};
constexpr ConnectionId kCcsConn{100};
constexpr ThreadId kThread0{0};

// --- Pure-unit: registry and trace log ------------------------------------------

TEST(MetricsRegistryTest, CounterIsStableAndNamed) {
  MetricsRegistry reg;
  Counter& c = reg.counter("layer.widgets");
  ++c;
  c += 4;
  EXPECT_EQ(reg.value("layer.widgets"), 5u);
  EXPECT_EQ(&reg.counter("layer.widgets"), &c);  // get-or-create returns the same slot
  EXPECT_EQ(reg.value("layer.missing"), 0u);     // value() never creates
}

TEST(MetricsRegistryTest, JsonContainsCountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("a.b") += 3;
  reg.set_gauge("g", -7);
  reg.histogram("h", 10, 100).add(42);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.b\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\": -7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST(TraceLogTest, CapsStorageButCountsEverything) {
  TraceLog log(4);
  for (int i = 0; i < 6; ++i) {
    log.record(i, EventKind::kTokenPass, 0, ReplicaId::kInvalid, i);
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.recorded(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.count(EventKind::kTokenPass), 4u);
}

TEST(TraceLogTest, JsonlNamesKindsAndNullsInvalidIds) {
  TraceLog log;
  log.record(12, EventKind::kSynchronizerWin, NodeId::kInvalid, 2, 7, 0, 0);
  const std::string jsonl = log.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\": \"synchronizer_win\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"node\": null"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"replica\": 2"), std::string::npos) << jsonl;
}

// --- Behavioral: full CTS rig with a shared recorder ------------------------------

/// N hosts — Totem node, GCS endpoint, drifting physical clock, and a
/// ConsistentTimeService each — all observed by one Recorder, mirroring how
/// the Testbed wires its layers.
struct Rig {
  sim::Simulator sim;
  net::Network net;
  Recorder rec{sim};
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;
  std::vector<std::vector<Micros>> readings;

  explicit Rig(std::size_t n, ReplicationStyle style = ReplicationStyle::kActive,
               std::uint64_t seed = 1)
      : sim(seed), net(sim, {}) {
    net.set_recorder(&rec);
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < n; ++i) tcfg.universe.push_back(NodeId{i});
    readings.resize(n);
    Rng clock_rng(seed * 7919 + 13);
    for (std::uint32_t i = 0; i < n; ++i) {
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      eps.back()->set_recorder(&rec);  // wires the Totem node too
      clocks.push_back(std::make_unique<clock::PhysicalClock>(
          sim, clock::random_clock_config(clock_rng)));
      CtsConfig cfg;
      cfg.group = kGroup;
      cfg.ccs_conn = kCcsConn;
      cfg.replica = ReplicaId{i};
      cfg.style = style;
      svcs.push_back(
          std::make_unique<ConsistentTimeService>(sim, *eps.back(), *clocks.back(), cfg));
      svcs.back()->set_recorder(&rec);
      if (style != ReplicationStyle::kActive) svcs.back()->set_primary(i == 0);
    }
  }

  void start(Micros settle = 100'000) {
    for (std::uint32_t i = 0; i < totems.size(); ++i) {
      totems[i]->start();
      eps[i]->join_group(kGroup, ReplicaId{i});
    }
    sim.run_for(settle);
  }

  sim::Task reader(std::uint32_t i, int ops) {
    Rng rng(1000 + i);
    for (int k = 0; k < ops; ++k) {
      co_await sim.delay(rng.range(60, 400));
      readings[i].push_back(co_await svcs[i]->get_time(kThread0));
    }
  }

  void run_readers(int ops, Micros budget = 60'000'000) {
    for (std::uint32_t i = 0; i < svcs.size(); ++i) reader(i, ops);
    const Micros deadline = sim.now() + budget;
    while (sim.now() < deadline) {
      sim.run_until(sim.now() + 10'000);
      bool all_done = true;
      for (auto& r : readings) all_done &= (r.size() >= static_cast<std::size_t>(ops));
      if (all_done) return;
    }
  }
};

TEST(ObsTraceTest, LossFreeRunHasNoDropsRetransmitsOrStalledWindows) {
  Rig rig(3);
  rig.start();
  rig.run_readers(40);
  ASSERT_EQ(rig.readings[0].size(), 40u);

  const TraceLog& t = rig.rec.trace();
  // Negative space: a perfect network and an idle-enough ring mean nothing
  // was lost or corrupted, and the token never had to be resent.
  EXPECT_EQ(t.count(EventKind::kNetDrop), 0u);
  EXPECT_EQ(t.count(EventKind::kNetCorrupt), 0u);
  EXPECT_EQ(t.count(EventKind::kTokenRetransmit), 0u);
  // Message retransmits can occur even without loss: per-receiver jitter
  // lets the token overtake a multicast still in flight (~2.5 sigma tail),
  // and the receiver then requests the not-yet-arrived seq on the token.
  // Loss-free, that stays a rare accident — bounded, not zero.
  EXPECT_LE(t.count(EventKind::kMsgRetransmit), 2u);
  // Positive space: the run actually exercised the stack.
  EXPECT_GT(t.count(EventKind::kTokenPass), 0u);
  EXPECT_GT(t.count(EventKind::kGcsDeliver), 0u);
  EXPECT_GT(t.count(EventKind::kCcsRoundComplete), 0u);
  EXPECT_EQ(t.dropped(), 0u);

  // Metrics agree with the trace.
  EXPECT_EQ(rig.rec.metrics().value("net.packets_dropped"), 0u);
  EXPECT_GT(rig.rec.metrics().value("totem.token_passes"), 0u);
  EXPECT_GT(rig.rec.metrics().value("gcs.delivered"), 0u);
}

TEST(ObsTraceTest, ExactlyOneSynchronizerWinsEachRound) {
  Rig rig(3);
  rig.start();
  rig.run_readers(60);
  ASSERT_EQ(rig.readings[0].size(), 60u);

  // kSynchronizerWin is recorded only at the replica whose proposal was
  // ordered first, so group-wide each (round, thread) must appear exactly
  // once even though all three replicas complete every round.
  std::map<std::pair<std::int64_t, std::int64_t>, int> wins;
  for (const TraceEvent& e : rig.rec.trace().select(EventKind::kSynchronizerWin)) {
    ++wins[{e.a, e.b}];
  }
  EXPECT_GE(wins.size(), 60u);
  for (const auto& [key, n] : wins) {
    EXPECT_EQ(n, 1) << "round " << key.first << " thread " << key.second
                    << " won at " << n << " replicas";
  }

  // Every round completion (at every replica) carries a skew sample.
  EXPECT_EQ(rig.rec.trace().count(EventKind::kSkewSample),
            rig.rec.trace().count(EventKind::kCcsRoundComplete));
}

TEST(ObsTraceTest, PassiveFailoverReissuesExactlyOnePendingProposal) {
  // Paper Section 3.3: backups never transmit CCS proposals; when the
  // primary dies before its proposal for an in-flight round was delivered,
  // the promoted backup must send one — exactly one — so the round
  // completes with a consistent group clock at every survivor.
  Rig rig(3, ReplicationStyle::kPassive);
  rig.start();

  // Warm-up round with the primary alive: everyone reads once.
  rig.run_readers(1);
  ASSERT_EQ(rig.readings[0].size(), 1u);
  ASSERT_EQ(rig.readings[1], rig.readings[0]);
  ASSERT_EQ(rig.rec.trace().count(EventKind::kProposalResent), 0u);

  // Both backups start round 2; the primary never does, and crashes.
  rig.reader(1, 1);
  rig.reader(2, 1);
  rig.sim.run_for(5'000);  // backups are now blocked waiting for a proposal
  ASSERT_EQ(rig.readings[1].size(), 1u);
  rig.totems[0]->crash();
  rig.clocks[0]->fail();
  rig.sim.run_for(2'000'000);  // ring reforms without n0
  ASSERT_EQ(rig.readings[1].size(), 1u) << "round must not complete before promotion";

  // Promote backup 1: it re-issues the pending proposal for round 2.
  rig.svcs[1]->set_primary(true);
  const Micros deadline = rig.sim.now() + 30'000'000;
  while (rig.sim.now() < deadline &&
         (rig.readings[1].size() < 2 || rig.readings[2].size() < 2)) {
    rig.sim.run_until(rig.sim.now() + 10'000);
  }

  ASSERT_EQ(rig.readings[1].size(), 2u);
  ASSERT_EQ(rig.readings[2].size(), 2u);
  // Consistent group clock across the survivors, and monotone per replica.
  EXPECT_EQ(rig.readings[1][1], rig.readings[2][1]);
  EXPECT_GT(rig.readings[1][1], rig.readings[1][0]);

  const auto resent = rig.rec.trace().select(EventKind::kProposalResent);
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_EQ(resent[0].replica, 1u);
  EXPECT_EQ(resent[0].a, kThread0.value);  // thread
  EXPECT_EQ(resent[0].b, 2);               // round number
  EXPECT_EQ(rig.svcs[1]->stats().proposals_resent, 1u);
}

TEST(ObsTraceTest, ReentrantClockCallIsRejectedLoudly) {
  // The NDEBUG-vanishing assert is gone: a second clock-related operation
  // on a thread with a round in flight is rejected with an error return
  // and a trace event, in every build mode.
  Rig rig(2);
  rig.start();

  Micros first = kNoTime;
  const bool ok = rig.svcs[0]->start_round(kThread0, ccs::ClockCallType::kGettimeofday,
                                           [&](Micros v) { first = v; });
  ASSERT_TRUE(ok);
  const bool second = rig.svcs[0]->start_round(kThread0, ccs::ClockCallType::kTime,
                                               [](Micros) { FAIL() << "must never run"; });
  EXPECT_FALSE(second);
  EXPECT_EQ(rig.svcs[0]->stats().reentrant_rejected, 1u);
  EXPECT_EQ(rig.rec.trace().count(EventKind::kCcsReentrantCall), 1u);
  EXPECT_EQ(rig.rec.metrics().value("cts.reentrant_rejected"), 1u);

  // The original round is unharmed and still completes.
  rig.reader(1, 1);  // the peer must also participate for the round to finish
  rig.sim.run_for(10'000'000);
  EXPECT_NE(first, kNoTime);
}

}  // namespace
}  // namespace cts::obs
