// Tests for the multi-group causal-timestamp extension (paper Section 5).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/multigroup.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::ccs {
namespace {

constexpr GroupId kGroupA{10};
constexpr GroupId kGroupB{11};
constexpr ConnectionId kCcsConnA{100};
constexpr ConnectionId kCcsConnB{101};
constexpr ConnectionId kInterConn{200};
constexpr ThreadId kThread{0};

/// Two replica groups (2 replicas each) on one shared 4-node ring.
/// Group A's hardware clocks run AHEAD of group B's by `gap_us`.
struct TwoGroupRig {
  sim::Simulator sim{1};
  net::Network net;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;  // 0,1=A; 2,3=B
  std::vector<std::unique_ptr<CausalMessenger>> messengers;

  explicit TwoGroupRig(Micros gap_us) : net(sim, {}) {
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < 4; ++i) {
      const bool in_a = i < 2;
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      clock::ClockConfig ccfg;
      ccfg.initial_offset_us = in_a ? gap_us : 0;
      clocks.push_back(std::make_unique<clock::PhysicalClock>(sim, ccfg));
      CtsConfig cfg;
      cfg.group = in_a ? kGroupA : kGroupB;
      cfg.ccs_conn = in_a ? kCcsConnA : kCcsConnB;
      cfg.replica = ReplicaId{i % 2};
      svcs.push_back(std::make_unique<ConsistentTimeService>(sim, *eps.back(), *clocks.back(), cfg));
      messengers.push_back(std::make_unique<CausalMessenger>(*eps.back(), *svcs.back(),
                                                             cfg.group, kThread));
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      totems[i]->start();
      eps[i]->join_group(i < 2 ? kGroupA : kGroupB, ReplicaId{i % 2});
    }
    sim.run_for(100'000);
  }
};

// Free-function coroutines: a lambda coroutine created inside a delivery
// callback would be destroyed (with its captures) while still suspended.
sim::Task read_clock_into(ConsistentTimeService& svc, Micros& out) {
  out = co_await svc.get_time(kThread);
}

sim::Task read_clock_push(ConsistentTimeService& svc, std::vector<Micros>& out) {
  out.push_back(co_await svc.get_time(kThread));
}

TEST(StampedPayloadTest, RoundTrips) {
  StampedPayload p;
  p.timestamp = 123456789;
  p.body = Bytes{1, 2, 3};
  auto q = StampedPayload::decode(p.encode());
  EXPECT_EQ(q.timestamp, p.timestamp);
  EXPECT_EQ(q.body, p.body);
}

TEST(CausalFloorTest, AdvanceIsMonotoneAndIdempotent) {
  sim::Simulator sim;
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  tcfg.universe = {NodeId{0}};
  totem::TotemNode t(sim, net, NodeId{0}, tcfg);
  gcs::GcsEndpoint ep(sim, t);
  clock::PhysicalClock pc(sim, {});
  ConsistentTimeService svc(sim, ep, pc, CtsConfig{kGroupA, kCcsConnA, ReplicaId{0}});
  EXPECT_EQ(svc.causal_floor(), kNoTime);
  svc.advance_causal_floor(100);
  EXPECT_EQ(svc.causal_floor(), 100);
  svc.advance_causal_floor(50);  // lower: ignored
  EXPECT_EQ(svc.causal_floor(), 100);
  svc.advance_causal_floor(200);
  EXPECT_EQ(svc.causal_floor(), 200);
}

TEST(CausalFloorTest, FloorSurvivesCheckpointRestore) {
  sim::Simulator sim;
  net::Network net(sim, {});
  totem::TotemConfig tcfg;
  tcfg.universe = {NodeId{0}};
  totem::TotemNode t(sim, net, NodeId{0}, tcfg);
  gcs::GcsEndpoint ep(sim, t);
  clock::PhysicalClock pc(sim, {});
  ConsistentTimeService a(sim, ep, pc, CtsConfig{kGroupA, kCcsConnA, ReplicaId{0}});
  a.advance_causal_floor(777);
  ConsistentTimeService b(sim, ep, pc, CtsConfig{kGroupA, kCcsConnA, ReplicaId{1}});
  b.restore(a.checkpoint());
  EXPECT_EQ(b.causal_floor(), 777);
}

TEST(MultigroupTest, WithoutTimestampsCausalityIsViolated) {
  // Group A's clocks are 300ms ahead.  A reads its group clock and sends a
  // PLAIN message to B; B's subsequent reading is far below A's — the
  // exact anomaly Section 5 warns about.
  TwoGroupRig rig(300'000);

  Micros a_ts = 0, b_read = 0;
  auto flow = [&]() -> sim::Task {
    a_ts = co_await rig.svcs[0]->get_time(kThread);
    // Plain (unstamped) inter-group message.
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kUserRequest;
    m.hdr.src_grp = kGroupA;
    m.hdr.dst_grp = kGroupB;
    m.hdr.conn = kInterConn;
    m.hdr.tag = kThread;
    m.hdr.seq = 1;
    rig.eps[0]->send(std::move(m));
  };
  rig.eps[2]->subscribe(kGroupB, [&](const gcs::Message& m) {
    if (m.hdr.conn != kInterConn) return;
    read_clock_into(*rig.svcs[2], b_read);
  });
  // A mirror on the second A replica keeps the A group in agreement.
  auto mirror = [&]() -> sim::Task { (void)co_await rig.svcs[1]->get_time(kThread); };
  mirror();
  flow();
  rig.sim.run_for(10'000'000);
  ASSERT_NE(a_ts, 0);
  ASSERT_NE(b_read, 0);
  EXPECT_LT(b_read, a_ts);  // causality violated: effect timestamped before cause
}

TEST(MultigroupTest, StampedMessagesPreserveCausality) {
  TwoGroupRig rig(300'000);

  Micros a_ts = 0;
  std::vector<Micros> b_reads;
  // Both B replicas read their group clock upon delivery.
  for (std::uint32_t i : {2u, 3u}) {
    rig.messengers[i]->subscribe(kInterConn, [&, i](const gcs::Message&, Micros, const Bytes&) {
      read_clock_push(*rig.svcs[i], b_reads);
    });
  }
  // Both A replicas perform the same logical stamped send.
  for (std::uint32_t i : {0u, 1u}) {
    rig.messengers[i]->stamp_and_send(kGroupB, kInterConn, 1, Bytes{42},
                                      [&](Micros ts) { a_ts = ts; });
  }
  rig.sim.run_for(10'000'000);
  ASSERT_NE(a_ts, 0);
  ASSERT_EQ(b_reads.size(), 2u);
  // Causality: every B reading after delivery exceeds the A timestamp.
  EXPECT_GT(b_reads[0], a_ts);
  // Agreement within B is preserved despite the floor raise.
  EXPECT_EQ(b_reads[0], b_reads[1]);
}

TEST(MultigroupTest, FloorIsRaisedBeforeEachCallbackAcrossABatchedFrame) {
  // Three stamped messages enqueued back-to-back at one node ride a single
  // token visit as ONE batch frame, so the receiving group's GCS delivers
  // them in one burst.  The causal floor must be at (or above) each
  // message's timestamp by the time ITS application callback runs — not
  // just after the whole batch drains.
  TwoGroupRig rig(300'000);
  std::vector<std::pair<Micros, Micros>> seen;  // (stamp, floor at callback)
  rig.messengers[2]->subscribe(kInterConn, [&](const gcs::Message&, Micros ts, const Bytes&) {
    seen.push_back({ts, rig.svcs[2]->causal_floor()});
  });
  const auto frames_before = rig.totems[0]->stats().batch_frames_sent;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    StampedPayload p;
    p.timestamp = 500'000 + static_cast<Micros>(k);
    p.body = Bytes{static_cast<std::uint8_t>(k)};
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kUserRequest;
    m.hdr.src_grp = kGroupA;
    m.hdr.dst_grp = kGroupB;
    m.hdr.conn = kInterConn;
    m.hdr.tag = kThread;
    m.hdr.seq = k;
    m.payload = p.encode();
    rig.eps[0]->send(std::move(m));
  }
  rig.sim.run_for(1'000'000);
  ASSERT_EQ(seen.size(), 3u);
  // The three messages really shared one frame.
  EXPECT_EQ(rig.totems[0]->stats().batch_frames_sent, frames_before + 1);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, 500'001 + static_cast<Micros>(i));
    EXPECT_GE(seen[i].second, seen[i].first)
        << "floor lagged its message's stamp at batch position " << i;
  }
  EXPECT_EQ(rig.svcs[2]->causal_floor(), 500'003);
}

TEST(MultigroupTest, FloorDoesNotDisturbUnrelatedMonotonicity) {
  TwoGroupRig rig(300'000);
  std::vector<Micros> reads;
  auto worker = [&](std::uint32_t i, bool record) -> sim::Task {
    for (int k = 0; k < 20; ++k) {
      co_await rig.sim.delay(200);
      const Micros v = co_await rig.svcs[i]->get_time(kThread);
      if (record) reads.push_back(v);
    }
  };
  worker(2, true);
  worker(3, false);
  // Mid-stream, raise the floor far ahead via a stamped message from A.
  rig.sim.after(2'000, [&] {
    for (std::uint32_t i : {2u, 3u}) rig.messengers[i]->subscribe(kInterConn, {});
    for (std::uint32_t i : {0u, 1u}) {
      rig.messengers[i]->stamp_and_send(kGroupB, kInterConn, 1, Bytes{1});
    }
  });
  rig.sim.run_for(30'000'000);
  ASSERT_EQ(reads.size(), 20u);
  for (std::size_t i = 1; i < reads.size(); ++i) {
    EXPECT_GT(reads[i], reads[i - 1]);
  }
}

TEST(MultigroupTest, BackAndForthConversationStaysCausal) {
  // A -> B -> A: each hop stamps with its group clock; timestamps must be
  // strictly increasing along the causal chain.
  TwoGroupRig rig(300'000);
  std::vector<Micros> chain;

  for (std::uint32_t i : {2u, 3u}) {
    rig.messengers[i]->subscribe(kInterConn, [&, i](const gcs::Message&, Micros, const Bytes&) {
      // B replies, stamped with B's group clock (raised past A's timestamp
      // by the causal floor).
      rig.messengers[i]->stamp_and_send(kGroupA, ConnectionId{201}, 1, Bytes{2});
    });
  }
  for (std::uint32_t i : {0u, 1u}) {
    rig.messengers[i]->subscribe(ConnectionId{201}, [&, i](const gcs::Message&, Micros ts,
                                                           const Bytes&) {
      if (i == 0) chain.push_back(ts);  // B's reply timestamp
    });
    rig.messengers[i]->stamp_and_send(kGroupB, kInterConn, 1, Bytes{1}, [&, i](Micros ts) {
      if (i == 0) chain.push_back(ts);  // A's send timestamp (fires first)
    });
  }
  rig.sim.run_for(30'000'000);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_GT(chain[1], chain[0]);  // B's reply is causally after A's send
}

TEST(MultigroupTest, MalformedStampIsRejectedCountedAndDoesNotRaiseFloor) {
  // Mirror of the totem malformed-packet suite, one layer up: payloads that
  // do not decode as a StampedPayload must be dropped on the subscriber's
  // floor — no callback, no floor raise (a garbage timestamp would wedge
  // the group clock) — and accounted (multigroup.stamps_rejected counter +
  // stamp_rejected trace event).
  TwoGroupRig rig(300'000);
  obs::Recorder rec(rig.sim);
  rig.eps[2]->set_recorder(&rec);

  int delivered = 0;
  rig.messengers[2]->subscribe(kInterConn, [&](const gcs::Message&, Micros, const Bytes&) {
    ++delivered;
  });
  const Micros floor_before = rig.svcs[2]->causal_floor();

  // Three shapes of garbage: empty, a truncated timestamp, and a body
  // length prefix pointing past the end of the buffer.
  BytesWriter lying;
  lying.i64(5);
  lying.u32(100);  // claims 100 body bytes, provides none
  const std::vector<Bytes> evil = {Bytes{}, Bytes{1, 2, 3}, std::move(lying).take()};
  for (std::size_t k = 0; k < evil.size(); ++k) {
    gcs::Message m;
    m.hdr.type = gcs::MsgType::kUserRequest;
    m.hdr.src_grp = kGroupA;
    m.hdr.dst_grp = kGroupB;
    m.hdr.conn = kInterConn;
    m.hdr.tag = kThread;
    m.hdr.seq = k + 1;
    m.payload = evil[k];
    rig.eps[0]->send(std::move(m));
  }
  rig.sim.run_for(1'000'000);

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.svcs[2]->causal_floor(), floor_before);
  EXPECT_EQ(rec.counter("multigroup.stamps_rejected").value, 3u);
  EXPECT_EQ(rec.trace().count(obs::EventKind::kStampRejected), 3u);

  // The stream is not wedged: a well-formed stamp on the same (conn, tag)
  // stream still delivers and raises the floor.
  StampedPayload p;
  p.timestamp = 900'000'000;
  p.body = Bytes{7};
  gcs::Message m;
  m.hdr.type = gcs::MsgType::kUserRequest;
  m.hdr.src_grp = kGroupA;
  m.hdr.dst_grp = kGroupB;
  m.hdr.conn = kInterConn;
  m.hdr.tag = kThread;
  m.hdr.seq = 4;
  m.payload = p.encode();
  rig.eps[0]->send(std::move(m));
  rig.sim.run_for(1'000'000);

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(rig.svcs[2]->causal_floor(), 900'000'000);
  EXPECT_EQ(rec.counter("multigroup.stamps_rejected").value, 3u);
}

}  // namespace
}  // namespace cts::ccs
