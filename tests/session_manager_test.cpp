// Tests for the replicated session manager: deterministic ids, TTL
// renewal, deterministic reaping, and consistency across faults.
#include <gtest/gtest.h>

#include "app/session_manager.hpp"
#include "app/testbed.hpp"

namespace cts::app {
namespace {

struct SessionBed {
  Testbed tb;

  explicit SessionBed(std::uint64_t seed = 1,
                      replication::ReplicationStyle style = replication::ReplicationStyle::kActive)
      : tb(make_cfg(seed, style)) {
    tb.start();
  }

  static TestbedConfig make_cfg(std::uint64_t seed, replication::ReplicationStyle style) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.style = style;
    cfg.factory = session_manager_factory();
    return cfg;
  }

  SessionReply call(Bytes request, Micros budget = 30'000'000) {
    SessionReply out;
    bool done = false;
    tb.client().invoke(std::move(request), [&](const Bytes& r) {
      out = SessionReply::parse(r);
      done = true;
    });
    const Micros deadline = tb.sim().now() + budget;
    while (!done && tb.sim().now() < deadline) tb.sim().run_until(tb.sim().now() + 10'000);
    EXPECT_TRUE(done) << "request timed out";
    return out;
  }

  SessionManagerApp& app(std::uint32_t s) {
    return static_cast<SessionManagerApp&>(tb.server(s).app());
  }

  void expect_identical() {
    tb.sim().run_for(2'000'000);
    for (std::uint32_t s = 1; s < 3; ++s) {
      if (!tb.clock_of(tb.server_node(s)).alive()) continue;
      EXPECT_EQ(app(s).state_digest(), app(0).state_digest()) << "replica " << s;
    }
  }
};

TEST(SessionManagerTest, OpenReturnsIdAndExpiry) {
  SessionBed sb;
  const SessionReply r = sb.call(session_open(50'000));
  EXPECT_EQ(r.status, SessionStatus::kOk);
  EXPECT_NE(r.session_id, 0u);
  EXPECT_GT(r.stamp, 0);
  sb.expect_identical();
}

TEST(SessionManagerTest, QueryFindsOpenSession) {
  SessionBed sb;
  const auto open = sb.call(session_open(1'000'000));
  const auto q = sb.call(session_query(open.session_id));
  EXPECT_EQ(q.status, SessionStatus::kOk);
  EXPECT_EQ(q.session_id, open.session_id);
}

TEST(SessionManagerTest, CloseTerminates) {
  SessionBed sb;
  const auto open = sb.call(session_open(1'000'000));
  EXPECT_EQ(sb.call(session_close(open.session_id)).status, SessionStatus::kOk);
  EXPECT_EQ(sb.call(session_query(open.session_id)).status, SessionStatus::kUnknownSession);
  EXPECT_EQ(sb.call(session_close(open.session_id)).status, SessionStatus::kUnknownSession);
}

TEST(SessionManagerTest, IdleSessionIsReapedAtTheSameGroupTimeEverywhere) {
  SessionBed sb;
  const auto open = sb.call(session_open(20'000));
  sb.tb.sim().run_for(200'000);
  EXPECT_EQ(sb.call(session_query(open.session_id)).status, SessionStatus::kUnknownSession);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sb.app(s).sessions_reaped(), 1u) << "replica " << s;
  }
  sb.expect_identical();
}

TEST(SessionManagerTest, TouchExtendsTheDeadline) {
  SessionBed sb;
  const auto open = sb.call(session_open(30'000));
  // Keep touching within the ttl; the session must survive well past the
  // original deadline.
  for (int i = 0; i < 5; ++i) {
    sb.tb.sim().run_for(15'000);
    EXPECT_EQ(sb.call(session_touch(open.session_id)).status, SessionStatus::kOk) << i;
  }
  EXPECT_EQ(sb.call(session_query(open.session_id)).status, SessionStatus::kOk);
  // Then stop touching: it reaps.
  sb.tb.sim().run_for(200'000);
  EXPECT_EQ(sb.call(session_query(open.session_id)).status, SessionStatus::kUnknownSession);
  sb.expect_identical();
}

TEST(SessionManagerTest, SessionIdsAreUniqueAndDeterministic) {
  SessionBed sb;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto r = sb.call(session_open(10'000'000));
    EXPECT_TRUE(ids.insert(r.session_id).second) << "duplicate session id";
  }
  sb.expect_identical();  // digests include the ids: identical => same ids
}

TEST(SessionManagerTest, CountTracksLiveSessions) {
  SessionBed sb;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(sb.call(session_open(10'000'000)).session_id);
  EXPECT_EQ(sb.call(session_count()).live_count, 4u);
  sb.call(session_close(ids[0]));
  sb.call(session_close(ids[1]));
  EXPECT_EQ(sb.call(session_count()).live_count, 2u);
}

TEST(SessionManagerTest, SurvivesRecoveryWithLiveSessions) {
  SessionBed sb;
  const auto keep = sb.call(session_open(60'000'000));
  const auto doomed = sb.call(session_open(25'000));
  sb.tb.crash_server(2);
  sb.tb.sim().run_for(100'000);  // doomed expires while replica 3 is down
  bool recovered = false;
  sb.tb.restart_server(2, [&] { recovered = true; });
  const Micros deadline = sb.tb.sim().now() + 300'000'000;
  while (!recovered && sb.tb.sim().now() < deadline) {
    sb.tb.sim().run_until(sb.tb.sim().now() + 10'000);
  }
  ASSERT_TRUE(recovered);
  EXPECT_EQ(sb.call(session_query(keep.session_id)).status, SessionStatus::kOk);
  EXPECT_EQ(sb.call(session_query(doomed.session_id)).status, SessionStatus::kUnknownSession);
  sb.expect_identical();
}

TEST(SessionManagerTest, FailoverKeepsSessionDecisionsConsistent) {
  SessionBed sb(3, replication::ReplicationStyle::kSemiActive);
  const auto open = sb.call(session_open(60'000'000));
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (sb.tb.server(s).is_primary()) sb.tb.crash_server(s);
  }
  sb.tb.sim().run_for(2'000'000);
  EXPECT_EQ(sb.call(session_query(open.session_id)).status, SessionStatus::kOk);
  EXPECT_EQ(sb.call(session_touch(open.session_id)).status, SessionStatus::kOk);
}

TEST(SessionManagerTest, BadRequestsRejected) {
  SessionBed sb;
  EXPECT_EQ(sb.call(session_open(0)).status, SessionStatus::kBadRequest);
  EXPECT_EQ(sb.call(Bytes{77}).status, SessionStatus::kBadRequest);
  sb.expect_identical();
}

}  // namespace
}  // namespace cts::app
