// Tests for the mini-ORB: invocation/reply matching, duplicate-reply
// suppression, and timed remote method invocations.
#include <gtest/gtest.h>

#include "app/testbed.hpp"

namespace cts::orb {
namespace {

using app::Testbed;
using app::TestbedConfig;

bool run_until(Testbed& tb, const std::function<bool()>& pred, Micros budget) {
  const Micros deadline = tb.sim().now() + budget;
  while (tb.sim().now() < deadline) {
    tb.sim().run_until(tb.sim().now() + 10'000);
    if (pred()) return true;
  }
  return pred();
}

TEST(RmiClientTest, InvokeReceivesReply) {
  Testbed tb({});
  tb.start();
  Bytes reply;
  bool got = false;
  tb.client().invoke(app::make_get_time_request(), [&](const Bytes& r) {
    reply = r;
    got = true;
  });
  ASSERT_TRUE(run_until(tb, [&] { return got; }, 10'000'000));
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(tb.client().replies(), 1u);
}

TEST(RmiClientTest, ConcurrentInvocationsMatchBySequence) {
  Testbed tb({});
  tb.start();
  std::map<MsgSeqNum, std::uint64_t> counters;
  int got = 0;
  for (int i = 0; i < 5; ++i) {
    const auto seq = tb.client().invoke(app::make_get_counter_request(), [&, i](const Bytes& r) {
      BytesReader rd(r);
      (void)i;
      ++got;
      counters[static_cast<MsgSeqNum>(got)] = rd.u64();
    });
    (void)seq;
  }
  ASSERT_TRUE(run_until(tb, [&] { return got == 5; }, 20'000'000));
  EXPECT_EQ(tb.client().invocations(), 5u);
}

TEST(RmiClientTest, TimedInvocationSucceedsWhenServerIsUp) {
  Testbed tb({});
  tb.start();
  bool got = false, timed_out = false;
  tb.client().invoke(
      app::make_get_time_request(), [&](const Bytes&) { got = true; },
      /*timeout_us=*/50'000, [&] { timed_out = true; });
  tb.sim().run_for(100'000);
  EXPECT_TRUE(got);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(tb.client().timeouts(), 0u);
}

TEST(RmiClientTest, TimedInvocationTimesOutWhenAllServersDead) {
  Testbed tb({});
  tb.start();
  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  tb.sim().run_for(100'000);

  bool got = false, timed_out = false;
  tb.client().invoke(
      app::make_get_time_request(), [&](const Bytes&) { got = true; },
      /*timeout_us=*/30'000, [&] { timed_out = true; });
  tb.sim().run_for(200'000);
  EXPECT_FALSE(got);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(tb.client().timeouts(), 1u);
}

TEST(RmiClientTest, LateReplyAfterTimeoutIsDiscarded) {
  // Partition the client away, let the invocation time out, then heal: the
  // reply eventually arrives but must not fire the (consumed) callback.
  Testbed tb({});
  tb.start();
  int replies = 0, timeouts = 0;
  tb.net().partition({{NodeId{0}}, {NodeId{1}, NodeId{2}, NodeId{3}}});
  tb.client().invoke(
      app::make_get_time_request(), [&](const Bytes&) { ++replies; },
      /*timeout_us=*/20'000, [&] { ++timeouts; });
  tb.sim().run_for(100'000);
  EXPECT_EQ(timeouts, 1);
  tb.net().heal();
  bool got2 = false;
  tb.client().invoke(app::make_get_counter_request(), [&](const Bytes&) { got2 = true; });
  ASSERT_TRUE(run_until(tb, [&] { return got2; }, 20'000'000));
  // The first invocation's reply arrived after the merge but its callback
  // was consumed by the timeout: it must NOT fire.
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(timeouts, 1);
}

sim::Task timed_call(Testbed& tb, Micros timeout, std::optional<Bytes>& out, bool& done) {
  out = co_await tb.client().call_with_timeout(app::make_get_time_request(), timeout);
  done = true;
}

TEST(RmiClientTest, AwaitableTimedCallReturnsValue) {
  Testbed tb({});
  tb.start();
  std::optional<Bytes> out;
  bool done = false;
  timed_call(tb, 100'000, out, done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 10'000'000));
  EXPECT_TRUE(out.has_value());
}

TEST(RmiClientTest, AwaitableTimedCallReturnsNulloptOnTimeout) {
  Testbed tb({});
  tb.start();
  for (std::uint32_t s = 0; s < 3; ++s) tb.crash_server(s);
  std::optional<Bytes> out = Bytes{1};  // sentinel: must be overwritten
  bool done = false;
  timed_call(tb, 30'000, out, done);
  ASSERT_TRUE(run_until(tb, [&] { return done; }, 10'000'000));
  EXPECT_FALSE(out.has_value());
}

TEST(RmiClientTest, ReplicatedClientGroupInvokesOnce) {
  // The paper's client is unreplicated, but the connection machinery
  // supports replicated clients for free: two client replicas issue the
  // SAME logical invocation (same conn, tag, seq); duplicate suppression
  // collapses the copies, the server processes once, and the reply reaches
  // both client replicas.
  TestbedConfig cfg;
  cfg.servers = 2;  // nodes n1, n2; we add client replicas on n0 and... n0 only has one
  Testbed tb(cfg);
  tb.start();

  // Build a second client endpoint ON SERVER NODE n2's host (any host can
  // also run a client replica of the same client group).
  orb::RmiClient client2(tb.sim(), tb.gcs_of(tb.server_node(1)), app::TestbedIds::kClientGroup,
                         app::TestbedIds::kServerGroup, app::TestbedIds::kRequestConn);

  int got1 = 0, got2 = 0;
  tb.client().invoke(app::make_get_time_request(), [&](const Bytes&) { ++got1; });
  client2.invoke(app::make_get_time_request(), [&](const Bytes&) { ++got2; });
  ASSERT_TRUE(run_until(tb, [&] { return got1 == 1 && got2 == 1; }, 30'000'000));
  tb.sim().run_for(2'000'000);

  // The server group processed the logical invocation exactly once.
  std::uint64_t processed = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    processed = std::max(processed, tb.server(s).stats().requests_processed);
  }
  EXPECT_EQ(processed, 1u);
  // And at most one request copy reached the wire (suppression), at least one.
  const auto wire = tb.gcs_of(0).stats().on_wire(gcs::MsgType::kUserRequest) +
                    tb.gcs_of(tb.server_node(1)).stats().on_wire(gcs::MsgType::kUserRequest);
  EXPECT_GE(wire, 1u);
  EXPECT_LE(wire, 2u);
}

TEST(RmiClientTest, SurvivesOneServerCrashTransparently) {
  // Active replication: any replica's reply serves the client; a single
  // crash is invisible apart from latency.
  Testbed tb({});
  tb.start();
  bool got = false;
  tb.crash_server(1);
  tb.client().invoke(app::make_get_time_request(), [&](const Bytes&) { got = true; });
  ASSERT_TRUE(run_until(tb, [&] { return got; }, 30'000'000));
}

}  // namespace
}  // namespace cts::orb
