// Tests for the runtime ordering oracle (doc/STATIC_ANALYSIS.md).
//
// Three layers of coverage:
//   1. Injection: every check is driven directly (abort disabled) with a
//      violating history, proving the check actually fires — an oracle
//      that never fires is indistinguishable from one that verifies
//      nothing.
//   2. Negative controls: legal histories (including restarts, which
//      legitimately rewind cursors and round numbers) produce zero
//      violations.
//   3. End-to-end: a randomized crash/restart fuzz over the full Testbed
//      stack with the oracle live on every delivery, and the sending-
//      representative crash handoff across groups (paper Section 5).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/kv_store.hpp"
#include "app/testbed.hpp"
#include "clock/physical_clock.hpp"
#include "cts/consistent_time_service.hpp"
#include "cts/multigroup.hpp"
#include "gcs/gcs.hpp"
#include "net/network.hpp"
#include "obs/oracle.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "totem/totem.hpp"

namespace cts::obs {
namespace {

using Check = OrderingOracle::Check;

constexpr GroupId kGrp{1};
constexpr ConnectionId kConn{100};
constexpr ThreadId kThread{0};
constexpr std::uint8_t kType = 3;

/// A directly driven oracle with abort disabled, so violating histories
/// return instead of killing the test process.
struct OracleRig {
  sim::Simulator sim{1};
  MetricsRegistry metrics;
  TraceLog trace;
  OrderingOracle orc{sim, metrics, trace, /*abort_on_violation=*/false};

  void deliver(std::uint32_t node, MsgSeqNum seq, std::uint8_t payload_byte,
               std::uint32_t sender = 9) {
    const std::uint8_t payload[1] = {payload_byte};
    orc.on_gcs_deliver(NodeId{node}, kGrp, kConn, kType, kThread, seq, NodeId{sender}, payload);
  }
};

// --- Total order ---------------------------------------------------------------

TEST(OracleInjection, OutOfOrderDeliveryFires) {
  OracleRig r;
  r.deliver(0, 1, 7);
  r.deliver(0, 2, 8);  // canonical order: seq1 then seq2
  r.deliver(1, 2, 8);
  r.deliver(1, 1, 7);  // node 1 sees them reversed
  EXPECT_EQ(r.orc.violations(Check::kTotalOrder), 1u);
  ASSERT_FALSE(r.orc.violation_log().empty());
  EXPECT_EQ(r.orc.violation_log().front().check, Check::kTotalOrder);
}

TEST(OracleInjection, PayloadDivergenceFires) {
  OracleRig r;
  r.deliver(0, 1, 7);
  r.deliver(1, 1, 8);  // same key, different bytes
  EXPECT_EQ(r.orc.violations(Check::kTotalOrder), 1u);
}

TEST(OracleNegative, AgreeingDeliveriesAreClean) {
  OracleRig r;
  for (std::uint32_t node : {0u, 1u, 2u}) {
    for (MsgSeqNum s = 1; s <= 4; ++s) r.deliver(node, s, static_cast<std::uint8_t>(s));
  }
  EXPECT_EQ(r.orc.violations(), 0u);
  EXPECT_GT(r.orc.checks_run(), 0u);
}

TEST(OracleNegative, NodeResetAllowsRedelivery) {
  OracleRig r;
  r.deliver(0, 1, 7);
  r.deliver(0, 2, 8);
  // Restart: recovery legitimately redelivers from an earlier point.
  r.orc.on_node_reset(NodeId{0});
  r.deliver(0, 1, 7);
  r.deliver(0, 2, 8);
  EXPECT_EQ(r.orc.violations(), 0u);
}

// --- Membership ----------------------------------------------------------------

TEST(OracleInjection, DeliveryFromOutsideViewFires) {
  OracleRig r;
  const std::vector<NodeId> members = {NodeId{0}, NodeId{1}};
  r.orc.on_view_installed(NodeId{0}, /*ring_id=*/7, members);
  r.deliver(0, 1, 7, /*sender=*/5);  // node 5 is not in the view
  EXPECT_EQ(r.orc.violations(Check::kMembership), 1u);
}

TEST(OracleNegative, MemberDeliveryIsClean) {
  OracleRig r;
  const std::vector<NodeId> members = {NodeId{0}, NodeId{1}};
  r.orc.on_view_installed(NodeId{0}, 7, members);
  r.deliver(0, 1, 7, /*sender=*/1);
  EXPECT_EQ(r.orc.violations(), 0u);
}

// --- Round agreement -----------------------------------------------------------

TEST(OracleInjection, ConflictingRoundValueFires) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 1'000, ReplicaId{0}, false);
  r.orc.on_round_complete(kGrp, ReplicaId{1}, kThread, 1, 1'001, ReplicaId{0}, false);
  EXPECT_EQ(r.orc.violations(Check::kAgreement), 1u);
}

TEST(OracleInjection, ConflictingSynchronizerFires) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 1'000, ReplicaId{0}, false);
  r.orc.on_round_complete(kGrp, ReplicaId{1}, kThread, 1, 1'000, ReplicaId{2}, false);
  EXPECT_EQ(r.orc.violations(Check::kAgreement), 1u);
}

// --- Clock monotonicity --------------------------------------------------------

TEST(OracleInjection, GroupClockRegressionFires) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 1'000, ReplicaId{0}, false);
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 2, 900, ReplicaId{0}, false);
  EXPECT_GE(r.orc.violations(Check::kClockMonotonicity), 1u);
}

TEST(OracleInjection, RepeatedRoundNumberFires) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 2, 1'000, ReplicaId{0}, false);
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 2, 1'100, ReplicaId{0}, false);
  EXPECT_GE(r.orc.violations(Check::kClockMonotonicity), 1u);
}

TEST(OracleNegative, ReplicaResetResyncsRoundNumbersButNotValues) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 5, 1'000, ReplicaId{0}, false);
  r.orc.on_replica_reset(kGrp, ReplicaId{0});
  // The rebuilt replica resumes from a checkpointed round counter...
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 3, 1'200, ReplicaId{0}, false);
  EXPECT_EQ(r.orc.violations(), 0u);
  // ...but its clock values must still move forward.
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 4, 800, ReplicaId{0}, false);
  EXPECT_GE(r.orc.violations(Check::kClockMonotonicity), 1u);
}

// --- Causal floor --------------------------------------------------------------

TEST(OracleInjection, ProposalAtOrBelowFloorFires) {
  OracleRig r;
  r.orc.on_stamp_observed(kGrp, ReplicaId{0}, 500);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 1, /*proposed=*/500, false);  // == floor
  EXPECT_EQ(r.orc.violations(Check::kCausalFloor), 1u);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 2, /*proposed=*/400, false);  // < floor
  EXPECT_EQ(r.orc.violations(Check::kCausalFloor), 2u);
}

TEST(OracleInjection, CompletionClampedBelowFloorFires) {
  OracleRig r;
  r.orc.on_stamp_observed(kGrp, ReplicaId{0}, 500);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 1, /*proposed=*/600, false);
  EXPECT_EQ(r.orc.violations(), 0u);
  // The fast-forward guard clamped the winner's value below its own floor.
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, /*value=*/450, ReplicaId{0}, false);
  EXPECT_EQ(r.orc.violations(Check::kCausalFloor), 1u);
}

TEST(OracleNegative, ClampAboveFloorOnlyCounts) {
  OracleRig r;
  r.orc.on_stamp_observed(kGrp, ReplicaId{0}, 400);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 1, /*proposed=*/600, false);
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, /*value=*/500, ReplicaId{0}, false);
  EXPECT_EQ(r.orc.violations(), 0u);
  EXPECT_EQ(r.metrics.counter("oracle.floor_checks_clamped").value, 1);
}

TEST(OracleNegative, ProposalAboveFloorIsClean) {
  OracleRig r;
  r.orc.on_stamp_observed(kGrp, ReplicaId{0}, 500);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 1, 501, false);
  EXPECT_EQ(r.orc.violations(), 0u);
}

// --- Checkpoint chains ---------------------------------------------------------

TEST(OracleInjection, BrokenChainLinkFires) {
  OracleRig r;
  const std::vector<CheckpointLink> chain = {{10, 111, 0, 1'111}, {20, 222, 9'999, 2'222}};
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, chain, /*verified=*/true);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 1u);
}

TEST(OracleInjection, DecreasingCoverageFires) {
  OracleRig r;
  const std::vector<CheckpointLink> chain = {{20, 111, 0, 1'111}, {10, 222, 1'111, 2'222}};
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, chain, true);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 1u);
}

TEST(OracleInjection, UnverifiedChainFires) {
  OracleRig r;
  const std::vector<CheckpointLink> chain = {{10, 111, 0, 1'111}};
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, chain, /*verified=*/false);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 1u);
}

TEST(OracleInjection, CoverageRollbackWithinIncarnationFires) {
  OracleRig r;
  const std::vector<CheckpointLink> fresh = {{20, 111, 0, 1'111}};
  const std::vector<CheckpointLink> stale = {{10, 222, 0, 2'222}};
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, fresh, true);
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, stale, true);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 1u);
}

TEST(OracleNegative, StaleDiskAfterRestartIsClean) {
  OracleRig r;
  const std::vector<CheckpointLink> fresh = {{20, 111, 0, 1'111}};
  const std::vector<CheckpointLink> stale = {{10, 222, 0, 2'222}};
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, fresh, true);
  // A cold start from a stale disk re-adopts older coverage, then catches
  // up via state transfer; that is not a rollback.
  r.orc.on_replica_reset(kGrp, ReplicaId{0});
  r.orc.on_checkpoint_chain(kGrp, ReplicaId{0}, stale, true);
  EXPECT_EQ(r.orc.violations(), 0u);
}

TEST(OracleInjection, NonIncreasingRecoveryEpochFires) {
  OracleRig r;
  r.orc.on_recovery_epoch(kGrp, ReplicaId{0}, 5);
  r.orc.on_recovery_epoch(kGrp, ReplicaId{0}, 5);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 1u);
  r.orc.on_recovery_epoch(kGrp, ReplicaId{0}, 4);
  EXPECT_EQ(r.orc.violations(Check::kCheckpoint), 2u);
}

// --- Group cold restart --------------------------------------------------------

TEST(OracleNegative, GroupResetClearsAgreementAndCanon) {
  OracleRig r;
  r.deliver(0, 1, 7);
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 1'000, ReplicaId{0}, false);
  // Total failure: connection sequences and round numbers restart, values
  // climb above everything handed out before.
  r.orc.on_node_reset(NodeId{0});
  r.orc.on_replica_reset(kGrp, ReplicaId{0});
  r.orc.on_group_reset(kGrp);
  r.deliver(0, 1, 9);  // same key, new payload: a NEW message, not divergence
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 2'000, ReplicaId{0}, false);
  EXPECT_EQ(r.orc.violations(), 0u);
}

TEST(OracleInjection, GroupResetStillRequiresValueMonotonicity) {
  OracleRig r;
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 2'000, ReplicaId{0}, false);
  r.orc.on_replica_reset(kGrp, ReplicaId{0});
  r.orc.on_group_reset(kGrp);
  // The restored state must force the clock above pre-outage readings.
  r.orc.on_round_complete(kGrp, ReplicaId{0}, kThread, 1, 1'500, ReplicaId{0}, false);
  EXPECT_GE(r.orc.violations(Check::kClockMonotonicity), 1u);
}

// --- Bookkeeping ---------------------------------------------------------------

TEST(OracleTest, ViolationCountersAndNamesLineUp) {
  OracleRig r;
  r.orc.on_stamp_observed(kGrp, ReplicaId{0}, 500);
  r.orc.on_ccs_send(kGrp, ReplicaId{0}, kThread, 1, 100, false);
  EXPECT_EQ(r.metrics.counter("oracle.violations").value, 1);
  EXPECT_EQ(r.metrics.counter("oracle.violations.causal_floor").value, 1);
  EXPECT_EQ(r.metrics.counter("oracle.checks_run").value,
            static_cast<std::int64_t>(r.orc.checks_run()));
  EXPECT_EQ(std::string(OrderingOracle::check_name(Check::kCausalFloor)), "causal_floor");
  ASSERT_EQ(r.orc.violation_log().size(), 1u);
  EXPECT_FALSE(r.orc.violation_log().front().detail.empty());
}

}  // namespace
}  // namespace cts::obs

// --- End-to-end: fuzzed crash/restart under the live oracle --------------------

namespace cts::app {
namespace {

struct OracleFuzzParam {
  std::uint64_t seed;
  double loss;
  std::uint32_t shards;
};

class OracleCrashFuzz : public ::testing::TestWithParam<OracleFuzzParam> {};

// The Testbed's default oracle aborts on the first violation, so merely
// finishing is already a verdict; the explicit zero-violation assert below
// documents the invariant and catches an oracle that was never wired.
TEST_P(OracleCrashFuzz, RandomizedFaultScheduleStaysClean) {
  const auto p = GetParam();
  TestbedConfig cfg;
  cfg.servers = 3;
  cfg.seed = p.seed;
  cfg.factory = kv_store_factory();
  cfg.shards = p.shards;
  if (p.shards > 1) cfg.shard_fn = kv_shard_of;
  cfg.net.loss_probability = p.loss;
  Testbed tb(cfg);
  tb.start();
  auto* orc = tb.recorder().oracle();
  ASSERT_NE(orc, nullptr) << "Testbed should enable the oracle by default";

  Rng fuzz(p.seed * 31 + 7);
  int issued = 0, answered = 0;
  bool down[3] = {false, false, false};
  bool recovering[3] = {false, false, false};
  for (int step = 0; step < 80; ++step) {
    tb.sim().run_for(fuzz.range(500, 5'000));
    const auto dice = fuzz.below(10);
    if (dice == 0) {
      int live = 0;
      for (bool d : down) live += !d;
      const auto victim = fuzz.below(3);
      if (live > 2 && !down[victim] && !recovering[victim]) {
        down[victim] = true;
        tb.crash_server(static_cast<std::uint32_t>(victim));
      }
    } else if (dice == 1) {
      for (std::uint32_t v = 0; v < 3; ++v) {
        if (down[v] && !recovering[v]) {
          recovering[v] = true;
          tb.restart_server(v, [&, v] {
            down[v] = false;
            recovering[v] = false;
          });
          break;
        }
      }
    } else {
      ++issued;
      tb.client().invoke(kv_put("k" + std::to_string(fuzz.below(8)), "v", 0),
                         [&](const Bytes&) { ++answered; });
    }
  }
  for (std::uint32_t v = 0; v < 3; ++v) {
    if (down[v] && !recovering[v]) {
      recovering[v] = true;
      tb.restart_server(v, [&, v] {
        down[v] = false;
        recovering[v] = false;
      });
    }
  }
  const Micros deadline = tb.sim().now() + 600'000'000;
  while (tb.sim().now() < deadline && answered < issued) {
    tb.sim().run_until(tb.sim().now() + 100'000);
  }

  EXPECT_GT(answered, 0) << "seed " << p.seed << ": no progress under the oracle";
  EXPECT_GT(orc->checks_run(), 0u);
  EXPECT_EQ(orc->violations(), 0u) << "seed " << p.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, OracleCrashFuzz,
    ::testing::Values(OracleFuzzParam{31, 0.0, 1}, OracleFuzzParam{32, 0.02, 1},
                      OracleFuzzParam{33, 0.05, 2}, OracleFuzzParam{34, 0.05, 4}),
    [](const ::testing::TestParamInfo<OracleFuzzParam>& i) {
      return "seed" + std::to_string(i.param.seed) + "_loss" +
             std::to_string(static_cast<int>(i.param.loss * 100)) + "_sh" +
             std::to_string(i.param.shards);
    });

}  // namespace
}  // namespace cts::app

// --- End-to-end: representative crash mid inter-group handoff ------------------

namespace cts::ccs {
namespace {

constexpr GroupId kGroupA{10};
constexpr GroupId kGroupB{11};
constexpr ConnectionId kCcsConnA{100};
constexpr ConnectionId kCcsConnB{101};
constexpr ConnectionId kInterConn{200};
constexpr ThreadId kThread{0};

sim::Task read_clock_push(ConsistentTimeService& svc, std::vector<Micros>& out) {
  out.push_back(co_await svc.get_time(kThread));
}

/// Two replica groups (2 replicas each) on one 4-node ring, with a live
/// (non-aborting) oracle observing every layer.  Group A's clocks run
/// ahead of group B's so an unstamped handoff WOULD violate causality.
struct ObservedTwoGroupRig {
  sim::Simulator sim{1};
  net::Network net;
  obs::Recorder rec{sim};
  obs::OrderingOracle* orc;
  std::vector<std::unique_ptr<totem::TotemNode>> totems;
  std::vector<std::unique_ptr<gcs::GcsEndpoint>> eps;
  std::vector<std::unique_ptr<clock::PhysicalClock>> clocks;
  std::vector<std::unique_ptr<ConsistentTimeService>> svcs;  // 0,1=A; 2,3=B
  std::vector<std::unique_ptr<CausalMessenger>> messengers;

  explicit ObservedTwoGroupRig(Micros gap_us) : net(sim, {}) {
    orc = &rec.enable_oracle(/*abort_on_violation=*/false);
    totem::TotemConfig tcfg;
    for (std::uint32_t i = 0; i < 4; ++i) tcfg.universe.push_back(NodeId{i});
    for (std::uint32_t i = 0; i < 4; ++i) {
      const bool in_a = i < 2;
      totems.push_back(std::make_unique<totem::TotemNode>(sim, net, NodeId{i}, tcfg));
      eps.push_back(std::make_unique<gcs::GcsEndpoint>(sim, *totems.back()));
      eps.back()->set_recorder(&rec);
      clock::ClockConfig ccfg;
      ccfg.initial_offset_us = in_a ? gap_us : 0;
      clocks.push_back(std::make_unique<clock::PhysicalClock>(sim, ccfg));
      CtsConfig cfg;
      cfg.group = in_a ? kGroupA : kGroupB;
      cfg.ccs_conn = in_a ? kCcsConnA : kCcsConnB;
      cfg.replica = ReplicaId{i % 2};
      svcs.push_back(
          std::make_unique<ConsistentTimeService>(sim, *eps.back(), *clocks.back(), cfg));
      svcs.back()->set_recorder(&rec);
      messengers.push_back(
          std::make_unique<CausalMessenger>(*eps.back(), *svcs.back(), cfg.group, kThread));
    }
    for (std::uint32_t i = 0; i < 4; ++i) {
      totems[i]->start();
      eps[i]->join_group(i < 2 ? kGroupA : kGroupB, ReplicaId{i % 2});
    }
    sim.run_for(100'000);
  }
};

TEST(OracleMultigroupTest, RepresentativeCrashMidHandoffKeepsCausality) {
  // Group A is 300ms ahead.  Both A replicas start the same stamped send;
  // A's representative (node 0) crashes while the stamping round is in
  // flight.  The backup replica's identical message completes the handoff,
  // the ring reconfigures around the dead node, and the oracle must see a
  // fully causal history: zero floor violations, zero anything else.
  ObservedTwoGroupRig rig(300'000);

  Micros a_ts = 0;
  std::vector<Micros> b_reads;
  for (std::uint32_t i : {2u, 3u}) {
    rig.messengers[i]->subscribe(kInterConn, [&, i](const gcs::Message&, Micros, const Bytes&) {
      read_clock_push(*rig.svcs[i], b_reads);
    });
  }
  for (std::uint32_t i : {0u, 1u}) {
    rig.messengers[i]->stamp_and_send(kGroupB, kInterConn, 1, Bytes{42},
                                      [&](Micros ts) { a_ts = ts; });
  }
  // Fail-stop A's representative before the stamping round can settle: the
  // proposal is on the wire, the stamped user message is not.
  rig.sim.after(2'000, [&] {
    rig.orc->on_node_reset(NodeId{0});
    rig.totems[0]->scope().shutdown();
  });
  rig.sim.run_for(20'000'000);

  ASSERT_NE(a_ts, 0) << "the surviving A replica never completed the stamping round";
  ASSERT_EQ(b_reads.size(), 2u) << "stamped handoff lost in the crash";
  for (const Micros b : b_reads) {
    EXPECT_GT(b, a_ts) << "B read below the stamp: causality broken by the crash";
  }
  EXPECT_EQ(rig.orc->violations(obs::OrderingOracle::Check::kCausalFloor), 0u);
  EXPECT_EQ(rig.orc->violations(), 0u);
  EXPECT_GT(rig.orc->checks_run(), 0u);
}

}  // namespace
}  // namespace cts::ccs
