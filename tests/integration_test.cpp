// Full-stack integration tests: client → ORB → replicated server →
// Consistent Time Service → Totem, on the simulated four-node testbed of
// paper Section 4.2.
#include <gtest/gtest.h>

#include "app/testbed.hpp"

namespace cts::app {
namespace {

using replication::ReplicationStyle;

sim::Task drive_client(Testbed& tb, int invocations, std::vector<Bytes>& replies,
                       Micros think_us = 100) {
  for (int i = 0; i < invocations; ++i) {
    co_await tb.sim().delay(think_us);
    replies.push_back(co_await tb.client().call(make_get_time_request()));
  }
}

bool run_until(Testbed& tb, const std::function<bool()>& pred, Micros budget) {
  const Micros deadline = tb.sim().now() + budget;
  while (tb.sim().now() < deadline) {
    tb.sim().run_until(tb.sim().now() + 10'000);
    if (pred()) return true;
  }
  return pred();
}

TEST(IntegrationTest, ClientGetsRepliesFromActiveGroup) {
  Testbed tb({});
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 10, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 10; }, 30'000'000));
  for (const auto& r : replies) {
    BytesReader rd(r);
    const auto sec = rd.i64();
    const auto usec = rd.i64();
    EXPECT_GT(sec, 0);
    EXPECT_GE(usec, 0);
    EXPECT_LT(usec, 1'000'000);
  }
}

TEST(IntegrationTest, ReplyTimestampsStrictlyIncrease) {
  Testbed tb({});
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 50, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 50; }, 60'000'000));
  Micros prev = 0;
  for (const auto& r : replies) {
    BytesReader rd(r);
    const Micros t = rd.i64() * 1'000'000 + rd.i64();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(IntegrationTest, AllReplicasHoldIdenticalState) {
  Testbed tb({});
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 30, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 30; }, 60'000'000));
  // Let stragglers finish their (identical) processing.
  tb.sim().run_for(1'000'000);
  const auto& h0 = tb.server_app(0).time_history();
  ASSERT_EQ(h0.size(), 30u);
  for (std::uint32_t s = 1; s < tb.server_count(); ++s) {
    EXPECT_EQ(tb.server_app(s).time_history(), h0) << "replica " << s << " diverged";
    EXPECT_EQ(tb.server_app(s).counter(), 30u);
  }
}

TEST(IntegrationTest, WithoutCtsReplicasDivergeWithCtsTheyAgree) {
  // A control experiment: the same workload where the app reads the LOCAL
  // physical clock would diverge; with the CTS it cannot.  We demonstrate
  // the CTS side here (the divergence side lives in the baseline tests).
  TestbedConfig cfg;
  cfg.max_clock_offset_us = 400'000;  // wildly different hardware clocks
  Testbed tb(cfg);
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 20, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 20; }, 60'000'000));
  tb.sim().run_for(1'000'000);
  EXPECT_EQ(tb.server_app(0).time_history(), tb.server_app(1).time_history());
  EXPECT_EQ(tb.server_app(1).time_history(), tb.server_app(2).time_history());
}

TEST(IntegrationTest, BurstRequestRunsManyRoundsConsistently) {
  Testbed tb({});
  tb.start();
  Bytes reply;
  bool got = false;
  tb.client().invoke(make_burst_request(100), [&](const Bytes& r) {
    reply = r;
    got = true;
  });
  ASSERT_TRUE(run_until(tb, [&] { return got; }, 120'000'000));
  tb.sim().run_for(2'000'000);
  ASSERT_EQ(tb.server_app(0).time_history().size(), 100u);
  EXPECT_EQ(tb.server_app(0).time_history(), tb.server_app(1).time_history());
  EXPECT_EQ(tb.server_app(1).time_history(), tb.server_app(2).time_history());
  // The history must be strictly monotone: a group clock never rolls back.
  const auto& h = tb.server_app(0).time_history();
  for (std::size_t i = 1; i < h.size(); ++i) EXPECT_GT(h[i], h[i - 1]);
}

TEST(IntegrationTest, CcsTrafficIsSuppressedToAboutOnePerRound) {
  Testbed tb({});
  tb.start();
  Bytes reply;
  bool got = false;
  tb.client().invoke(make_burst_request(200), [&](const Bytes& r) {
    reply = r;
    got = true;
  });
  ASSERT_TRUE(run_until(tb, [&] { return got; }, 240'000'000));
  tb.sim().run_for(2'000'000);
  std::uint64_t wire = 0;
  for (std::uint32_t s = 0; s < tb.server_count(); ++s) {
    wire += tb.gcs_of(tb.server_node(s)).stats().on_wire(gcs::MsgType::kCcs);
  }
  // Paper Section 4.3: total CCS messages on the wire ≈ number of rounds
  // (1 + 9,977 + 22 for 10,000 rounds).  Allow slack for in-flight copies.
  EXPECT_GE(wire, 200u);
  EXPECT_LE(wire, 300u);
}

TEST(IntegrationTest, SemiActiveStyleAgreesToo) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kSemiActive;
  Testbed tb(cfg);
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 25, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 25; }, 60'000'000));
  tb.sim().run_for(1'000'000);
  EXPECT_EQ(tb.server_app(0).time_history(), tb.server_app(1).time_history());
  EXPECT_EQ(tb.server_app(1).time_history(), tb.server_app(2).time_history());
  // Only the primary sends CCS proposals in semi-active replication.
  std::uint64_t initiated_by_backups = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!tb.server(s).is_primary()) {
      initiated_by_backups += tb.server(s).time_service().stats().sends_initiated;
    }
  }
  EXPECT_EQ(initiated_by_backups, 0u);
}

TEST(IntegrationTest, PassiveStylePrimaryProcessesBackupsLog) {
  TestbedConfig cfg;
  cfg.style = ReplicationStyle::kPassive;
  cfg.checkpoint_every = 5;
  Testbed tb(cfg);
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 20, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 20; }, 60'000'000));
  tb.sim().run_for(1'000'000);
  int primaries = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (tb.server(s).is_primary()) {
      ++primaries;
      EXPECT_EQ(tb.server(s).stats().requests_processed, 20u);
      EXPECT_GE(tb.server(s).stats().checkpoints_taken, 3u);
    } else {
      EXPECT_EQ(tb.server(s).stats().requests_processed, 0u);
      EXPECT_GT(tb.server(s).stats().requests_logged, 0u);
      EXPECT_GT(tb.server(s).stats().checkpoints_applied, 0u);
    }
  }
  EXPECT_EQ(primaries, 1);
}

TEST(IntegrationTest, ClientSeesNoDuplicateReplies) {
  Testbed tb({});
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 15, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 15; }, 60'000'000));
  EXPECT_EQ(tb.client().replies(), 15u);
  EXPECT_EQ(tb.client().invocations(), 15u);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    Testbed tb(cfg);
    tb.start();
    std::vector<Bytes> replies;
    drive_client(tb, 10, replies);
    run_until(tb, [&] { return replies.size() == 10; }, 60'000'000);
    return replies;
  };
  EXPECT_EQ(run(3), run(3));
}

// Sweep group sizes and styles: state must agree everywhere.
struct StackParam {
  std::size_t servers;
  ReplicationStyle style;
  std::uint64_t seed;
};

class FullStackProperty : public ::testing::TestWithParam<StackParam> {};

TEST_P(FullStackProperty, ReplicasNeverDiverge) {
  const auto p = GetParam();
  TestbedConfig cfg;
  cfg.servers = p.servers;
  cfg.style = p.style;
  cfg.seed = p.seed;
  if (p.style == ReplicationStyle::kPassive) cfg.checkpoint_every = 4;
  Testbed tb(cfg);
  tb.start();
  std::vector<Bytes> replies;
  drive_client(tb, 15, replies);
  ASSERT_TRUE(run_until(tb, [&] { return replies.size() == 15; }, 90'000'000));
  tb.sim().run_for(2'000'000);

  Micros prev = 0;
  for (const auto& r : replies) {
    BytesReader rd(r);
    const Micros t = rd.i64() * 1'000'000 + rd.i64();
    EXPECT_GT(t, prev);
    prev = t;
  }
  if (p.style != ReplicationStyle::kPassive) {
    for (std::uint32_t s = 1; s < tb.server_count(); ++s) {
      EXPECT_EQ(tb.server_app(s).time_history(), tb.server_app(0).time_history());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullStackProperty,
    ::testing::Values(StackParam{2, ReplicationStyle::kActive, 1},
                      StackParam{3, ReplicationStyle::kActive, 2},
                      StackParam{5, ReplicationStyle::kActive, 3},
                      StackParam{7, ReplicationStyle::kActive, 4},
                      StackParam{2, ReplicationStyle::kSemiActive, 5},
                      StackParam{3, ReplicationStyle::kSemiActive, 6},
                      StackParam{5, ReplicationStyle::kSemiActive, 7},
                      StackParam{3, ReplicationStyle::kPassive, 8},
                      StackParam{4, ReplicationStyle::kPassive, 9}),
    [](const ::testing::TestParamInfo<StackParam>& param_info) {
      const char* style = param_info.param.style == ReplicationStyle::kActive ? "active"
                          : param_info.param.style == ReplicationStyle::kSemiActive
                              ? "semiactive"
                              : "passive";
      return std::string(style) + "_n" + std::to_string(param_info.param.servers) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cts::app
