// Crash-sweep for cross-shard handoffs: the two-phase lease transfer and
// session migration must survive a representative crashing at ANY point in
// the handoff window — phase 1 (ordered release on the source ring), the
// stamping round, the link crossing, or adoption on the destination ring.
//
// The mechanism under test is the one the paper builds everything on:
// every live replica of the source ring performs the identical stamped
// send, GCS duplicate suppression collapses the copies, and ONE survivor
// suffices to complete the transfer.  The sweep lands a crash on every
// event index inside the window (crash_sweep_test's grid, lifted from one
// Testbed to a two-ring archipelago) and asserts, for every index:
//
//   1. reads_after_failure() == 0 — fail-stop holds on the dead node;
//   2. the ordering oracle saw a fully causal history on both rings
//      (zero violations, zero cross-shard floor violations);
//   3. exactly-one-owner — the migrated entry ends up on the destination
//      ring and nowhere else, on every surviving replica of both rings.
//
// A restart pass re-runs a slice of the grid and checks the restarted
// node converges to the same ownership via state transfer, and a
// double-run slice checks the swept schedule is seed-stable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "app/archipelago.hpp"
#include "app/kv_store.hpp"
#include "app/session_manager.hpp"
#include "app/topology.hpp"
#include "obs/oracle.hpp"

namespace cts::app {
namespace {

// A key that hashes to ring 0 of a 2-ring map, so the put/acquire/migrate
// stream routes locally and the sweep exercises the handoff, not the
// gateway forward path.
std::string ring0_key(const ShardMap& map) {
  for (int i = 0;; ++i) {
    std::string k = "h" + std::to_string(i);
    if (map.shard_of_key(k) == 0) return k;
  }
}

Archipelago make_rig(std::uint64_t seed,
                     std::function<replication::ReplicaFactory(const ShardMap&, std::size_t)> app) {
  ArchipelagoConfig cfg;
  cfg.topo = TopologySpec{2, 3, /*with_client=*/true};
  cfg.seed = seed;
  cfg.app = std::move(app);
  return Archipelago(std::move(cfg));
}

replication::ReplicaFactory kv_app(const ShardMap& map, std::size_t ring) {
  KvStoreApp::Options o;
  o.shard_map = &map;
  o.ring = ring;
  return kv_store_factory(o);
}

replication::ReplicaFactory session_app(const ShardMap& map, std::size_t ring) {
  SessionManagerApp::Options o;
  o.shard_map = &map;
  o.ring = ring;
  return session_manager_factory(o);
}

KvStoreApp& kv_of(Archipelago& ar, std::size_t r, std::uint32_t s) {
  return static_cast<KvStoreApp&>(ar.ring(r).server(s).app());
}

SessionManagerApp& sm_of(Archipelago& ar, std::size_t r, std::uint32_t s) {
  return static_cast<SessionManagerApp&>(ar.ring(r).server(s).app());
}

// Everything observable about one swept KV-handoff crash run.
struct HandoffTrace {
  Micros crash_time = 0;
  Micros transfer_stamp = 0;
  int steps_taken = 0;  // events actually stepped past the migrate send
  KvStatus final_status = KvStatus::kBadRequest;
  std::uint64_t reads_after_failure = 0;
  std::uint64_t src_handoffs_out = 0;  // summed over surviving ring-0 replicas
  std::uint64_t dst_handoffs_in = 0;   // summed over surviving ring-1 replicas
  bool one_owner = false;

  friend bool operator==(const HandoffTrace&, const HandoffTrace&) = default;
};

// Drive put → acquire → migrate(key, ring 1), stepping the coordinator's
// canonical serial schedule one event at a time once the migrate is in
// flight, and crash (victim_ring, victim_server) at exactly `event_index`
// events past the send.  `restart` additionally brings the victim back and
// waits for recovery before taking the ownership snapshot.
HandoffTrace run_kv_crash_at(std::uint64_t seed, std::size_t victim_ring,
                             std::uint32_t victim_server, int event_index, bool restart) {
  Archipelago ar = make_rig(seed, kv_app);
  const std::string key = ring0_key(ar.shard_map());
  ar.start();

  bool migrate_inflight = false;
  bool done = false;
  HandoffTrace t;
  auto driver = [&]() -> sim::Task {
    (void)co_await ar.router(0).call(kv_put(key, "payload"));
    (void)co_await ar.router(0).call(kv_acquire(key, /*owner=*/7, /*ttl=*/30'000'000));
    migrate_inflight = true;
    while (true) {
      const Bytes raw = co_await ar.router(0).call(kv_migrate(key, 1));
      const KvReply rep = KvReply::parse(raw);
      if (rep.status != KvStatus::kRetry) {
        t.final_status = rep.status;
        t.transfer_stamp = rep.lease_expiry;  // migrate replies carry the stamp here
        break;
      }
      co_await ar.ring(0).sim().delay(50'000);
    }
    done = true;
  };
  driver();

  // Step to the start of the handoff window (the migrate request enters
  // the stack the moment the acquire reply resumes the driver), then land
  // the crash `event_index` events later on the serial event grid.
  const Micros bound = ar.now() + 20'000'000;
  while (!migrate_inflight && ar.coordinator().step(bound)) {
  }
  for (int i = 0; i < event_index; ++i) {
    if (!ar.coordinator().step(bound)) break;
    ++t.steps_taken;
  }

  // Island-local time: the coordinator's clock only advances on epoch
  // boundaries, but the victim's ring has executed the stepped events.
  t.crash_time = ar.ring(victim_ring).sim().now();
  ar.crash_server(victim_ring, victim_server);
  const auto victim_node = ar.ring(victim_ring).server_node(victim_server);

  const Micros deadline = ar.now() + 30'000'000;
  while (!done && ar.now() < deadline) ar.run_for(100'000);
  t.reads_after_failure = ar.ring(victim_ring).clock_of(victim_node).reads_after_failure();

  if (restart) {
    ar.restart_server(victim_ring, victim_server);
    const Micros rdl = ar.now() + 60'000'000;
    while (!ar.ring(victim_ring).server(victim_server).recovered() && ar.now() < rdl) {
      ar.run_for(100'000);
    }
  }

  // Ownership snapshot: the entry lives on ring 1 and nowhere else, at
  // every replica we can legitimately inspect (survivors always; the
  // victim too once state transfer has run).
  t.one_owner = done;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      const bool is_victim = r == victim_ring && s == victim_server;
      if (is_victim && !restart) continue;
      const bool expect_here = r == 1;
      if (kv_of(ar, r, s).has_key(key) != expect_here) t.one_owner = false;
      if (!is_victim) {
        if (r == 0) t.src_handoffs_out += kv_of(ar, r, s).handoffs_out();
        if (r == 1) t.dst_handoffs_in += kv_of(ar, r, s).handoffs_in();
      }
    }
  }
  return t;
}

void expect_clean(Archipelago& ar) {
  for (std::size_t r = 0; r < ar.ring_count(); ++r) {
    const auto* orc = ar.ring(r).recorder().oracle();
    ASSERT_NE(orc, nullptr);
    EXPECT_EQ(orc->violations(), 0u) << "ring " << r;
    EXPECT_EQ(orc->cross_shard_violations(), 0u) << "ring " << r;
    EXPECT_GT(orc->checks_run(), 0u) << "ring " << r;
  }
}

void expect_survived(const HandoffTrace& t, std::size_t vr, std::uint32_t vs, int idx) {
  SCOPED_TRACE("victim=ring" + std::to_string(vr) + "/s" + std::to_string(vs) +
               " event_index=" + std::to_string(idx) +
               " crash_time=" + std::to_string(t.crash_time));
  EXPECT_EQ(t.reads_after_failure, 0u);
  // The window never ran dry: every sweep point landed on a distinct
  // event-grid position past the migrate send.
  EXPECT_EQ(t.steps_taken, idx);
  EXPECT_EQ(t.final_status, KvStatus::kOk);
  EXPECT_GT(t.transfer_stamp, 0);
  EXPECT_TRUE(t.one_owner);
  // Every surviving replica counts the one transfer exactly once: two
  // survivors on the victim's ring, all three on the other.
  EXPECT_EQ(t.src_handoffs_out, vr == 0 ? 2u : 3u);
  EXPECT_EQ(t.dst_handoffs_in, vr == 1 ? 2u : 3u);
}

// Note: the Testbed's oracle runs with abort_on_violation=true, so every
// run below doubles as a hard causality tripwire — a floor or cross-shard
// violation anywhere in the sweep aborts the test process outright.  The
// expect_clean() checks in the dedicated test below make the property
// visible as an assertion too.

// The main grid: crash the SOURCE ring's representative (and a backup) at
// every event index in the window that starts the moment the migrate
// request is in flight.
TEST(HandoffSweepTest, SourceRingCrashAtEveryEventIndex) {
  constexpr int kWindow = 14;
  for (std::uint32_t victim : {0u, 1u}) {
    for (int idx = 0; idx < kWindow; ++idx) {
      const HandoffTrace t = run_kv_crash_at(901, /*victim_ring=*/0, victim, idx, false);
      expect_survived(t, 0, victim, idx);
    }
  }
}

// Same grid on the DESTINATION ring: the crash lands before, during, or
// after the stamped adoption; the survivors adopt and state transfer
// covers the victim.
TEST(HandoffSweepTest, DestinationRingCrashAtEveryEventIndex) {
  constexpr int kWindow = 14;
  for (std::uint32_t victim : {0u, 1u}) {
    for (int idx = 0; idx < kWindow; ++idx) {
      const HandoffTrace t = run_kv_crash_at(902, /*victim_ring=*/1, victim, idx, false);
      expect_survived(t, 1, victim, idx);
    }
  }
}

// Restart slice: bring the victim back at a few swept indices and require
// it to converge — via state transfer — to the same single-owner picture,
// with the fail-stop tripwire still clean.
TEST(HandoffSweepTest, RestartAfterSweptCrashConvergesToOneOwner) {
  for (int idx : {1, 5, 9}) {
    for (std::size_t vr : {std::size_t{0}, std::size_t{1}}) {
      const HandoffTrace t = run_kv_crash_at(903, vr, 0, idx, true);
      expect_survived(t, vr, 0, idx);
    }
  }
}

// Oracle visibility: re-run one swept point with an explicit post-run
// check of both rings' oracles (every other run already aborts on a
// violation; this makes the zero-violation claim an assertion).
TEST(HandoffSweepTest, SweptCrashKeepsBothOraclesClean) {
  Archipelago ar = make_rig(904, kv_app);
  const std::string key = ring0_key(ar.shard_map());
  ar.start();

  bool inflight = false;
  bool done = false;
  KvStatus final_status = KvStatus::kBadRequest;
  auto driver = [&]() -> sim::Task {
    (void)co_await ar.router(0).call(kv_put(key, "v"));
    inflight = true;
    while (true) {
      const KvReply rep = KvReply::parse(co_await ar.router(0).call(kv_migrate(key, 1)));
      if (rep.status != KvStatus::kRetry) {
        final_status = rep.status;
        break;
      }
      co_await ar.ring(0).sim().delay(50'000);
    }
    done = true;
  };
  driver();

  const Micros bound = ar.now() + 20'000'000;
  while (!inflight && ar.coordinator().step(bound)) {
  }
  for (int i = 0; i < 7; ++i) ar.coordinator().step(bound);
  ar.crash_server(0, 0);
  const Micros deadline = ar.now() + 30'000'000;
  while (!done && ar.now() < deadline) ar.run_for(100'000);

  ASSERT_TRUE(done);
  EXPECT_EQ(final_status, KvStatus::kOk);
  expect_clean(ar);
}

// Seed stability: the same (seed, victim, index) coordinates must replay
// the same crash — same crash time, same stamp, same ownership, same
// handoff accounting.
TEST(HandoffSweepTest, SweepScheduleIsSeedStableAcrossRuns) {
  for (int idx : {0, 4, 8, 12}) {
    const HandoffTrace a = run_kv_crash_at(905, 0, 1, idx, false);
    const HandoffTrace b = run_kv_crash_at(905, 0, 1, idx, false);
    SCOPED_TRACE("event_index=" + std::to_string(idx));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.reads_after_failure, 0u);
  }
}

// Session migration rides the same two-phase machinery on its own stamp
// stream; sweep a slice of indices on both rings to pin that the shape —
// not just the KV instantiation — survives representative crashes.
TEST(HandoffSweepTest, SessionMigrationSurvivesSweptCrashes) {
  for (int idx : {0, 3, 6, 9, 12}) {
    for (std::size_t vr : {std::size_t{0}, std::size_t{1}}) {
      Archipelago ar = make_rig(906, session_app);
      ar.start();

      bool inflight = false;
      bool done = false;
      std::uint64_t id = 0;
      SessionStatus final_status = SessionStatus::kBadRequest;
      auto driver = [&]() -> sim::Task {
        const SessionReply opened =
            SessionReply::parse(co_await ar.router(0).call(session_open(60'000'000)));
        id = opened.session_id;
        inflight = true;
        while (true) {
          const SessionReply rep =
              SessionReply::parse(co_await ar.router(0).call(session_migrate(id, 1)));
          // kBadRequest after a successful open means the stamp stream was
          // busy (the session-side analogue of KvStatus::kRetry): retry.
          if (rep.status != SessionStatus::kBadRequest) {
            final_status = rep.status;
            break;
          }
          co_await ar.ring(0).sim().delay(50'000);
        }
        done = true;
      };
      driver();

      const Micros bound = ar.now() + 20'000'000;
      while (!inflight && ar.coordinator().step(bound)) {
      }
      for (int i = 0; i < idx; ++i) {
        if (!ar.coordinator().step(bound)) break;
      }
      ar.crash_server(vr, 0);
      const auto victim_node = ar.ring(vr).server_node(0);
      const Micros deadline = ar.now() + 30'000'000;
      while (!done && ar.now() < deadline) ar.run_for(100'000);

      SCOPED_TRACE("victim_ring=" + std::to_string(vr) + " event_index=" + std::to_string(idx));
      ASSERT_TRUE(done);
      EXPECT_EQ(final_status, SessionStatus::kOk);
      EXPECT_EQ(ar.ring(vr).clock_of(victim_node).reads_after_failure(), 0u);
      // Exactly-one-owner on every surviving replica.
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::uint32_t s = 0; s < 3; ++s) {
          if (r == vr && s == 0) continue;
          EXPECT_EQ(sm_of(ar, r, s).has_session(id), r == 1)
              << "ring " << r << " server " << s;
        }
      }
      expect_clean(ar);
    }
  }
}

}  // namespace
}  // namespace cts::app
