// Unit tests for hash-chained checkpoint batches: chain construction,
// wire round-trip, and rejection of every tampering class a recovering
// replica must survive (flipped snapshot bytes, altered or reordered
// headers, truncation, trailing garbage).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "replication/checkpoint_chain.hpp"

namespace cts::replication {
namespace {

Bytes snap(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// A three-link chain over successive snapshots, plus the newest snapshot.
std::pair<std::vector<CheckpointHeader>, Bytes> sample_chain() {
  std::vector<CheckpointHeader> chain;
  extend_chain(chain, 10, snap("state-after-10"));
  extend_chain(chain, 25, snap("state-after-25"));
  Bytes newest = snap("state-after-40");
  extend_chain(chain, 40, newest);
  return {chain, newest};
}

TEST(CheckpointChainTest, RoundTripVerifies) {
  auto [chain, newest] = sample_chain();
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(verify_chained_checkpoint(*d));
  EXPECT_EQ(d->headers, chain);
  EXPECT_TRUE(std::equal(d->snapshot.begin(), d->snapshot.end(), newest.begin(), newest.end()));
}

TEST(CheckpointChainTest, LinksChainParentToChild) {
  auto [chain, newest] = sample_chain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].parent, 0u);
  EXPECT_EQ(chain[1].parent, chain[0].link);
  EXPECT_EQ(chain[2].parent, chain[1].link);
  for (const auto& h : chain) EXPECT_EQ(h.link, chain_link(h.upto, h.digest, h.parent));
}

TEST(CheckpointChainTest, TamperedSnapshotByteIsRejected) {
  auto [chain, newest] = sample_chain();
  Bytes payload = encode_chained_checkpoint(newest, chain);
  payload[4] ^= 0x01;  // first snapshot byte (after the u32 length prefix)
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());  // structurally intact...
  EXPECT_FALSE(verify_chained_checkpoint(*d));  // ...but the digest disagrees
}

TEST(CheckpointChainTest, TamperedHeaderFieldIsRejected) {
  auto [chain, newest] = sample_chain();
  chain[1].upto += 1;  // inflate the middle header's covered count
  // Keep the encoded payload alive: DecodedCheckpoint::snapshot aliases it.
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(verify_chained_checkpoint(*d));  // its link no longer recomputes
}

TEST(CheckpointChainTest, RelinkedTamperStillBreaksTheChain) {
  // An attacker who alters a header AND recomputes its link still loses:
  // the next header's parent no longer matches.
  auto [chain, newest] = sample_chain();
  chain[1].upto += 1;
  chain[1].link = chain_link(chain[1].upto, chain[1].digest, chain[1].parent);
  // Keep the encoded payload alive: DecodedCheckpoint::snapshot aliases it.
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(verify_chained_checkpoint(*d));
}

TEST(CheckpointChainTest, ReorderedHeadersAreRejected) {
  auto [chain, newest] = sample_chain();
  std::swap(chain[0], chain[1]);
  // Keep the encoded payload alive: DecodedCheckpoint::snapshot aliases it.
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(verify_chained_checkpoint(*d));
}

TEST(CheckpointChainTest, CoveredCountMustNotDecrease) {
  // Two self-consistent links whose covered counts run backwards: each link
  // recomputes, but the history is impossible and must be rejected.
  std::vector<CheckpointHeader> chain;
  Bytes newest = snap("older");
  CheckpointHeader a;
  a.upto = 50;
  a.digest = fnv1a64(snap("newer"));
  a.parent = 0;
  a.link = chain_link(a.upto, a.digest, a.parent);
  CheckpointHeader b;
  b.upto = 20;
  b.digest = fnv1a64(newest);
  b.parent = a.link;
  b.link = chain_link(b.upto, b.digest, b.parent);
  chain = {a, b};
  // Keep the encoded payload alive: DecodedCheckpoint::snapshot aliases it.
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(verify_chained_checkpoint(*d));
}

TEST(CheckpointChainTest, TruncatedPayloadFailsDecode) {
  auto [chain, newest] = sample_chain();
  Bytes payload = encode_chained_checkpoint(newest, chain);
  payload.pop_back();
  EXPECT_FALSE(decode_chained_checkpoint(payload).has_value());
}

TEST(CheckpointChainTest, TrailingGarbageFailsDecode) {
  auto [chain, newest] = sample_chain();
  Bytes payload = encode_chained_checkpoint(newest, chain);
  payload.push_back(0xee);
  EXPECT_FALSE(decode_chained_checkpoint(payload).has_value());
}

TEST(CheckpointChainTest, EmptyChainFailsDecode) {
  const Bytes newest = snap("s");
  EXPECT_FALSE(decode_chained_checkpoint(encode_chained_checkpoint(newest, {})).has_value());
}

TEST(CheckpointChainTest, RetakenUnchangedCheckpointDoesNotGrowTheChain) {
  std::vector<CheckpointHeader> chain;
  extend_chain(chain, 10, snap("same"));
  extend_chain(chain, 10, snap("same"));
  EXPECT_EQ(chain.size(), 1u);
  extend_chain(chain, 10, snap("different"));  // same point, new bytes: a new link
  EXPECT_EQ(chain.size(), 2u);
}

TEST(CheckpointChainTest, ChainIsBoundedAndStillVerifies) {
  std::vector<CheckpointHeader> chain;
  Bytes newest;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    newest = snap("state-" + std::to_string(i));
    extend_chain(chain, i, newest);
  }
  EXPECT_EQ(chain.size(), 64u);
  EXPECT_EQ(chain.front().upto, 37u);  // oldest retained link
  // Keep the encoded payload alive: DecodedCheckpoint::snapshot aliases it.
  const Bytes payload = encode_chained_checkpoint(newest, chain);
  auto d = decode_chained_checkpoint(payload);
  ASSERT_TRUE(d.has_value());
  // The truncated base is trusted: verification starts at the oldest
  // retained header, exactly as a recovering replica would.
  EXPECT_TRUE(verify_chained_checkpoint(*d));
}

}  // namespace
}  // namespace cts::replication
